//! # ahl — a sharded permissioned blockchain with TEE-assisted BFT
//!
//! Facade crate for the reproduction of *Towards Scaling Blockchain
//! Systems via Sharding* (Dang et al., SIGMOD 2019). Re-exports every
//! subsystem crate:
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`simkit`] | deterministic discrete-event simulation kernel + adversarial message-bus interposition (scripted partitions, drops, delays, duplication); observability: labeled metrics ([`simkit::Scope`]) and the transaction flight recorder ([`simkit::FlightRecorder`]) |
//! | [`telemetry`] | run-time oracles over the trace stream: the liveness oracle ([`telemetry::LivenessChecker`]: commit stalls, mempool starvation, view-change storms, sync livelock) and the wall-clock span profiler ([`telemetry::Profiler`]) |
//! | [`crypto`] | SHA-256, HMAC, signatures, Merkle trees |
//! | [`tee`] | SGX simulation: attested log, randomness beacon, sealing |
//! | [`net`] | cluster / GCP network models (Table 3 latencies); the real node runtime: [`net::Transport`] trait with in-process ([`net::MemHub`]) and threaded TCP ([`net::TcpTransport`]) backends, length-framed CRC wire codec, version/identity handshake, reconnect with backoff, and the [`net::NodeRuntime`] actor host |
//! | [`store`] | authenticated state: sparse Merkle tree, signed checkpoints, chunked state sync |
//! | [`wal`] | durable write-ahead log with segment retention caps, content-addressed page store with checkpoint-gated GC/compaction and sidecar segment indexes, byte-bounded lazy page cache ([`wal::PageCache`]), manifests, crash-kill recovery |
//! | [`ledger`] | blocks, KV state with 2PL + SMT state roots, KVStore & SmallBank chaincode; conflict-aware parallel execution ([`ledger::access`], [`ledger::execute_ops`]) |
//! | [`mempool`] | per-shard transaction pool: dedup, admission control, per-sender quotas, batch pipeline |
//! | [`consensus`] | PBFT (HL/AHL/AHL+/AHLR), Tendermint, IBFT, Raft, PoET; the scripted Byzantine attack catalogue ([`consensus::Attack`]) and the global [`consensus::SafetyChecker`] |
//! | [`shard`] | committee sizing (Eq 1), beacon protocol, reconfiguration |
//! | [`txn`] | 2PC reference committee, cross-shard protocol, baselines, malicious 2PC participants |
//! | [`workload`] | BLOCKBENCH KVStore / SmallBank generators |
//! | [`system`] | the assembled sharded blockchain ([`system::run_system`]) |
//!
//! Quickstart: see `examples/quickstart.rs` —
//!
//! ```
//! use ahl::system::{run_system, SystemConfig, SystemWorkload};
//! use ahl::simkit::SimDuration;
//!
//! let mut cfg = SystemConfig::new(2, 3); // 2 shards × 3 replicas
//! cfg.clients = 2;
//! cfg.outstanding = 8;
//! cfg.workload = SystemWorkload::SmallBank { accounts: 500, theta: 0.0 };
//! cfg.duration = SimDuration::from_secs(3);
//! cfg.warmup = SimDuration::from_secs(1);
//! let metrics = run_system(cfg);
//! assert!(metrics.committed > 0);
//! ```
//!
//! ## Observability
//!
//! Every simulation feeds a structured observability stack in
//! [`simkit::Stats`]:
//!
//! - **Labeled metrics** — counters and latency histograms carry an
//!   optional [`simkit::Scope`] (committee, or committee + replica), and
//!   every scoped write also rolls up into the unlabeled global, so
//!   per-shard breakdowns coexist with the aggregate numbers
//!   (`stats.scoped_counter(name, Scope::committee(2))`).
//! - **Transaction flight recorder** — replicas and clients stamp each
//!   transaction's lifecycle ([`simkit::Phase`]: submit → ingest → admit
//!   → propose → commit → exec, plus the cross-shard 2PC hops, view
//!   changes, state sync and WAL commits) into bounded per-node ring
//!   buffers ([`simkit::FlightRecorder`]); traces are deterministic in
//!   the run seed, and phase-to-phase transitions derive `phase.*`
//!   latency histograms with p50/p99/p999.
//! - **Liveness oracle** — [`telemetry::LivenessChecker`] is an online
//!   [`simkit::TraceSink`] tee over the same stamp stream: per-committee
//!   commit-stall, mempool-starvation, view-change-storm and
//!   sync-livelock detectors with deterministic verdicts. Attach it via
//!   `SystemConfig::liveness`; violations land in
//!   `SystemMetrics::liveness_violations` and the JSON report.
//! - **Wall-clock profiler** — [`telemetry::Profiler`] spans
//!   (`pbft.exec`, `smt.update`, `wal.group_commit`, `sync.verify_chunk`,
//!   `txn.coordinator`, …) time the *host* cost of the hot paths, with
//!   self/total attribution; `SystemConfig::profile` returns the sorted
//!   table in `SystemReport::profile`.
//! - **Dump-on-anomaly** — a [`consensus::SafetyChecker`] or liveness
//!   violation in a [`system::run_system`] run prints each violation's
//!   one-line summary plus a bounded causal trace of the implicated
//!   committee.
//! - **Machine-readable reports** — [`system::run_system_report`] returns
//!   the raw [`simkit::Stats`] next to the metrics; `experiments -- fig8
//!   --quick --json out.json` emits the stable JSON report (run config,
//!   per-shard committed counts, phase-latency percentiles) that CI
//!   validates and archives on every push.
//! - **Bench trajectory** — the `fig8` / `overload` / `statesync` /
//!   `recovery` / `byzantine` scenarios embed per-metric regression
//!   budgets in their JSON reports; `bench_compare
//!   BENCH_<scenario>.json fresh.json` diffs a fresh run against the
//!   committed baseline and exits non-zero on a breach (see
//!   BENCHMARKS.md).
//!
//! ```
//! use ahl::system::{run_system_report, SystemConfig, SystemWorkload};
//! use ahl::simkit::{Phase, Scope, SimDuration};
//!
//! let mut cfg = SystemConfig::new(2, 3);
//! cfg.clients = 2;
//! cfg.outstanding = 8;
//! cfg.workload = SystemWorkload::SmallBank { accounts: 500, theta: 0.0 };
//! cfg.duration = SimDuration::from_secs(3);
//! cfg.warmup = SimDuration::from_secs(1);
//! let report = run_system_report(cfg);
//! // Per-shard committed counts, and a consensus-phase latency histogram.
//! let shard0 = report.stats.scoped_counter("txn.committed", Scope::committee(0));
//! assert!(shard0 > 0);
//! assert!(report.stats.histogram(Phase::TRANSITIONS[4]).is_some()); // commit→exec
//! ```
//!
//! ## Parallel in-shard execution
//!
//! Each replica can execute a committed block's batch across a fixed
//! worker pool — `SystemConfig::exec_workers` (default 1, or the
//! `AHL_EXEC_WORKERS` env var) threads through PBFT, IBFT and Tendermint
//! into [`ledger::execute_ops`]. The scheduler ([`ledger::access`])
//! infers a conservative read/write set per operation — state keys, 2PL
//! lock markers (`"L_" + key`), and one bookkeeping slot per transaction
//! id — and partitions the batch into conflict-free *waves*: an op lands
//! one wave past the last earlier op that writes what it touches (or
//! reads what it writes). Waves execute on scoped worker threads
//! (plan phase is read-only), and effects merge in canonical batch
//! order.
//!
//! **Determinism guarantee**: the receipt stream, state root, lock
//! table, 2PC sidecar and flight-recorder event stream are byte-identical
//! at every worker count — parallelism changes host wall-clock only,
//! never simulated outcomes. `tests/parexec.rs` pins this with a
//! proptest battery over random mixed batches (`exec_workers ∈ {2,4,8}`)
//! and a full-system fingerprint comparison; `experiments -- parexec`
//! sweeps worker counts and asserts every cell identical. At checkpoint
//! time a parallel run additionally re-hashes the SMT bottom-up
//! ([`store::SparseMerkleTree::rehash_audit`]) and counts any mismatch in
//! `consensus.ckpt_audit_failures`.
//!
//! ```
//! use ahl::system::{run_system, SystemConfig, SystemWorkload};
//! use ahl::simkit::SimDuration;
//!
//! let mut cfg = SystemConfig::new(2, 3);
//! cfg.clients = 2;
//! cfg.outstanding = 8;
//! cfg.workload = SystemWorkload::SmallBank { accounts: 500, theta: 0.0 };
//! cfg.duration = SimDuration::from_secs(2);
//! cfg.warmup = SimDuration::from_secs(1);
//! cfg.exec_workers = 4; // same results as 1, faster wall-clock
//! let metrics = run_system(cfg);
//! assert!(metrics.committed > 0);
//! ```
//!
//! ## Real node runtime (TCP)
//!
//! The same replica code the deterministic simulator exercises also runs
//! as N actual OS processes over real sockets. The seam is two traits:
//!
//! - [`simkit::Host`] — replicas are simkit [`simkit::Actor`]s and only
//!   ever talk to a [`simkit::Ctx`]; a `Ctx` is backed either by the
//!   simulation kernel or by any `Host` (clock, timers, per-node RNG,
//!   stats). The sim path is byte-identical — hosting is an additive
//!   backend, so every Byzantine/recovery/liveness battery stays
//!   deterministic.
//! - [`net::Transport`] — the message bus: `send(from, to, packet)`,
//!   `recv_timeout`, peer table, connect/disconnect [`net::NetEvent`]s,
//!   and backpressure counters in [`net::TransportStats`] (bounded
//!   outbound queues drop-and-count, mirroring `trace.dropped`). Two
//!   backends: [`net::MemHub`] (in-process, for tests) and
//!   [`net::TcpTransport`] — thread-per-peer `std::net`, length-framed
//!   CRC'd codec reusing the WAL framing discipline, a [`net::Hello`]
//!   version/identity/cluster handshake, and per-peer reconnect with
//!   exponential backoff. Consensus messages cross the wire via the
//!   hand-rolled [`net::Wire`] codec (`consensus::pbft` implements it
//!   for the full `PbftMsg` enum; decoding recomputes block digests and
//!   rejects torn, truncated, trailing-byte and corrupt frames).
//!
//! [`net::NodeRuntime`] glues them together: it pumps a `Transport`,
//! delivers packets to hosted actors through `Ctx::for_host`, fires
//! timers, and answers [`net::Control::Status`] probes with
//! height/state-digest reports. The `node` binary
//! (`cargo run -p ahl-bench --bin node -- cluster.cfg <index>`) runs one
//! replica this way from a cluster config file — a canonical `key value`
//! text format (`seed` / `variant` / `batch-size` /
//! `checkpoint-interval` / `exec-workers` / `data-dir` /
//! `replica <id> <addr>` / `client <id> <addr>`) whose digest doubles as
//! the handshake cluster id, so misconfigured processes refuse to peer.
//! Replica settings derive through [`system::committee_config`] — the
//! same code path `system::run_system` uses — and a non-empty `data-dir`
//! triggers the WAL restart-from-disk path on boot.
//!
//! `experiments -- cluster` spawns a 4-process localhost committee,
//! drives closed-loop load over TCP, kills and restarts one replica
//! (reconnect + catch-up), cross-checks state digests at matching
//! heights, and reports measured throughput next to the simkit
//! prediction for the same configuration (the real path is faster — it
//! does not pay the simulator's modeled CPU costs — so the comparison is
//! a sanity band, not an identity). `tests/cluster.rs` in `ahl-bench`
//! pins the whole loop as a tier-1 CI step.
//!
//! ## Adversary model
//!
//! The paper's security section is executable: [`consensus::Attack`]
//! selects what a committee's Byzantine members do (same-slot
//! equivocation with colluding double-voters, vote withholding,
//! stale-vote replay, bogus checkpoint votes — interpreted by PBFT, IBFT
//! and Tendermint alike), [`txn::RelayAttack`] covers malicious 2PC
//! participants (lying votes, decision equivocation, selective delivery,
//! replay storms), and [`simkit::adversary::ScriptedFaults`] scripts
//! network-level schedules (partition/heal windows, predicate drops,
//! delays, duplication). A run-global [`consensus::SafetyChecker`]
//! observes every honest commit and asserts the invariants — agreement
//! per height, cross-shard atomicity, exactly-once execution.
//! `tests/byzantine.rs` runs the full (protocol × attack × f) matrix and
//! an f-over-bound canary proving the checker fires on a real fork;
//! `experiments -- byzantine` is the fixed-seed CI smoke. See
//! [`consensus::adversary`] for the catalogue and how to script a new
//! attack in a few lines.

pub use ahl_consensus as consensus;
pub use ahl_core as system;
pub use ahl_crypto as crypto;
pub use ahl_ledger as ledger;
pub use ahl_mempool as mempool;
pub use ahl_net as net;
pub use ahl_shard as shard;
pub use ahl_simkit as simkit;
pub use ahl_store as store;
pub use ahl_telemetry as telemetry;
pub use ahl_tee as tee;
pub use ahl_txn as txn;
pub use ahl_wal as wal;
pub use ahl_workload as workload;
