//! # ahl — a sharded permissioned blockchain with TEE-assisted BFT
//!
//! Facade crate for the reproduction of *Towards Scaling Blockchain
//! Systems via Sharding* (Dang et al., SIGMOD 2019). Re-exports every
//! subsystem crate:
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`simkit`] | deterministic discrete-event simulation kernel |
//! | [`crypto`] | SHA-256, HMAC, signatures, Merkle trees |
//! | [`tee`] | SGX simulation: attested log, randomness beacon, sealing |
//! | [`net`] | cluster / GCP network models (Table 3 latencies) |
//! | [`store`] | authenticated state: sparse Merkle tree, signed checkpoints, chunked state sync |
//! | [`wal`] | durable write-ahead log, content-addressed page store, manifests, crash-kill recovery |
//! | [`ledger`] | blocks, KV state with 2PL + SMT state roots, KVStore & SmallBank chaincode |
//! | [`mempool`] | per-shard transaction pool: dedup, admission control, per-sender quotas, batch pipeline |
//! | [`consensus`] | PBFT (HL/AHL/AHL+/AHLR), Tendermint, IBFT, Raft, PoET |
//! | [`shard`] | committee sizing (Eq 1), beacon protocol, reconfiguration |
//! | [`txn`] | 2PC reference committee, cross-shard protocol, baselines |
//! | [`workload`] | BLOCKBENCH KVStore / SmallBank generators |
//! | [`system`] | the assembled sharded blockchain ([`system::run_system`]) |
//!
//! Quickstart: see `examples/quickstart.rs` —
//!
//! ```
//! use ahl::system::{run_system, SystemConfig, SystemWorkload};
//! use ahl::simkit::SimDuration;
//!
//! let mut cfg = SystemConfig::new(2, 3); // 2 shards × 3 replicas
//! cfg.clients = 2;
//! cfg.outstanding = 8;
//! cfg.workload = SystemWorkload::SmallBank { accounts: 500, theta: 0.0 };
//! cfg.duration = SimDuration::from_secs(3);
//! cfg.warmup = SimDuration::from_secs(1);
//! let metrics = run_system(cfg);
//! assert!(metrics.committed > 0);
//! ```

pub use ahl_consensus as consensus;
pub use ahl_core as system;
pub use ahl_crypto as crypto;
pub use ahl_ledger as ledger;
pub use ahl_mempool as mempool;
pub use ahl_net as net;
pub use ahl_shard as shard;
pub use ahl_simkit as simkit;
pub use ahl_store as store;
pub use ahl_tee as tee;
pub use ahl_txn as txn;
pub use ahl_wal as wal;
pub use ahl_workload as workload;
