//! Vendored subset of the `criterion` API.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the slice of `criterion` its benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`Throughput`], [`BatchSize`], [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of upstream's statistical analysis it runs a short warmup, then
//! a fixed sample of timed iterations, and prints mean ns/iter (plus
//! derived element/byte throughput when configured). That is enough to
//! compare hot paths before/after a change without any dependencies.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting a benchmark
/// body.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost (accepted for API parity; the
/// stub times every routine invocation individually either way).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id naming only the swept parameter.
    pub fn from_parameter<D: Display>(param: D) -> Self {
        BenchmarkId(param.to_string())
    }

    /// An id with a function name and a parameter.
    pub fn new<S: Into<String>, D: Display>(name: S, param: D) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), param))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the sample iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` over per-iteration inputs built by `setup`
    /// (setup time excluded).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_one(group: &str, id: &str, sample_size: usize, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    // Warmup round (also sizes the measured sample so one run stays fast).
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    // Aim for ~sample_size measured iterations, capped to keep total time
    // per benchmark around a second even for slow bodies.
    let budget = Duration::from_millis(300);
    let iters = (budget.as_nanos() / per_iter.as_nanos().max(1))
        .clamp(1, sample_size as u128) as u64;
    let mut b = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut b);
    let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
    let name = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (ns / 1e9);
            println!("bench {name:48} {ns:14.0} ns/iter ({rate:12.0} elem/s)");
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (ns / 1e9) / 1e6;
            println!("bench {name:48} {ns:14.0} ns/iter ({rate:10.1} MB/s)");
        }
        None => println!("bench {name:48} {ns:14.0} ns/iter"),
    }
}

/// Benchmark registry/driver (stub of criterion's `Criterion`).
pub struct Criterion {
    default_sample: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample: 20 }
    }
}

impl Criterion {
    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one("", id, self.default_sample, None, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 20,
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing sample/throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the measured iteration target.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration throughput units.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&self.name, &id.0, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I: Into<BenchmarkId>, P: ?Sized, F>(
        &mut self,
        id: I,
        input: &P,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &P),
    {
        let id = id.into();
        run_one(&self.name, &id.0, self.sample_size, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Collect benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit a `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_smoke() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("group");
        g.sample_size(5).throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
