//! Vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the small slice of `rand` it actually uses: [`rngs::SmallRng`]
//! (xoshiro256++ seeded via SplitMix64), the [`Rng`]/[`RngCore`] traits
//! with `gen`, `gen_range` and `gen_bool`, [`SeedableRng::seed_from_u64`],
//! and [`seq::SliceRandom::shuffle`]. Everything is deterministic in the
//! seed, which is all the discrete-event simulator requires; statistical
//! quality matches the upstream `SmallRng` (same xoshiro256++ core).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with uniformly distributed bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// Deterministically build a generator from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Values samplable uniformly from a generator (the `Standard`
/// distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits => uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (<u128 as Standard>::sample(rng) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (<u128 as Standard>::sample(rng) % span) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + <f64 as Standard>::sample(rng) * (self.end - self.start)
    }
}

/// High-level generator interface (extension methods over [`RngCore`]).
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range`. Panics on an empty range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }

    /// Fill `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator: xoshiro256++ (the same core
    /// upstream `SmallRng` uses on 64-bit platforms).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (mirrors `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Random slice operations.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_within_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: i64 = r.gen_range(-50..100);
            assert!((-50..100).contains(&v));
            let u: usize = r.gen_range(0..7);
            assert!(u < 7);
            let f: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
