//! Vendored subset of the `proptest` API.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the slice of `proptest` its tests use: the [`proptest!`] macro
//! with `name in strategy` and `name: Type` parameters, range and tuple
//! strategies, [`collection::vec`], and the `prop_assert*` macros.
//!
//! Unlike upstream there is no shrinking: each test runs [`CASES`]
//! deterministic random cases (seeded from the test name), and a failing
//! case panics with the ordinary assertion message. That keeps failures
//! reproducible without any persistence files.

#![warn(missing_docs)]

use std::ops::Range;

/// Number of random cases generated per property test.
pub const CASES: usize = 64;

/// Deterministic test-case generator (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed a generator from the property test's name. When the
    /// `PROPTEST_SEED` environment variable is set, its value perturbs the
    /// seed — CI runs the same tests under a small fixed-seed matrix to
    /// widen case coverage while every run stays reproducible.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        if let Ok(seed) = std::env::var("PROPTEST_SEED") {
            for b in seed.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        TestRng(h)
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_strategy_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!(A: 0);
impl_strategy_tuple!(A: 0, B: 1);
impl_strategy_tuple!(A: 0, B: 1, C: 2);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length bound for [`vec()`]: an exact `usize` or a `Range<usize>`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy producing `Vec`s of `element` values.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Types with a default "any value" generator, used for `name: Type`
/// parameters of [`proptest!`].
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

impl<T: Arbitrary> Arbitrary for Vec<T> {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let len = rng.below(64) as usize;
        (0..len).map(|_| T::arbitrary(rng)).collect()
    }
}

/// Draw an arbitrary value of type `T` (macro plumbing).
pub fn arbitrary<T: Arbitrary>(rng: &mut TestRng) -> T {
    T::arbitrary(rng)
}

/// Bind one parameter list entry of [`proptest!`] (internal).
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, mut $name:ident in $strat:expr $(, $($rest:tt)*)?) => {
        #[allow(unused_mut)]
        let mut $name = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
    ($rng:ident, $name:ident in $strat:expr $(, $($rest:tt)*)?) => {
        let $name = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
    ($rng:ident, mut $name:ident : $ty:ty $(, $($rest:tt)*)?) => {
        #[allow(unused_mut)]
        let mut $name: $ty = $crate::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
    ($rng:ident, $name:ident : $ty:ty $(, $($rest:tt)*)?) => {
        let $name: $ty = $crate::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
}

/// Define property tests. Each function body runs [`CASES`] times with
/// freshly generated parameter values; parameters are either
/// `name in strategy` or `name: Type` (via [`Arbitrary`]).
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
    )+) => {$(
        $(#[$meta])*
        fn $name() {
            let mut __proptest_rng = $crate::TestRng::from_name(stringify!($name));
            for __proptest_case in 0..$crate::CASES {
                let _ = __proptest_case;
                $crate::__proptest_bind!(__proptest_rng, $($params)*);
                $body
            }
        }
    )+};
}

/// Assert a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Assert equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Assert inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

#[cfg(test)]
mod tests {
    crate::proptest! {
        #[test]
        fn ranges_respected(a in 3usize..10, b in -5i64..5, f in 0.0f64..1.0) {
            crate::prop_assert!((3..10).contains(&a));
            crate::prop_assert!((-5..5).contains(&b));
            crate::prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vectors_sized(v in crate::collection::vec(0u8..4, 2..6), exact in crate::collection::vec(0usize..8, 8)) {
            crate::prop_assert!((2..6).contains(&v.len()));
            crate::prop_assert_eq!(exact.len(), 8);
            crate::prop_assert!(v.iter().all(|&x| x < 4));
        }

        #[test]
        fn arbitrary_params(seed: u64, bytes: Vec<u8>, mut flag: bool) {
            flag = !flag;
            let _ = (seed, bytes, flag);
        }

        #[test]
        fn tuples_compose(pairs in crate::collection::vec((0u8..4, 0usize..4, 1i64..50), 1..20)) {
            for (k, s, amt) in pairs {
                crate::prop_assert!(k < 4 && s < 4 && (1..50).contains(&amt));
            }
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = super::TestRng::from_name("x");
        let mut b = super::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = super::TestRng::from_name("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
