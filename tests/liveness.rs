//! The liveness battery: the oracle must fire on a real scripted stall
//! (the canary — proof the detector is alive, not vacuously green) and
//! stay silent across the whole healthy protocol matrix (no false
//! positives). Plus the profiler's accounting invariant through a real
//! profiled run.

use std::sync::{Arc, Mutex};

use ahl::consensus::clients::OpenLoopClient;
use ahl::consensus::ibft::{build_ibft_group, IbftConfig};
use ahl::consensus::pbft::BftVariant;
use ahl::consensus::tendermint::{build_tm_group, TmConfig};
use ahl::consensus::stat;
use ahl::ledger::{kvstore, Op, TxId};
use ahl::simkit::adversary::FaultRule;
use ahl::simkit::{QueueConfig, SimDuration, SimTime, UniformNetwork};
use ahl::system::{run_system_report, SystemConfig, SystemWorkload};
use ahl::telemetry::{LivenessChecker, LivenessConfig, LivenessViolation};

fn kv_factory() -> ahl::consensus::OpFactory {
    let mut i = 0u64;
    Box::new(move |_rng| {
        i += 1;
        Op::Direct { txid: TxId(i), op: kvstore::kv_write(&[i % 64], 16) }
    })
}

fn small_cfg(variant: BftVariant, secs: u64) -> SystemConfig {
    let mut cfg = SystemConfig::new(2, 3);
    cfg.variant = variant;
    cfg.clients = 4;
    cfg.outstanding = 8;
    cfg.workload = SystemWorkload::SmallBank { accounts: 1_000, theta: 0.0 };
    cfg.duration = SimDuration::from_secs(secs);
    cfg.warmup = SimDuration::from_secs(1);
    cfg.batch_size = 20;
    cfg
}

// ---------------------------------------------------------------- canary --

/// **The canary.** A scripted partition isolates committee 0's replicas
/// from each other mid-run: demand keeps getting admitted at the entry
/// replicas but the committee can never form a quorum again, so the
/// oracle must report a commit stall / starvation implicating exactly
/// that committee — and the metrics and report must carry it.
#[test]
fn scripted_partition_trips_the_liveness_oracle() {
    let checker = LivenessChecker::new(LivenessConfig::default());
    let mut cfg = small_cfg(BftVariant::AhlPlus, 12);
    cfg.liveness = Some(checker.clone());
    // Committee 0 = nodes 0..3. Split every replica from every other:
    // {0} | {1,2} and {1} | {2} leaves no communicating pair, while the
    // clients still reach their entry replicas and keep offering demand.
    let cut = SimTime::ZERO + SimDuration::from_secs(2);
    cfg.faults = vec![
        FaultRule::partition(cut, SimTime::MAX, vec![0], vec![1, 2]),
        FaultRule::partition(cut, SimTime::MAX, vec![1], vec![2]),
    ];
    let report = run_system_report(cfg);

    assert!(!checker.ok(), "the stalled committee must trip the oracle");
    assert!(report.metrics.liveness_violations > 0);
    let violations = checker.violations();
    let stall = violations
        .iter()
        .find(|v| {
            matches!(
                v,
                LivenessViolation::CommitStall { .. } | LivenessViolation::MempoolStarvation { .. }
            ) && v.committee() == Some(0)
        })
        .unwrap_or_else(|| panic!("no stall/starvation on committee 0: {violations:?}"));
    // Dump-on-anomaly contract: the violation localises and names a probe
    // request whose lifecycle the harness can print.
    assert_eq!(stall.committee(), Some(0));
    assert!(stall.trace_id().is_some(), "stall must carry a probe id: {stall:?}");
    assert!(stall.summary().contains("committee 0"), "{}", stall.summary());
    // The rest of the system kept committing: this is a liveness hole in
    // one committee, not a dead simulation.
    assert!(report.metrics.committed > 0, "healthy shard must still commit");
}

// ----------------------------------------------------- clean-run matrix --

/// No false positives: every healthy PBFT variant of the assembled system
/// runs with the oracle attached and stays silent.
#[test]
fn clean_system_matrix_is_silent() {
    for variant in [BftVariant::Hl, BftVariant::Ahl, BftVariant::AhlPlus, BftVariant::Ahlr] {
        let checker = LivenessChecker::new(LivenessConfig::default());
        let mut cfg = small_cfg(variant, 6);
        cfg.liveness = Some(checker.clone());
        let report = run_system_report(cfg);
        assert!(
            checker.ok(),
            "{variant:?}: false positive: {:?}",
            checker.violations()
        );
        assert_eq!(report.metrics.liveness_violations, 0, "{variant:?}");
        assert!(report.metrics.committed > 100, "{variant:?}: dead run is vacuous");
    }
}

/// The oracle reads the same stamp stream IBFT emits (ingest → admit →
/// propose → commit → exec): a healthy single-committee IBFT run with the
/// sink installed by hand stays silent — and the check is non-vacuous
/// because the committee really committed.
#[test]
fn clean_ibft_run_is_silent() {
    let checker = LivenessChecker::new(LivenessConfig::default());
    let n = 4;
    checker.install_topology(1, n);
    let cfg = IbftConfig::new(n);
    let net = Box::new(UniformNetwork::new(SimDuration::from_micros(300)));
    let (mut sim, group) = build_ibft_group(&cfg, net, Some(1e9), 21);
    sim.stats_mut().set_trace_sink(Arc::new(Mutex::new(checker.clone())));
    let stop = SimTime::ZERO + SimDuration::from_secs(8);
    let client = OpenLoopClient::new(group, SimDuration::from_millis(3), stop, kv_factory());
    sim.add_actor(Box::new(client), QueueConfig::unbounded());
    let end = stop + SimDuration::from_secs(2);
    sim.run_until(end);
    checker.finish(end);
    assert!(checker.ok(), "IBFT false positive: {:?}", checker.violations());
    assert!(sim.stats().counter(stat::TXN_COMMITTED) > 20, "dead run is vacuous");
}

/// Same for Tendermint.
#[test]
fn clean_tendermint_run_is_silent() {
    let checker = LivenessChecker::new(LivenessConfig::default());
    let n = 4;
    checker.install_topology(1, n);
    let cfg = TmConfig::new(n);
    let net = Box::new(UniformNetwork::new(SimDuration::from_micros(300)));
    let (mut sim, group) = build_tm_group(&cfg, net, Some(1e9), 22);
    sim.stats_mut().set_trace_sink(Arc::new(Mutex::new(checker.clone())));
    let stop = SimTime::ZERO + SimDuration::from_secs(8);
    let client = OpenLoopClient::new(group, SimDuration::from_millis(3), stop, kv_factory());
    sim.add_actor(Box::new(client), QueueConfig::unbounded());
    let end = stop + SimDuration::from_secs(2);
    sim.run_until(end);
    checker.finish(end);
    assert!(checker.ok(), "Tendermint false positive: {:?}", checker.violations());
    assert!(sim.stats().counter(stat::TXN_COMMITTED) > 20, "dead run is vacuous");
}

// --------------------------------------------------------------- profiler --

/// A profiled full-system run produces a non-empty span table whose
/// attributed self time never exceeds the measured wall clock — the
/// invariant that makes the attribution table trustworthy.
#[test]
fn profiled_run_attribution_is_consistent() {
    let mut cfg = small_cfg(BftVariant::AhlPlus, 4);
    cfg.profile = true;
    let report = run_system_report(cfg);
    let profile = report.profile.expect("profile requested");
    assert!(!profile.is_empty(), "instrumented hot paths must have fired");
    assert!(
        profile.spans.iter().any(|s| s.name == "pbft.exec"),
        "consensus execution span missing: {:?}",
        profile.spans.iter().map(|s| s.name).collect::<Vec<_>>()
    );
    assert!(
        profile.self_total_ns() <= profile.wall_ns,
        "attributed {}ns exceeds wall {}ns",
        profile.self_total_ns(),
        profile.wall_ns
    );
    for s in &profile.spans {
        assert!(s.self_ns <= s.total_ns, "{}: self > total", s.name);
        assert!(s.count > 0, "{}: zero-count span", s.name);
    }
    // The rendered table is what lands in the experiments output.
    let table = profile.render();
    assert!(table.contains("host-time attribution"), "{table}");
    assert!(table.contains("pbft.exec"), "{table}");
}
