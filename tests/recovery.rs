//! Crash-kill recovery over the full stack (tier-1).
//!
//! These scenarios run a real PBFT committee with **real on-disk
//! persistence** (per-node WAL + page-backed checkpoints under a temp
//! dir) and kill nodes the hard way: scripted `Crash` messages and
//! injected I/O crashes at sampled WAL/page/manifest write sites (the
//! exhaustive per-site matrix lives at the `ahl-wal` layer in
//! `crates/wal/tests/recovery.rs`; here the same kill switch fires inside
//! a live committee). Every scenario must end with the restarted node
//! back in consensus, holding the committee's certified state, with zero
//! proof failures — and recovery must go through the *reopened* node
//! directory: durable checkpoint, WAL-tail replay, then diff sync for
//! the remainder.

use ahl::consensus::clients::OpenLoopClient;
use ahl::consensus::common::stat;
use ahl::consensus::harness::ControlScript;
use ahl::consensus::pbft::{build_group, BftVariant, PbftConfig, PbftMsg, Replica};
use ahl::consensus::CryptoMode;
use ahl::ledger::Value;
use ahl::net::ClusterNetwork;
use ahl::simkit::{QueueConfig, Sim, SimDuration, SimTime};
use ahl::wal::{TempDir, WalConfig};
use ahl::workload::SmallBankWorkload;

const ACCOUNTS: usize = 8;

/// A 5-node AHL+ committee persisting to `data_dir`, with SmallBank load
/// and bulk-state blobs, driven through a scripted fault schedule.
fn run_persistent_scenario(
    mut cfg: PbftConfig,
    data_dir: &std::path::Path,
    pad_keys: usize,
    load_until: u64,
    run_until: u64,
    schedule: Vec<(SimDuration, usize, PbftMsg)>,
    seed: u64,
) -> (Sim<PbftMsg>, Vec<usize>, i64) {
    cfg.crypto = CryptoMode::Real;
    cfg.batch_size = 16;
    cfg.batch_timeout = SimDuration::from_millis(5);
    cfg.data_dir = Some(data_dir.to_path_buf());
    let mut genesis = SmallBankWorkload::paper(ACCOUNTS, 0.0).genesis();
    let expected_balance: i64 = genesis
        .iter()
        .filter(|(k, _)| k.starts_with("ck_") || k.starts_with("sv_"))
        .filter_map(|(_, v)| v.as_int())
        .sum();
    for i in 0..pad_keys {
        genesis.push((format!("blob_{i}"), Value::Opaque { size: 40_000, tag: i as u64 }));
    }
    let (mut sim, group) =
        build_group(&cfg, Box::new(ClusterNetwork::new()), Some(1e9), &genesis, seed);
    let stop = SimTime::ZERO + SimDuration::from_secs(load_until);
    let client = OpenLoopClient::new(
        group.clone(),
        SimDuration::from_millis(2),
        stop,
        SmallBankWorkload::paper(ACCOUNTS, 0.0).factory(0),
    );
    sim.add_actor(Box::new(client), QueueConfig::unbounded());
    let script = ControlScript::new(
        schedule
            .into_iter()
            .map(|(at, idx, msg)| (at, group[idx], msg))
            .collect(),
    );
    sim.add_actor(Box::new(script), QueueConfig::unbounded());
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(run_until));
    (sim, group, expected_balance)
}

fn replica(sim: &Sim<PbftMsg>, id: usize) -> &Replica {
    sim.actor(id)
        .as_any()
        .and_then(|a| a.downcast_ref::<Replica>())
        .expect("replica actor")
}

/// The recovered node's ledger must agree with a healthy replica at the
/// same execution point, and the SmallBank money supply must be intact.
fn assert_recovered(sim: &Sim<PbftMsg>, group: &[usize], node: usize, expected_balance: i64) {
    let restarted = replica(sim, group[node]);
    assert!(restarted.exec_seq() > 0, "restarted replica executed nothing");
    let twin = group
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != node)
        .map(|(_, id)| replica(sim, *id))
        .find(|r| r.exec_seq() == restarted.exec_seq())
        .expect("restarted replica reaches a healthy peer's exec point");
    assert_eq!(
        twin.state().state_digest(),
        restarted.state().state_digest(),
        "recovered state must match the committee's"
    );
    let balance: i64 = restarted
        .state()
        .iter()
        .filter(|(k, _)| k.starts_with("ck_") || k.starts_with("sv_"))
        .filter_map(|(_, v)| v.as_int())
        .sum();
    assert_eq!(balance, expected_balance, "funds conserved through recovery");
}

/// Baseline: a crash + restart recovers through the *disk* — durable
/// checkpoint from the manifest, WAL-tail replay past it, then an
/// incremental (diff) sync for what the committee committed while the
/// node was dark. Zero proof failures, state and funds intact.
#[test]
fn restart_recovers_from_reopened_node_dir() {
    let dir = TempDir::new("recovery-basic");
    let mut cfg = PbftConfig::new(BftVariant::AhlPlus, 5);
    // ~200 blocks/s with 5 ms flushes: a 2 s dark window spans ~4
    // checkpoint intervals — inside the 8-cert retention window, so the
    // durable root stays diff-anchorable on every peer.
    cfg.checkpoint_interval = 100;
    cfg.sync_chunk_target = 64;
    let (sim, group, expected) = run_persistent_scenario(
        cfg,
        dir.path(),
        120,
        6,
        10,
        vec![
            (SimDuration::from_secs(2), 3, PbftMsg::Crash),
            (SimDuration::from_secs(4), 3, PbftMsg::Restart),
        ],
        42,
    );
    let stats = sim.stats();
    // Persistence really ran: batches journaled, checkpoints persisted,
    // and consecutive checkpoints shared pages on disk.
    assert!(stats.counter(stat::WAL_BATCHES) > 50, "batches journaled");
    assert!(stats.counter(stat::WAL_CHECKPOINTS) > 5, "checkpoints persisted");
    assert!(
        stats.counter(stat::WAL_PAGES_SHARED) > 0,
        "consecutive checkpoints share pages"
    );
    // Recovery went through the disk: the WAL tail replayed batches the
    // checkpoint had not folded in yet...
    assert!(
        stats.counter(stat::WAL_REPLAYED) >= 1,
        "restart must replay the WAL tail: {}",
        stats.counter(stat::WAL_REPLAYED)
    );
    assert_eq!(stats.counter(stat::WAL_REPLAY_MISMATCHES), 0);
    assert_eq!(stats.counter(stat::WAL_REOPEN_FAILURES), 0);
    // ...and the rest arrived by incremental sync with clean proofs — no
    // full re-fetch (peers retain the recovered root).
    assert!(stats.counter(stat::SYNC_DIFFS) >= 1, "recovery should be incremental");
    assert_eq!(stats.counter(stat::SYNC_DIFF_FALLBACKS), 0);
    assert_eq!(stats.counter(stat::SYNC_PROOF_FAILURES), 0);
    assert_recovered(&sim, &group, 3, expected);
}

/// Kill-point sampling inside the live committee: the shared kill switch
/// fires at a WAL/page/manifest write site of whichever replica gets
/// there first; that replica treats it as a crash and goes dark. A
/// scripted restart then recovers every node (restarting a healthy node
/// is defined behaviour: it, too, reopens its directory). Afterwards the
/// committee must be live again with certified state and no proof
/// failures, for every sampled site.
#[test]
fn injected_io_crashes_at_sampled_kill_points_recover() {
    // Sites chosen to land in different write classes as the run unfolds:
    // the first WAL record writes, the first checkpoint's page burst, a
    // manifest publish, and deep steady state.
    for site in [0u64, 7, 120, 800, 2500] {
        let dir = TempDir::new("recovery-kill");
        let mut cfg = PbftConfig::new(BftVariant::AhlPlus, 5);
        cfg.checkpoint_interval = 100;
        cfg.sync_chunk_target = 64;
        cfg.wal = WalConfig::default();
        cfg.wal.kill.arm(site);
        let kill = cfg.wal.kill.clone();
        // Every node gets a restart at t = 5 s: the crashed one (whichever
        // hit the armed site) recovers from disk; the healthy ones reopen
        // their directories too and re-join via sync.
        let schedule = (0..5)
            .map(|i| (SimDuration::from_secs(5), i, PbftMsg::Restart))
            .collect();
        let (sim, group, expected) =
            run_persistent_scenario(cfg, dir.path(), 60, 8, 12, schedule, 42 + site);
        let stats = sim.stats();
        assert!(kill.fired(), "site {site} must be reached during the run");
        assert_eq!(
            stats.counter(stat::WAL_IO_CRASHES),
            1,
            "site {site}: exactly one injected I/O crash"
        );
        assert_eq!(stats.counter(stat::SYNC_PROOF_FAILURES), 0, "site {site}");
        assert_eq!(stats.counter(stat::WAL_REPLAY_MISMATCHES), 0, "site {site}");
        // The committee recovered and kept committing after the restarts.
        let max_exec = group.iter().map(|&id| replica(&sim, id).exec_seq()).max().unwrap();
        assert!(max_exec > 0, "site {site}: committee must make progress");
        // Every replica that reached the top executed identical state.
        for node in 0..5 {
            if replica(&sim, group[node]).exec_seq() == max_exec {
                assert_recovered(&sim, &group, node, expected);
            }
        }
    }
}

/// Byte-budgeted snapshot retention: with a tiny `snapshot_max_bytes`,
/// replicas evict retained snapshots under memory pressure — but the
/// durable checkpoint stays pinned, so a restarted node still diff-syncs
/// from its reopened durable root.
#[test]
fn snapshot_byte_budget_evicts_but_durable_survives() {
    let dir = TempDir::new("recovery-budget");
    let mut cfg = PbftConfig::new(BftVariant::AhlPlus, 5);
    cfg.checkpoint_interval = 100;
    cfg.sync_chunk_target = 64;
    // A 1-byte budget squeezes the window to its pinned floor (newest +
    // durable) at every checkpoint — maximal memory pressure. The dark
    // window is kept inside one squeezed window (~2 certs) so the
    // crashed node's durable root is still retained by its peers.
    cfg.snapshot_max_bytes = 1;
    let (sim, group, expected) = run_persistent_scenario(
        cfg,
        dir.path(),
        120,
        6,
        10,
        vec![
            (SimDuration::from_secs(2), 3, PbftMsg::Crash),
            (SimDuration::from_millis(2_500), 3, PbftMsg::Restart),
        ],
        43,
    );
    let stats = sim.stats();
    assert!(
        stats.counter(stat::SNAPSHOT_EVICTIONS) > 0,
        "the byte budget must evict snapshots"
    );
    // Recovery still works from the pinned durable checkpoint: the node
    // resumed at its reopened durable root + WAL tail and caught the rest
    // up (with this short dark window, usually a cheap block-tail replay;
    // under a longer one, a chunked sync) — never with a proof failure.
    assert!(stats.counter(stat::WAL_REPLAYED) >= 1, "resumed from the reopened checkpoint");
    assert!(
        stats.counter(stat::SYNC_TAILS)
            + stats.counter(stat::SYNC_COMPLETED)
            + stats.counter(stat::SYNC_DIFFS)
            >= 1,
        "recovery must complete an exchange"
    );
    assert_eq!(stats.counter(stat::SYNC_PROOF_FAILURES), 0);
    assert_recovered(&sim, &group, 3, expected);
}

/// 2PC traffic through the WAL: prepared/committed/aborted transactions
/// journal `TwoPc` transition records alongside their batches. After a
/// crash + restart, tail replay must cross-check cleanly against that
/// journal — including the journal records of pre-checkpoint batches the
/// two-generation WAL retention leaves in front of the tail (those are
/// skipped, not flagged as mismatches).
#[test]
fn twopc_journal_replays_cleanly() {
    use ahl::ledger::{Mutation, Op, StateOp, TxId};

    let dir = TempDir::new("recovery-2pc");
    let mut cfg = PbftConfig::new(BftVariant::AhlPlus, 5);
    cfg.crypto = CryptoMode::Real;
    cfg.batch_size = 16;
    cfg.batch_timeout = SimDuration::from_millis(5);
    cfg.checkpoint_interval = 100;
    cfg.sync_chunk_target = 64;
    cfg.data_dir = Some(dir.path().to_path_buf());
    let genesis: Vec<(String, Value)> =
        (0..16).map(|i| (format!("acc{i}"), Value::Int(1_000))).collect();
    let (mut sim, group) = build_group(
        &cfg,
        Box::new(ClusterNetwork::new()),
        Some(1e9),
        &genesis,
        42,
    );
    let stop = SimTime::ZERO + SimDuration::from_secs(6);
    // Prepare/decide pairs: every transaction exercises the 2PC journal
    // (prepare acquires locks; commit or abort resolves them).
    let mut i = 0u64;
    let factory: ahl::consensus::common::OpFactory = Box::new(move |_rng| {
        i += 1;
        let txid = TxId(1_000_000 + i / 3);
        match i % 3 {
            0 => Op::Prepare {
                txid,
                op: StateOp {
                    conditions: vec![],
                    mutations: vec![(
                        format!("acc{}", i % 16),
                        Mutation::Add(1),
                    )],
                },
            },
            1 if i % 6 == 1 => Op::Abort { txid },
            _ => Op::Commit { txid },
        }
    });
    let client =
        OpenLoopClient::new(group.clone(), SimDuration::from_millis(2), stop, factory);
    sim.add_actor(Box::new(client), QueueConfig::unbounded());
    let script = ControlScript::new(vec![
        (SimDuration::from_secs(2), group[3], PbftMsg::Crash),
        (SimDuration::from_secs(4), group[3], PbftMsg::Restart),
    ]);
    sim.add_actor(Box::new(script), QueueConfig::unbounded());
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(10));

    let stats = sim.stats();
    assert!(stats.counter(stat::WAL_REPLAYED) >= 1, "tail replayed");
    assert_eq!(
        stats.counter(stat::WAL_REPLAY_MISMATCHES),
        0,
        "a clean 2PC journal must replay without mismatches"
    );
    assert_eq!(stats.counter(stat::SYNC_PROOF_FAILURES), 0);
    let restarted = replica(&sim, group[3]);
    assert!(restarted.exec_seq() > 0);
    let twin = group
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != 3)
        .map(|(_, id)| replica(&sim, *id))
        .find(|r| r.exec_seq() == restarted.exec_seq())
        .expect("recovered node reaches a peer's exec point");
    assert_eq!(twin.state().state_digest(), restarted.state().state_digest());
}

/// The assembled sharded system (shard committees + reference committee +
/// cross-shard 2PC clients) runs with real per-node persistence: every
/// replica journals and checkpoints under its own node directory, and the
/// run's conservation audit still holds. This is the `run_system` wiring
/// of the subsystem — per-node data dirs across *multiple* committees in
/// one simulation.
#[test]
fn sharded_system_runs_on_disk() {
    use ahl::system::{run_system, SystemConfig, SystemWorkload};

    let dir = TempDir::new("recovery-system");
    let mut cfg = SystemConfig::new(2, 3);
    cfg.clients = 4;
    cfg.outstanding = 8;
    cfg.workload = SystemWorkload::SmallBank { accounts: 1_000, theta: 0.0 };
    cfg.duration = SimDuration::from_secs(4);
    cfg.warmup = SimDuration::from_secs(1);
    cfg.batch_size = 20;
    cfg.data_dir = Some(dir.path().to_path_buf());
    let m = run_system(cfg);
    assert!(m.committed > 200, "committed {}", m.committed);
    assert_eq!(m.proof_failures, 0);
    assert!(m.final_balance.is_some(), "conservation audit ran");
    // Every replica of every committee (2 shards + reference = 9 nodes)
    // created and used its node directory.
    let node_dirs = std::fs::read_dir(dir.path())
        .expect("data dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("node-"))
        .count();
    assert_eq!(node_dirs, 9, "one directory per replica");
    for entry in std::fs::read_dir(dir.path()).expect("data dir") {
        let path = entry.expect("entry").path();
        assert!(path.join("MANIFEST").exists(), "{path:?} published a checkpoint");
        assert!(path.join("wal").exists() && path.join("pages").exists());
    }
}

/// Long-soak restart storm *under attack*: a rotating minority of honest
/// replicas is repeatedly killed and restarted (recovering through their
/// reopened node directories each time) while one Byzantine replica
/// double-votes every proposal it sees (the equivocation-collusion
/// attack). The committee must stay safe the whole way — the global
/// SafetyChecker observes every honest commit, execution, and 2PC
/// resolution across every restart lineage — and goodput must recover
/// after the storm ends.
#[test]
fn restart_storm_with_equivocator_stays_safe_and_recovers() {
    use ahl::consensus::adversary::{Attack, SafetyChecker};
    use ahl::consensus::stat as cstat;

    let dir = TempDir::new("recovery-storm");
    let checker = SafetyChecker::new();
    let mut cfg = PbftConfig::new(BftVariant::Hl, 5);
    cfg.checkpoint_interval = 100;
    cfg.sync_chunk_target = 64;
    cfg.byzantine = 1;
    cfg.byzantine_set = Some(vec![4]); // a colluding double-voter
    cfg.attack = Attack::Equivocate;
    cfg.safety = Some(checker.clone());
    // A crashed *leader* must be deposed well inside the storm cadence,
    // or the committee idles out the rest of the run waiting on it.
    cfg.vc_timeout = SimDuration::from_millis(400);
    // Rotating-minority storm: nodes 1, 2, 3 die and recover in turn;
    // node 1 goes down twice. At most one honest replica is dark at a
    // time, so the quorum of 3 honest live replicas always exists.
    let storm = vec![
        (SimDuration::from_millis(2_000), 1, PbftMsg::Crash),
        (SimDuration::from_millis(3_500), 1, PbftMsg::Restart),
        (SimDuration::from_millis(4_000), 2, PbftMsg::Crash),
        (SimDuration::from_millis(5_500), 2, PbftMsg::Restart),
        (SimDuration::from_millis(6_000), 3, PbftMsg::Crash),
        (SimDuration::from_millis(7_500), 3, PbftMsg::Restart),
        (SimDuration::from_millis(8_000), 1, PbftMsg::Crash),
        (SimDuration::from_millis(9_500), 1, PbftMsg::Restart),
    ];
    let (sim, group, expected) =
        run_persistent_scenario(cfg, dir.path(), 60, 12, 16, storm, 45);
    let stats = sim.stats();
    // The storm really happened, and recovery went through the disk.
    assert_eq!(stats.counter("sync.crashes"), 4);
    assert_eq!(stats.counter("sync.restarts"), 4);
    assert!(stats.counter(cstat::WAL_REPLAYED) >= 1, "WAL tails replayed");
    // The Byzantine replica also corrupts any sync chunks it serves;
    // recovering nodes must detect every tampered chunk (counted as a
    // proof failure) and complete recovery from honest peers anyway —
    // so proof failures are *allowed* here, unverified state is not.
    assert_eq!(stats.counter(cstat::WAL_REPLAY_MISMATCHES), 0);
    // Safety under the combined adversary: every honest commit agreed,
    // nothing executed twice within a lineage, 2PC stayed atomic.
    checker.assert_clean();
    assert!(checker.commit_records() > 0, "the checker observed the run");
    // Goodput recovered once the storm ended: commits flow in the
    // post-storm window (storm ends at 9.5 s, load runs to 12 s).
    let post_storm = stats.rate_in_window(
        cstat::COMMIT_SERIES,
        SimTime::ZERO + SimDuration::from_secs(10),
        SimTime::ZERO + SimDuration::from_secs(12),
    );
    assert!(post_storm > 50.0, "post-storm goodput {post_storm:.0} tps");
    // And the survivors agree on the ledger, funds intact.
    assert_recovered(&sim, &group, 1, expected);
    assert_recovered(&sim, &group, 2, expected);
    assert_recovered(&sim, &group, 3, expected);
}

/// Multi-root advertisement: two replicas crash and restart staggered, so
/// one recovering node may ask a peer that itself just restarted (whose
/// snapshot window holds only its own durable checkpoint). Because
/// requests advertise the *whole* retained window, any shared root can
/// anchor the diff — both recoveries stay incremental with no fallback.
#[test]
fn staggered_restarts_both_diff_sync() {
    let dir = TempDir::new("recovery-staggered");
    let mut cfg = PbftConfig::new(BftVariant::AhlPlus, 5);
    cfg.checkpoint_interval = 100;
    cfg.sync_chunk_target = 64;
    let (sim, group, expected) = run_persistent_scenario(
        cfg,
        dir.path(),
        120,
        8,
        12,
        vec![
            (SimDuration::from_secs(2), 3, PbftMsg::Crash),
            (SimDuration::from_secs(3), 1, PbftMsg::Crash),
            (SimDuration::from_secs(4), 3, PbftMsg::Restart),
            (SimDuration::from_secs(6), 1, PbftMsg::Restart),
        ],
        44,
    );
    let stats = sim.stats();
    assert!(
        stats.counter(stat::SYNC_DIFFS) >= 2,
        "both restarts should sync incrementally: {}",
        stats.counter(stat::SYNC_DIFFS)
    );
    assert_eq!(stats.counter(stat::SYNC_PROOF_FAILURES), 0);
    assert_eq!(stats.counter(stat::SYNC_DIFF_FALLBACKS), 0);
    assert_recovered(&sim, &group, 3, expected);
    assert_recovered(&sim, &group, 1, expected);
}
