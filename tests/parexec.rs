//! The `parallel ≡ sequential` determinism battery (tier-1).
//!
//! Parallel in-shard execution must be observably identical to the
//! sequential loop at every worker count: same receipts, same state root,
//! same lock table, same 2PC bookkeeping, same checkpoint certificates —
//! down to the flight-recorder event stream of a full system run. These
//! tests pin that contract for `exec_workers ∈ {2, 4, 8}` over random
//! mixed batches and a whole sharded system.

use ahl::ledger::{
    execute_ops, lock_key, Condition, Mutation, Op, StateOp, StateStore, TxId, Value,
};
use ahl::simkit::SimDuration;
use ahl::system::{run_system_report, SystemConfig, SystemWorkload};

const ACCOUNTS: u64 = 24;

fn account(i: u64) -> String {
    format!("acct{}", i % ACCOUNTS)
}

fn seeded_store() -> StateStore {
    let mut s = StateStore::new();
    for i in 0..ACCOUNTS {
        s.put(account(i), Value::Int(500));
    }
    s
}

/// Decode one generated tuple into an operation. Kinds cover the whole
/// `Op` surface: direct transfers, the 2PC lifecycle (prepare / commit /
/// abort, including decisions for transactions that never prepared),
/// reads (of live keys and lock markers), and no-ops.
fn build_op(kind: u8, a: u64, b: u64, amt: i64, txid: u64) -> Op {
    let transfer = StateOp {
        conditions: vec![Condition::IntAtLeast { key: account(a), min: amt }],
        mutations: vec![
            (account(a), Mutation::Add(-amt)),
            (account(b), Mutation::Add(amt)),
        ],
    };
    match kind {
        0 => Op::Direct { txid: TxId(1_000 + txid), op: transfer },
        1 => Op::Prepare { txid: TxId(txid), op: transfer },
        2 => Op::Commit { txid: TxId(txid) },
        3 => Op::Abort { txid: TxId(txid) },
        4 => Op::Read { txid: TxId(2_000 + txid), keys: vec![account(a), lock_key(&account(b))] },
        5 => Op::Direct {
            txid: TxId(3_000 + txid),
            op: StateOp {
                conditions: vec![],
                mutations: vec![(account(a), Mutation::Set(Value::Int(amt)))],
            },
        },
        _ => Op::Noop,
    }
}

/// Execute `ops` sequentially and at `workers`, asserting every
/// observable output matches: the receipt stream, the per-abort pending
/// signal, the authenticated state root (which covers the lock table —
/// lock markers are SMT keys), the explicit lock table, and the 2PC
/// sidecar.
fn assert_parallel_equals_sequential(ops: &[Op], workers: usize) {
    let refs: Vec<&Op> = ops.iter().collect();
    let mut seq = seeded_store();
    let mut par = seeded_store();
    let seq_out = execute_ops(&mut seq, &refs, 1);
    let par_out = execute_ops(&mut par, &refs, workers);
    assert_eq!(seq_out.len(), par_out.len());
    for (i, (a, b)) in seq_out.iter().zip(&par_out).enumerate() {
        assert_eq!(a.receipt, b.receipt, "receipt {i} diverged at workers={workers}");
        assert_eq!(a.had_pending, b.had_pending, "had_pending {i} diverged");
    }
    assert_eq!(seq.state_digest(), par.state_digest(), "state root diverged");
    for i in 0..ACCOUNTS {
        assert_eq!(
            seq.is_locked(&account(i)),
            par.is_locked(&account(i)),
            "lock table diverged on {}",
            account(i)
        );
    }
    assert_eq!(seq.pending_count(), par.pending_count());
    assert_eq!(seq.resolved_count(), par.resolved_count());
    assert_eq!(seq.take_write_bytes(), par.take_write_bytes());
    assert_eq!(seq.export_sidecar().wire_size(), par.export_sidecar().wire_size());
}

proptest::proptest! {
    #[test]
    fn random_mixed_batches_parallel_equals_sequential(
        batch in proptest::collection::vec(
            (0u8..7, 0u64..ACCOUNTS, 0u64..ACCOUNTS, 1i64..60, 0u64..24),
            1..80,
        ),
    ) {
        let ops: Vec<Op> = batch
            .into_iter()
            .map(|(kind, a, b, amt, txid)| build_op(kind, a, b, amt, txid))
            .collect();
        for workers in [2usize, 4, 8] {
            assert_parallel_equals_sequential(&ops, workers);
        }
    }
}

/// The lock table after a batch that leaves prepares outstanding is
/// identical in both modes — including which of several same-key
/// prepares won the lock.
#[test]
fn outstanding_locks_identical_across_modes() {
    let mut ops = Vec::new();
    for i in 0..12u64 {
        // Three prepares race for each account pair; exactly one wins.
        for j in 0..3u64 {
            ops.push(build_op(1, i, i + 1, 5, 10 * i + j));
        }
    }
    // Decide a few, leave the rest locked.
    for i in 0..6u64 {
        ops.push(build_op(if i % 2 == 0 { 2 } else { 3 }, 0, 0, 0, 10 * i));
    }
    for workers in [2usize, 4, 8] {
        assert_parallel_equals_sequential(&ops, workers);
    }
}

/// Full-system equivalence: a sharded run at `exec_workers = 4` produces
/// the *same flight-recorder event stream* as the sequential run — every
/// commit, checkpoint, and 2PC phase stamp at the same simulated time on
/// the same node — and its checkpoint-time re-hash audits all pass.
#[test]
fn system_run_identical_across_exec_workers() {
    let run = |workers: usize| {
        let mut cfg = SystemConfig::new(2, 3);
        cfg.clients = 4;
        cfg.outstanding = 16;
        cfg.workload = SystemWorkload::SmallBank { accounts: 1_000, theta: 0.0 };
        cfg.duration = SimDuration::from_secs(4);
        cfg.warmup = SimDuration::from_secs(1);
        cfg.batch_size = 20;
        cfg.exec_workers = workers;
        cfg.seed = 13;
        let report = run_system_report(cfg);
        let certs = report.stats.counter(ahl::consensus::stat::CKPT_CERTS);
        let audit_failures =
            report.stats.counter(ahl::consensus::stat::CKPT_AUDIT_FAILURES);
        (
            report.stats.recorder().fingerprint(),
            report.metrics.committed,
            report.metrics.final_balance,
            certs,
            audit_failures,
        )
    };
    let seq = run(1);
    let par = run(4);
    assert!(seq.1 > 0, "system run committed nothing");
    assert!(seq.3 > 0, "no checkpoint certificates formed — weaken the run parameters");
    assert_eq!(par.4, 0, "checkpoint re-hash audit failed under parallel execution");
    assert_eq!(seq, par, "exec_workers leaked into the simulated run");
}
