//! The full epoch pipeline of §5: beacon randomness → committee sizing →
//! assignment → batched transition plan, with the Equation 2 safety bound
//! and the B ≤ f liveness rule checked end-to-end.

use ahl::net::ClusterNetwork;
use ahl::shard::{
    batch_preserves_liveness, faulty_committee_prob, paper_batch_size, paper_l_bits,
    plan_transition, reconfig_failure_prob, run_beacon, Assignment, LnFact, Resilience,
};
use ahl::simkit::SimDuration;

#[test]
fn epoch_transition_end_to_end() {
    let total = 200;
    let s = 0.2;
    let lf = LnFact::new(total + 1);

    // Committee size from Equation 1.
    let n = ahl::shard::min_committee_size(&lf, total, s, Resilience::OneHalf, 20.0)
        .expect("formable at 20%");
    let k = total / n;
    assert!(k >= 2, "need multiple committees for a transition");

    // Two consecutive epochs of beacon randomness.
    let rnd1 = run_beacon(
        total,
        paper_l_bits(total),
        SimDuration::from_secs(2),
        Box::new(ClusterNetwork::new()),
        Some(1e9),
        1,
    )
    .rnd;
    let rnd2 = run_beacon(
        total,
        paper_l_bits(total),
        SimDuration::from_secs(2),
        Box::new(ClusterNetwork::new()),
        Some(1e9),
        2,
    )
    .rnd;
    assert_ne!(rnd1, rnd2, "epochs draw fresh randomness");

    let old = Assignment::derive(k * n, k, rnd1);
    let new = Assignment::derive(k * n, k, rnd2);

    // The paper's batch size respects liveness and keeps Equation 2 small.
    let b = paper_batch_size(n);
    assert!(batch_preserves_liveness(n, b, Resilience::OneHalf));
    let p_transition = reconfig_failure_prob(&lf, total, s, n, k, b, Resilience::OneHalf);
    let p_static = faulty_committee_prob(&lf, total, s, n, Resilience::OneHalf);
    assert!(p_transition < 1e-3, "transition exposure {p_transition}");
    assert!(p_transition >= p_static, "transition cannot be safer than static");

    // The plan moves every transitioning node exactly once, ≤ B per
    // committee per step.
    let steps = plan_transition(&old, &new, b);
    let moved: usize = steps.iter().map(|st| st.moves.len()).sum();
    assert_eq!(moved, old.transitioning(&new).len());
    for st in &steps {
        let mut out = vec![0usize; k];
        for (_, from, _) in &st.moves {
            out[*from] += 1;
        }
        assert!(out.iter().all(|&c| c <= b));
    }
}

#[test]
fn beacon_rand_changes_assignment_materially() {
    // An adaptive adversary gains nothing from epoch e's layout: the next
    // epoch reshuffles ~ (k-1)/k of all nodes.
    let a = Assignment::derive(120, 4, 111);
    let b = Assignment::derive(120, 4, 222);
    let moved = a.transitioning(&b).len();
    assert!(moved > 120 / 2, "only {moved} of 120 moved");
}
