//! End-to-end integration tests spanning the whole workspace: the full
//! sharded system with real consensus, cross-shard 2PC, reconfiguration
//! and deterministic replay.

use ahl::consensus::harness::NetChoice;
use ahl::simkit::SimDuration;
use ahl::system::{
    run_scale_out, run_system, ScaleOutConfig, SystemConfig, SystemMetrics, SystemWorkload,
};

fn small_system(seed: u64) -> SystemMetrics {
    let mut cfg = SystemConfig::new(3, 3);
    cfg.clients = 6;
    cfg.outstanding = 16;
    cfg.workload = SystemWorkload::SmallBank { accounts: 3_000, theta: 0.0 };
    cfg.duration = SimDuration::from_secs(6);
    cfg.warmup = SimDuration::from_secs(2);
    cfg.batch_size = 20;
    cfg.seed = seed;
    run_system(cfg)
}

#[test]
fn full_system_commits_cross_shard_transactions() {
    let m = small_system(1);
    assert!(m.committed > 300, "committed {}", m.committed);
    assert!(m.cross_shard_fraction > 0.4, "cross-shard {}", m.cross_shard_fraction);
    assert!(m.abort_rate < 0.25, "abort rate {}", m.abort_rate);
    assert_eq!(m.view_changes, 0, "fault-free run must not view-change");
}

#[test]
fn runs_are_deterministic_per_seed() {
    let a = small_system(7);
    let b = small_system(7);
    assert_eq!(a.committed, b.committed);
    assert_eq!(a.aborted, b.aborted);
    assert_eq!(a.latency_mean, b.latency_mean);
}

#[test]
fn different_seeds_differ() {
    let a = small_system(7);
    let b = small_system(8);
    // Identical totals across different seeds would indicate the seed is
    // ignored somewhere.
    assert!(a.committed != b.committed || a.aborted != b.aborted);
}

#[test]
fn scale_out_adds_throughput_on_gcp() {
    let mut one = ScaleOutConfig::new(1, 3);
    one.net = NetChoice::Gcp { regions: 4 };
    one.clients_per_shard = 2;
    one.outstanding = 48;
    one.duration = SimDuration::from_secs(6);
    one.warmup = SimDuration::from_secs(2);
    let m1 = run_scale_out(&one);

    let mut three = one.clone();
    three.shards = 3;
    let m3 = run_scale_out(&three);

    assert!(m1.total_tps > 20.0, "single shard tps {}", m1.total_tps);
    assert!(
        m3.total_tps > 2.0 * m1.total_tps,
        "1 shard {} vs 3 shards {}",
        m1.total_tps,
        m3.total_tps
    );
}

#[test]
fn kvstore_workload_runs_through_the_system() {
    let mut cfg = SystemConfig::new(3, 3);
    cfg.clients = 4;
    cfg.outstanding = 16;
    cfg.workload = SystemWorkload::KvStore { keys: 5_000, ops_per_txn: 3 };
    cfg.duration = SimDuration::from_secs(5);
    cfg.warmup = SimDuration::from_secs(2);
    cfg.batch_size = 20;
    let m = run_system(cfg);
    assert!(m.committed > 200, "committed {}", m.committed);
    // 3-update transactions over 3 shards are cross-shard ~89% of the time
    // (Appendix B: 1 - k^(1-d) = 1 - 1/9).
    assert!(m.cross_shard_fraction > 0.7, "cross-shard {}", m.cross_shard_fraction);
}
