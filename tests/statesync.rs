//! System-level state-sync battery (tier-1).
//!
//! Crash/recovery scenarios over the full PBFT + store stack: mid-transfer
//! certificate rotation (re-anchor), Byzantine chunk servers (tampered
//! chunks rejected per proof, recovery completes from honest peers),
//! diff-vs-full equivalence, a crash in the middle of an incremental
//! transfer, and the bounded-growth regression test for the
//! executed-request replay cache.

use ahl::consensus::clients::OpenLoopClient;
use ahl::consensus::common::stat;
use ahl::consensus::harness::ControlScript;
use ahl::consensus::pbft::{build_group, BftVariant, PbftConfig, PbftMsg, Replica};
use ahl::consensus::CryptoMode;
use ahl::ledger::Value;
use ahl::net::ClusterNetwork;
use ahl::simkit::{QueueConfig, Sim, SimDuration, SimTime};
use ahl::workload::SmallBankWorkload;

const ACCOUNTS: usize = 8;

/// A 5-node AHL+ committee with `pad_keys` bulk-state blobs of `pad_bytes`
/// each, SmallBank load until `load_until`, and a scripted fault schedule.
fn run_scenario(
    mut cfg: PbftConfig,
    pad_keys: usize,
    pad_bytes: u64,
    load_until: u64,
    run_until: u64,
    schedule: Vec<(SimDuration, usize, PbftMsg)>,
    seed: u64,
) -> (Sim<PbftMsg>, Vec<usize>, i64) {
    cfg.crypto = CryptoMode::Real;
    cfg.batch_size = 16;
    cfg.batch_timeout = SimDuration::from_millis(5);
    let mut genesis = SmallBankWorkload::paper(ACCOUNTS, 0.0).genesis();
    let expected_balance: i64 = genesis
        .iter()
        .filter(|(k, _)| k.starts_with("ck_") || k.starts_with("sv_"))
        .filter_map(|(_, v)| v.as_int())
        .sum();
    for i in 0..pad_keys {
        genesis.push((format!("blob_{i}"), Value::Opaque { size: pad_bytes, tag: i as u64 }));
    }
    let (mut sim, group) =
        build_group(&cfg, Box::new(ClusterNetwork::new()), Some(1e9), &genesis, seed);
    let stop = SimTime::ZERO + SimDuration::from_secs(load_until);
    let client = OpenLoopClient::new(
        group.clone(),
        SimDuration::from_millis(2),
        stop,
        SmallBankWorkload::paper(ACCOUNTS, 0.0).factory(0),
    );
    sim.add_actor(Box::new(client), QueueConfig::unbounded());
    let script = ControlScript::new(
        schedule
            .into_iter()
            .map(|(at, idx, msg)| (at, group[idx], msg))
            .collect(),
    );
    sim.add_actor(Box::new(script), QueueConfig::unbounded());
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(run_until));
    (sim, group, expected_balance)
}

fn replica(sim: &Sim<PbftMsg>, id: usize) -> &Replica {
    sim.actor(id)
        .as_any()
        .and_then(|a| a.downcast_ref::<Replica>())
        .expect("replica actor")
}

/// The recovered node's ledger must byte-match a healthy replica's at the
/// same execution point, and the SmallBank balances must be conserved.
fn assert_recovered(sim: &Sim<PbftMsg>, group: &[usize], node: usize, expected_balance: i64) {
    let restarted = replica(sim, group[node]);
    let max_exec = group.iter().map(|&id| replica(sim, id).exec_seq()).max().unwrap();
    assert!(
        restarted.exec_seq() + 32 >= max_exec && max_exec > 0,
        "node {} stuck at {} vs committee {}",
        node,
        restarted.exec_seq(),
        max_exec
    );
    let twin = group
        .iter()
        .filter(|&&id| id != group[node])
        .map(|&id| replica(sim, id))
        .find(|r| r.exec_seq() == restarted.exec_seq());
    if let Some(twin) = twin {
        assert_eq!(
            twin.state().state_digest(),
            restarted.state().state_digest(),
            "recovered state must match the committee's"
        );
    }
    let balance: i64 = restarted
        .state()
        .iter()
        .filter(|(k, _)| k.starts_with("ck_") || k.starts_with("sv_"))
        .filter_map(|(_, v)| v.as_int())
        .sum();
    assert_eq!(balance, expected_balance, "balances conserved through recovery");
}

/// Certificates rotate faster than the (deliberately slow, sequential,
/// full) transfer completes: the serving snapshot ages out mid-transfer,
/// the server Nacks, and the requester re-anchors on the newer certificate
/// — repeatedly, until load stops and a full attempt fits. Recovery must
/// still land on an intact, committee-identical state with zero proof
/// failures.
#[test]
fn mid_transfer_cert_rotation_reanchors() {
    let mut cfg = PbftConfig::new(BftVariant::AhlPlus, 5);
    cfg.checkpoint_interval = 64; // ≈1 s of blocks: certs rotate fast
    cfg.snapshot_retention = 2; // minimal window: rotation evicts quickly
    cfg.sync_chunk_target = 64;
    cfg.sync_fanout = 1; // sequential fetch: one 1 Gbps uplink
    cfg.diff_sync = false; // force the full-length transfer
    // 500 MB of state ≈ 4 s on one uplink, far beyond the ≈2 s window.
    let (sim, group, expected) = run_scenario(
        cfg,
        1_000,
        500_000,
        14,
        30,
        vec![
            (SimDuration::from_secs(4), 3, PbftMsg::Crash),
            (SimDuration::from_secs(7), 3, PbftMsg::Restart),
        ],
        7,
    );
    let stats = sim.stats();
    assert!(
        stats.counter(stat::SYNC_REANCHORS) >= 1,
        "transfer slower than cert rotation must re-anchor at least once"
    );
    assert!(stats.counter(stat::SYNC_COMPLETED) >= 1);
    assert_eq!(stats.counter(stat::SYNC_PROOF_FAILURES), 0);
    assert_recovered(&sim, &group, 3, expected);
}

/// A Byzantine committee member corrupts every chunk it serves. The
/// requester's per-chunk proof check rejects each tampered chunk against
/// the certified root and re-fetches it from an honest peer: recovery
/// completes, and the recovered state is the committee's, not the
/// attacker's.
#[test]
fn tampered_chunks_rejected_and_recovery_completes() {
    let mut cfg = PbftConfig::new(BftVariant::AhlPlus, 5);
    cfg.byzantine = 1; // node 4 serves corrupted chunks
    cfg.checkpoint_interval = 64;
    cfg.sync_chunk_target = 16; // many chunks: the rotation hits node 4
    cfg.diff_sync = false; // fetch everything: maximal attack surface
    let (sim, group, expected) = run_scenario(
        cfg,
        200,
        100_000,
        12,
        24,
        vec![
            (SimDuration::from_secs(4), 3, PbftMsg::Crash),
            (SimDuration::from_secs(8), 3, PbftMsg::Restart),
        ],
        11,
    );
    let stats = sim.stats();
    assert!(
        stats.counter(stat::SYNC_PROOF_FAILURES) >= 1,
        "the Byzantine server's chunks must be caught by proof verification"
    );
    assert!(stats.counter(stat::SYNC_COMPLETED) >= 1);
    assert_recovered(&sim, &group, 3, expected);
}

/// The same crash/recovery scenario with diff sync on and off: both end on
/// the identical, committee-agreed state, but the incremental run moves
/// only the chunks touched while the node was down.
#[test]
fn diff_sync_equivalent_to_full_but_cheaper() {
    let run = |diff: bool| {
        let mut cfg = PbftConfig::new(BftVariant::AhlPlus, 5);
        cfg.checkpoint_interval = 256; // ≈2.5 s between certs
        // Fine chunks: the handful of hot account keys dirties only a few
        // of the ~128 chunks, so the diff isolates the cold bulk state.
        cfg.sync_chunk_target = 4;
        cfg.diff_sync = diff;
        run_scenario(
            cfg,
            400,
            250_000, // 100 MB of mostly-cold state
            16,
            28,
            vec![
                (SimDuration::from_secs(6), 3, PbftMsg::Crash),
                (SimDuration::from_secs(13), 3, PbftMsg::Restart),
            ],
            23,
        )
    };
    let (full_sim, full_group, full_expected) = run(false);
    let (diff_sim, diff_group, diff_expected) = run(true);
    for (sim, group, expected, label) in [
        (&full_sim, &full_group, full_expected, "full"),
        (&diff_sim, &diff_group, diff_expected, "diff"),
    ] {
        assert!(sim.stats().counter(stat::SYNC_COMPLETED) >= 1, "{label} run recovers");
        assert_eq!(sim.stats().counter(stat::SYNC_PROOF_FAILURES), 0, "{label} run clean");
        assert_recovered(sim, group, 3, expected);
    }
    assert_eq!(full_sim.stats().counter(stat::SYNC_DIFFS), 0);
    assert!(diff_sim.stats().counter(stat::SYNC_DIFFS) >= 1, "diff run is incremental");
    assert_eq!(diff_sim.stats().counter(stat::SYNC_DIFF_FALLBACKS), 0);
    let full_bytes = full_sim.stats().counter(stat::SYNC_BYTES);
    let diff_bytes = diff_sim.stats().counter(stat::SYNC_BYTES);
    assert!(
        diff_bytes * 2 < full_bytes,
        "incremental transfer must move a fraction of the state: {diff_bytes} vs {full_bytes}"
    );
}

/// Crash in the middle of an incremental transfer: the node goes down
/// again while its diff chunks are in flight, restarts once more from the
/// durable checkpoint, and must still converge with zero proof failures
/// (verified chunks are only ever installed atomically at the end of a
/// session, so a half-finished transfer leaves no partial state behind).
#[test]
fn crash_mid_diff_transfer_recovers() {
    let mut cfg = PbftConfig::new(BftVariant::AhlPlus, 5);
    cfg.checkpoint_interval = 256;
    cfg.sync_chunk_target = 16;
    cfg.sync_fanout = 1; // slow the transfer so the second crash lands mid-flight
    let (sim, group, expected) = run_scenario(
        cfg,
        800,
        250_000, // 200 MB → the transfer spans a second or more
        18,
        32,
        vec![
            (SimDuration::from_secs(6), 3, PbftMsg::Crash),
            (SimDuration::from_secs(13), 3, PbftMsg::Restart),
            // ~0.4 s into the chunk phase: kill it again.
            (SimDuration::from_millis(13_400), 3, PbftMsg::Crash),
            (SimDuration::from_secs(17), 3, PbftMsg::Restart),
        ],
        29,
    );
    let stats = sim.stats();
    assert_eq!(stats.counter("sync.crashes"), 2);
    assert_eq!(stats.counter("sync.restarts"), 2);
    assert!(stats.counter(stat::SYNC_COMPLETED) >= 1);
    assert_eq!(stats.counter(stat::SYNC_PROOF_FAILURES), 0);
    assert_recovered(&sim, &group, 3, expected);
}

/// Regression (ROADMAP): the executed-request-id replay cache used to grow
/// without bound. It is now pruned at checkpoint-certificate epochs like
/// the resolved-transaction set — subject to the `request_ttl` age floor
/// (ids younger than the replay horizon are never pruned; the Byzantine
/// battery proved pruning purely by epochs reopens a replay window).
/// With a short TTL, a long run retains only a small tail of everything
/// it executed.
#[test]
fn executed_request_cache_stays_bounded() {
    let mut cfg = PbftConfig::new(BftVariant::AhlPlus, 5);
    cfg.checkpoint_interval = 50; // many pruning epochs in one run
    cfg.request_ttl = ahl::simkit::SimDuration::from_secs(2); // short replay horizon
    let (sim, group, _) = run_scenario(cfg, 0, 0, 20, 24, vec![], 31);
    let stats = sim.stats();
    let total = stats.counter(stat::TXN_COMMITTED) + stats.counter(stat::TXN_ABORTED);
    assert!(total > 4_000, "need a long run to observe growth: {total}");
    assert!(stats.counter(stat::EXECUTED_PRUNED) > 0, "pruning must have happened");
    for &id in &group {
        let r = replica(&sim, id);
        let len = r.executed_len();
        assert!(len > 0, "replica {id} executed something");
        assert!(
            (len as u64) < total / 2,
            "replica {id} retains {len} executed ids of {total} total — unbounded growth"
        );
        // The resolved-transaction set is pruned on the same schedule.
        assert!((r.state().resolved_count() as u64) < total / 2);
    }
}
