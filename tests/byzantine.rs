//! The Byzantine safety battery (tier-1): the paper's security argument as
//! executable checks.
//!
//! Matrix: (PBFT × IBFT × Tendermint) × (equivocate / withhold /
//! stale-replay / bogus-checkpoint) at f ≤ ⌊(n−1)/3⌋ — every cell must
//! keep the [`SafetyChecker`] clean *while the committee keeps
//! committing*. Cross-shard 2PC runs under Byzantine replicas and
//! Byzantine client drivers without ever breaking atomicity. Scripted
//! network adversaries (partition/heal, duplication storms) ride on the
//! simkit interposer. And the **canary**: with f > ⌊(n−1)/3⌋ colluding
//! equivocators, the chain *does* fork and the checker provably records
//! it — the battery is known to be live, not vacuously green.

use ahl::consensus::adversary::{Attack, SafetyChecker, Violation};
use ahl::consensus::clients::OpenLoopClient;
use ahl::consensus::ibft::{build_ibft_group, IbftConfig};
use ahl::consensus::pbft::{build_group, BftVariant, PbftConfig, Replica};
use ahl::consensus::tendermint::{build_tm_group, TmConfig};
use ahl::consensus::{stat, CryptoMode};
use ahl::ledger::{kvstore, Op, TxId};
use ahl::simkit::adversary::{FaultMatch, FaultRule, ScriptedFaults};
use ahl::simkit::{QueueConfig, SimDuration, SimTime, UniformNetwork};
use ahl::system::{run_system, SystemConfig, SystemWorkload};

fn kv_factory() -> ahl::consensus::OpFactory {
    let mut i = 0u64;
    Box::new(move |_rng| {
        i += 1;
        Op::Direct { txid: TxId(i), op: kvstore::kv_write(&[i % 64], 16) }
    })
}

// ---------------------------------------------------------------- PBFT --

/// One PBFT cell: run `secs` simulated seconds of open-loop load with the
/// given Byzantine placement and attack; returns the checker and the
/// committed count.
fn pbft_cell(
    variant: BftVariant,
    n: usize,
    byz_set: Vec<usize>,
    attack: Attack,
    crypto: CryptoMode,
    secs: u64,
    seed: u64,
) -> (SafetyChecker, u64, ahl::simkit::Sim<ahl::consensus::pbft::PbftMsg>) {
    let checker = SafetyChecker::new();
    let mut cfg = PbftConfig::new(variant, n);
    cfg.byzantine = byz_set.len();
    cfg.byzantine_set = Some(byz_set);
    cfg.attack = attack;
    cfg.safety = Some(checker.clone());
    cfg.crypto = crypto;
    cfg.batch_size = 8;
    cfg.checkpoint_interval = 32;
    cfg.vc_timeout = SimDuration::from_millis(400);
    let net = Box::new(UniformNetwork::new(SimDuration::from_micros(300)));
    let (mut sim, group) = build_group(&cfg, net, Some(1e9), &[], seed);
    let stop = SimTime::ZERO + SimDuration::from_secs(secs);
    let client = OpenLoopClient::new(group, SimDuration::from_millis(3), stop, kv_factory());
    sim.add_actor(Box::new(client), QueueConfig::unbounded());
    sim.run_until(stop + SimDuration::from_secs(3));
    let committed = sim.stats().counter(stat::TXN_COMMITTED);
    (checker, committed, sim)
}

/// The full PBFT attack matrix at f = 1 ≤ ⌊(n−1)/3⌋ for n = 4 (HL rule,
/// the bound the acceptance criterion names). Equivocation places the
/// Byzantine replica at the view-0 leader — the strongest position.
#[test]
fn pbft_attack_matrix_within_bound_is_safe_and_live() {
    for attack in Attack::ALL {
        let byz = match attack {
            Attack::Equivocate => vec![0], // the leader equivocates
            _ => vec![3],
        };
        let (checker, committed, _sim) =
            pbft_cell(BftVariant::Hl, 4, byz, attack, CryptoMode::CostOnly, 3, 71);
        checker.assert_clean();
        assert!(
            checker.commit_records() > 0,
            "{}: the checker must have observed commits",
            attack.name()
        );
        assert!(committed > 50, "{}: goodput collapsed: {committed}", attack.name());
    }
}

/// Attack-specific side assertions: the attacks really fired.
#[test]
fn pbft_attacks_actually_fire() {
    let (_, _, sim) =
        pbft_cell(BftVariant::Hl, 4, vec![3], Attack::StaleReplay, CryptoMode::CostOnly, 3, 72);
    assert!(sim.stats().counter("adv.stale_replays") > 0, "stale votes were replayed");

    let (checker, _, sim) = pbft_cell(
        BftVariant::Hl,
        4,
        vec![3],
        Attack::BogusCheckpoint,
        CryptoMode::CostOnly,
        3,
        73,
    );
    checker.assert_clean();
    assert!(sim.stats().counter("adv.bogus_ckpt_votes") > 0, "bogus votes were cast");
    assert!(
        sim.stats().counter(stat::CKPT_CERTS) > 0,
        "honest votes must still certify checkpoints past the bogus ones"
    );
}

/// The §7.2 composite attack keeps its historical behaviour under the
/// checker: flooded queues, degraded but nonzero goodput, zero forks.
#[test]
fn pbft_paper_flood_stays_safe() {
    let (checker, committed, _) =
        pbft_cell(BftVariant::Hl, 7, vec![5, 6], Attack::PaperFlood, CryptoMode::Real, 3, 74);
    checker.assert_clean();
    assert!(committed > 50, "committed {committed}");
}

/// Attested committees (AHL+) under the same equivocating leader: the
/// Byzantine leader cannot bind two blocks to one slot in its enclave,
/// and its enclave-dodging plain signatures are refused outright — the
/// committee view-changes past it and keeps committing, even at the
/// attested bound f = ⌊(n−1)/2⌋ worth of colluders.
#[test]
fn attested_mode_blocks_equivocation_entirely() {
    let (checker, committed, sim) = pbft_cell(
        BftVariant::AhlPlus,
        5,
        vec![0, 4], // the view-0 leader plus a colluder: f = 2 = (n-1)/2
        Attack::Equivocate,
        CryptoMode::Real,
        6,
        75,
    );
    checker.assert_clean();
    assert!(
        sim.stats().counter("consensus.invalid_msg") > 0,
        "the forged (non-attested) certificates must be rejected"
    );
    assert!(
        sim.stats().counter(stat::VIEW_CHANGES) > 0,
        "the committee must depose the equivocating leader"
    );
    assert!(committed > 50, "post-view-change goodput: {committed}");
}

/// View-change regossip (mempool satellite): requests stranded at the
/// deposed Byzantine leader get re-relayed to the new leader, so the
/// equivocating-leader run converges instead of starving.
#[test]
fn viewchange_regossip_rescues_stranded_requests() {
    let (checker, committed, sim) = pbft_cell(
        BftVariant::AhlPlus, // relay mode: requests are forwarded to the leader
        5,
        vec![0],
        Attack::Equivocate,
        CryptoMode::Real,
        6,
        76,
    );
    checker.assert_clean();
    assert!(
        sim.stats().counter(ahl::mempool::stat::VIEWCHANGE_REGOSSIP) > 0,
        "the post-view-change gossip round must re-relay pooled requests"
    );
    assert!(committed > 50, "stranded requests must be re-proposed: {committed}");
}

/// **The canary.** At f = 2 > ⌊(n−1)/3⌋ = 1, an equivocating leader plus
/// one colluding double-voter fork the chain — and the checker records
/// the conflicting commit. This is what proves every green cell above is
/// a real result and not a dead assertion.
#[test]
fn over_threshold_equivocation_trips_the_checker() {
    let (checker, _, sim) =
        pbft_cell(BftVariant::Hl, 4, vec![0, 3], Attack::Equivocate, CryptoMode::CostOnly, 2, 77);
    let violations = checker.violations();
    let fork = violations
        .iter()
        .find(|v| matches!(v, Violation::ConflictingCommit { .. }))
        .unwrap_or_else(|| {
            panic!("f > bound must fork the chain and the checker must see it: {violations:?}")
        });

    // Dump-on-anomaly: the violation localises to a committee, its summary
    // is human-readable, and the flight recorder yields a bounded causal
    // trace for that committee's replicas.
    let committee = fork.committee().expect("fork names a committee");
    assert!(fork.summary().starts_with("conflicting commit"), "{}", fork.summary());
    let limit = 16;
    let dump = sim.stats().recorder().dump(committee * 4..committee * 4 + 4, limit);
    assert!(dump.contains("--- node"), "dump has no per-node sections:\n{dump}");
    for section in dump.split("--- node").skip(1) {
        let events = section.lines().skip(1).filter(|l| l.contains("id=")).count();
        assert!(events <= limit, "dump section exceeds bound ({events} > {limit}):\n{section}");
    }
}

// ------------------------------------------------------- IBFT / Tender --

fn tm_cell(n: usize, byz: usize, attack: Attack, secs: u64, seed: u64) -> (SafetyChecker, u64) {
    let checker = SafetyChecker::new();
    let mut cfg = TmConfig::new(n);
    cfg.byzantine = byz;
    cfg.attack = attack;
    cfg.safety = Some(checker.clone());
    cfg.timeout_commit = SimDuration::from_millis(200);
    cfg.timeout_round = SimDuration::from_millis(800);
    let net = Box::new(UniformNetwork::new(SimDuration::from_micros(300)));
    let (mut sim, group) = build_tm_group(&cfg, net, Some(1e9), seed);
    let stop = SimTime::ZERO + SimDuration::from_secs(secs);
    let client = OpenLoopClient::new(group, SimDuration::from_millis(3), stop, kv_factory());
    sim.add_actor(Box::new(client), QueueConfig::unbounded());
    sim.run_until(stop + SimDuration::from_secs(3));
    (checker, sim.stats().counter(stat::TXN_COMMITTED))
}

fn ibft_cell(n: usize, byz: usize, attack: Attack, secs: u64, seed: u64) -> (SafetyChecker, u64) {
    let checker = SafetyChecker::new();
    let mut cfg = IbftConfig::new(n);
    cfg.byzantine = byz;
    cfg.attack = attack;
    cfg.safety = Some(checker.clone());
    cfg.block_period = SimDuration::from_millis(200);
    cfg.round_timeout = SimDuration::from_millis(800);
    let net = Box::new(UniformNetwork::new(SimDuration::from_micros(300)));
    let (mut sim, group) = build_ibft_group(&cfg, net, Some(1e9), seed);
    let stop = SimTime::ZERO + SimDuration::from_secs(secs);
    let client = OpenLoopClient::new(group, SimDuration::from_millis(3), stop, kv_factory());
    sim.add_actor(Box::new(client), QueueConfig::unbounded());
    sim.run_until(stop + SimDuration::from_secs(3));
    (checker, sim.stats().counter(stat::TXN_COMMITTED))
}

/// Tendermint × every attack at f = 1 ≤ ⌊(n−1)/3⌋: safe and live. The
/// proposer rotates, so the Byzantine validator periodically holds the
/// strongest (proposer) position in every cell.
#[test]
fn tendermint_attack_matrix_within_bound_is_safe_and_live() {
    for attack in Attack::ALL {
        let (checker, committed) = tm_cell(4, 1, attack, 6, 81);
        checker.assert_clean();
        assert!(checker.commit_records() > 0, "{}: no commits observed", attack.name());
        assert!(committed > 20, "{}: goodput collapsed: {committed}", attack.name());
    }
}

/// IBFT × every attack at f = 1 ≤ ⌊(n−1)/3⌋: safe and live.
#[test]
fn ibft_attack_matrix_within_bound_is_safe_and_live() {
    for attack in Attack::ALL {
        let (checker, committed) = ibft_cell(4, 1, attack, 6, 82);
        checker.assert_clean();
        assert!(checker.commit_records() > 0, "{}: no commits observed", attack.name());
        assert!(committed > 20, "{}: goodput collapsed: {committed}", attack.name());
    }
}

/// Canary, lockstep edition: two colluding Tendermint validators (f = 2 >
/// bound at n = 4) fork a height on the equivocating proposer's turn.
#[test]
fn tendermint_over_threshold_forks_and_checker_fires() {
    let (checker, _) = tm_cell(4, 2, Attack::Equivocate, 6, 83);
    assert!(
        checker
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::ConflictingCommit { .. })),
        "f > bound must fork Tendermint: {:?}",
        checker.violations()
    );
}

/// Canary, IBFT edition.
#[test]
fn ibft_over_threshold_forks_and_checker_fires() {
    let (checker, _) = ibft_cell(4, 2, Attack::Equivocate, 6, 84);
    assert!(
        checker
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::ConflictingCommit { .. })),
        "f > bound must fork IBFT: {:?}",
        checker.violations()
    );
}

// ------------------------------------------------- network adversaries --

/// A scripted partition splits a 4-node committee 2/2 for two seconds:
/// neither side holds a quorum, so nothing commits during the cut, and
/// after the heal the committee resumes with zero safety violations.
#[test]
fn partition_and_heal_never_forks() {
    let checker = SafetyChecker::new();
    let mut cfg = PbftConfig::new(BftVariant::Hl, 4);
    cfg.safety = Some(checker.clone());
    cfg.batch_size = 8;
    cfg.vc_timeout = SimDuration::from_millis(400);
    let net = Box::new(UniformNetwork::new(SimDuration::from_micros(300)));
    let (mut sim, group) = build_group(&cfg, net, Some(1e9), &[], 91);
    sim.set_interposer(Box::new(ScriptedFaults::new(vec![FaultRule::partition(
        SimTime::ZERO + SimDuration::from_secs(1),
        SimTime::ZERO + SimDuration::from_secs(3),
        vec![group[0], group[1]],
        vec![group[2], group[3]],
    )])));
    let stop = SimTime::ZERO + SimDuration::from_secs(6);
    let client = OpenLoopClient::new(group.clone(), SimDuration::from_millis(3), stop, kv_factory());
    sim.add_actor(Box::new(client), QueueConfig::unbounded());
    sim.run_until(stop + SimDuration::from_secs(3));
    checker.assert_clean();
    assert!(sim.stats().counter("adv.dropped") > 0, "the cut must have cost messages");
    assert!(
        sim.stats().counter(stat::TXN_COMMITTED) > 50,
        "the committee must recover after the heal"
    );
    // All replicas that reached the top height agree byte-for-byte.
    let replicas: Vec<&Replica> = group
        .iter()
        .map(|&id| sim.actor(id).as_any().unwrap().downcast_ref::<Replica>().unwrap())
        .collect();
    let max = replicas.iter().map(|r| r.exec_seq()).max().unwrap();
    assert!(max > 0);
    let digests: Vec<_> = replicas
        .iter()
        .filter(|r| r.exec_seq() == max)
        .map(|r| r.state().state_digest())
        .collect();
    assert!(digests.windows(2).all(|w| w[0] == w[1]), "healed committee diverged");
}

/// A duplication + delay storm on consensus traffic: every protocol
/// message is delivered twice and some are delayed past their successors.
/// Vote sets and the executed-request cache make this invisible — the
/// exactly-once invariant is checked for every request.
#[test]
fn duplication_and_reorder_storm_is_idempotent() {
    let checker = SafetyChecker::new();
    let mut cfg = PbftConfig::new(BftVariant::Hl, 4);
    cfg.safety = Some(checker.clone());
    cfg.batch_size = 8;
    cfg.vc_timeout = SimDuration::from_millis(500);
    let net = Box::new(UniformNetwork::new(SimDuration::from_micros(300)));
    let (mut sim, group) = build_group(&cfg, net, Some(1e9), &[], 92);
    sim.set_interposer(Box::new(ScriptedFaults::new(vec![
        FaultRule::duplicate(
            SimTime::ZERO,
            SimTime::MAX,
            FaultMatch::any(),
            1,
            SimDuration::from_millis(2),
        ),
        FaultRule::delay(
            SimTime::ZERO,
            SimTime::MAX,
            FaultMatch::any(),
            SimDuration::ZERO,
            SimDuration::from_millis(4),
        ),
    ])));
    let stop = SimTime::ZERO + SimDuration::from_secs(3);
    let client = OpenLoopClient::new(group, SimDuration::from_millis(3), stop, kv_factory());
    sim.add_actor(Box::new(client), QueueConfig::unbounded());
    sim.run_until(stop + SimDuration::from_secs(3));
    checker.assert_clean();
    assert!(sim.stats().counter("adv.duplicated") > 0);
    assert!(sim.stats().counter(stat::TXN_COMMITTED) > 50);
}

// --------------------------------------------------- cross-shard / 2PC --

/// The assembled sharded system under attack from both sides at once:
/// every committee (shards *and* the BFT-replicated reference committee)
/// carries a withholding Byzantine member at the attested bound, and a
/// Byzantine client driver replays every 2PC step and delivers decisions
/// duplicated/reordered. Cross-shard atomicity, conservation and
/// exactly-once execution must all survive.
#[test]
fn sharded_2pc_survives_byzantine_replicas_and_clients() {
    let checker = SafetyChecker::new();
    let mut cfg = SystemConfig::new(3, 4);
    cfg.clients = 6;
    cfg.malicious_clients = 2;
    cfg.outstanding = 12;
    cfg.byzantine = 1; // f = ⌊(4−1)/2⌋ ≥ 1 per attested committee
    cfg.attack = Attack::WithholdVotes;
    cfg.safety = Some(checker.clone());
    cfg.workload = SystemWorkload::SmallBank { accounts: 1_000, theta: 0.5 };
    cfg.duration = SimDuration::from_secs(5);
    cfg.warmup = SimDuration::from_secs(1);
    cfg.batch_size = 20;
    let m = run_system(cfg);
    checker.assert_clean();
    assert_eq!(m.safety_violations, 0);
    assert!(m.committed > 100, "committed {}", m.committed);
    assert!(m.cross_shard_fraction > 0.0, "cross-shard transactions must run");
    // Conservation through the full stack, under both attacks: bounded
    // only by the in-flight window at the drain cutoff.
    let initial: i64 = 2 * 1_000_000 * 1_000;
    let bound = 100 * (6 * 12) as i64;
    let drift = (m.final_balance.expect("smallbank audits") - initial).abs();
    assert!(drift <= bound, "conservation violated: drift {drift}");
}

/// Same system, stale-replay replicas in every committee: replayed old
/// votes are filtered, 2PC stays atomic.
#[test]
fn sharded_2pc_survives_stale_replay_replicas() {
    let checker = SafetyChecker::new();
    let mut cfg = SystemConfig::new(2, 4);
    cfg.clients = 4;
    cfg.outstanding = 8;
    cfg.byzantine = 1;
    cfg.attack = Attack::StaleReplay;
    cfg.safety = Some(checker.clone());
    cfg.workload = SystemWorkload::SmallBank { accounts: 500, theta: 0.0 };
    cfg.duration = SimDuration::from_secs(4);
    cfg.warmup = SimDuration::from_secs(1);
    cfg.batch_size = 20;
    let m = run_system(cfg);
    checker.assert_clean();
    assert!(m.committed > 100, "committed {}", m.committed);
}
