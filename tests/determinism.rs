//! Reproducibility: every protocol simulation is bit-for-bit deterministic
//! in its seed — the property that makes the throughput numbers in
//! EXPERIMENTS.md regression-testable.

use ahl::consensus::harness::{run_shard_experiment, ClientMode, NetChoice, ShardExperiment};
use ahl::consensus::pbft::{BftVariant, PbftConfig};
use ahl::consensus::poet::{run_poet, PoetConfig};
use ahl::net::ClusterNetwork;
use ahl::simkit::SimDuration;
use ahl::workload::KvStoreWorkload;

fn bft_run(variant: BftVariant, seed: u64) -> (u64, u64) {
    let mut exp = ShardExperiment::new(
        PbftConfig::new(variant, 5),
        Box::new(|c| KvStoreWorkload::single_shard().factory(c)),
    );
    exp.net = NetChoice::Cluster;
    exp.clients = 3;
    exp.client_mode = ClientMode::Open { rate: 100.0 };
    exp.duration = SimDuration::from_secs(4);
    exp.warmup = SimDuration::from_secs(1);
    exp.seed = seed;
    let m = run_shard_experiment(exp);
    (m.committed, m.latency_mean.as_nanos())
}

#[test]
fn pbft_variants_deterministic_per_seed() {
    for variant in [BftVariant::Hl, BftVariant::AhlPlus, BftVariant::Ahlr] {
        let a = bft_run(variant, 77);
        let b = bft_run(variant, 77);
        assert_eq!(a, b, "{variant:?} not reproducible");
        let c = bft_run(variant, 78);
        assert_ne!(a, c, "{variant:?} ignores the seed");
    }
}

#[test]
fn poet_deterministic_per_seed() {
    let run = |seed| {
        run_poet(
            &PoetConfig::poet(8, 2_000_000),
            Box::new(ClusterNetwork::poet_constrained()),
            Some(50e6),
            SimDuration::from_secs(300),
            seed,
        )
    };
    let a = run(5);
    let b = run(5);
    assert_eq!(a.main_chain_blocks, b.main_chain_blocks);
    assert_eq!(a.total_blocks, b.total_blocks);
}

/// Mempool determinism: same seed + same submission order ⇒ identical
/// batch contents across runs, including under random-eviction pressure
/// (15× more submissions than the pool holds).
#[test]
fn mempool_batches_deterministic_under_eviction() {
    use ahl::consensus::Request;
    use ahl::ledger::{kvstore, Op, TxId};
    use ahl::mempool::{BatchBuilder, BatchConfig, Mempool, MempoolConfig, PoolPolicy};
    use ahl::simkit::{SimTime, Stats};

    let run = |seed: u64| -> Vec<Vec<u64>> {
        let cfg = MempoolConfig::new(32).with_policy(PoolPolicy::RandomEvict);
        let mut pool: Mempool<Request> = Mempool::new(cfg, seed);
        let mut builder = BatchBuilder::new(BatchConfig::new(8, SimDuration::from_millis(10)));
        let mut stats = Stats::new();
        let mut batches: Vec<Vec<u64>> = Vec::new();
        let mut now = SimTime::ZERO;
        for i in 0..500u64 {
            let req = Request {
                id: i,
                client: 0,
                op: Op::Direct { txid: TxId(i), op: kvstore::kv_write(&[i % 10], 16) },
                submitted: now,
            };
            pool.insert(req, now, &mut stats);
            if i % 40 == 39 {
                if let Some(b) = builder.take_full(&mut pool, now, &mut stats) {
                    batches.push(b.iter().map(|r| r.id).collect());
                }
            }
            now += SimDuration::from_micros(100);
        }
        // Drain the survivors through timeout flushes.
        loop {
            now += SimDuration::from_millis(20);
            match builder.take_due(&mut pool, now, &mut stats) {
                Some(b) => batches.push(b.iter().map(|r| r.id).collect()),
                None => break,
            }
        }
        assert!(
            stats.counter(ahl::mempool::stat::EVICTED) > 300,
            "scenario must run under heavy eviction pressure"
        );
        batches
    };
    assert_eq!(run(11), run(11), "same seed must batch identically");
    assert_ne!(run(11), run(12), "eviction choices ignore the seed");
}

/// End-to-end determinism with the mempool under overload: two identical
/// overloaded system runs produce identical commit/reject/abort counts.
#[test]
fn overloaded_system_deterministic_per_seed() {
    use ahl::mempool::MempoolConfig;
    use ahl::system::{run_system, SystemConfig, SystemWorkload};

    let run = |seed: u64| {
        let mut cfg = SystemConfig::new(2, 3);
        cfg.clients = 4;
        cfg.outstanding = 32;
        cfg.workload = SystemWorkload::SmallBank { accounts: 1_000, theta: 0.0 };
        cfg.duration = SimDuration::from_secs(4);
        cfg.warmup = SimDuration::from_secs(1);
        cfg.batch_size = 20;
        cfg.mempool = MempoolConfig::new(48);
        cfg.seed = seed;
        let m = run_system(cfg);
        (m.committed, m.rejected, m.aborted, m.final_balance)
    };
    let a = run(3);
    assert!(a.1 > 0, "run must actually overload the pool (rejected {})", a.1);
    assert_eq!(a, run(3), "overloaded run not reproducible");
}

/// Flight-recorder determinism: the full event sequence (not just the
/// aggregate counters) is byte-identical for identical config + seed, and
/// actually responds to the seed.
#[test]
fn trace_deterministic_per_seed() {
    use ahl::system::{run_system_report, SystemConfig, SystemWorkload};

    let run = |seed: u64| {
        let mut cfg = SystemConfig::new(2, 3);
        cfg.clients = 4;
        cfg.outstanding = 16;
        cfg.workload = SystemWorkload::SmallBank { accounts: 1_000, theta: 0.0 };
        cfg.duration = SimDuration::from_secs(4);
        cfg.warmup = SimDuration::from_secs(1);
        cfg.batch_size = 20;
        cfg.seed = seed;
        run_system_report(cfg).stats.recorder().fingerprint()
    };
    let a = run(21);
    assert!(!a.is_empty(), "recorder captured nothing");
    assert_eq!(a, run(21), "trace not reproducible for identical config + seed");
    assert_ne!(a, run(22), "trace ignores the seed");
}

/// A committed cross-shard transaction's reconstructed lifecycle spans
/// replicas of at least two shard committees, with 2PC phases in causal
/// order (begin ≤ first prepare ≤ first decide).
#[test]
fn cross_shard_lifecycle_spans_shards() {
    use ahl::simkit::Phase;
    use ahl::system::{run_system_report, SystemConfig, SystemWorkload};

    let committee_size = 3;
    let mut cfg = SystemConfig::new(2, committee_size);
    cfg.clients = 4;
    cfg.outstanding = 16;
    cfg.workload = SystemWorkload::SmallBank { accounts: 1_000, theta: 0.0 };
    cfg.duration = SimDuration::from_secs(4);
    cfg.warmup = SimDuration::from_secs(1);
    cfg.batch_size = 20;
    let report = run_system_report(cfg);
    let rec = report.stats.recorder();

    // Collect every transaction whose 2PC chain opened (client-side
    // TwoPcBegin), then find one whose prepares landed on two shards.
    let begun: Vec<u64> = rec
        .all_events()
        .filter(|e| e.phase == Phase::TwoPcBegin)
        .map(|e| e.id)
        .collect();
    assert!(!begun.is_empty(), "no cross-shard transactions began");

    let shard_of = |node: usize| node / committee_size; // replicas only
    let mut found = false;
    for id in begun {
        let life = rec.lifecycle(id);
        let begin = life.iter().find(|e| e.phase == Phase::TwoPcBegin);
        let prepare = life.iter().find(|e| e.phase == Phase::TwoPcPrepare);
        let decide = life.iter().find(|e| e.phase == Phase::TwoPcDecide);
        let (Some(begin), Some(prepare), Some(decide)) = (begin, prepare, decide) else {
            continue;
        };
        let shards: std::collections::BTreeSet<usize> = life
            .iter()
            .filter(|e| matches!(e.phase, Phase::TwoPcPrepare | Phase::TwoPcDecide))
            .map(|e| shard_of(e.node))
            .collect();
        if shards.len() < 2 {
            continue;
        }
        assert!(begin.at <= prepare.at, "prepare before begin: {begin} vs {prepare}");
        assert!(prepare.at <= decide.at, "decide before prepare: {prepare} vs {decide}");
        found = true;
        break;
    }
    assert!(found, "no lifecycle spanned two shards with a full begin→prepare→decide chain");
}

#[test]
fn variants_differ_from_each_other() {
    // Sanity: the four variants are genuinely different protocols, not one
    // engine with cosmetic labels — same seed, different outcomes.
    let hl = bft_run(BftVariant::Hl, 9);
    let ahlr = bft_run(BftVariant::Ahlr, 9);
    assert_ne!(hl, ahlr);
}
