//! Reproducibility: every protocol simulation is bit-for-bit deterministic
//! in its seed — the property that makes the throughput numbers in
//! EXPERIMENTS.md regression-testable.

use ahl::consensus::harness::{run_shard_experiment, ClientMode, NetChoice, ShardExperiment};
use ahl::consensus::pbft::{BftVariant, PbftConfig};
use ahl::consensus::poet::{run_poet, PoetConfig};
use ahl::net::ClusterNetwork;
use ahl::simkit::SimDuration;
use ahl::workload::KvStoreWorkload;

fn bft_run(variant: BftVariant, seed: u64) -> (u64, u64) {
    let mut exp = ShardExperiment::new(
        PbftConfig::new(variant, 5),
        Box::new(|c| KvStoreWorkload::single_shard().factory(c)),
    );
    exp.net = NetChoice::Cluster;
    exp.clients = 3;
    exp.client_mode = ClientMode::Open { rate: 100.0 };
    exp.duration = SimDuration::from_secs(4);
    exp.warmup = SimDuration::from_secs(1);
    exp.seed = seed;
    let m = run_shard_experiment(exp);
    (m.committed, m.latency_mean.as_nanos())
}

#[test]
fn pbft_variants_deterministic_per_seed() {
    for variant in [BftVariant::Hl, BftVariant::AhlPlus, BftVariant::Ahlr] {
        let a = bft_run(variant, 77);
        let b = bft_run(variant, 77);
        assert_eq!(a, b, "{variant:?} not reproducible");
        let c = bft_run(variant, 78);
        assert_ne!(a, c, "{variant:?} ignores the seed");
    }
}

#[test]
fn poet_deterministic_per_seed() {
    let run = |seed| {
        run_poet(
            &PoetConfig::poet(8, 2_000_000),
            Box::new(ClusterNetwork::poet_constrained()),
            Some(50e6),
            SimDuration::from_secs(300),
            seed,
        )
    };
    let a = run(5);
    let b = run(5);
    assert_eq!(a.main_chain_blocks, b.main_chain_blocks);
    assert_eq!(a.total_blocks, b.total_blocks);
}

#[test]
fn variants_differ_from_each_other() {
    // Sanity: the four variants are genuinely different protocols, not one
    // engine with cosmetic labels — same seed, different outcomes.
    let hl = bft_run(BftVariant::Hl, 9);
    let ahlr = bft_run(BftVariant::Ahlr, 9);
    assert_ne!(hl, ahlr);
}
