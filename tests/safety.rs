//! Cross-crate safety properties: consensus agreement under Byzantine
//! behaviour, beacon agreement, and funds conservation through the full
//! distributed stack.

use ahl::consensus::clients::OpenLoopClient;
use ahl::consensus::pbft::{build_group, BftVariant, PbftConfig, Replica};
use ahl::consensus::CryptoMode;
use ahl::ledger::smallbank;
use ahl::net::ClusterNetwork;
use ahl::shard::{paper_l_bits, run_beacon};
use ahl::simkit::{QueueConfig, SimDuration, SimTime, UniformNetwork};
use ahl::system::{run_system, SystemConfig, SystemWorkload};
use ahl::workload::SmallBankWorkload;

/// Safety: honest replicas never diverge, even with `f` equivocating
/// Byzantine members (HL) or withholding members (AHL+).
fn agreement_under_byzantine(variant: BftVariant, n: usize, byz: usize) {
    let mut cfg = PbftConfig::new(variant, n);
    cfg.byzantine = byz;
    cfg.crypto = CryptoMode::Real;
    cfg.batch_size = 10;
    cfg.vc_timeout = SimDuration::from_millis(400);
    let net = Box::new(UniformNetwork::new(SimDuration::from_micros(300)));
    let (mut sim, group) = build_group(&cfg, net, Some(1e9), &[], 99);
    let stop = SimTime::ZERO + SimDuration::from_secs(3);
    let client = OpenLoopClient::new(
        group.clone(),
        SimDuration::from_millis(3),
        stop,
        SmallBankWorkload::paper(200, 0.0).factory(0),
    );
    sim.add_actor(Box::new(client), QueueConfig::unbounded());
    sim.run_until(stop + SimDuration::from_secs(4));

    // Among honest replicas (Byzantine are the highest indices), all that
    // executed to the same height have identical state digests.
    let honest: Vec<&Replica> = group[..n - byz]
        .iter()
        .map(|&id| {
            sim.actor(id)
                .as_any()
                .expect("inspectable")
                .downcast_ref::<Replica>()
                .expect("replica")
        })
        .collect();
    let max_seq = honest.iter().map(|r| r.exec_seq()).max().expect("non-empty");
    assert!(max_seq > 0, "no progress at all");
    let reference = honest
        .iter()
        .find(|r| r.exec_seq() == max_seq)
        .expect("someone reached max")
        .state()
        .state_digest();
    for r in &honest {
        if r.exec_seq() == max_seq {
            assert_eq!(r.state().state_digest(), reference, "state divergence");
        }
    }
}

#[test]
fn hl_agreement_with_equivocators() {
    agreement_under_byzantine(BftVariant::Hl, 7, 2);
}

#[test]
fn ahl_plus_agreement_with_withholders() {
    agreement_under_byzantine(BftVariant::AhlPlus, 7, 3);
}

#[test]
fn ahlr_agreement_fault_free() {
    agreement_under_byzantine(BftVariant::Ahlr, 5, 0);
}

#[test]
fn beacon_agreement_across_network_sizes() {
    for n in [8, 32, 64] {
        // run_beacon asserts internally that all nodes lock the same rnd.
        let res = run_beacon(
            n,
            paper_l_bits(n),
            SimDuration::from_secs(2),
            Box::new(ClusterNetwork::new()),
            Some(1e9),
            n as u64,
        );
        assert!(res.certificates >= 1);
    }
}

/// Conservation through the full distributed stack: total SmallBank funds
/// are unchanged after thousands of cross-shard payments executed through
/// real consensus + 2PC (aborted and stalled transactions included).
#[test]
fn funds_conserved_through_distributed_2pc() {
    let accounts = 1_000;
    let mut cfg = SystemConfig::new(3, 3);
    cfg.clients = 6;
    cfg.outstanding = 12;
    cfg.workload = SystemWorkload::SmallBank { accounts, theta: 0.8 };
    cfg.duration = SimDuration::from_secs(5);
    cfg.warmup = SimDuration::from_secs(1);
    cfg.batch_size = 20;
    let m = run_system(cfg);
    assert!(m.committed > 100, "committed {}", m.committed);
    assert!(m.cross_shard_fraction > 0.0);

    // Every account starts with 1,000,000 checking + 1,000,000 savings.
    let initial: i64 = 2 * 1_000_000 * accounts as i64;
    let final_balance = m.final_balance.expect("smallbank audits balances");
    // Transactions still in flight when the drain window closes may hold
    // an applied debit whose matching credit is queued; the imbalance is
    // bounded by the maximum payment times the open-transaction bound.
    let bound = 100 * (6 * 12) as i64;
    let drift = (final_balance - initial).abs();
    assert!(
        drift <= bound,
        "conservation violated: initial {initial}, final {final_balance}"
    );
    let _ = smallbank::genesis(1, 1, 1); // keep the import exercised
}
