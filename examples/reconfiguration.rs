//! Epoch transition demo (paper §5.3 / Figure 12): throughput of an AHL+
//! committee while its members are reshuffled, comparing the naive
//! swap-all approach with the paper's batched swap-log(n).
//!
//! ```sh
//! cargo run --release --example reconfiguration
//! ```

use ahl::shard::{batch_preserves_liveness, paper_batch_size, Resilience};
use ahl::simkit::SimDuration;
use ahl::system::{run_reshard, ReshardConfig, ReshardStrategy};

fn sparkline(series: &[(ahl::simkit::SimTime, f64)], max: f64) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    series
        .iter()
        .map(|(_, v)| {
            let idx = ((v / max.max(1.0)) * 7.0).round().min(7.0) as usize;
            BARS[idx]
        })
        .collect()
}

fn main() {
    let n = 9;
    let b = paper_batch_size(n);
    println!("Committee of {n}; batch size B = log({n}) = {b}");
    println!(
        "liveness with B = {b}: {} (needs B <= f = {})",
        batch_preserves_liveness(n, b, Resilience::OneHalf),
        (n - 1) / 2
    );
    println!();

    let mut results = Vec::new();
    for (name, strategy) in [
        ("no resharding", ReshardStrategy::None),
        ("swap all     ", ReshardStrategy::SwapAll),
        ("swap log(n)  ", ReshardStrategy::SwapLog),
    ] {
        let mut cfg = ReshardConfig::new(n, strategy);
        cfg.reshard_at = vec![SimDuration::from_secs(40), SimDuration::from_secs(90)];
        // ≈1.25 GB of shard state: transitioning nodes really fetch and
        // verify it chunk by chunk, so the outage below is transfer time,
        // not a timer.
        cfg.state_pad_keys = 2_500;
        cfg.state_pad_bytes = 500_000;
        cfg.duration = SimDuration::from_secs(140);
        cfg.client_rate = 120.0;
        cfg.clients = 3;
        let m = run_reshard(&cfg);
        results.push((name, m));
    }

    let peak = results
        .iter()
        .flat_map(|(_, m)| m.series.iter().map(|(_, v)| *v))
        .fold(0.0f64, f64::max);

    println!("throughput over time (5 s buckets, resharding at t=40s and t=90s):");
    for (name, m) in &results {
        println!("  {name} | {} | avg {:6.1} tps", sparkline(&m.series, peak), m.avg_tps);
    }

    let base = results[0].1.avg_tps;
    let all = results[1].1.avg_tps;
    let log = results[2].1.avg_tps;
    println!();
    println!("swap-all loses {:.0}% of baseline throughput;", 100.0 * (1.0 - all / base));
    println!("swap-log(n) stays within {:.0}% of baseline.", 100.0 * (1.0 - log / base).abs());
    let m = &results[1].1;
    println!(
        "swap-all transfers: {} syncs, {:.2} GB verified, {} proof failures",
        m.state_syncs,
        m.bytes_synced as f64 / 1e9,
        m.proof_failures
    );
}
