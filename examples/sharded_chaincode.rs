//! The §6.4 extension library in action: write ordinary single-shard
//! chaincode functions, and let the library derive lock sets, shard
//! routing and the 2PC lifecycle — "the users only see single-shard
//! transactions".
//!
//! ```sh
//! cargo run --release --example sharded_chaincode
//! ```

use ahl::ledger::{smallbank, Condition, Mutation, StateOp, TxId};
use ahl::txn::{ChaincodeFn, MultiShardLedger};

fn main() {
    let shards = 6;
    println!("Deploying chaincode over {shards} shards");
    println!("--------------------------------------");

    // The built-in SmallBank deployment plus one custom function: an
    // escrowed payment that also credits a fee account — three keys, three
    // potential shards, written as if sharding did not exist.
    let mut cc = ahl::txn::smallbank_chaincode(shards);
    cc.register(ChaincodeFn::new("payWithFee", |args| {
        let [from, to, amt] = args else {
            return Err("payWithFee(from, to, amount)".into());
        };
        let amt: i64 = amt.parse().map_err(|_| "bad amount".to_string())?;
        let fee = (amt / 50).max(1);
        Ok(StateOp {
            conditions: vec![Condition::IntAtLeast {
                key: smallbank::checking_key(from),
                min: amt + fee,
            }],
            mutations: vec![
                (smallbank::checking_key(from), Mutation::Add(-(amt + fee))),
                (smallbank::checking_key(to), Mutation::Add(amt)),
                ("ck_feepool".into(), Mutation::Add(fee)),
            ],
        })
    }));

    println!("registered functions: {:?}\n", cc.functions());

    // Static analysis before execution: what will this invocation touch?
    let plan = cc
        .analyze("payWithFee", &["acc1", "acc2", "500"])
        .expect("valid invocation");
    println!("payWithFee(acc1, acc2, 500) analysis:");
    println!("  lock set      : {:?}", plan.lock_keys);
    println!("  shards        : {:?}", plan.shards);
    println!("  needs 2PC     : {}\n", plan.needs_coordination);

    // Execute a workload through the facade.
    let mut ledger = MultiShardLedger::new(shards);
    ledger.genesis(&smallbank::genesis(50, 10_000, 0));
    let mut committed = 0;
    let mut aborted = 0;
    for i in 0..300u64 {
        let from = format!("acc{}", i % 50);
        let to = format!("acc{}", (i * 11 + 3) % 50);
        let h = cc
            .invoke(&mut ledger, TxId(i), "payWithFee", &[&from, &to, "120"])
            .expect("valid invocation");
        if h.committed() {
            committed += 1;
        } else {
            aborted += 1;
        }
    }
    println!("300 payWithFee invocations: {committed} committed, {aborted} aborted");
    println!("fee pool collected: {}", ledger.get_int("ck_feepool"));

    // Conservation audit across all shards, fees included.
    let mut keys: Vec<String> = (0..50)
        .map(|i| smallbank::checking_key(&format!("acc{i}")))
        .collect();
    keys.push("ck_feepool".into());
    let total = ledger.total_of(&keys);
    println!("total funds (accounts + fees): {total} (genesis: {})", 50 * 10_000);
    assert_eq!(total, 50 * 10_000);
    assert_eq!(ledger.get_int("ck_feepool"), committed * 2); // fee = 120/50 = 2

    println!("\nOK: single-shard chaincode ran unmodified across {shards} shards.");
}
