//! The paper's running example (§3.1): a consortium of financial
//! institutions running a shared ledger for cross-border payments.
//!
//! 400 institutions, 100 of which actively collude (s = 25%). The demo
//! walks the full pipeline: committee sizing from Equation 1, the TEE
//! randomness beacon, committee assignment, and finally payments flowing
//! through the sharded ledger with a malicious-coordinator scenario that
//! the reference committee neutralizes.
//!
//! ```sh
//! cargo run --release --example consortium_payments
//! ```

use ahl::ledger::{smallbank, StateStore, TxId};
use ahl::net::ClusterNetwork;
use ahl::shard::{
    min_committee_size, paper_l_bits, run_beacon, Assignment, LnFact, Resilience,
};
use ahl::simkit::SimDuration;
use ahl::txn::baselines::OmniLedgerClient;
use ahl::txn::{MultiShardLedger, ShardMap, TxOutcome};

fn main() {
    let total = 400;
    let s = 0.25;
    println!("Consortium: {total} institutions, {:.0}% colluding", s * 100.0);
    println!("=====================================================");

    // --- Step 1: committee sizing (Equation 1) ---
    let lf = LnFact::new(total + 1);
    let pbft_n = min_committee_size(&lf, total, s, Resilience::OneThird, 20.0);
    let ahl_n = min_committee_size(&lf, total, s, Resilience::OneHalf, 20.0)
        .expect("attested committees are formable at 25%");
    println!("\n[1] Committee sizing for Pr[faulty] <= 2^-20:");
    match pbft_n {
        Some(n) => println!("    PBFT rule (f <= (n-1)/3): n = {n}"),
        None => println!("    PBFT rule (f <= (n-1)/3): impossible at this scale!"),
    }
    println!("    attested rule (f <= (n-1)/2): n = {ahl_n}");

    // --- Step 2: the TEE randomness beacon picks the epoch seed ---
    let beacon = run_beacon(
        total,
        paper_l_bits(total),
        SimDuration::from_secs(2),
        Box::new(ClusterNetwork::new()),
        Some(1e9),
        2024,
    );
    println!("\n[2] Randomness beacon: rnd = {:#018x}", beacon.rnd);
    println!("    completed in {} with {} certificates, {} repeats",
        beacon.completion, beacon.certificates, beacon.repeats);

    // --- Step 3: committee assignment ---
    let k = total / ahl_n;
    let assignment = Assignment::derive(total, k, beacon.rnd);
    println!("\n[3] {k} committees of ~{} members each", total / k);
    println!("    committee 0 sample: {:?}...", &assignment.committees[0][..5.min(assignment.committees[0].len())]);

    // --- Step 4: payments over the sharded ledger ---
    let shards = k.min(8); // ledger partitions
    let mut ledger = MultiShardLedger::new(shards);
    ledger.genesis(&smallbank::genesis(100, 1_000_000, 0));
    let mut committed = 0;
    let mut aborted = 0;
    for i in 0..1000u64 {
        let from = format!("acc{}", i % 100);
        let to = format!("acc{}", (i * 7 + 13) % 100);
        if from == to {
            continue;
        }
        let op = smallbank::send_payment(&from, &to, 100 + (i % 500) as i64);
        match ledger.execute(TxId(i), &op) {
            TxOutcome::Committed => committed += 1,
            TxOutcome::Aborted => aborted += 1,
        }
    }
    let total_funds: i64 = (0..100)
        .map(|i| ledger.get_int(&smallbank::checking_key(&format!("acc{i}"))))
        .sum();
    println!("\n[4] 1000 cross-border payments over {shards} shards:");
    println!("    committed {committed}, aborted {aborted}");
    println!("    total funds conserved: {total_funds} (= 100 x 1,000,000)");
    assert_eq!(total_funds, 100_000_000);

    // --- Step 5: the malicious-payee scenario (§6.1) ---
    println!("\n[5] Malicious payee as coordinator (OmniLedger-style):");
    let map = ShardMap::new(shards);
    let mut plain: Vec<StateStore> = (0..shards).map(|_| StateStore::new()).collect();
    for (key, v) in smallbank::genesis(4, 1_000, 0) {
        let sh = map.shard_of(&key);
        plain[sh].put(key, v);
    }
    let op = smallbank::send_payment("acc0", "acc1", 500);
    let mut evil = OmniLedgerClient::new(TxId(9_999), &map, &op);
    evil.acquire_locks(&mut plain);
    evil.crash();
    let payer_key = smallbank::checking_key("acc0");
    let blocked = plain[map.shard_of(&payer_key)].is_locked(&payer_key);
    println!("    payer funds locked forever: {blocked}");
    assert!(blocked);

    println!("    with the reference committee, the same payment resolves:");
    let op2 = smallbank::send_payment("acc0", "acc1", 500);
    let outcome = ledger.execute(TxId(10_000), &op2);
    println!("    outcome through R-coordinated 2PC: {outcome:?}");
    println!("\nOK: consortium ledger is safe and live.");
}
