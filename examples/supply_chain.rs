//! A non-financial workload (the paper's third goal: *general*
//! applications beyond cryptocurrency — supply chain management, §1).
//!
//! Items move through custody transfers between organizations; every
//! transfer is a guarded multi-key transaction: the item must exist, the
//! seller must hold it, and the handover updates custody and both
//! parties' inventory counters — usually across shards.
//!
//! ```sh
//! cargo run --release --example supply_chain
//! ```

use ahl::ledger::{Condition, Mutation, StateOp, TxId, Value};
use ahl::txn::{MultiShardLedger, TxOutcome};

fn item_key(item: u32) -> String {
    format!("item_{item}_owner")
}

fn inventory_key(org: &str) -> String {
    format!("inv_{org}")
}

/// Custody transfer chaincode: item must exist; `from` must own it.
fn transfer_custody(item: u32, from: &str, to: &str) -> StateOp {
    StateOp {
        conditions: vec![
            Condition::Exists(item_key(item)),
            // Ownership check: we model owner as an integer org id so the
            // guard can express "owned by from".
            Condition::IntAtLeast { key: format!("owned_{from}_{item}"), min: 1 },
        ],
        mutations: vec![
            (item_key(item), Mutation::Set(Value::Bytes(to.as_bytes().to_vec()))),
            (format!("owned_{from}_{item}"), Mutation::Add(-1)),
            (format!("owned_{to}_{item}"), Mutation::Add(1)),
            (inventory_key(from), Mutation::Add(-1)),
            (inventory_key(to), Mutation::Add(1)),
        ],
    }
}

fn main() {
    let orgs = ["factory", "shipper", "customs", "warehouse", "retailer"];
    let items = 200u32;
    let shards = 6;

    println!("Supply chain over {shards} shards: {} organizations, {items} items", orgs.len());
    println!("--------------------------------------------------------------");

    let mut ledger = MultiShardLedger::new(shards);
    // Genesis: all items at the factory.
    let mut genesis: Vec<(String, Value)> = Vec::new();
    for item in 0..items {
        genesis.push((item_key(item), Value::Bytes(b"factory".to_vec())));
        genesis.push((format!("owned_factory_{item}"), Value::Int(1)));
    }
    genesis.push((inventory_key("factory"), Value::Int(items as i64)));
    ledger.genesis(&genesis);

    // Move every item along the chain of custody.
    let mut txid = 0u64;
    let mut committed = 0;
    let mut cross_shard = 0;
    for item in 0..items {
        for pair in orgs.windows(2) {
            let op = transfer_custody(item, pair[0], pair[1]);
            if ledger.map.shards_touched(&op) > 1 {
                cross_shard += 1;
            }
            txid += 1;
            if ledger.execute(TxId(txid), &op) == TxOutcome::Committed {
                committed += 1;
            }
        }
    }
    let total_transfers = items as usize * (orgs.len() - 1);
    println!("transfers committed : {committed}/{total_transfers}");
    println!("cross-shard         : {cross_shard} ({:.0}%)", 100.0 * cross_shard as f64 / total_transfers as f64);

    // Every item ends at the retailer; inventories reconcile.
    assert_eq!(committed, total_transfers);
    assert_eq!(ledger.get_int(&inventory_key("retailer")), items as i64);
    assert_eq!(ledger.get_int(&inventory_key("factory")), 0);

    // A double-transfer (selling an item the org no longer holds) aborts.
    let stale = transfer_custody(0, "factory", "retailer");
    let out = ledger.execute(TxId(txid + 1), &stale);
    println!("stale transfer      : {out:?} (factory no longer owns item 0)");
    assert_eq!(out, TxOutcome::Aborted);

    println!("\nOK: custody chain consistent across shards.");
}
