//! Quickstart: spin up a small sharded blockchain and push SmallBank
//! payments through it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ahl::ledger::{verify_state_proof, StateStore, Value};
use ahl::simkit::SimDuration;
use ahl::system::{run_system, SystemConfig, SystemWorkload};

fn main() {
    println!("ahl quickstart: 4 shards x 3 replicas + reference committee");
    println!("------------------------------------------------------------");

    // 4 shards of 3 replicas each (f = 1 per committee under the attested
    // rule), plus a 3-node reference committee coordinating cross-shard
    // transactions — the paper's Figure 13 setup in miniature.
    let mut cfg = SystemConfig::new(4, 3);
    cfg.clients = 8;
    cfg.outstanding = 32;
    cfg.workload = SystemWorkload::SmallBank { accounts: 10_000, theta: 0.0 };
    cfg.duration = SimDuration::from_secs(10);
    cfg.warmup = SimDuration::from_secs(3);
    // Every replica fronts its shard with an `ahl-mempool` transaction
    // pool: requests are deduplicated, admission-controlled and batched
    // into proposals there. Shrink the capacity (e.g. to 64) to watch
    // backpressure engage — `m.rejected` counts the bounced steps.
    cfg.mempool = ahl::mempool::MempoolConfig::new(100_000);

    let m = run_system(cfg);

    println!("throughput            : {:8.0} tps", m.tps);
    println!("committed             : {:8}", m.committed);
    println!("aborted               : {:8}  ({:.2}% of finished)", m.aborted, 100.0 * m.abort_rate);
    println!("cross-shard fraction  : {:8.2}%", 100.0 * m.cross_shard_fraction);
    println!("mean latency          : {:>8}", m.latency_mean);
    println!("pool rejections       : {:8}", m.rejected);
    println!("view changes          : {:8}", m.view_changes);

    assert!(m.committed > 0, "the system should commit transactions");
    println!("\nOK: cross-shard payments committed atomically under 2PC/2PL.");

    // Every shard's state is authenticated: the `state_digest` each block
    // carries is a sparse-Merkle-tree root, so any balance can be proven
    // in (or out of) the state a checkpoint certificate signs — the
    // mechanism replicas use to verify fetched state chunks during
    // reconfiguration and crash recovery.
    let mut shard = StateStore::new();
    shard.put("ck_alice".into(), Value::Int(100));
    shard.put("ck_bob".into(), Value::Int(50));
    let root = shard.state_digest();
    let proof = shard.prove("ck_alice");
    assert!(verify_state_proof(&root, "ck_alice", Some(&Value::Int(100).digest()), &proof));
    let absent = shard.prove("ck_mallory");
    assert!(verify_state_proof(&root, "ck_mallory", None, &absent));
    println!("OK: state root proves ck_alice = 100 and excludes ck_mallory.");
}
