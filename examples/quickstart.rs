//! Quickstart: spin up a small sharded blockchain and push SmallBank
//! payments through it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ahl::ledger::persist::open_snapshot;
use ahl::ledger::{verify_state_proof, StateSidecar, StateStore, Value};
use ahl::simkit::SimDuration;
use ahl::system::{run_system, SystemConfig, SystemWorkload};
use ahl::wal::codec::{Reader, Writer};
use ahl::wal::{open_node_dir, write_manifest, Manifest, TempDir, WalConfig};

fn main() {
    println!("ahl quickstart: 4 shards x 3 replicas + reference committee");
    println!("------------------------------------------------------------");

    // 4 shards of 3 replicas each (f = 1 per committee under the attested
    // rule), plus a 3-node reference committee coordinating cross-shard
    // transactions — the paper's Figure 13 setup in miniature.
    let mut cfg = SystemConfig::new(4, 3);
    cfg.clients = 8;
    cfg.outstanding = 32;
    cfg.workload = SystemWorkload::SmallBank { accounts: 10_000, theta: 0.0 };
    cfg.duration = SimDuration::from_secs(10);
    cfg.warmup = SimDuration::from_secs(3);
    // Every replica fronts its shard with an `ahl-mempool` transaction
    // pool: requests are deduplicated, admission-controlled and batched
    // into proposals there. Shrink the capacity (e.g. to 64) to watch
    // backpressure engage — `m.rejected` counts the bounced steps.
    cfg.mempool = ahl::mempool::MempoolConfig::new(100_000);

    let m = run_system(cfg);

    println!("throughput            : {:8.0} tps", m.tps);
    println!("committed             : {:8}", m.committed);
    println!("aborted               : {:8}  ({:.2}% of finished)", m.aborted, 100.0 * m.abort_rate);
    println!("cross-shard fraction  : {:8.2}%", 100.0 * m.cross_shard_fraction);
    println!("mean latency          : {:>8}", m.latency_mean);
    println!("pool rejections       : {:8}", m.rejected);
    println!("view changes          : {:8}", m.view_changes);

    assert!(m.committed > 0, "the system should commit transactions");
    println!("\nOK: cross-shard payments committed atomically under 2PC/2PL.");

    // Every shard's state is authenticated: the `state_digest` each block
    // carries is a sparse-Merkle-tree root, so any balance can be proven
    // in (or out of) the state a checkpoint certificate signs — the
    // mechanism replicas use to verify fetched state chunks during
    // reconfiguration and crash recovery.
    let mut shard = StateStore::new();
    shard.put("ck_alice".into(), Value::Int(100));
    shard.put("ck_bob".into(), Value::Int(50));
    let root = shard.state_digest();
    let proof = shard.prove("ck_alice");
    assert!(verify_state_proof(&root, "ck_alice", Some(&Value::Int(100).digest()), &proof));
    let absent = shard.prove("ck_mallory");
    assert!(verify_state_proof(&root, "ck_mallory", None, &absent));
    println!("OK: state root proves ck_alice = 100 and excludes ck_mallory.");

    // And that state is *durable*: a node directory holds a segmented,
    // CRC-framed write-ahead log (`wal/wal-*.seg`, group-committed under
    // a configurable fsync policy), content-addressed snapshot pages
    // (`pages/pages-*.seg` — consecutive checkpoints share unchanged
    // pages — with `pages-*.idx` sidecar indexes so reopening sealed
    // segments never rescans their frames), and an atomically swapped
    // `MANIFEST` naming the durable checkpoint. Disk stays bounded under
    // churn: once a manifest is durable, mark-and-sweep page GC compacts
    // mostly-dead segments away and `WalConfig` retention caps
    // (`retain_wal_segments` / `retain_wal_bytes`) drop WAL segments the
    // checkpoint has superseded. Reopening the directory is crash
    // recovery: torn tails are truncated, the manifest is validated, and
    // the WAL tail past the checkpoint replays — the checkpoint tree
    // itself can load eagerly (root-verified `open_snapshot`) or fault
    // in on demand through a byte-bounded, per-node-verified page cache
    // (`open_snapshot_lazy`). (`SystemConfig::data_dir` wires the same
    // machinery under every replica; `experiments -- recovery`
    // crash-tests it and `experiments -- soak` churn-tests the bounds.)
    let dir = TempDir::new("quickstart");
    let cfg = WalConfig::default();
    {
        let mut node = open_node_dir(dir.path(), &cfg).expect("create node dir");
        node.wal.append(b"executed-batch-1".to_vec());
        node.wal.commit().expect("group commit");
        let snap = shard.snapshot();
        snap.persist(&mut node.pages).expect("persist checkpoint pages");
        node.pages.sync().expect("barrier before publishing");
        let mut meta = Writer::new();
        snap.sidecar().encode(&mut meta);
        write_manifest(
            dir.path(),
            &Manifest { seq: 1, root: snap.root(), meta: meta.into_bytes() },
            &cfg.kill,
        )
        .expect("atomic manifest swap");
    } // <- handles dropped: the "crash"
    let node = open_node_dir(dir.path(), &cfg).expect("recovery reopen");
    let manifest = node.manifest.expect("durable checkpoint survives");
    let sidecar = StateSidecar::decode(&mut Reader::new(&manifest.meta)).expect("sidecar");
    let recovered =
        StateStore::from_snapshot(&open_snapshot(&node.pages, manifest.root, sidecar).expect("verified load"));
    assert_eq!(recovered.state_digest(), root);
    assert_eq!(node.tail.len(), 1, "the WAL tail is back for replay");
    println!("OK: checkpoint + WAL survived a crash; recovered root matches.");

    // Finally, the paper's *security* claim is executable too: rerun the
    // sharded system with a Byzantine replica in every committee
    // (withholding its votes — swap in any `Attack` from the catalogue:
    // `Equivocate`, `StaleReplay`, `BogusCheckpoint`, ...) and two
    // Byzantine client drivers replaying and reordering their 2PC steps.
    // A global `SafetyChecker` observes every honest commit, execution,
    // and cross-shard resolution; `assert_clean` proves agreement,
    // atomicity and exactly-once execution held under attack. (Scripted
    // *network* adversaries — partitions, drops, duplication storms —
    // plug into `simkit::adversary::ScriptedFaults` the same way; see
    // `tests/byzantine.rs` for the full matrix and the f-over-bound
    // canary that proves the checker itself is live.)
    let checker = ahl::consensus::SafetyChecker::new();
    let mut cfg = SystemConfig::new(2, 4);
    cfg.clients = 4;
    cfg.malicious_clients = 1;
    cfg.outstanding = 8;
    cfg.byzantine = 1; // f = 1 per committee: within the tolerated bound
    cfg.attack = ahl::consensus::Attack::WithholdVotes;
    cfg.safety = Some(checker.clone());
    cfg.workload = SystemWorkload::SmallBank { accounts: 1_000, theta: 0.0 };
    cfg.duration = SimDuration::from_secs(4);
    cfg.warmup = SimDuration::from_secs(1);
    let m = run_system(cfg);
    checker.assert_clean();
    assert!(m.committed > 0, "the attacked system keeps committing");
    println!(
        "OK: {} commits under Byzantine replicas + clients; 0 safety violations.",
        m.committed
    );

    // Observability: `run_system_report` hands back the raw simulator
    // statistics next to the metrics. Counters and latency histograms are
    // *labeled* — every committee's share is queryable by `Scope`, and
    // the labeled writes roll up into the familiar globals — and a
    // per-node flight recorder stamps each transaction's lifecycle
    // (submit → ingest → admit → propose → commit → exec, plus 2PC hops),
    // deriving per-phase latency percentiles. A `SafetyChecker` violation
    // would dump the implicated committee's trace automatically;
    // `experiments -- fig8 --quick --json out.json` writes the same data
    // as a machine-readable report.
    use ahl::simkit::{Phase, Scope};
    let mut cfg = SystemConfig::new(2, 3);
    cfg.clients = 4;
    cfg.outstanding = 16;
    cfg.workload = SystemWorkload::SmallBank { accounts: 1_000, theta: 0.0 };
    cfg.duration = SimDuration::from_secs(4);
    cfg.warmup = SimDuration::from_secs(1);
    let report = ahl::system::run_system_report(cfg);
    for shard in 0..2 {
        println!(
            "shard {shard}: {:6} committed, {:4} blocks",
            report.stats.scoped_counter("txn.committed", Scope::committee(shard)),
            report.stats.scoped_counter("consensus.blocks", Scope::committee(shard)),
        );
    }
    if let Some(h) = report.stats.histogram(Phase::TRANSITIONS[4]) {
        println!(
            "commit→exec phase     : p50 {} / p99 {} over {} transitions",
            h.quantile(0.50),
            h.quantile(0.99),
            h.count()
        );
    }
    let sample: Vec<_> = report.stats.recorder().all_events().take(3).collect();
    for ev in &sample {
        println!("trace: {ev}");
    }
    assert!(!sample.is_empty(), "the flight recorder captured the run");
    println!("OK: labeled metrics, phase percentiles and flight-recorder traces.");

    // Run-time oracles (ahl-telemetry): the liveness oracle rides the same
    // trace stream the flight recorder fills — per-committee commit-stall,
    // mempool-starvation, view-change-storm and sync-livelock detectors
    // with budgets an order of magnitude above healthy steady state
    // (tune them via `LivenessConfig`). The wall-clock profiler times the
    // *host* cost of the hot paths (consensus exec, SMT update, WAL group
    // commit, sync verify, 2PC coordinator) and attributes self/total
    // time per span. Both attach through `SystemConfig`; a violation
    // dumps the implicated committee's causal trace, and the profiler
    // table lands in the text and JSON output of `experiments`. The same
    // JSON reports power the bench-trajectory gate: `bench_compare
    // BENCH_fig8.json fresh.json` diffs a fresh run against the committed
    // baseline and exits non-zero on a budget breach (see BENCHMARKS.md).
    use ahl::telemetry::{LivenessChecker, LivenessConfig};
    let liveness = LivenessChecker::new(LivenessConfig::default());
    let mut cfg = SystemConfig::new(2, 3);
    cfg.clients = 4;
    cfg.outstanding = 8;
    cfg.workload = SystemWorkload::SmallBank { accounts: 1_000, theta: 0.0 };
    cfg.duration = SimDuration::from_secs(3);
    cfg.warmup = SimDuration::from_secs(1);
    cfg.liveness = Some(liveness.clone());
    cfg.profile = true;
    let report = ahl::system::run_system_report(cfg);
    assert!(liveness.ok(), "healthy run must not trip the oracle");
    assert_eq!(report.metrics.liveness_violations, 0);
    let profile = report.profile.expect("profiling was enabled");
    print!("{}", profile.render());
    assert!(profile.self_total_ns() <= profile.wall_ns);
    println!("OK: liveness oracle silent; profiler attributed the hot paths.");
}
