//! The crash-kill recovery matrix.
//!
//! A deterministic workload (batched tree mutations logged to the WAL,
//! periodic page-store checkpoints with manifest swaps) is first run once
//! with the kill switch unarmed to count every durable write site; then
//! it is re-run with a crash injected at **each** site in turn. Every
//! single run must recover to a valid prefix of the workload — at least
//! the last durable checkpoint, never anything unverified — and must be
//! able to finish the workload afterwards, landing on the exact same
//! final root as the crash-free run.

use ahl_crypto::{sha256_parts, Hash};
use ahl_store::SparseMerkleTree;
use ahl_wal::codec::{Reader, Writer};
use ahl_wal::{open_node_dir, write_manifest, GcStats, Manifest, NodeDir, TempDir, WalConfig};

const BATCHES: u64 = 24;
const OPS_PER_BATCH: u64 = 3;
const KEYS: u64 = 40;
const CHECKPOINT_EVERY: u64 = 4;

fn vh(i: u64) -> Hash {
    sha256_parts(&[&i.to_be_bytes()])
}

/// Apply batch `b` to the tree (mixed inserts/updates/deletes, keyed so
/// consecutive batches overlap — realistic churn for page sharing).
fn apply_batch(tree: &mut SparseMerkleTree, b: u64) {
    for j in 0..OPS_PER_BATCH {
        let k = (b * 7 + j * 11) % KEYS;
        if (b + j) % 9 == 8 {
            tree.remove(&format!("k{k}"));
        } else {
            tree.insert(&format!("k{k}"), vh(b * 100 + j));
        }
    }
}

/// Record payload: the batch index (replay needs ordering; the ops are
/// re-derived deterministically, standing in for serialized requests).
fn encode_batch(b: u64) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(b);
    w.into_bytes()
}

fn decode_batch(payload: &[u8]) -> Option<u64> {
    let mut r = Reader::new(payload);
    let b = r.u64()?;
    r.is_done().then_some(b)
}

/// Roots after applying batches `1..=m`, indexed by `m` (0 = genesis).
fn prefix_roots() -> Vec<Hash> {
    let mut tree = SparseMerkleTree::new();
    let mut roots = vec![tree.root_hash()];
    for b in 1..=BATCHES {
        apply_batch(&mut tree, b);
        roots.push(tree.root_hash());
    }
    roots
}

/// Rebuild the state from an already-opened node dir: load the durable
/// checkpoint, then replay the intact WAL tail contiguously.
fn state_from(node: &NodeDir) -> (SparseMerkleTree, u64) {
    let (mut tree, mut applied) = match &node.manifest {
        Some(m) => {
            let tree: SparseMerkleTree =
                node.pages.load_tree(m.root).expect("checkpoint pages verify");
            (tree, m.seq)
        }
        None => (SparseMerkleTree::new(), 0),
    };
    for payload in &node.tail {
        let b = decode_batch(payload).expect("intact record must decode");
        if b == applied + 1 {
            apply_batch(&mut tree, b);
            applied = b;
        } else if b > applied + 1 {
            break; // gap — stop replay
        }
        // b <= applied: already folded into the checkpoint.
    }
    (tree, applied)
}

/// Open, recover, and run the workload to completion from wherever the
/// directory left off; `Err` when the armed kill switch fires mid-run.
/// Returns the resume point plus the run's GC accounting (all zeros under
/// a config that never triggers collection).
fn run_workload(dir: &std::path::Path, cfg: &WalConfig) -> std::io::Result<(u64, GcStats)> {
    let mut node = open_node_dir(dir, cfg)?;
    let (mut tree, start) = state_from(&node);
    for b in (start + 1)..=BATCHES {
        apply_batch(&mut tree, b);
        node.wal.append(encode_batch(b));
        node.wal.commit()?;
        if b % CHECKPOINT_EVERY == 0 {
            node.pages.persist_tree(&tree)?;
            node.pages.sync()?;
            write_manifest(
                dir,
                &Manifest { seq: b, root: tree.root_hash(), meta: vec![] },
                &cfg.kill,
            )?;
            // Space reclamation strictly after the manifest is durable:
            // WAL compaction + retention, then page GC from the one root
            // a restart can now anchor on.
            node.wal.rotate_keep(2)?;
            node.pages.maybe_gc(&[tree.root_hash()])?;
        }
    }
    Ok((start, node.pages.gc_totals()))
}

/// Recovery check: reopen and rebuild.
fn recover_state(dir: &std::path::Path, cfg: &WalConfig) -> (SparseMerkleTree, u64) {
    let node = open_node_dir(dir, cfg).expect("recovery open");
    state_from(&node)
}

/// A config whose unarmed run exercises every *new* durable write site:
/// tiny segments force frequent seals (sidecar-index writes), a trigger
/// of 1 byte runs page GC at every checkpoint (copy + sweep sites), a
/// high live fraction forces live-page copies rather than pure sweeps,
/// and a one-segment WAL retention cap fires `unlink_oldest` beyond the
/// keep generations.
fn tight_cfg() -> WalConfig {
    WalConfig {
        segment_bytes: 1024,
        gc_trigger_bytes: 1,
        gc_live_frac: 0.95,
        retain_wal_segments: 1,
        ..WalConfig::default()
    }
}

/// Count the kill sites of a full crash-free run under `cfg`.
fn count_sites(cfg: &WalConfig) -> u64 {
    let dir = TempDir::new("recovery-count");
    run_workload(dir.path(), cfg).expect("unarmed run completes");
    cfg.kill.visited()
}

/// The full matrix: crash at every site `0..total` of the workload under
/// `make_cfg()`, and demand recovery to a valid prefix plus a clean
/// finish every time.
fn exhaust_matrix(make_cfg: fn() -> WalConfig, label: &str) {
    let roots = prefix_roots();
    let total = count_sites(&make_cfg());
    assert!(total > 50, "{label}: workload must exercise many write sites, got {total}");
    for site in 0..total {
        let dir = TempDir::new("recovery-kill");
        let cfg = make_cfg();
        cfg.kill.arm(site);
        let err = run_workload(dir.path(), &cfg).expect_err("armed run must crash");
        assert!(err.to_string().contains("killswitch"), "{label} site {site}: {err}");

        // Recover: the state must be a valid workload prefix, at least as
        // new as the last durable checkpoint.
        let (tree, applied) = recover_state(dir.path(), &cfg);
        assert!(
            (applied as usize) < roots.len(),
            "{label} site {site}: recovered past the workload"
        );
        assert_eq!(
            tree.root_hash(),
            roots[applied as usize],
            "{label} site {site}: recovered root must equal the prefix root at batch {applied}"
        );
        {
            let node = open_node_dir(dir.path(), &cfg).expect("open");
            if let Some(m) = &node.manifest {
                assert!(applied >= m.seq, "{label} site {site}: lost a checkpointed batch");
            }
        }

        // The recovered directory keeps working: finishing the workload
        // lands on the crash-free final root.
        let (resumed_from, _) = run_workload(dir.path(), &cfg).expect("resume completes");
        assert_eq!(
            resumed_from, applied,
            "{label} site {site}: resume starts at the recovered point"
        );
        let (final_tree, final_applied) = recover_state(dir.path(), &cfg);
        assert_eq!(final_applied, BATCHES, "{label} site {site}");
        assert_eq!(final_tree.root_hash(), roots[BATCHES as usize], "{label} site {site}");
    }
}

#[test]
fn kill_point_matrix_recovers_at_every_write_site() {
    exhaust_matrix(WalConfig::default, "default");
}

#[test]
fn kill_point_matrix_covers_gc_index_and_retention_sites() {
    // First prove the tight config actually reaches the new machinery in
    // an unarmed run — a matrix over sites that never fire proves nothing.
    {
        let dir = TempDir::new("recovery-tight-probe");
        let cfg = tight_cfg();
        let (_, gc) = run_workload(dir.path(), &cfg).expect("unarmed run completes");
        assert!(gc.runs > 0, "page GC must trigger under the tight config");
        assert!(gc.swept_segments > 0, "GC must sweep dead segments");
        assert!(gc.copied_pages > 0, "GC must copy live pages out of mostly-dead segments");
        let idx_files = std::fs::read_dir(dir.path().join("pages"))
            .expect("pages dir")
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "idx"))
            .count();
        assert!(idx_files > 0, "sealed segments must carry sidecar indexes");
        let tight_sites = cfg.kill.visited();
        let default_sites = count_sites(&WalConfig::default());
        assert!(
            tight_sites > default_sites,
            "tight config must add kill sites: {tight_sites} vs {default_sites}"
        );
    }
    exhaust_matrix(tight_cfg, "tight");
}

#[test]
fn double_crash_recovers_too() {
    // Crash, partially resume, crash again at every site of the resumed
    // run's first half — recovery after the second crash must still be a
    // valid prefix (the matrix above covers single crashes exhaustively).
    let roots = prefix_roots();
    for make_cfg in [WalConfig::default as fn() -> WalConfig, tight_cfg] {
        for (first, second) in [(5u64, 3u64), (20, 10), (40, 2), (60, 25)] {
            let dir = TempDir::new("recovery-double");
            let cfg = make_cfg();
            cfg.kill.arm(first);
            if run_workload(dir.path(), &cfg).is_ok() {
                continue; // workload finished before the armed site — nothing to crash
            }
            cfg.kill.arm(second);
            let _ = run_workload(dir.path(), &cfg); // may crash again or finish
            let (tree, applied) = recover_state(dir.path(), &cfg);
            assert_eq!(tree.root_hash(), roots[applied as usize], "first {first} second {second}");
            // Finish and verify the final root.
            run_workload(dir.path(), &cfg).expect("final resume");
            let (final_tree, final_applied) = recover_state(dir.path(), &cfg);
            assert_eq!(final_applied, BATCHES);
            assert_eq!(final_tree.root_hash(), roots[BATCHES as usize]);
        }
    }
}
