//! The crash-kill recovery matrix.
//!
//! A deterministic workload (batched tree mutations logged to the WAL,
//! periodic page-store checkpoints with manifest swaps) is first run once
//! with the kill switch unarmed to count every durable write site; then
//! it is re-run with a crash injected at **each** site in turn. Every
//! single run must recover to a valid prefix of the workload — at least
//! the last durable checkpoint, never anything unverified — and must be
//! able to finish the workload afterwards, landing on the exact same
//! final root as the crash-free run.

use ahl_crypto::{sha256_parts, Hash};
use ahl_store::SparseMerkleTree;
use ahl_wal::codec::{Reader, Writer};
use ahl_wal::{open_node_dir, write_manifest, Manifest, NodeDir, TempDir, WalConfig};

const BATCHES: u64 = 24;
const OPS_PER_BATCH: u64 = 3;
const KEYS: u64 = 40;
const CHECKPOINT_EVERY: u64 = 4;

fn vh(i: u64) -> Hash {
    sha256_parts(&[&i.to_be_bytes()])
}

/// Apply batch `b` to the tree (mixed inserts/updates/deletes, keyed so
/// consecutive batches overlap — realistic churn for page sharing).
fn apply_batch(tree: &mut SparseMerkleTree, b: u64) {
    for j in 0..OPS_PER_BATCH {
        let k = (b * 7 + j * 11) % KEYS;
        if (b + j) % 9 == 8 {
            tree.remove(&format!("k{k}"));
        } else {
            tree.insert(&format!("k{k}"), vh(b * 100 + j));
        }
    }
}

/// Record payload: the batch index (replay needs ordering; the ops are
/// re-derived deterministically, standing in for serialized requests).
fn encode_batch(b: u64) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(b);
    w.into_bytes()
}

fn decode_batch(payload: &[u8]) -> Option<u64> {
    let mut r = Reader::new(payload);
    let b = r.u64()?;
    r.is_done().then_some(b)
}

/// Roots after applying batches `1..=m`, indexed by `m` (0 = genesis).
fn prefix_roots() -> Vec<Hash> {
    let mut tree = SparseMerkleTree::new();
    let mut roots = vec![tree.root_hash()];
    for b in 1..=BATCHES {
        apply_batch(&mut tree, b);
        roots.push(tree.root_hash());
    }
    roots
}

/// Rebuild the state from an already-opened node dir: load the durable
/// checkpoint, then replay the intact WAL tail contiguously.
fn state_from(node: &NodeDir) -> (SparseMerkleTree, u64) {
    let (mut tree, mut applied) = match &node.manifest {
        Some(m) => {
            let tree: SparseMerkleTree =
                node.pages.load_tree(m.root).expect("checkpoint pages verify");
            (tree, m.seq)
        }
        None => (SparseMerkleTree::new(), 0),
    };
    for payload in &node.tail {
        let b = decode_batch(payload).expect("intact record must decode");
        if b == applied + 1 {
            apply_batch(&mut tree, b);
            applied = b;
        } else if b > applied + 1 {
            break; // gap — stop replay
        }
        // b <= applied: already folded into the checkpoint.
    }
    (tree, applied)
}

/// Open, recover, and run the workload to completion from wherever the
/// directory left off; `Err` when the armed kill switch fires mid-run.
fn run_workload(dir: &std::path::Path, cfg: &WalConfig) -> std::io::Result<u64> {
    let mut node = open_node_dir(dir, cfg)?;
    let (mut tree, start) = state_from(&node);
    for b in (start + 1)..=BATCHES {
        apply_batch(&mut tree, b);
        node.wal.append(encode_batch(b));
        node.wal.commit()?;
        if b % CHECKPOINT_EVERY == 0 {
            node.pages.persist_tree(&tree)?;
            node.pages.sync()?;
            write_manifest(
                dir,
                &Manifest { seq: b, root: tree.root_hash(), meta: vec![] },
                &cfg.kill,
            )?;
            node.wal.rotate_keep(2)?;
        }
    }
    Ok(start)
}

/// Recovery check: reopen and rebuild.
fn recover_state(dir: &std::path::Path, cfg: &WalConfig) -> (SparseMerkleTree, u64) {
    let node = open_node_dir(dir, cfg).expect("recovery open");
    state_from(&node)
}

/// Count the kill sites of a full crash-free run.
fn count_sites() -> u64 {
    let dir = TempDir::new("recovery-count");
    let cfg = WalConfig::default();
    run_workload(dir.path(), &cfg).expect("unarmed run completes");
    cfg.kill.visited()
}

#[test]
fn kill_point_matrix_recovers_at_every_write_site() {
    let roots = prefix_roots();
    let total = count_sites();
    assert!(total > 50, "workload must exercise many write sites, got {total}");
    for site in 0..total {
        let dir = TempDir::new("recovery-kill");
        let cfg = WalConfig::default();
        cfg.kill.arm(site);
        let err = run_workload(dir.path(), &cfg).expect_err("armed run must crash");
        assert!(err.to_string().contains("killswitch"), "site {site}: {err}");

        // Recover: the state must be a valid workload prefix, at least as
        // new as the last durable checkpoint.
        let (tree, applied) = recover_state(dir.path(), &cfg);
        assert!(
            (applied as usize) < roots.len(),
            "site {site}: recovered past the workload"
        );
        assert_eq!(
            tree.root_hash(),
            roots[applied as usize],
            "site {site}: recovered root must equal the prefix root at batch {applied}"
        );
        {
            let node = open_node_dir(dir.path(), &cfg).expect("open");
            if let Some(m) = &node.manifest {
                assert!(applied >= m.seq, "site {site}: lost a checkpointed batch");
            }
        }

        // The recovered directory keeps working: finishing the workload
        // lands on the crash-free final root.
        let resumed_from = run_workload(dir.path(), &cfg).expect("resume completes");
        assert_eq!(resumed_from, applied, "site {site}: resume starts at the recovered point");
        let (final_tree, final_applied) = recover_state(dir.path(), &cfg);
        assert_eq!(final_applied, BATCHES, "site {site}");
        assert_eq!(final_tree.root_hash(), roots[BATCHES as usize], "site {site}");
    }
}

#[test]
fn double_crash_recovers_too() {
    // Crash, partially resume, crash again at every site of the resumed
    // run's first half — recovery after the second crash must still be a
    // valid prefix (the matrix above covers single crashes exhaustively).
    let roots = prefix_roots();
    for (first, second) in [(5u64, 3u64), (20, 10), (40, 2), (60, 25)] {
        let dir = TempDir::new("recovery-double");
        let cfg = WalConfig::default();
        cfg.kill.arm(first);
        if run_workload(dir.path(), &cfg).is_ok() {
            continue; // workload finished before the armed site — nothing to crash
        }
        cfg.kill.arm(second);
        let _ = run_workload(dir.path(), &cfg); // may crash again or finish
        let (tree, applied) = recover_state(dir.path(), &cfg);
        assert_eq!(tree.root_hash(), roots[applied as usize], "first {first} second {second}");
        // Finish and verify the final root.
        run_workload(dir.path(), &cfg).expect("final resume");
        let (final_tree, final_applied) = recover_state(dir.path(), &cfg);
        assert_eq!(final_applied, BATCHES);
        assert_eq!(final_tree.root_hash(), roots[BATCHES as usize]);
    }
}
