//! # ahl-wal — durable write-ahead log, page store, and crash recovery
//!
//! The persistence subsystem the rest of the stack runs on. Until now the
//! "durable checkpoint" a restarting replica resumed from was an
//! in-memory field *modelling* a disk; this crate makes it a real node
//! directory that survives `SIGKILL`:
//!
//! ```text
//! <node-dir>/
//!   wal/wal-00000000.seg      append-only CRC-framed record segments
//!   wal/wal-00000001.seg      (rotated; whole old segments unlinked at
//!   ...                        checkpoints and by the retention caps —
//!                              no in-place rewriting; ids may have gaps)
//!   pages/pages-00000000.seg  content-addressed SMT node pages
//!   pages/pages-00000000.idx  sidecar index of a sealed segment (pure
//!   ...                        cache: open() loads it instead of
//!                              re-scanning frames; ignored if invalid)
//!   MANIFEST                  atomically swapped checkpoint pointer
//! ```
//!
//! ## Bounded disk, bounded reopen
//!
//! Storage stays bounded under sustained churn through three knobs, all
//! on [`WalConfig`]:
//!
//! * **Page GC/compaction** ([`PageStore::gc`] /
//!   [`PageStore::maybe_gc`], triggered at `gc_trigger_bytes`):
//!   mark-and-sweep from the retained checkpoint roots; fully-dead
//!   segments are unlinked, mostly-dead ones (live fraction below
//!   `gc_live_frac`) have their live pages copied into the active segment
//!   first. Gated on a durable manifest, like WAL compaction.
//! * **WAL retention caps** (`retain_wal_segments` / `retain_wal_bytes`):
//!   enforced inside [`Wal::rotate_keep`], i.e. only at the moment a
//!   durable checkpoint has made old records redundant.
//! * **Lazy reads** ([`PageCache`]): fault-on-demand, byte-bounded,
//!   per-node Merkle-verified key lookups — O(working set) instead of
//!   [`PageStore::load_tree`]'s O(history); the `.idx` sidecars keep
//!   [`PageStore::open`] itself O(index) for sealed segments.
//!
//! Three layers:
//!
//! * [`Wal`] — an append-only, segmented log with **batched group
//!   commit**: records are CRC-32 framed, appends buffer until
//!   [`Wal::commit`], and the [`FsyncPolicy`] decides whether each commit
//!   pays a real `fdatasync` (`Always`), amortizes it (`EveryN`), or
//!   skips it for deterministic simulation (`Off`). A torn tail — crash
//!   mid-write — parses as end-of-log and is truncated on reopen.
//! * [`PageStore`] — persists a [`ahl_store::SparseMerkleTree`] snapshot
//!   as **content-addressed pages** (one per tree node, keyed by node
//!   hash). Because the in-memory tree is structurally shared between
//!   checkpoints, so is the disk: persisting checkpoint *k+1* writes only
//!   the pages along mutated root paths and *references* everything else
//!   — consecutive checkpoints share unchanged pages. Loading rebuilds
//!   the tree and hard-verifies the root, so the store can fail but never
//!   lie.
//! * [`open_node_dir`] — recovery: validate the [`Manifest`] (CRC +
//!   root-page presence; anything suspect is treated as absent), truncate
//!   torn WAL/page tails, and hand back the intact WAL records past the
//!   last durable checkpoint for replay.
//!
//! ## Crash model and fault injection
//!
//! Every durable write site consults a [`KillSwitch`]; arming it at site
//! `k` makes that write *torn* (a prefix reaches the disk) and surfaces an
//! error the owning node treats as a crash. Counting one unarmed run and
//! then re-running armed at `0..total` enumerates a complete kill-point
//! matrix — the recovery acceptance test: every injected crash must
//! recover to the last durable checkpoint plus every intact WAL record,
//! with nothing unverified served.
//!
//! ## Quickstart
//!
//! ```
//! use ahl_wal::{open_node_dir, write_manifest, Manifest, TempDir, WalConfig};
//! use ahl_store::SparseMerkleTree;
//! use ahl_crypto::sha256;
//!
//! let dir = TempDir::new("quickstart");
//! let cfg = WalConfig::default();
//!
//! // A fresh node dir: no checkpoint, no log.
//! let mut node = open_node_dir(dir.path(), &cfg).unwrap();
//! assert!(node.manifest.is_none() && node.tail.is_empty());
//!
//! // Log two batches (group commit), checkpoint the state tree.
//! node.wal.append(b"batch-1".to_vec());
//! node.wal.append(b"batch-2".to_vec());
//! node.wal.commit().unwrap();
//! let mut state = SparseMerkleTree::new();
//! state.insert("alice", sha256(b"100"));
//! node.pages.persist_tree(&state).unwrap();
//! node.pages.sync().unwrap();
//! write_manifest(
//!     dir.path(),
//!     &Manifest { seq: 2, root: state.root_hash(), meta: vec![] },
//!     &cfg.kill,
//! )
//! .unwrap();
//!
//! // "Crash" (drop handles) and recover: the checkpoint and both records
//! // come back; the tree rebuilds to exactly the persisted root.
//! drop(node);
//! let node = open_node_dir(dir.path(), &cfg).unwrap();
//! let manifest = node.manifest.unwrap();
//! assert_eq!(manifest.seq, 2);
//! let recovered: SparseMerkleTree = node.pages.load_tree(manifest.root).unwrap();
//! assert_eq!(recovered.root_hash(), state.root_hash());
//! assert_eq!(node.tail.len(), 2);
//! ```

#![warn(missing_docs)]

mod cache;
pub mod codec;
mod kill;
mod log;
mod manifest;
mod pages;
mod segscan;
mod tempdir;

pub use cache::{CacheStats, PageCache};
pub use kill::KillSwitch;
pub use log::{FsyncPolicy, Wal, WalConfig, WalStats};
pub use manifest::{read_manifest, write_manifest, Manifest};
pub use pages::{GcStats, OpenStats, PageStore, PageValue, PersistStats};
pub use tempdir::TempDir;

use std::path::Path;

use ahl_crypto::Hash;

/// Why a load/recovery step failed.
#[derive(Debug)]
pub enum WalError {
    /// Underlying file-system error (including injected crashes).
    Io(std::io::Error),
    /// A page referenced by the tree is not in the store.
    MissingPage(Hash),
    /// On-disk bytes failed validation (CRC, decode, or root mismatch).
    Corrupt(&'static str),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "io: {e}"),
            WalError::MissingPage(h) => write!(f, "missing page {:02x}{:02x}..", h.0[0], h.0[1]),
            WalError::Corrupt(what) => write!(f, "corrupt: {what}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// A reopened node directory: the recovery entry point.
pub struct NodeDir {
    /// The write-ahead log, truncated past any torn tail and positioned
    /// for appending.
    pub wal: Wal,
    /// The page store, index rebuilt.
    pub pages: PageStore,
    /// The validated durable checkpoint pointer, if one was ever
    /// published (and its root page survived). `None` means cold start.
    pub manifest: Option<Manifest>,
    /// Every intact WAL record, oldest first. The owner filters these by
    /// its record framing (records at or below the manifest's sequence
    /// are already folded into the checkpoint).
    pub tail: Vec<Vec<u8>>,
}

/// Open (or create) a node directory and run recovery validation: read
/// the manifest, reject it if its CRC fails or its root page is missing
/// (falling back to cold start — correctness over completeness), truncate
/// torn WAL/page tails, and return the intact WAL records for replay.
pub fn open_node_dir(dir: &Path, cfg: &WalConfig) -> std::io::Result<NodeDir> {
    std::fs::create_dir_all(dir)?;
    let pages = PageStore::open(&dir.join("pages"), cfg.clone())?;
    let (wal, tail) = Wal::open(&dir.join("wal"), cfg.clone())?;
    let manifest = read_manifest(dir).filter(|m| {
        // A manifest pointing at pages that never finished writing (crash
        // between page persist and manifest swap cannot cause this — the
        // swap happens after the page sync — but a corrupted page segment
        // can) is unusable: treat as absent.
        m.root == Hash::ZERO || pages.contains(&m.root)
    });
    Ok(NodeDir { wal, pages, manifest, tail })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_dir_is_empty() {
        let dir = TempDir::new("nodedir-fresh");
        let node = open_node_dir(dir.path(), &WalConfig::default()).expect("open");
        assert!(node.manifest.is_none());
        assert!(node.tail.is_empty());
        assert_eq!(node.pages.page_count(), 0);
    }

    #[test]
    fn manifest_with_missing_root_page_is_rejected() {
        let dir = TempDir::new("nodedir-dangling");
        let cfg = WalConfig::default();
        {
            let _node = open_node_dir(dir.path(), &cfg).expect("create");
            // Publish a manifest whose root was never persisted.
            write_manifest(
                dir.path(),
                &Manifest { seq: 7, root: ahl_crypto::sha256(b"nope"), meta: vec![] },
                &cfg.kill,
            )
            .expect("write");
        }
        let node = open_node_dir(dir.path(), &cfg).expect("reopen");
        assert!(node.manifest.is_none(), "dangling manifest must be treated as absent");
    }
}
