//! Crash fault injection for durability code paths.
//!
//! Every durable write site (WAL record, page, manifest temp write,
//! manifest swap) asks the [`KillSwitch`] for permission before touching
//! the file. An unarmed switch only counts sites; an armed switch fires at
//! the chosen site index: the site writes a *torn prefix* of its bytes
//! (simulating a power cut mid-`write(2)`) and gets an error back, which
//! the owning node treats as a crash. Counting a run once with the switch
//! unarmed therefore enumerates every kill point, and re-running with the
//! switch armed at `0..total` injects a crash at each of them — the
//! recovery acceptance matrix.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Debug, Default)]
struct Inner {
    /// Site index to fire at; negative = disarmed. One-shot: firing
    /// disarms, so a node restarting after the injected crash can persist
    /// again (a real machine does not lose power twice on schedule).
    armed: AtomicI64,
    /// Durable write sites visited so far (monotonic across arm cycles).
    visited: AtomicU64,
    fired: AtomicBool,
    /// Whether the pending (and, once fired, the most recent) injection is
    /// a *transient* I/O error — the write fails short but the process
    /// survives — rather than a power-cut crash.
    transient: AtomicBool,
}

/// Shared, cloneable crash injector (see module docs). The default switch
/// is disarmed and costs two atomic operations per write site.
#[derive(Clone, Debug)]
pub struct KillSwitch {
    inner: Arc<Inner>,
}

impl Default for KillSwitch {
    fn default() -> Self {
        let inner = Inner { armed: AtomicI64::new(-1), ..Inner::default() };
        KillSwitch { inner: Arc::new(inner) }
    }
}

impl KillSwitch {
    /// A disarmed switch (counts sites, never fires).
    pub fn new() -> Self {
        Self::default()
    }

    /// Fire at the `at`-th write site from now (0 = the very next one).
    /// Counting restarts: `visited` is reset so the index is relative to
    /// this arming.
    pub fn arm(&self, at: u64) {
        self.inner.visited.store(0, Ordering::SeqCst);
        self.inner.fired.store(false, Ordering::SeqCst);
        self.inner.transient.store(false, Ordering::SeqCst);
        self.inner.armed.store(at as i64, Ordering::SeqCst);
    }

    /// Like [`KillSwitch::arm`], but inject a *transient* I/O error
    /// instead of a crash: the site still tears its write (a short
    /// `write(2)` return), but the caller is expected to survive — which
    /// is exactly what pins the all-or-nothing rollback discipline at
    /// every durable write site.
    pub fn arm_transient(&self, at: u64) {
        self.inner.visited.store(0, Ordering::SeqCst);
        self.inner.fired.store(false, Ordering::SeqCst);
        self.inner.transient.store(true, Ordering::SeqCst);
        self.inner.armed.store(at as i64, Ordering::SeqCst);
    }

    /// Disarm without firing.
    pub fn disarm(&self) {
        self.inner.armed.store(-1, Ordering::SeqCst);
    }

    /// Write sites visited since the last [`KillSwitch::arm`] (or ever,
    /// for a never-armed switch).
    pub fn visited(&self) -> u64 {
        self.inner.visited.load(Ordering::SeqCst)
    }

    /// Whether the armed kill has fired.
    pub fn fired(&self) -> bool {
        self.inner.fired.load(Ordering::SeqCst)
    }

    /// Whether the most recent fire was armed as transient
    /// ([`KillSwitch::arm_transient`]). A write site that got `Err` from
    /// [`KillSwitch::check`] consults this to decide between the crash
    /// emulation (torn bytes stay, process is dead) and the transient
    /// path (roll the file back, stay usable).
    pub fn fired_transient(&self) -> bool {
        self.inner.fired.load(Ordering::SeqCst) && self.inner.transient.load(Ordering::SeqCst)
    }

    /// Visit one write site. `Err` means the injected fault fires *now*:
    /// the caller must emulate a torn write (persist only a prefix) and —
    /// unless [`KillSwitch::fired_transient`] — propagate the error as a
    /// node crash.
    pub fn check(&self) -> std::io::Result<()> {
        let site = self.inner.visited.fetch_add(1, Ordering::SeqCst);
        let armed = self.inner.armed.load(Ordering::SeqCst);
        if armed >= 0 && site == armed as u64 {
            self.inner.armed.store(-1, Ordering::SeqCst);
            self.inner.fired.store(true, Ordering::SeqCst);
            if self.inner.transient.load(Ordering::SeqCst) {
                return Err(std::io::Error::other("killswitch: injected transient io error"));
            }
            return Err(std::io::Error::other("killswitch: injected crash"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_counts_only() {
        let k = KillSwitch::new();
        for _ in 0..5 {
            k.check().expect("disarmed never fires");
        }
        assert_eq!(k.visited(), 5);
        assert!(!k.fired());
    }

    #[test]
    fn armed_fires_once_at_index() {
        let k = KillSwitch::new();
        k.check().expect("pre-arm site");
        k.arm(2);
        assert!(k.check().is_ok());
        assert!(k.check().is_ok());
        assert!(k.check().is_err(), "site 2 after arming fires");
        assert!(k.fired());
        assert!(!k.fired_transient());
        // One-shot: the restarted node persists freely afterwards.
        for _ in 0..10 {
            k.check().expect("disarmed after firing");
        }
    }

    #[test]
    fn transient_arm_is_distinguishable() {
        let k = KillSwitch::new();
        k.arm_transient(1);
        assert!(k.check().is_ok());
        let err = k.check().expect_err("site 1 fires");
        assert!(err.to_string().contains("transient"));
        assert!(k.fired());
        assert!(k.fired_transient());
        // Re-arming as a crash clears the transient flag.
        k.arm(0);
        assert!(k.check().is_err());
        assert!(!k.fired_transient());
    }
}
