//! Crash fault injection for durability code paths.
//!
//! Every durable write site (WAL record, page, manifest temp write,
//! manifest swap) asks the [`KillSwitch`] for permission before touching
//! the file. An unarmed switch only counts sites; an armed switch fires at
//! the chosen site index: the site writes a *torn prefix* of its bytes
//! (simulating a power cut mid-`write(2)`) and gets an error back, which
//! the owning node treats as a crash. Counting a run once with the switch
//! unarmed therefore enumerates every kill point, and re-running with the
//! switch armed at `0..total` injects a crash at each of them — the
//! recovery acceptance matrix.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Debug, Default)]
struct Inner {
    /// Site index to fire at; negative = disarmed. One-shot: firing
    /// disarms, so a node restarting after the injected crash can persist
    /// again (a real machine does not lose power twice on schedule).
    armed: AtomicI64,
    /// Durable write sites visited so far (monotonic across arm cycles).
    visited: AtomicU64,
    fired: AtomicBool,
}

/// Shared, cloneable crash injector (see module docs). The default switch
/// is disarmed and costs two atomic operations per write site.
#[derive(Clone, Debug)]
pub struct KillSwitch {
    inner: Arc<Inner>,
}

impl Default for KillSwitch {
    fn default() -> Self {
        let inner = Inner { armed: AtomicI64::new(-1), ..Inner::default() };
        KillSwitch { inner: Arc::new(inner) }
    }
}

impl KillSwitch {
    /// A disarmed switch (counts sites, never fires).
    pub fn new() -> Self {
        Self::default()
    }

    /// Fire at the `at`-th write site from now (0 = the very next one).
    /// Counting restarts: `visited` is reset so the index is relative to
    /// this arming.
    pub fn arm(&self, at: u64) {
        self.inner.visited.store(0, Ordering::SeqCst);
        self.inner.fired.store(false, Ordering::SeqCst);
        self.inner.armed.store(at as i64, Ordering::SeqCst);
    }

    /// Disarm without firing.
    pub fn disarm(&self) {
        self.inner.armed.store(-1, Ordering::SeqCst);
    }

    /// Write sites visited since the last [`KillSwitch::arm`] (or ever,
    /// for a never-armed switch).
    pub fn visited(&self) -> u64 {
        self.inner.visited.load(Ordering::SeqCst)
    }

    /// Whether the armed kill has fired.
    pub fn fired(&self) -> bool {
        self.inner.fired.load(Ordering::SeqCst)
    }

    /// Visit one write site. `Err` means the injected crash fires *now*:
    /// the caller must emulate a torn write (persist only a prefix) and
    /// propagate the error as a node crash.
    pub fn check(&self) -> std::io::Result<()> {
        let site = self.inner.visited.fetch_add(1, Ordering::SeqCst);
        let armed = self.inner.armed.load(Ordering::SeqCst);
        if armed >= 0 && site == armed as u64 {
            self.inner.armed.store(-1, Ordering::SeqCst);
            self.inner.fired.store(true, Ordering::SeqCst);
            return Err(std::io::Error::other("killswitch: injected crash"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_counts_only() {
        let k = KillSwitch::new();
        for _ in 0..5 {
            k.check().expect("disarmed never fires");
        }
        assert_eq!(k.visited(), 5);
        assert!(!k.fired());
    }

    #[test]
    fn armed_fires_once_at_index() {
        let k = KillSwitch::new();
        k.check().expect("pre-arm site");
        k.arm(2);
        assert!(k.check().is_ok());
        assert!(k.check().is_ok());
        assert!(k.check().is_err(), "site 2 after arming fires");
        assert!(k.fired());
        // One-shot: the restarted node persists freely afterwards.
        for _ in 0..10 {
            k.check().expect("disarmed after firing");
        }
    }
}
