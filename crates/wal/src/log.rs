//! Append-only, CRC-framed, segmented write-ahead log with batched group
//! commit.
//!
//! ## Record framing
//!
//! Every record is `[u32 len][u32 crc][payload]` (big-endian, CRC-32 of
//! the payload). A reader accepts a record only when the full frame is
//! present *and* the CRC matches — a torn tail (crash mid-write) therefore
//! parses as "log ends here" and is physically truncated on reopen, never
//! replayed as garbage.
//!
//! ## Segments
//!
//! The log is a sequence of `wal-<id>.seg` files; appends go to the
//! highest id, and a segment is sealed once it exceeds
//! [`WalConfig::segment_bytes`]. Sealed segments are immutable, which is
//! what makes checkpoint-driven compaction safe: when a durable checkpoint
//! lands, the owner calls [`Wal::rotate_keep`] and whole old segments are
//! unlinked — no in-place rewriting, ever.
//!
//! ## Group commit
//!
//! [`Wal::append`] only buffers; [`Wal::commit`] writes the whole batch
//! and applies the [`FsyncPolicy`]: `Always` pays one `fdatasync` per
//! commit (classic durability), `EveryN(n)` amortizes the sync over `n`
//! commits (group commit — the default for production configs), `Off`
//! never syncs (simulation runs, where the crash model is process kill,
//! not power loss). The `wal_ops` bench measures exactly this trade.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::codec::{encode_frame, fsync_dir};
use crate::kill::KillSwitch;
use crate::segscan::recover_segments;

/// When the log schedules `fdatasync`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync on every commit: durable through power loss, slowest.
    Always,
    /// Sync every `n` commits (batched group commit): bounded loss window.
    EveryN(u32),
    /// Sync once the bytes written since the last sync reach the
    /// threshold (group commit by *volume*): bounds the loss window in
    /// bytes rather than commits, which is the better knob when record
    /// sizes vary wildly — many small commits amortize into one sync,
    /// while a single huge batch still syncs promptly.
    EveryBytes(u64),
    /// Never sync: fastest; durable through process kill but not power
    /// loss. The right policy for deterministic simulation runs.
    Off,
}

/// Configuration shared by the WAL, page store, and manifest writer.
#[derive(Clone, Debug)]
pub struct WalConfig {
    /// Seal the active segment beyond this many bytes.
    pub segment_bytes: u64,
    /// Fsync schedule.
    pub fsync: FsyncPolicy,
    /// Crash injector consulted at every durable write site.
    pub kill: KillSwitch,
    /// Run page-store garbage collection
    /// ([`crate::PageStore::maybe_gc`]) once total page bytes reach this
    /// threshold. `u64::MAX` (the default) disables automatic GC.
    pub gc_trigger_bytes: u64,
    /// Compaction threshold: a sealed page segment whose live fraction
    /// (root-reachable frame bytes / total frame bytes) falls below this
    /// has its live pages copied into the active segment and is unlinked.
    /// Fully-dead segments are always unlinked regardless.
    pub gc_live_frac: f64,
    /// Retention cap on WAL segment *files* kept after a checkpoint
    /// compaction ([`Wal::rotate_keep`]). Segments seal strictly in
    /// order, so a count cap is an age cap. `usize::MAX` = uncapped.
    pub retain_wal_segments: usize,
    /// Retention cap on total WAL frame bytes kept after a checkpoint
    /// compaction. `u64::MAX` = uncapped.
    pub retain_wal_bytes: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            segment_bytes: 8 << 20,
            fsync: FsyncPolicy::Off,
            kill: KillSwitch::new(),
            gc_trigger_bytes: u64::MAX,
            gc_live_frac: 0.5,
            retain_wal_segments: usize::MAX,
            retain_wal_bytes: u64::MAX,
        }
    }
}

/// Write-side counters (throughput accounting for the bench and stats).
#[derive(Clone, Copy, Debug, Default)]
pub struct WalStats {
    /// Records durably written (framed and flushed to the segment file).
    pub records: u64,
    /// Commit batches flushed.
    pub commits: u64,
    /// `fdatasync` calls issued.
    pub syncs: u64,
    /// Frame bytes written.
    pub bytes: u64,
    /// Segment files unlinked by the retention caps (beyond the `keep`
    /// generations the checkpoint compaction already drops).
    pub retention_unlinked: u64,
    /// Frame bytes reclaimed by the retention caps.
    pub retention_bytes: u64,
}

fn segment_path(dir: &Path, id: u64) -> PathBuf {
    crate::segscan::segment_path(dir, "wal", id)
}

/// The segmented write-ahead log (see module docs).
pub struct Wal {
    dir: PathBuf,
    cfg: WalConfig,
    active: File,
    active_bytes: u64,
    /// Live segment ids, ascending; the last is the active one.
    segments: Vec<u64>,
    /// Intact bytes per live segment, parallel to `segments`. The active
    /// segment's entry is only finalized on rotate; [`Wal::disk_bytes`]
    /// substitutes `active_bytes` for it.
    seg_bytes: Vec<u64>,
    pending: Vec<Vec<u8>>,
    commits_since_sync: u32,
    bytes_since_sync: u64,
    stats: WalStats,
}

impl Wal {
    /// Open (or create) the log in `dir`, returning the log positioned for
    /// appending plus every intact record payload in order. A torn or
    /// corrupt record ends the log: the file is truncated at that point
    /// and any later segments (which could only postdate the tear) are
    /// deleted.
    pub fn open(dir: &Path, cfg: WalConfig) -> std::io::Result<(Wal, Vec<Vec<u8>>)> {
        let mut records = Vec::new();
        let keep = recover_segments(dir, "wal", 0, &mut |_, _, payload| {
            records.push(payload.to_vec());
        })?;
        let active_id = *keep.last().expect("at least one segment");
        let mut active =
            OpenOptions::new().read(true).write(true).open(segment_path(dir, active_id))?;
        let active_bytes = active.seek(SeekFrom::End(0))?;
        // Sizes are read *after* the recovery scan, so a truncated torn
        // tail is already excluded.
        let mut seg_bytes = Vec::with_capacity(keep.len());
        for &id in &keep {
            seg_bytes.push(std::fs::metadata(segment_path(dir, id))?.len());
        }
        Ok((
            Wal {
                dir: dir.to_path_buf(),
                cfg,
                active,
                active_bytes,
                segments: keep,
                seg_bytes,
                pending: Vec::new(),
                commits_since_sync: 0,
                bytes_since_sync: 0,
                stats: WalStats::default(),
            },
            records,
        ))
    }

    /// Buffer one record payload for the next [`Wal::commit`].
    pub fn append(&mut self, payload: Vec<u8>) {
        self.pending.push(payload);
    }

    /// Number of records buffered but not yet committed.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Write every buffered record to the active segment and apply the
    /// fsync policy. On an injected crash the failing record is written as
    /// a torn prefix (recovery must cope with exactly that) and the error
    /// propagates; earlier records of the batch are already intact.
    pub fn commit(&mut self) -> std::io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let _prof = ahl_telemetry::Profiler::span("wal.group_commit");
        for payload in std::mem::take(&mut self.pending) {
            let frame = encode_frame(&payload);
            if let Err(e) = self.cfg.kill.check() {
                // Torn write: half the frame reaches the disk.
                let _ = self.active.write_all(&frame[..frame.len() / 2]);
                return Err(e);
            }
            self.active.write_all(&frame)?;
            self.active_bytes += frame.len() as u64;
            self.bytes_since_sync += frame.len() as u64;
            self.stats.records += 1;
            self.stats.bytes += frame.len() as u64;
        }
        self.stats.commits += 1;
        match self.cfg.fsync {
            FsyncPolicy::Always => {
                self.active.sync_data()?;
                self.stats.syncs += 1;
                self.bytes_since_sync = 0;
            }
            FsyncPolicy::EveryN(n) => {
                self.commits_since_sync += 1;
                if self.commits_since_sync >= n.max(1) {
                    self.active.sync_data()?;
                    self.stats.syncs += 1;
                    self.commits_since_sync = 0;
                    self.bytes_since_sync = 0;
                }
            }
            FsyncPolicy::EveryBytes(threshold) => {
                if self.bytes_since_sync >= threshold.max(1) {
                    self.active.sync_data()?;
                    self.stats.syncs += 1;
                    self.bytes_since_sync = 0;
                }
            }
            FsyncPolicy::Off => {}
        }
        if self.active_bytes >= self.cfg.segment_bytes {
            self.rotate()?;
        }
        Ok(())
    }

    /// Force an `fdatasync` of the active segment regardless of policy
    /// (page/manifest barriers call this before publishing a checkpoint).
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.active.sync_data()?;
        self.stats.syncs += 1;
        Ok(())
    }

    /// Seal the active segment and open a fresh one. Under a durable
    /// fsync policy the sealed segment's data AND the new directory entry
    /// are synced — a deferred `EveryN` sync must not leave a sealed
    /// segment's tail forever unsynced, and a power cut must not lose the
    /// newly created file.
    pub fn rotate(&mut self) -> std::io::Result<()> {
        if !matches!(self.cfg.fsync, FsyncPolicy::Off) {
            self.active.sync_data()?;
            self.stats.syncs += 1;
            self.commits_since_sync = 0;
            self.bytes_since_sync = 0;
        }
        let next = self.segments.last().expect("non-empty") + 1;
        if let Some(last) = self.seg_bytes.last_mut() {
            *last = self.active_bytes;
        }
        self.active = File::create(segment_path(&self.dir, next))?;
        self.active_bytes = 0;
        self.segments.push(next);
        self.seg_bytes.push(0);
        if !matches!(self.cfg.fsync, FsyncPolicy::Off) {
            fsync_dir(&self.dir)?;
        }
        Ok(())
    }

    /// Checkpoint compaction: rotate to a fresh segment, then unlink the
    /// oldest segments until at most `keep` remain, then apply the
    /// retention caps ([`WalConfig::retain_wal_segments`] /
    /// [`WalConfig::retain_wal_bytes`]) on top. Callers keep two
    /// generations (the fresh segment plus everything since the *previous*
    /// checkpoint), mirroring the one-interval retention of executed
    /// protocol instances: records between the last durable checkpoint and
    /// the crash point stay replayable.
    ///
    /// The caps are enforced *only here* — at the moment a durable
    /// checkpoint has just landed, every record in the older segments is
    /// already folded into it, so dropping more generations trades replay
    /// and catch-up depth for bounded disk, never durability. Between
    /// checkpoints nothing above the last durable cert is redundant yet,
    /// so the log may transiently exceed the caps.
    pub fn rotate_keep(&mut self, keep: usize) -> std::io::Result<()> {
        self.rotate()?;
        let mut removed = false;
        while self.segments.len() > keep.max(1) {
            self.unlink_oldest(false)?;
            removed = true;
        }
        while self.segments.len() > 1
            && (self.segments.len() > self.cfg.retain_wal_segments.max(1)
                || self.disk_bytes() > self.cfg.retain_wal_bytes)
        {
            self.unlink_oldest(true)?;
            removed = true;
        }
        // A lost unlink only resurrects pre-checkpoint records (skipped
        // on replay), so the directory sync here is about not *keeping*
        // disk space forever, not correctness; still honor the policy.
        if removed && !matches!(self.cfg.fsync, FsyncPolicy::Off) {
            fsync_dir(&self.dir)?;
        }
        Ok(())
    }

    /// Unlink the oldest live segment. Each unlink is a durable write
    /// site: the kill-point matrix covers a crash after any subset of the
    /// removals (recovery then sees fewer — but only pre-checkpoint —
    /// records).
    fn unlink_oldest(&mut self, retention: bool) -> std::io::Result<()> {
        self.cfg.kill.check()?;
        let old = self.segments.remove(0);
        let bytes = self.seg_bytes.remove(0);
        std::fs::remove_file(segment_path(&self.dir, old))?;
        if retention {
            self.stats.retention_unlinked += 1;
            self.stats.retention_bytes += bytes;
        }
        Ok(())
    }

    /// Number of live segment files.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Intact frame bytes across all live segments (disk-pressure
    /// accounting for the retention caps and the soak budgets).
    pub fn disk_bytes(&self) -> u64 {
        let sealed: u64 =
            self.seg_bytes[..self.seg_bytes.len().saturating_sub(1)].iter().sum();
        sealed + self.active_bytes
    }

    /// Write-side counters since open.
    pub fn stats(&self) -> WalStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;

    fn rec(i: u64) -> Vec<u8> {
        format!("record-{i}-{}", "x".repeat((i % 7) as usize)).into_bytes()
    }

    #[test]
    fn append_commit_reopen_round_trip() {
        let dir = TempDir::new("wal-rt");
        let (mut wal, existing) = Wal::open(dir.path(), WalConfig::default()).expect("open");
        assert!(existing.is_empty());
        for i in 0..100 {
            wal.append(rec(i));
            if i % 10 == 9 {
                wal.commit().expect("commit");
            }
        }
        wal.commit().expect("final commit");
        assert_eq!(wal.stats().records, 100);
        drop(wal);
        let (_, records) = Wal::open(dir.path(), WalConfig::default()).expect("reopen");
        assert_eq!(records.len(), 100);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(*r, rec(i as u64));
        }
    }

    #[test]
    fn uncommitted_records_are_lost() {
        let dir = TempDir::new("wal-uncommitted");
        let (mut wal, _) = Wal::open(dir.path(), WalConfig::default()).expect("open");
        wal.append(rec(1));
        wal.commit().expect("commit");
        wal.append(rec(2)); // never committed
        drop(wal);
        let (_, records) = Wal::open(dir.path(), WalConfig::default()).expect("reopen");
        assert_eq!(records.len(), 1);
    }

    #[test]
    fn torn_tail_truncated_on_reopen() {
        let dir = TempDir::new("wal-torn");
        let (mut wal, _) = Wal::open(dir.path(), WalConfig::default()).expect("open");
        for i in 0..5 {
            wal.append(rec(i));
        }
        wal.commit().expect("commit");
        drop(wal);
        // Tear the last record at every possible byte boundary.
        let seg = segment_path(dir.path(), 0);
        let full = std::fs::read(&seg).expect("segment");
        let last_frame = 8 + rec(4).len();
        for cut in 1..last_frame {
            std::fs::write(&seg, &full[..full.len() - cut]).expect("tear");
            let (mut wal, records) = Wal::open(dir.path(), WalConfig::default()).expect("reopen");
            assert_eq!(records.len(), 4, "cut {cut}: the torn record is dropped");
            // The log keeps working after truncation.
            wal.append(rec(99));
            wal.commit().expect("append after tear");
            drop(wal);
            let (_, records) = Wal::open(dir.path(), WalConfig::default()).expect("reopen 2");
            assert_eq!(records.len(), 5);
            assert_eq!(records[4], rec(99));
            std::fs::write(&seg, &full).expect("restore");
        }
    }

    #[test]
    fn corrupt_crc_ends_log() {
        let dir = TempDir::new("wal-crc");
        let (mut wal, _) = Wal::open(dir.path(), WalConfig::default()).expect("open");
        for i in 0..3 {
            wal.append(rec(i));
        }
        wal.commit().expect("commit");
        drop(wal);
        let seg = segment_path(dir.path(), 0);
        let mut bytes = std::fs::read(&seg).expect("segment");
        // Flip a payload byte of the second record.
        let second_payload = 8 + rec(0).len() + 8;
        bytes[second_payload] ^= 0xFF;
        std::fs::write(&seg, &bytes).expect("corrupt");
        let (_, records) = Wal::open(dir.path(), WalConfig::default()).expect("reopen");
        assert_eq!(records.len(), 1, "records after the corruption are not trusted");
    }

    #[test]
    fn segments_rotate_and_compact() {
        let dir = TempDir::new("wal-seg");
        let cfg = WalConfig { segment_bytes: 64, ..WalConfig::default() };
        let (mut wal, _) = Wal::open(dir.path(), cfg.clone()).expect("open");
        for i in 0..40 {
            wal.append(rec(i));
            wal.commit().expect("commit");
        }
        assert!(wal.segment_count() > 2, "tiny segments must rotate");
        wal.rotate_keep(2).expect("compact");
        assert_eq!(wal.segment_count(), 2);
        wal.append(rec(100));
        wal.commit().expect("post-compact commit");
        drop(wal);
        // Only the records since the kept generations survive — and the
        // reopened log parses cleanly.
        let (_, records) = Wal::open(dir.path(), cfg).expect("reopen");
        assert_eq!(records.last().expect("non-empty"), &rec(100));
    }

    #[test]
    fn retention_caps_trim_beyond_keep() {
        let dir = TempDir::new("wal-retain");
        let cfg = WalConfig {
            segment_bytes: 64,
            retain_wal_segments: 2,
            ..WalConfig::default()
        };
        let (mut wal, _) = Wal::open(dir.path(), cfg.clone()).expect("open");
        for i in 0..40 {
            wal.append(rec(i));
            wal.commit().expect("commit");
        }
        assert!(wal.segment_count() > 4);
        // A generous `keep` would leave 8 segments; the retention cap
        // trims past it down to 2.
        wal.rotate_keep(8).expect("compact");
        assert_eq!(wal.segment_count(), 2);
        assert!(wal.stats().retention_unlinked > 0);
        assert!(wal.stats().retention_bytes > 0);
        drop(wal);
        let (wal, _) = Wal::open(dir.path(), cfg).expect("reopen");
        assert_eq!(wal.segment_count(), 2);
    }

    #[test]
    fn retention_byte_cap_bounds_disk() {
        let dir = TempDir::new("wal-retain-bytes");
        let cfg = WalConfig {
            segment_bytes: 64,
            retain_wal_bytes: 200,
            ..WalConfig::default()
        };
        let (mut wal, _) = Wal::open(dir.path(), cfg.clone()).expect("open");
        for i in 0..60 {
            wal.append(rec(i));
            wal.commit().expect("commit");
        }
        assert!(wal.disk_bytes() > 200, "enough churn to exceed the cap");
        wal.rotate_keep(usize::MAX).expect("compact");
        assert!(wal.disk_bytes() <= 200, "byte cap enforced: {}", wal.disk_bytes());
        assert!(wal.segment_count() >= 1, "the active segment always survives");
    }

    #[test]
    fn fsync_policies_count_syncs() {
        for (policy, expect_syncs) in [
            (FsyncPolicy::Always, 10),
            (FsyncPolicy::EveryN(5), 2),
            (FsyncPolicy::Off, 0),
        ] {
            let dir = TempDir::new("wal-fsync");
            let cfg = WalConfig { fsync: policy, ..WalConfig::default() };
            let (mut wal, _) = Wal::open(dir.path(), cfg).expect("open");
            for i in 0..10 {
                wal.append(rec(i));
                wal.commit().expect("commit");
            }
            assert_eq!(wal.stats().syncs, expect_syncs, "{policy:?}");
            assert_eq!(wal.stats().commits, 10);
        }
    }

    #[test]
    fn fsync_every_bytes_amortizes_by_volume() {
        // Fixed-size records: 16-byte payload + 8-byte frame = 24 bytes.
        let rec = |i: u64| {
            let mut p = i.to_be_bytes().to_vec();
            p.extend_from_slice(&[0xCD; 8]);
            p
        };
        let dir = TempDir::new("wal-fsync-bytes");
        let cfg = WalConfig { fsync: FsyncPolicy::EveryBytes(96), ..WalConfig::default() };
        let (mut wal, _) = Wal::open(dir.path(), cfg).expect("open");
        // Ten 1-record commits = 240 bytes: the 96-byte threshold trips
        // after commits 4 and 8 (96 bytes accumulated each time).
        for i in 0..10 {
            wal.append(rec(i));
            wal.commit().expect("commit");
        }
        assert_eq!(wal.stats().syncs, 2, "volume-based group commit");
        // One oversized batch syncs immediately — the loss window is
        // bounded in bytes, not commits.
        for i in 10..15 {
            wal.append(rec(i));
        }
        wal.commit().expect("big batch");
        assert_eq!(wal.stats().syncs, 3);
        drop(wal);
        let (_, records) = Wal::open(dir.path(), WalConfig::default()).expect("reopen");
        assert_eq!(records.len(), 15);
    }

    #[test]
    fn injected_crash_leaves_recoverable_torn_record() {
        let dir = TempDir::new("wal-kill");
        let cfg = WalConfig::default();
        let (mut wal, _) = Wal::open(dir.path(), cfg.clone()).expect("open");
        for i in 0..3 {
            wal.append(rec(i));
        }
        wal.commit().expect("commit");
        cfg.kill.arm(1);
        wal.append(rec(10));
        wal.append(rec(11));
        wal.append(rec(12));
        let err = wal.commit().expect_err("kill fires at the second record");
        assert!(err.to_string().contains("killswitch"));
        drop(wal);
        // Recovery: the three pre-crash records plus the one that fully
        // committed before the kill survive; the torn one is truncated.
        let (_, records) = Wal::open(dir.path(), WalConfig::default()).expect("reopen");
        assert_eq!(records.len(), 4);
        assert_eq!(records[3], rec(10));
    }
}
