//! The atomically swapped checkpoint manifest.
//!
//! A node directory's `MANIFEST` file is the single pointer that makes a
//! checkpoint *durable*: it names the certified sequence, the state root
//! (whose pages must already be on disk, synced, before the manifest may
//! reference them), and an opaque metadata blob (the owner serializes its
//! checkpoint certificate, 2PC sidecar, and executed-request set there).
//!
//! Publication is write-temp → fsync → rename: the rename is atomic on
//! POSIX, so a crash at any point leaves either the old manifest or the
//! new one — never a mix. A CRC over the body rejects partial or damaged
//! files; a manifest that fails validation is treated as absent (the node
//! cold-starts and recovers via state sync — recovery trades completeness
//! for correctness, never serving unverified state).

use std::io::Write;
use std::path::Path;

use ahl_crypto::Hash;

use crate::codec::{crc32, Reader, Writer};
use crate::kill::KillSwitch;

const MAGIC: &[u8; 8] = b"AHLMANI1";

/// The durable checkpoint pointer (see module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Certified sequence number of the checkpoint.
    pub seq: u64,
    /// State root; every page reachable from it must be in the page store.
    pub root: Hash,
    /// Owner-defined metadata (certificate, sidecar, executed set).
    pub meta: Vec<u8>,
}

fn manifest_path(dir: &Path) -> std::path::PathBuf {
    dir.join("MANIFEST")
}

fn tmp_path(dir: &Path) -> std::path::PathBuf {
    dir.join("MANIFEST.tmp")
}

/// Publish `m` atomically. Three kill points: the temp-file write (torn
/// temp is ignored by readers), the rename (the old manifest stays live —
/// the *stale manifest* recovery case), and the directory fsync after the
/// rename (the rename itself can be lost to a power cut, resurrecting the
/// old manifest *after* the caller saw success-so-far — which is exactly
/// why WAL compaction must wait for this function to return).
pub fn write_manifest(dir: &Path, m: &Manifest, kill: &KillSwitch) -> std::io::Result<()> {
    let mut body = Writer::new();
    body.u64(m.seq);
    body.hash(&m.root);
    body.bytes(&m.meta);
    let body = body.into_bytes();
    let mut file_bytes = Vec::with_capacity(12 + body.len());
    file_bytes.extend_from_slice(MAGIC);
    file_bytes.extend_from_slice(&crc32(&body).to_be_bytes());
    file_bytes.extend_from_slice(&body);

    let tmp = tmp_path(dir);
    {
        let mut f = std::fs::File::create(&tmp)?;
        if let Err(e) = kill.check() {
            let _ = f.write_all(&file_bytes[..file_bytes.len() / 2]);
            return Err(e);
        }
        f.write_all(&file_bytes)?;
        f.sync_data()?;
    }
    // Crash between temp write and rename: the previous manifest remains
    // the durable truth and recovery replays a longer WAL tail.
    kill.check()?;
    let dst = manifest_path(dir);
    // Capture the pre-swap bytes so the post-rename kill point below can
    // emulate the rename being lost to a power cut.
    let prev = std::fs::read(&dst).ok();
    std::fs::rename(&tmp, &dst)?;
    // The rename is atomic, but only the directory fsync makes it survive
    // power loss — without it a "published" checkpoint could vanish while
    // the WAL segments it authorized compacting are already gone. This is
    // the kill point that pins the cert-then-compact ordering: the caller
    // must treat the checkpoint as durable ONLY after this function
    // returns, because a crash here rolls the directory entry back to the
    // old manifest. Compacting the WAL before this point would drop
    // records the resurrected old manifest still needs.
    if let Err(e) = kill.check() {
        match prev {
            Some(bytes) => {
                let _ = std::fs::write(&dst, &bytes);
            }
            None => {
                let _ = std::fs::remove_file(&dst);
            }
        }
        return Err(e);
    }
    crate::codec::fsync_dir(dir)?;
    Ok(())
}

/// Read and validate the manifest; `None` when absent, torn, or corrupt.
pub fn read_manifest(dir: &Path) -> Option<Manifest> {
    let bytes = std::fs::read(manifest_path(dir)).ok()?;
    if bytes.len() < 12 || &bytes[..8] != MAGIC {
        return None;
    }
    let crc = u32::from_be_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    let body = &bytes[12..];
    if crc32(body) != crc {
        return None;
    }
    let mut r = Reader::new(body);
    let seq = r.u64()?;
    let root = r.hash()?;
    let meta = r.bytes()?.to_vec();
    r.is_done().then_some(Manifest { seq, root, meta })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;
    use ahl_crypto::sha256;

    fn sample(seq: u64) -> Manifest {
        Manifest { seq, root: sha256(&seq.to_be_bytes()[..]), meta: vec![1, 2, 3, seq as u8] }
    }

    #[test]
    fn round_trip_and_overwrite() {
        let dir = TempDir::new("manifest");
        let kill = KillSwitch::new();
        assert_eq!(read_manifest(dir.path()), None);
        write_manifest(dir.path(), &sample(5), &kill).expect("write");
        assert_eq!(read_manifest(dir.path()), Some(sample(5)));
        write_manifest(dir.path(), &sample(9), &kill).expect("overwrite");
        assert_eq!(read_manifest(dir.path()), Some(sample(9)));
    }

    #[test]
    fn crash_during_temp_write_keeps_old_manifest() {
        let dir = TempDir::new("manifest-torn");
        let kill = KillSwitch::new();
        write_manifest(dir.path(), &sample(5), &kill).expect("write");
        kill.arm(0);
        write_manifest(dir.path(), &sample(9), &kill).expect_err("kill at temp write");
        assert_eq!(read_manifest(dir.path()), Some(sample(5)), "old manifest survives");
    }

    #[test]
    fn crash_before_rename_keeps_old_manifest() {
        let dir = TempDir::new("manifest-stale");
        let kill = KillSwitch::new();
        write_manifest(dir.path(), &sample(5), &kill).expect("write");
        kill.arm(1);
        write_manifest(dir.path(), &sample(9), &kill).expect_err("kill at rename");
        // The fully written temp file is ignored; the manifest is stale
        // but valid — the recovery path the stale-manifest matrix covers.
        assert_eq!(read_manifest(dir.path()), Some(sample(5)));
        // A later successful publish wins.
        write_manifest(dir.path(), &sample(12), &kill).expect("publish");
        assert_eq!(read_manifest(dir.path()), Some(sample(12)));
    }

    #[test]
    fn crash_after_rename_before_dir_fsync_resurrects_old_manifest() {
        // The lost-rename case: the rename happened in the directory
        // cache but the crash hits before the directory fsync, so the
        // entry reverts. Anything the caller did on the strength of the
        // "published" checkpoint (WAL compaction!) would be wrong — which
        // is why rotate_keep runs only after write_manifest returns Ok.
        let dir = TempDir::new("manifest-lostrename");
        let kill = KillSwitch::new();
        write_manifest(dir.path(), &sample(5), &kill).expect("write");
        kill.arm(2);
        write_manifest(dir.path(), &sample(9), &kill).expect_err("kill after rename");
        assert_eq!(
            read_manifest(dir.path()),
            Some(sample(5)),
            "old manifest is the durable truth again"
        );
        // On a cold store the same crash leaves no manifest at all.
        let dir2 = TempDir::new("manifest-lostrename-cold");
        kill.arm(2);
        write_manifest(dir2.path(), &sample(3), &kill).expect_err("kill after first rename");
        assert_eq!(read_manifest(dir2.path()), None);
        // Recovery retries and wins.
        write_manifest(dir2.path(), &sample(3), &kill).expect("retry");
        assert_eq!(read_manifest(dir2.path()), Some(sample(3)));
    }

    #[test]
    fn corrupt_manifest_treated_as_absent() {
        let dir = TempDir::new("manifest-corrupt");
        let kill = KillSwitch::new();
        write_manifest(dir.path(), &sample(5), &kill).expect("write");
        let path = dir.path().join("MANIFEST");
        let mut bytes = std::fs::read(&path).expect("read");
        *bytes.last_mut().expect("non-empty") ^= 0xFF;
        std::fs::write(&path, &bytes).expect("corrupt");
        assert_eq!(read_manifest(dir.path()), None);
        // Truncations are refused too.
        std::fs::write(&path, &bytes[..bytes.len() - 3]).expect("truncate");
        assert_eq!(read_manifest(dir.path()), None);
    }
}
