//! Content-addressed page store for persistent sparse-Merkle-tree
//! snapshots.
//!
//! Every tree node serializes to one **page** keyed by its node hash
//! (leaf and branch hashes are domain-separated, so the key commits to the
//! node's kind and full content). Pages append to `pages-<id>.seg`
//! segment files with the same `[len][crc][payload]` framing as the WAL;
//! an in-memory index maps hash → file location and is rebuilt on open.
//!
//! ## Structural sharing on disk
//!
//! [`PageStore::persist_tree`] walks a snapshot **children-first** and
//! skips any subtree whose root page already exists — which is exactly
//! where consecutive checkpoints share structure in memory. Persisting
//! checkpoint *k+1* after checkpoint *k* therefore writes only the O(churn
//! × log n) pages along the mutated root paths; everything untouched is
//! referenced, not rewritten. (The `wal_ops` bench measures the ratio.)
//!
//! The children-first order doubles as the crash-safety invariant: a page
//! on disk implies its entire subtree is on disk, so a crash mid-persist
//! leaves only complete orphan subtrees (which later persists may even
//! legitimately reuse), never a parent with missing children.
//!
//! ## Garbage collection and compaction
//!
//! Append-forever would grow disk without bound under churn: superseded
//! checkpoint pages and orphaned subtrees are dead weight. [`PageStore::gc`]
//! reclaims them with a mark-and-sweep over whole segments:
//!
//! 1. **Mark** — walk down from the retained checkpoint roots. The
//!    children-first invariant makes liveness exactly root-reachability.
//! 2. **Plan** — per sealed segment, compare live frame bytes against the
//!    segment total. Fully-dead segments are unlinked outright; segments
//!    below [`crate::WalConfig::gc_live_frac`] live fraction are
//!    *compacted*: their live pages are copied into the active segment
//!    first.
//! 3. **Sweep** — sync the copies (under a durable policy), then unlink,
//!    evicting the per-segment read handle, releasing the byte
//!    accounting, and purging index entries that still point at the dead
//!    file.
//!
//! Every copy and every unlink is a [`crate::KillSwitch`] site, so the
//! kill-point recovery matrix extends over GC: a crash mid-copy leaves
//! the originals intact (duplicate pages are harmless — the store is
//! content-addressed), and a crash mid-sweep leaves some dead segments
//! for the next run. Callers gate GC on a durable manifest exactly like
//! [`crate::Wal::rotate_keep`] — only pages unreachable from every
//! retained root are ever dropped.
//!
//! ## Sidecar segment index
//!
//! Sealing a segment also writes `pages-<id>.idx`: a CRC-guarded dump of
//! the segment's `(hash, offset, len)` entries. [`PageStore::open`] loads
//! valid sidecars instead of re-scanning every frame, so reopening a big
//! store costs O(index) reads, not O(history) frame parses; the active
//! tail (and any segment whose sidecar is missing, stale, or torn) falls
//! back to the scan. Sidecars are pure cache — every page read still
//! CRC-checks its frame, so a wrong sidecar can fail a load but never
//! forge state.
//!
//! ## Loading
//!
//! [`PageStore::load_tree`] walks down from a root hash, collects the
//! leaves, rebuilds the tree, and **verifies the rebuilt root equals the
//! requested one** — a page store can fail to load (missing/corrupt
//! pages), but it cannot hand back wrong state. For O(working set)
//! access without materializing the tree, see [`crate::PageCache`].

use std::collections::{HashMap, HashSet};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

use ahl_crypto::Hash;
use ahl_store::{NodeView, SparseMerkleTree, StateValue};

use crate::codec::{crc32, encode_frame, fsync_dir, parse_frame, Reader, Writer};
use crate::log::WalConfig;
use crate::segscan::list_segment_ids;
use crate::{FsyncPolicy, WalError};

/// A value storable under the page-backed tree: [`StateValue`] plus a
/// self-contained binary encoding (`ahl-ledger` implements this for
/// `Value`; a bare `Hash` is its own 32-byte encoding).
pub trait PageValue: StateValue + Clone {
    /// Append the value's encoding to `w`.
    fn encode_value(&self, w: &mut Writer);
    /// Decode a value previously written by
    /// [`PageValue::encode_value`]; `None` on truncation/corruption.
    fn decode_value(r: &mut Reader<'_>) -> Option<Self>
    where
        Self: Sized;
}

impl PageValue for Hash {
    fn encode_value(&self, w: &mut Writer) {
        w.hash(self);
    }
    fn decode_value(r: &mut Reader<'_>) -> Option<Self> {
        r.hash()
    }
}

/// Outcome of one [`PageStore::persist_tree`] call.
#[derive(Clone, Copy, Debug, Default)]
pub struct PersistStats {
    /// Pages newly written by this persist.
    pub pages_written: u64,
    /// Subtrees skipped because their root page was already on disk
    /// (each skip shares an entire subtree, not just one node).
    pub subtrees_shared: u64,
    /// Frame bytes appended.
    pub bytes_written: u64,
}

/// Outcome of one [`PageStore::gc`] run (and, summed, of all runs — see
/// [`PageStore::gc_totals`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct GcStats {
    /// GC runs folded into this value (1 for a single run's result).
    pub runs: u64,
    /// Pages reachable from the retained roots at mark time.
    pub live_pages: u64,
    /// Frame bytes of those live pages.
    pub live_bytes: u64,
    /// Live pages copied out of mostly-dead segments.
    pub copied_pages: u64,
    /// Frame bytes re-appended by those copies.
    pub copied_bytes: u64,
    /// Segment files unlinked.
    pub swept_segments: u64,
    /// Frame bytes released by unlinking (gross: copies re-appended
    /// `copied_bytes` of it to the active segment).
    pub reclaimed_bytes: u64,
}

impl GcStats {
    /// Fold `other` into this accumulator: counters sum, the live-set
    /// point-in-time figures keep the latest run's value. Used both by
    /// [`PageStore::gc_totals`] and by callers accumulating across store
    /// reopens (a reopen resets the store's own totals).
    pub fn absorb(&mut self, other: &GcStats) {
        self.runs += other.runs;
        self.live_pages = other.live_pages; // point-in-time, keep latest
        self.live_bytes = other.live_bytes;
        self.copied_pages += other.copied_pages;
        self.copied_bytes += other.copied_bytes;
        self.swept_segments += other.swept_segments;
        self.reclaimed_bytes += other.reclaimed_bytes;
    }
}

/// How [`PageStore::open`] rebuilt the index — the reopen-cost accounting
/// the soak experiment budgets (indexed segments are O(1)-ish; scanned
/// segments re-parse every frame).
#[derive(Clone, Copy, Debug, Default)]
pub struct OpenStats {
    /// Sealed segments whose index came from a valid `pages-<id>.idx`
    /// sidecar (no frame scan).
    pub segments_indexed: u64,
    /// Segments recovered by a full frame scan: always the active tail,
    /// plus any sealed segment with a missing/stale/torn sidecar.
    pub segments_scanned: u64,
}

const TAG_LEAF: u8 = 0;
const TAG_BRANCH: u8 = 1;
/// A page payload is at least a node hash plus a tag byte.
const MIN_PAGE: usize = 33;

const IDX_MAGIC: &[u8; 8] = b"AHLPIDX1";

fn segment_path(dir: &Path, id: u64) -> PathBuf {
    crate::segscan::segment_path(dir, "pages", id)
}

fn index_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("pages-{id:08}.idx"))
}

#[derive(Clone, Copy)]
struct PageLoc {
    segment: u64,
    /// Offset of the frame (length prefix) within the segment.
    offset: u64,
    /// Full frame length.
    len: u32,
}

/// One sidecar-index entry: `(page hash, frame offset, frame len)`.
type IdxEntry = (Hash, u64, u32);

/// A decoded page body: the per-node view [`crate::PageCache`] faults in
/// and [`PageStore::load_tree`] walks.
pub(crate) enum PageNode<V> {
    /// A leaf page: full key plus value.
    Leaf {
        /// The state key.
        key: String,
        /// The stored value.
        value: V,
    },
    /// A branch page: crit-bit index plus both child hashes.
    Branch {
        /// First differing path bit between the two subtrees.
        bit: u16,
        /// Left (bit = 0) child node hash.
        left: Hash,
        /// Right (bit = 1) child node hash.
        right: Hash,
    },
}

/// Decode a page body (everything after the 32-byte hash prefix).
pub(crate) fn decode_page<V: PageValue>(body: &[u8]) -> Result<PageNode<V>, WalError> {
    let mut r = Reader::new(body);
    match r.u8() {
        Some(TAG_LEAF) => {
            let key = r.str().ok_or(WalError::Corrupt("leaf key"))?;
            let value = V::decode_value(&mut r).ok_or(WalError::Corrupt("leaf value"))?;
            Ok(PageNode::Leaf { key, value })
        }
        Some(TAG_BRANCH) => {
            let bit = r.u16().ok_or(WalError::Corrupt("branch bit"))?;
            let left = r.hash().ok_or(WalError::Corrupt("branch left"))?;
            let right = r.hash().ok_or(WalError::Corrupt("branch right"))?;
            Ok(PageNode::Branch { bit, left, right })
        }
        _ => Err(WalError::Corrupt("unknown page tag")),
    }
}

/// The children of a branch page body, `None` for a leaf. The GC mark
/// walk needs only this — it never decodes values.
fn branch_children(body: &[u8]) -> Result<Option<(Hash, Hash)>, WalError> {
    let mut r = Reader::new(body);
    match r.u8() {
        Some(TAG_LEAF) => Ok(None),
        Some(TAG_BRANCH) => {
            let _bit = r.u16().ok_or(WalError::Corrupt("branch bit"))?;
            let left = r.hash().ok_or(WalError::Corrupt("branch left"))?;
            let right = r.hash().ok_or(WalError::Corrupt("branch right"))?;
            Ok(Some((left, right)))
        }
        _ => Err(WalError::Corrupt("unknown page tag")),
    }
}

/// The content-addressed page store (see module docs).
pub struct PageStore {
    dir: PathBuf,
    cfg: WalConfig,
    index: HashMap<Hash, PageLoc>,
    active: File,
    active_id: u64,
    active_bytes: u64,
    /// Index entries of the active segment, append order (the sidecar
    /// written when it seals).
    active_entries: Vec<IdxEntry>,
    segments: Vec<u64>,
    /// Intact frame bytes per live segment.
    seg_bytes: HashMap<u64, u64>,
    /// One long-lived read handle per segment: page loads are positioned
    /// reads, not open/seek/read triples per page (a 100k-key tree load
    /// would otherwise pay ~200k `open(2)` calls). GC evicts the handle
    /// when it unlinks the segment — an unlinked-but-open file would leak
    /// the fd *and* keep the disk space reserved.
    readers: HashMap<u64, File>,
    total_bytes: u64,
    open_stats: OpenStats,
    gc_totals: GcStats,
}

impl PageStore {
    /// Open (or create) the store in `dir`, rebuilding the hash index. A
    /// sealed segment with a valid `pages-<id>.idx` sidecar is loaded
    /// from it; everything else (always including the active tail) is
    /// recovered by scanning frames. A torn final frame is truncated
    /// away; segments past a tear are deleted (they can only postdate the
    /// crash).
    pub fn open(dir: &Path, cfg: WalConfig) -> std::io::Result<PageStore> {
        let ids = list_segment_ids(dir, "pages")?;
        let last = *ids.last().expect("at least one segment");
        let mut index = HashMap::new();
        let mut seg_bytes = HashMap::new();
        let mut keep: Vec<u64> = Vec::new();
        let mut torn_at: Option<(u64, u64)> = None;
        let mut stats = OpenStats::default();
        for &id in &ids {
            if torn_at.is_some() {
                std::fs::remove_file(segment_path(dir, id))?;
                let _ = std::fs::remove_file(index_path(dir, id));
                continue;
            }
            if id != last {
                if let Some((entries, bytes)) = read_index_file(dir, id)? {
                    for (h, offset, len) in entries {
                        index.insert(h, PageLoc { segment: id, offset, len });
                    }
                    seg_bytes.insert(id, bytes);
                    stats.segments_indexed += 1;
                    keep.push(id);
                    continue;
                }
            }
            let mut buf = Vec::new();
            std::io::Read::read_to_end(&mut File::open(segment_path(dir, id))?, &mut buf)?;
            let mut pos = 0usize;
            while let Some((payload, frame_len)) = parse_frame(&buf, pos, MIN_PAGE) {
                let mut h = Hash::ZERO;
                h.0.copy_from_slice(&payload[..32]);
                index.insert(
                    h,
                    PageLoc { segment: id, offset: pos as u64, len: frame_len as u32 },
                );
                pos += frame_len;
            }
            stats.segments_scanned += 1;
            seg_bytes.insert(id, pos as u64);
            keep.push(id);
            if pos < buf.len() {
                torn_at = Some((id, pos as u64));
            }
        }
        if let Some((id, offset)) = torn_at {
            // Physically drop the torn tail so later appends are framed
            // from a clean boundary.
            let f = OpenOptions::new().write(true).open(segment_path(dir, id))?;
            f.set_len(offset)?;
        }
        let active_id = *keep.last().expect("at least one segment");
        // The append target's sidecar (left behind when a crash landed
        // between seal and next-segment creation) goes stale on the first
        // append — drop it now so a later open can't trust it.
        let _ = std::fs::remove_file(index_path(dir, active_id));
        let mut active =
            OpenOptions::new().read(true).write(true).open(segment_path(dir, active_id))?;
        let active_bytes = active.seek(SeekFrom::End(0))?;
        let mut active_entries: Vec<IdxEntry> = index
            .iter()
            .filter(|(_, loc)| loc.segment == active_id)
            .map(|(h, loc)| (*h, loc.offset, loc.len))
            .collect();
        active_entries.sort_by_key(|&(_, offset, _)| offset);
        let mut readers = HashMap::new();
        for &id in &keep {
            readers.insert(id, File::open(segment_path(dir, id))?);
        }
        let total_bytes = seg_bytes.values().sum();
        Ok(PageStore {
            dir: dir.to_path_buf(),
            cfg,
            index,
            active,
            active_id,
            active_bytes,
            active_entries,
            segments: keep,
            seg_bytes,
            readers,
            total_bytes,
            open_stats: stats,
            gc_totals: GcStats::default(),
        })
    }

    /// Whether a page for `hash` is on disk.
    pub fn contains(&self, hash: &Hash) -> bool {
        self.index.contains_key(hash)
    }

    /// Number of indexed pages.
    pub fn page_count(&self) -> usize {
        self.index.len()
    }

    /// Total intact frame bytes across all segments.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Number of live segment files.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// How the last [`PageStore::open`] rebuilt the index.
    pub fn open_stats(&self) -> OpenStats {
        self.open_stats
    }

    /// Cumulative GC accounting since open.
    pub fn gc_totals(&self) -> GcStats {
        self.gc_totals
    }

    /// Roll the active file back to the last intact frame boundary.
    /// Best-effort: if even this fails, the next reopen's scan truncates
    /// the torn tail the same way.
    fn rollback_active(&mut self) {
        let _ = self.active.set_len(self.active_bytes);
        let _ = self.active.seek(SeekFrom::End(0));
    }

    fn write_frame(&mut self, hash: Hash, payload: Vec<u8>) -> std::io::Result<u64> {
        let frame = encode_frame(&payload);
        if let Err(e) = self.cfg.kill.check() {
            // Injected fault: half the frame reaches the disk either way.
            let _ = self.active.write_all(&frame[..frame.len() / 2]);
            if self.cfg.kill.fired_transient() {
                // A transient I/O error, not a power cut: the process
                // survives, so restore the all-or-nothing invariant.
                self.rollback_active();
            }
            return Err(e);
        }
        if let Err(e) = self.active.write_all(&frame) {
            // All-or-nothing on real I/O errors too: a short write must
            // not leave file bytes ahead of `active_bytes`/the index, or
            // every later frame lands at a lying offset. Same
            // check-before-mutate discipline as `exec_prepare`: no state
            // advances unless the whole write did.
            self.rollback_active();
            return Err(e);
        }
        self.index.insert(
            hash,
            PageLoc { segment: self.active_id, offset: self.active_bytes, len: frame.len() as u32 },
        );
        self.active_entries.push((hash, self.active_bytes, frame.len() as u32));
        self.active_bytes += frame.len() as u64;
        self.total_bytes += frame.len() as u64;
        self.seg_bytes.insert(self.active_id, self.active_bytes);
        if self.active_bytes >= self.cfg.segment_bytes {
            // Seal: under a durable policy the sealed segment's pages are
            // synced NOW — the pre-manifest barrier only syncs the active
            // segment, and pages a manifest references must never be the
            // ones a power cut can lose.
            if !matches!(self.cfg.fsync, FsyncPolicy::Off) {
                self.active.sync_data()?;
            }
            // Sidecar index: the next open loads this instead of
            // re-scanning the sealed frames.
            let entries = std::mem::take(&mut self.active_entries);
            self.write_index_file(self.active_id, &entries, self.active_bytes)?;
            let next = self.segments.last().expect("non-empty") + 1;
            self.active = File::create(segment_path(&self.dir, next))?;
            self.active_id = next;
            self.active_bytes = 0;
            self.segments.push(next);
            self.seg_bytes.insert(next, 0);
            self.readers.insert(next, File::open(segment_path(&self.dir, next))?);
            // Durable policies must not lose the new directory entry to a
            // power cut either.
            if !matches!(self.cfg.fsync, FsyncPolicy::Off) {
                fsync_dir(&self.dir)?;
            }
        }
        Ok(frame.len() as u64)
    }

    /// Write the `pages-<id>.idx` sidecar for a sealed segment. A durable
    /// write site like any other — but pure cache: a torn sidecar only
    /// costs the next open a frame scan.
    fn write_index_file(&mut self, id: u64, entries: &[IdxEntry], seg_len: u64) -> std::io::Result<()> {
        let mut w = Writer::new();
        w.u64(seg_len);
        w.u32(entries.len() as u32);
        for (h, offset, len) in entries {
            w.hash(h);
            w.u64(*offset);
            w.u32(*len);
        }
        let body = w.into_bytes();
        let mut buf = Vec::with_capacity(12 + body.len());
        buf.extend_from_slice(IDX_MAGIC);
        buf.extend_from_slice(&crc32(&body).to_be_bytes());
        buf.extend_from_slice(&body);
        let path = index_path(&self.dir, id);
        if let Err(e) = self.cfg.kill.check() {
            let _ = std::fs::write(&path, &buf[..buf.len() / 2]);
            return Err(e);
        }
        let mut f = File::create(&path)?;
        f.write_all(&buf)?;
        if !matches!(self.cfg.fsync, FsyncPolicy::Off) {
            f.sync_data()?;
        }
        Ok(())
    }

    /// Persist every page of `tree` that is not already on disk
    /// (children-first; shared subtrees are skipped at their root). The
    /// fsync policy is applied once at the end — callers publishing a
    /// manifest must call [`PageStore::sync`] first regardless.
    pub fn persist_tree<V: PageValue>(
        &mut self,
        tree: &SparseMerkleTree<V>,
    ) -> std::io::Result<PersistStats> {
        struct PersistCtx<'a> {
            store: &'a mut PageStore,
            stats: PersistStats,
            failure: Option<std::io::Error>,
        }
        // Both traversal closures need the store (dedup query in `prune`,
        // the write in `visit`): a RefCell splits the borrow safely.
        let ctx = std::cell::RefCell::new(PersistCtx {
            store: self,
            stats: PersistStats::default(),
            failure: None,
        });
        tree.visit_nodes(
            &mut |hash| {
                let mut c = ctx.borrow_mut();
                if c.failure.is_some() {
                    return true; // stop writing after the first error
                }
                let shared = c.store.index.contains_key(hash);
                if shared {
                    c.stats.subtrees_shared += 1;
                }
                shared
            },
            &mut |view| {
                let mut c = ctx.borrow_mut();
                if c.failure.is_some() {
                    return;
                }
                let (hash, payload) = encode_page(&view);
                match c.store.write_frame(hash, payload) {
                    Ok(n) => {
                        c.stats.pages_written += 1;
                        c.stats.bytes_written += n;
                    }
                    Err(e) => c.failure = Some(e),
                }
            },
        );
        let ctx = ctx.into_inner();
        if let Some(e) = ctx.failure {
            return Err(e);
        }
        let stats = ctx.stats;
        let store = ctx.store;
        if !matches!(store.cfg.fsync, FsyncPolicy::Off) && stats.pages_written > 0 {
            store.active.sync_data()?;
        }
        Ok(stats)
    }

    /// Force an `fdatasync` of the active segment (the barrier before a
    /// manifest swap may reference freshly written pages).
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.active.sync_data()
    }

    /// Read a page's full frame payload (hash prefix included), verifying
    /// the frame CRC and that the stored hash matches the requested one.
    fn read_frame_payload(&self, hash: &Hash) -> Result<Vec<u8>, WalError> {
        let loc = self.index.get(hash).ok_or(WalError::MissingPage(*hash))?;
        let f = self
            .readers
            .get(&loc.segment)
            .ok_or(WalError::Corrupt("segment reader missing"))?;
        let mut frame = vec![0u8; loc.len as usize];
        f.read_exact_at(&mut frame, loc.offset)?;
        let payload = &frame[8..];
        let crc = u32::from_be_bytes([frame[4], frame[5], frame[6], frame[7]]);
        if crc32(payload) != crc || payload[..32] != hash.0 {
            return Err(WalError::Corrupt("page frame failed CRC/hash check"));
        }
        Ok(frame.split_off(8))
    }

    /// Read a page body (everything after the 32-byte hash prefix).
    pub(crate) fn read_page(&self, hash: &Hash) -> Result<Vec<u8>, WalError> {
        let mut payload = self.read_frame_payload(hash)?;
        payload.drain(..32);
        Ok(payload)
    }

    /// Load the complete tree rooted at `root` and verify the rebuilt root
    /// hash matches. `Hash::ZERO` loads the empty tree.
    pub fn load_tree<V: PageValue>(&self, root: Hash) -> Result<SparseMerkleTree<V>, WalError> {
        if root == Hash::ZERO {
            return Ok(SparseMerkleTree::new());
        }
        let mut leaves: Vec<(String, V)> = Vec::new();
        let mut stack = vec![root];
        while let Some(hash) = stack.pop() {
            let body = self.read_page(&hash)?;
            match decode_page::<V>(&body)? {
                PageNode::Leaf { key, value } => leaves.push((key, value)),
                PageNode::Branch { left, right, .. } => {
                    stack.push(left);
                    stack.push(right);
                }
            }
        }
        let tree = SparseMerkleTree::build(leaves);
        if tree.root_hash() != root {
            return Err(WalError::Corrupt("rebuilt root does not match manifest root"));
        }
        Ok(tree)
    }

    /// Mark-and-sweep garbage collection (see module docs): reclaim every
    /// page unreachable from `roots`, compacting mostly-dead sealed
    /// segments and unlinking fully-dead ones. Callers pass exactly the
    /// checkpoint roots their durable manifest retains — gate on the
    /// manifest being synced, the same discipline as
    /// [`crate::Wal::rotate_keep`].
    pub fn gc(&mut self, roots: &[Hash]) -> std::io::Result<GcStats> {
        let mut stats = GcStats { runs: 1, ..GcStats::default() };
        // Mark: a root-reachability walk. Children-first persistence means
        // every referenced child exists — a missing page here is real
        // corruption, and GC must fail closed rather than sweep.
        let mut live: HashSet<Hash> = HashSet::new();
        let mut stack: Vec<Hash> =
            roots.iter().copied().filter(|h| *h != Hash::ZERO).collect();
        while let Some(hash) = stack.pop() {
            if !live.insert(hash) {
                continue;
            }
            let body = self.read_page(&hash).map_err(std::io::Error::other)?;
            if let Some((left, right)) = branch_children(&body).map_err(std::io::Error::other)? {
                stack.push(left);
                stack.push(right);
            }
        }
        stats.live_pages = live.len() as u64;

        // Plan: live bytes per sealed segment. The active segment is
        // never swept — it is still being appended to.
        let mut live_by_seg: HashMap<u64, Vec<IdxEntry>> = HashMap::new();
        for h in &live {
            let loc = self.index[h];
            stats.live_bytes += loc.len as u64;
            if loc.segment != self.active_id {
                live_by_seg.entry(loc.segment).or_default().push((*h, loc.offset, loc.len));
            }
        }
        let sealed: Vec<u64> =
            self.segments.iter().copied().filter(|&id| id != self.active_id).collect();
        let mut drop_list: Vec<u64> = Vec::new();
        for id in sealed {
            let total = self.seg_bytes.get(&id).copied().unwrap_or(0);
            let live_bytes: u64 = live_by_seg
                .get(&id)
                .map(|v| v.iter().map(|&(_, _, len)| len as u64).sum())
                .unwrap_or(0);
            if live_bytes > 0
                && (total == 0 || live_bytes as f64 / total as f64 >= self.cfg.gc_live_frac)
            {
                continue; // healthy segment: leave it alone
            }
            // Compact: copy the live pages into the active segment before
            // the original file goes away. Copies go through
            // `write_frame`, so each is a kill site and the copies land in
            // the index at their new location.
            if let Some(mut entries) = live_by_seg.remove(&id) {
                entries.sort_by_key(|&(_, offset, _)| offset);
                for (h, _, _) in entries {
                    if self.index[&h].segment != id {
                        continue; // an earlier copy already moved it
                    }
                    let payload =
                        self.read_frame_payload(&h).map_err(std::io::Error::other)?;
                    let n = self.write_frame(h, payload)?;
                    stats.copied_pages += 1;
                    stats.copied_bytes += n;
                }
            }
            drop_list.push(id);
        }
        // Durable policies: the copies must be on disk before any
        // original vanishes, or a power cut between unlink and sync loses
        // both.
        if stats.copied_pages > 0 && !matches!(self.cfg.fsync, FsyncPolicy::Off) {
            self.active.sync_data()?;
        }
        // Sweep: unlink, evict the read handle, release the byte
        // accounting, purge stale index entries. Each unlink is a kill
        // site — a crash mid-sweep leaves dead segments for the next run.
        for &id in &drop_list {
            self.cfg.kill.check()?;
            std::fs::remove_file(segment_path(&self.dir, id))?;
            let _ = std::fs::remove_file(index_path(&self.dir, id));
            self.readers.remove(&id);
            let bytes = self.seg_bytes.remove(&id).unwrap_or(0);
            self.total_bytes -= bytes;
            stats.reclaimed_bytes += bytes;
            stats.swept_segments += 1;
            self.segments.retain(|&s| s != id);
        }
        if !drop_list.is_empty() {
            self.index.retain(|_, loc| !drop_list.contains(&loc.segment));
            if !matches!(self.cfg.fsync, FsyncPolicy::Off) {
                fsync_dir(&self.dir)?;
            }
        }
        self.gc_totals.absorb(&stats);
        Ok(stats)
    }

    /// Run [`PageStore::gc`] iff total page bytes have reached
    /// [`crate::WalConfig::gc_trigger_bytes`]. `Ok(None)` = not triggered.
    pub fn maybe_gc(&mut self, roots: &[Hash]) -> std::io::Result<Option<GcStats>> {
        if self.cfg.gc_trigger_bytes == u64::MAX || self.total_bytes < self.cfg.gc_trigger_bytes {
            return Ok(None);
        }
        self.gc(roots).map(Some)
    }
}

/// Read and validate a `pages-<id>.idx` sidecar. `Ok(None)` (missing,
/// torn, stale, or failing any bound check) sends the caller down the
/// frame-scan path — the sidecar can never make recovery wrong, only
/// faster.
fn read_index_file(dir: &Path, id: u64) -> std::io::Result<Option<(Vec<IdxEntry>, u64)>> {
    let buf = match std::fs::read(index_path(dir, id)) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    if buf.len() < 12 || &buf[..8] != IDX_MAGIC {
        return Ok(None);
    }
    let crc = u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]);
    let body = &buf[12..];
    if crc32(body) != crc {
        return Ok(None);
    }
    let mut r = Reader::new(body);
    let Some(seg_len) = r.u64() else { return Ok(None) };
    // Stale detection: the sidecar binds to an exact segment length. A
    // mismatch (torn tail, post-seal append after a crash) forces a scan.
    let actual = std::fs::metadata(segment_path(dir, id))?.len();
    if actual != seg_len {
        return Ok(None);
    }
    let Some(count) = r.u32() else { return Ok(None) };
    let mut entries = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let (Some(h), Some(offset), Some(len)) = (r.hash(), r.u64(), r.u32()) else {
            return Ok(None);
        };
        if offset + len as u64 > seg_len {
            return Ok(None);
        }
        entries.push((h, offset, len));
    }
    if !r.is_done() {
        return Ok(None);
    }
    Ok(Some((entries, seg_len)))
}

fn encode_page<V: PageValue>(view: &NodeView<'_, V>) -> (Hash, Vec<u8>) {
    let mut w = Writer::new();
    match view {
        NodeView::Leaf { hash, key, value } => {
            w.hash(hash);
            w.u8(TAG_LEAF);
            w.str(key);
            value.encode_value(&mut w);
            (*hash, w.into_bytes())
        }
        NodeView::Branch { hash, bit, left, right } => {
            w.hash(hash);
            w.u8(TAG_BRANCH);
            w.u16(*bit);
            w.hash(left);
            w.hash(right);
            (*hash, w.into_bytes())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;
    use ahl_crypto::sha256_parts;

    fn vh(i: u64) -> Hash {
        sha256_parts(&[&i.to_be_bytes()])
    }

    fn tree_of(n: u64) -> SparseMerkleTree {
        SparseMerkleTree::build((0..n).map(|i| (format!("key-{i}"), vh(i))))
    }

    #[test]
    fn persist_load_round_trip() {
        let dir = TempDir::new("pages-rt");
        let t = tree_of(200);
        let mut store = PageStore::open(dir.path(), WalConfig::default()).expect("open");
        let stats = store.persist_tree(&t).expect("persist");
        assert_eq!(stats.pages_written, 2 * 200 - 1, "n leaves + n-1 branches");
        drop(store);
        let store = PageStore::open(dir.path(), WalConfig::default()).expect("reopen");
        assert_eq!(store.page_count(), 2 * 200 - 1);
        let loaded: SparseMerkleTree = store.load_tree(t.root_hash()).expect("load");
        assert_eq!(loaded.root_hash(), t.root_hash());
        assert_eq!(loaded.len(), 200);
        assert_eq!(loaded.get("key-7"), Some(&vh(7)));
        // Empty root loads the empty tree.
        let empty: SparseMerkleTree = store.load_tree(Hash::ZERO).expect("empty");
        assert!(empty.is_empty());
    }

    #[test]
    fn consecutive_checkpoints_share_pages() {
        let dir = TempDir::new("pages-share");
        let mut t = tree_of(512);
        let mut store = PageStore::open(dir.path(), WalConfig::default()).expect("open");
        let first = store.persist_tree(&t).expect("persist 1");
        // 10% churn, then persist the next checkpoint.
        for i in 0..51u64 {
            t.insert(&format!("key-{}", i * 10), vh(1_000 + i));
        }
        let second = store.persist_tree(&t).expect("persist 2");
        assert!(
            second.pages_written * 2 < first.pages_written,
            "10% churn must rewrite far less than half the pages: {} vs {}",
            second.pages_written,
            first.pages_written
        );
        assert!(second.subtrees_shared > 0);
        // Both roots stay loadable — old pages are never rewritten.
        let old_root = {
            let fresh = tree_of(512);
            fresh.root_hash()
        };
        let a: SparseMerkleTree = store.load_tree(old_root).expect("old checkpoint");
        assert_eq!(a.root_hash(), old_root);
        let b: SparseMerkleTree = store.load_tree(t.root_hash()).expect("new checkpoint");
        assert_eq!(b.root_hash(), t.root_hash());
    }

    #[test]
    fn unchanged_tree_writes_nothing() {
        let dir = TempDir::new("pages-noop");
        let t = tree_of(64);
        let mut store = PageStore::open(dir.path(), WalConfig::default()).expect("open");
        store.persist_tree(&t).expect("persist");
        let again = store.persist_tree(&t).expect("re-persist");
        assert_eq!(again.pages_written, 0);
        assert_eq!(again.subtrees_shared, 1, "one skip at the root covers everything");
    }

    #[test]
    fn half_written_page_is_discarded_and_rewritten() {
        let dir = TempDir::new("pages-torn");
        let t = tree_of(40);
        let cfg = WalConfig::default();
        let mut store = PageStore::open(dir.path(), cfg.clone()).expect("open");
        cfg.kill.arm(30);
        let err = store.persist_tree(&t).expect_err("kill fires mid-persist");
        assert!(err.to_string().contains("killswitch"));
        drop(store);
        // Reopen: the torn page is truncated; the tree is not yet loadable
        // (no manifest would reference it), but re-persisting completes it
        // and reuses every intact orphan subtree.
        let mut store = PageStore::open(dir.path(), WalConfig::default()).expect("reopen");
        assert!(store.load_tree::<Hash>(t.root_hash()).is_err(), "incomplete tree must not load");
        let finish = store.persist_tree(&t).expect("resume persist");
        assert!(finish.pages_written > 0);
        assert!(finish.pages_written < 2 * 40 - 1, "intact orphans were reused");
        let loaded: SparseMerkleTree = store.load_tree(t.root_hash()).expect("load");
        assert_eq!(loaded.root_hash(), t.root_hash());
    }

    #[test]
    fn transient_write_error_rolls_back_and_store_survives() {
        // Satellite regression: a failed frame write (short write + error,
        // NOT a power cut) must leave the file at the last frame boundary
        // so the store keeps working — no torn garbage under later
        // offsets, no index/file divergence.
        let dir = TempDir::new("pages-transient");
        let t = tree_of(60);
        let cfg = WalConfig::default();
        let mut store = PageStore::open(dir.path(), cfg.clone()).expect("open");
        cfg.kill.arm_transient(25);
        let err = store.persist_tree(&t).expect_err("transient error fires");
        assert!(err.to_string().contains("transient"));
        // The file was rolled back to exactly the accounted length.
        let on_disk = std::fs::metadata(segment_path(dir.path(), store.active_id))
            .expect("metadata")
            .len();
        assert_eq!(on_disk, store.active_bytes, "all-or-nothing: no torn tail left behind");
        // Same process, same store object: the retry completes cleanly.
        let finish = store.persist_tree(&t).expect("retry persists");
        assert!(finish.pages_written > 0);
        let loaded: SparseMerkleTree = store.load_tree(t.root_hash()).expect("load");
        assert_eq!(loaded.root_hash(), t.root_hash());
        // And a reopen agrees byte-for-byte.
        drop(store);
        let store = PageStore::open(dir.path(), WalConfig::default()).expect("reopen");
        let loaded: SparseMerkleTree = store.load_tree(t.root_hash()).expect("reload");
        assert_eq!(loaded.len(), 60);
    }

    #[test]
    fn corrupt_page_fails_load_closed() {
        let dir = TempDir::new("pages-corrupt");
        let t = tree_of(30);
        let mut store = PageStore::open(dir.path(), WalConfig::default()).expect("open");
        store.persist_tree(&t).expect("persist");
        drop(store);
        // Flip one byte in the middle of the segment.
        let seg = segment_path(dir.path(), 0);
        let mut bytes = std::fs::read(&seg).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&seg, &bytes).expect("corrupt");
        let store = PageStore::open(dir.path(), WalConfig::default()).expect("reopen");
        // The scan already dropped everything at/after the corrupt frame;
        // loading the root must fail (missing or corrupt page), never
        // return a wrong tree.
        assert!(store.load_tree::<Hash>(t.root_hash()).is_err());
    }

    #[test]
    fn segments_rotate() {
        let dir = TempDir::new("pages-seg");
        let cfg = WalConfig { segment_bytes: 512, ..WalConfig::default() };
        let t = tree_of(100);
        let mut store = PageStore::open(dir.path(), cfg.clone()).expect("open");
        store.persist_tree(&t).expect("persist");
        assert!(store.segments.len() > 2, "small segments must rotate");
        drop(store);
        let store = PageStore::open(dir.path(), cfg).expect("reopen");
        let loaded: SparseMerkleTree = store.load_tree(t.root_hash()).expect("load");
        assert_eq!(loaded.len(), 100);
    }

    #[test]
    fn sealed_segments_reopen_from_sidecar_index() {
        let dir = TempDir::new("pages-idx");
        let cfg = WalConfig { segment_bytes: 512, ..WalConfig::default() };
        let t = tree_of(100);
        let mut store = PageStore::open(dir.path(), cfg.clone()).expect("open");
        store.persist_tree(&t).expect("persist");
        assert!(store.segment_count() > 2);
        drop(store);
        let store = PageStore::open(dir.path(), cfg.clone()).expect("reopen");
        let open = store.open_stats();
        assert!(open.segments_indexed > 0, "sealed segments load from .idx");
        assert_eq!(open.segments_scanned, 1, "only the active tail is scanned");
        let loaded: SparseMerkleTree = store.load_tree(t.root_hash()).expect("load");
        assert_eq!(loaded.len(), 100);
        drop(store);
        // Corrupt one sidecar: the open falls back to scanning that
        // segment and still recovers everything.
        let idx = index_path(dir.path(), 0);
        let mut bytes = std::fs::read(&idx).expect("idx");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&idx, &bytes).expect("corrupt idx");
        let store = PageStore::open(dir.path(), cfg).expect("reopen with bad idx");
        assert!(store.open_stats().segments_scanned >= 2, "bad sidecar falls back to scan");
        let loaded: SparseMerkleTree = store.load_tree(t.root_hash()).expect("load");
        assert_eq!(loaded.len(), 100);
    }

    #[test]
    fn gc_reclaims_dead_segments_and_fixes_accounting() {
        let dir = TempDir::new("pages-gc");
        let cfg = WalConfig { segment_bytes: 1024, ..WalConfig::default() };
        let mut store = PageStore::open(dir.path(), cfg.clone()).expect("open");
        // Heavy churn: 30 checkpoints over the same keys leave most pages
        // dead (only the last root is retained).
        let mut t = tree_of(128);
        store.persist_tree(&t).expect("persist 0");
        for round in 1..30u64 {
            for i in 0..32u64 {
                t.insert(&format!("key-{}", (i * 4 + round) % 128), vh(round * 1_000 + i));
            }
            store.persist_tree(&t).expect("persist churn");
        }
        let before_bytes = store.total_bytes();
        let before_pages = store.page_count();
        let before_readers = store.readers.len();
        assert!(store.segment_count() > 3);

        let stats = store.gc(&[t.root_hash()]).expect("gc");
        assert!(stats.swept_segments > 0, "churn leaves sweepable segments");
        assert!(stats.reclaimed_bytes > 0);
        assert_eq!(stats.live_pages, 2 * 128 - 1);
        // Satellite regression: accounting shrinks and reader handles for
        // unlinked segments are evicted (no fd leak).
        assert!(store.total_bytes() < before_bytes, "total_bytes must decrease");
        assert!(store.page_count() < before_pages, "stale index entries purged");
        assert_eq!(store.readers.len(), store.segments.len(), "one reader per live segment");
        assert!(store.readers.len() < before_readers);
        for id in store.readers.keys() {
            assert!(store.segments.contains(id));
        }
        // The retained root still loads; the store still works.
        let loaded: SparseMerkleTree = store.load_tree(t.root_hash()).expect("live root loads");
        assert_eq!(loaded.root_hash(), t.root_hash());
        // And the sweep survives a reopen: on-disk files agree.
        drop(store);
        let store = PageStore::open(dir.path(), cfg).expect("reopen");
        let loaded: SparseMerkleTree = store.load_tree(t.root_hash()).expect("reload");
        assert_eq!(loaded.len(), 128);
    }

    #[test]
    fn gc_keeps_every_retained_root() {
        let dir = TempDir::new("pages-gc-roots");
        let cfg = WalConfig { segment_bytes: 1024, ..WalConfig::default() };
        let mut store = PageStore::open(dir.path(), cfg).expect("open");
        let mut t = tree_of(64);
        store.persist_tree(&t).expect("persist old");
        let old_root = t.root_hash();
        for i in 0..64u64 {
            t.insert(&format!("key-{i}"), vh(10_000 + i));
        }
        store.persist_tree(&t).expect("persist new");
        // Retaining both roots must keep both trees loadable even though
        // compaction may move their pages.
        for _ in 0..2 {
            store.gc(&[old_root, t.root_hash()]).expect("gc");
            let a: SparseMerkleTree = store.load_tree(old_root).expect("old root");
            assert_eq!(a.root_hash(), old_root);
            let b: SparseMerkleTree = store.load_tree(t.root_hash()).expect("new root");
            assert_eq!(b.root_hash(), t.root_hash());
        }
    }

    #[test]
    fn maybe_gc_honors_trigger() {
        let dir = TempDir::new("pages-gc-trigger");
        let cfg = WalConfig {
            segment_bytes: 1024,
            gc_trigger_bytes: 16 * 1024,
            ..WalConfig::default()
        };
        let mut store = PageStore::open(dir.path(), cfg).expect("open");
        let t = tree_of(16);
        store.persist_tree(&t).expect("persist");
        assert!(
            store.maybe_gc(&[t.root_hash()]).expect("below trigger").is_none(),
            "small store must not trigger"
        );
        let mut t = t;
        for round in 0..40u64 {
            for i in 0..16u64 {
                t.insert(&format!("key-{i}"), vh(round * 100 + i));
            }
            store.persist_tree(&t).expect("churn");
        }
        assert!(store.total_bytes() >= 16 * 1024);
        let ran = store.maybe_gc(&[t.root_hash()]).expect("gc runs");
        assert!(ran.is_some());
        assert!(store.gc_totals().runs >= 1);
    }
}
