//! Content-addressed page store for persistent sparse-Merkle-tree
//! snapshots.
//!
//! Every tree node serializes to one **page** keyed by its node hash
//! (leaf and branch hashes are domain-separated, so the key commits to the
//! node's kind and full content). Pages append to `pages-<id>.seg`
//! segment files with the same `[len][crc][payload]` framing as the WAL;
//! an in-memory index maps hash → file location and is rebuilt by
//! scanning the segments on open.
//!
//! ## Structural sharing on disk
//!
//! [`PageStore::persist_tree`] walks a snapshot **children-first** and
//! skips any subtree whose root page already exists — which is exactly
//! where consecutive checkpoints share structure in memory. Persisting
//! checkpoint *k+1* after checkpoint *k* therefore writes only the O(churn
//! × log n) pages along the mutated root paths; everything untouched is
//! referenced, not rewritten. (The `wal_ops` bench measures the ratio.)
//!
//! The children-first order doubles as the crash-safety invariant: a page
//! on disk implies its entire subtree is on disk, so a crash mid-persist
//! leaves only complete orphan subtrees (which later persists may even
//! legitimately reuse), never a parent with missing children.
//!
//! ## Loading
//!
//! [`PageStore::load_tree`] walks down from a root hash, collects the
//! leaves, rebuilds the tree, and **verifies the rebuilt root equals the
//! requested one** — a page store can fail to load (missing/corrupt
//! pages), but it cannot hand back wrong state.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

use ahl_crypto::Hash;
use ahl_store::{NodeView, SparseMerkleTree, StateValue};

use crate::codec::{crc32, encode_frame, fsync_dir, Reader, Writer};
use crate::log::WalConfig;
use crate::segscan::recover_segments;
use crate::{FsyncPolicy, WalError};

/// A value storable under the page-backed tree: [`StateValue`] plus a
/// self-contained binary encoding (`ahl-ledger` implements this for
/// `Value`; a bare `Hash` is its own 32-byte encoding).
pub trait PageValue: StateValue + Clone {
    /// Append the value's encoding to `w`.
    fn encode_value(&self, w: &mut Writer);
    /// Decode a value previously written by
    /// [`PageValue::encode_value`]; `None` on truncation/corruption.
    fn decode_value(r: &mut Reader<'_>) -> Option<Self>
    where
        Self: Sized;
}

impl PageValue for Hash {
    fn encode_value(&self, w: &mut Writer) {
        w.hash(self);
    }
    fn decode_value(r: &mut Reader<'_>) -> Option<Self> {
        r.hash()
    }
}

/// Outcome of one [`PageStore::persist_tree`] call.
#[derive(Clone, Copy, Debug, Default)]
pub struct PersistStats {
    /// Pages newly written by this persist.
    pub pages_written: u64,
    /// Subtrees skipped because their root page was already on disk
    /// (each skip shares an entire subtree, not just one node).
    pub subtrees_shared: u64,
    /// Frame bytes appended.
    pub bytes_written: u64,
}

const TAG_LEAF: u8 = 0;
const TAG_BRANCH: u8 = 1;
/// A page payload is at least a node hash plus a tag byte.
const MIN_PAGE: usize = 33;

fn segment_path(dir: &Path, id: u64) -> PathBuf {
    crate::segscan::segment_path(dir, "pages", id)
}

#[derive(Clone, Copy)]
struct PageLoc {
    segment: u64,
    /// Offset of the frame (length prefix) within the segment.
    offset: u64,
    /// Full frame length.
    len: u32,
}

/// The content-addressed page store (see module docs).
pub struct PageStore {
    dir: PathBuf,
    cfg: WalConfig,
    index: HashMap<Hash, PageLoc>,
    active: File,
    active_id: u64,
    active_bytes: u64,
    segments: Vec<u64>,
    /// One long-lived read handle per segment: page loads are positioned
    /// reads, not open/seek/read triples per page (a 100k-key tree load
    /// would otherwise pay ~200k `open(2)` calls).
    readers: HashMap<u64, File>,
    total_bytes: u64,
}

impl PageStore {
    /// Open (or create) the store in `dir`, rebuilding the hash index by
    /// scanning every segment. A torn final frame is truncated away;
    /// segments past a tear are deleted (they can only postdate the
    /// crash).
    pub fn open(dir: &Path, cfg: WalConfig) -> std::io::Result<PageStore> {
        let mut index = HashMap::new();
        let mut total_bytes = 0u64;
        let keep = recover_segments(dir, "pages", MIN_PAGE, &mut |id, offset, payload| {
            let mut h = Hash::ZERO;
            h.0.copy_from_slice(&payload[..32]);
            index.insert(
                h,
                PageLoc { segment: id, offset, len: (8 + payload.len()) as u32 },
            );
            total_bytes += 8 + payload.len() as u64;
        })?;
        let active_id = *keep.last().expect("at least one segment");
        let mut active =
            OpenOptions::new().read(true).write(true).open(segment_path(dir, active_id))?;
        let active_bytes = active.seek(SeekFrom::End(0))?;
        let mut readers = HashMap::new();
        for &id in &keep {
            readers.insert(id, File::open(segment_path(dir, id))?);
        }
        Ok(PageStore {
            dir: dir.to_path_buf(),
            cfg,
            index,
            active,
            active_id,
            active_bytes,
            segments: keep,
            readers,
            total_bytes,
        })
    }

    /// Whether a page for `hash` is on disk.
    pub fn contains(&self, hash: &Hash) -> bool {
        self.index.contains_key(hash)
    }

    /// Number of indexed pages.
    pub fn page_count(&self) -> usize {
        self.index.len()
    }

    /// Total intact frame bytes across all segments.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    fn write_frame(&mut self, hash: Hash, payload: Vec<u8>) -> std::io::Result<u64> {
        let frame = encode_frame(&payload);
        if let Err(e) = self.cfg.kill.check() {
            // Torn page write: half the frame reaches the disk.
            let _ = self.active.write_all(&frame[..frame.len() / 2]);
            return Err(e);
        }
        self.active.write_all(&frame)?;
        self.index.insert(
            hash,
            PageLoc { segment: self.active_id, offset: self.active_bytes, len: frame.len() as u32 },
        );
        self.active_bytes += frame.len() as u64;
        self.total_bytes += frame.len() as u64;
        if self.active_bytes >= self.cfg.segment_bytes {
            // Seal: under a durable policy the sealed segment's pages are
            // synced NOW — the pre-manifest barrier only syncs the active
            // segment, and pages a manifest references must never be the
            // ones a power cut can lose.
            if !matches!(self.cfg.fsync, FsyncPolicy::Off) {
                self.active.sync_data()?;
            }
            let next = self.segments.last().expect("non-empty") + 1;
            self.active = File::create(segment_path(&self.dir, next))?;
            self.active_id = next;
            self.active_bytes = 0;
            self.segments.push(next);
            self.readers.insert(next, File::open(segment_path(&self.dir, next))?);
            // Durable policies must not lose the new directory entry to a
            // power cut either.
            if !matches!(self.cfg.fsync, FsyncPolicy::Off) {
                fsync_dir(&self.dir)?;
            }
        }
        Ok(frame.len() as u64)
    }

    /// Persist every page of `tree` that is not already on disk
    /// (children-first; shared subtrees are skipped at their root). The
    /// fsync policy is applied once at the end — callers publishing a
    /// manifest must call [`PageStore::sync`] first regardless.
    pub fn persist_tree<V: PageValue>(
        &mut self,
        tree: &SparseMerkleTree<V>,
    ) -> std::io::Result<PersistStats> {
        struct PersistCtx<'a> {
            store: &'a mut PageStore,
            stats: PersistStats,
            failure: Option<std::io::Error>,
        }
        // Both traversal closures need the store (dedup query in `prune`,
        // the write in `visit`): a RefCell splits the borrow safely.
        let ctx = std::cell::RefCell::new(PersistCtx {
            store: self,
            stats: PersistStats::default(),
            failure: None,
        });
        tree.visit_nodes(
            &mut |hash| {
                let mut c = ctx.borrow_mut();
                if c.failure.is_some() {
                    return true; // stop writing after the first error
                }
                let shared = c.store.index.contains_key(hash);
                if shared {
                    c.stats.subtrees_shared += 1;
                }
                shared
            },
            &mut |view| {
                let mut c = ctx.borrow_mut();
                if c.failure.is_some() {
                    return;
                }
                let (hash, payload) = encode_page(&view);
                match c.store.write_frame(hash, payload) {
                    Ok(n) => {
                        c.stats.pages_written += 1;
                        c.stats.bytes_written += n;
                    }
                    Err(e) => c.failure = Some(e),
                }
            },
        );
        let ctx = ctx.into_inner();
        if let Some(e) = ctx.failure {
            return Err(e);
        }
        let stats = ctx.stats;
        let store = ctx.store;
        if !matches!(store.cfg.fsync, FsyncPolicy::Off) && stats.pages_written > 0 {
            store.active.sync_data()?;
        }
        Ok(stats)
    }

    /// Force an `fdatasync` of the active segment (the barrier before a
    /// manifest swap may reference freshly written pages).
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.active.sync_data()
    }

    fn read_page(&self, hash: &Hash) -> Result<Vec<u8>, WalError> {
        let loc = self.index.get(hash).ok_or(WalError::MissingPage(*hash))?;
        let f = self
            .readers
            .get(&loc.segment)
            .ok_or(WalError::Corrupt("segment reader missing"))?;
        let mut frame = vec![0u8; loc.len as usize];
        f.read_exact_at(&mut frame, loc.offset)?;
        let payload = &frame[8..];
        let crc = u32::from_be_bytes([frame[4], frame[5], frame[6], frame[7]]);
        if crc32(payload) != crc || payload[..32] != hash.0 {
            return Err(WalError::Corrupt("page frame failed CRC/hash check"));
        }
        Ok(payload[32..].to_vec())
    }

    /// Load the complete tree rooted at `root` and verify the rebuilt root
    /// hash matches. `Hash::ZERO` loads the empty tree.
    pub fn load_tree<V: PageValue>(&self, root: Hash) -> Result<SparseMerkleTree<V>, WalError> {
        if root == Hash::ZERO {
            return Ok(SparseMerkleTree::new());
        }
        let mut leaves: Vec<(String, V)> = Vec::new();
        let mut stack = vec![root];
        while let Some(hash) = stack.pop() {
            let body = self.read_page(&hash)?;
            let mut r = Reader::new(&body);
            match r.u8() {
                Some(TAG_LEAF) => {
                    let key = r.str().ok_or(WalError::Corrupt("leaf key"))?;
                    let value =
                        V::decode_value(&mut r).ok_or(WalError::Corrupt("leaf value"))?;
                    leaves.push((key, value));
                }
                Some(TAG_BRANCH) => {
                    let _bit = r.u16().ok_or(WalError::Corrupt("branch bit"))?;
                    let left = r.hash().ok_or(WalError::Corrupt("branch left"))?;
                    let right = r.hash().ok_or(WalError::Corrupt("branch right"))?;
                    stack.push(left);
                    stack.push(right);
                }
                _ => return Err(WalError::Corrupt("unknown page tag")),
            }
        }
        let tree = SparseMerkleTree::build(leaves);
        if tree.root_hash() != root {
            return Err(WalError::Corrupt("rebuilt root does not match manifest root"));
        }
        Ok(tree)
    }
}

fn encode_page<V: PageValue>(view: &NodeView<'_, V>) -> (Hash, Vec<u8>) {
    let mut w = Writer::new();
    match view {
        NodeView::Leaf { hash, key, value } => {
            w.hash(hash);
            w.u8(TAG_LEAF);
            w.str(key);
            value.encode_value(&mut w);
            (*hash, w.into_bytes())
        }
        NodeView::Branch { hash, bit, left, right } => {
            w.hash(hash);
            w.u8(TAG_BRANCH);
            w.u16(*bit);
            w.hash(left);
            w.hash(right);
            (*hash, w.into_bytes())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;
    use ahl_crypto::sha256_parts;

    fn vh(i: u64) -> Hash {
        sha256_parts(&[&i.to_be_bytes()])
    }

    fn tree_of(n: u64) -> SparseMerkleTree {
        SparseMerkleTree::build((0..n).map(|i| (format!("key-{i}"), vh(i))))
    }

    #[test]
    fn persist_load_round_trip() {
        let dir = TempDir::new("pages-rt");
        let t = tree_of(200);
        let mut store = PageStore::open(dir.path(), WalConfig::default()).expect("open");
        let stats = store.persist_tree(&t).expect("persist");
        assert_eq!(stats.pages_written, 2 * 200 - 1, "n leaves + n-1 branches");
        drop(store);
        let store = PageStore::open(dir.path(), WalConfig::default()).expect("reopen");
        assert_eq!(store.page_count(), 2 * 200 - 1);
        let loaded: SparseMerkleTree = store.load_tree(t.root_hash()).expect("load");
        assert_eq!(loaded.root_hash(), t.root_hash());
        assert_eq!(loaded.len(), 200);
        assert_eq!(loaded.get("key-7"), Some(&vh(7)));
        // Empty root loads the empty tree.
        let empty: SparseMerkleTree = store.load_tree(Hash::ZERO).expect("empty");
        assert!(empty.is_empty());
    }

    #[test]
    fn consecutive_checkpoints_share_pages() {
        let dir = TempDir::new("pages-share");
        let mut t = tree_of(512);
        let mut store = PageStore::open(dir.path(), WalConfig::default()).expect("open");
        let first = store.persist_tree(&t).expect("persist 1");
        // 10% churn, then persist the next checkpoint.
        for i in 0..51u64 {
            t.insert(&format!("key-{}", i * 10), vh(1_000 + i));
        }
        let second = store.persist_tree(&t).expect("persist 2");
        assert!(
            second.pages_written * 2 < first.pages_written,
            "10% churn must rewrite far less than half the pages: {} vs {}",
            second.pages_written,
            first.pages_written
        );
        assert!(second.subtrees_shared > 0);
        // Both roots stay loadable — old pages are never rewritten.
        let old_root = {
            let fresh = tree_of(512);
            fresh.root_hash()
        };
        let a: SparseMerkleTree = store.load_tree(old_root).expect("old checkpoint");
        assert_eq!(a.root_hash(), old_root);
        let b: SparseMerkleTree = store.load_tree(t.root_hash()).expect("new checkpoint");
        assert_eq!(b.root_hash(), t.root_hash());
    }

    #[test]
    fn unchanged_tree_writes_nothing() {
        let dir = TempDir::new("pages-noop");
        let t = tree_of(64);
        let mut store = PageStore::open(dir.path(), WalConfig::default()).expect("open");
        store.persist_tree(&t).expect("persist");
        let again = store.persist_tree(&t).expect("re-persist");
        assert_eq!(again.pages_written, 0);
        assert_eq!(again.subtrees_shared, 1, "one skip at the root covers everything");
    }

    #[test]
    fn half_written_page_is_discarded_and_rewritten() {
        let dir = TempDir::new("pages-torn");
        let t = tree_of(40);
        let cfg = WalConfig::default();
        let mut store = PageStore::open(dir.path(), cfg.clone()).expect("open");
        cfg.kill.arm(30);
        let err = store.persist_tree(&t).expect_err("kill fires mid-persist");
        assert!(err.to_string().contains("killswitch"));
        drop(store);
        // Reopen: the torn page is truncated; the tree is not yet loadable
        // (no manifest would reference it), but re-persisting completes it
        // and reuses every intact orphan subtree.
        let mut store = PageStore::open(dir.path(), WalConfig::default()).expect("reopen");
        assert!(store.load_tree::<Hash>(t.root_hash()).is_err(), "incomplete tree must not load");
        let finish = store.persist_tree(&t).expect("resume persist");
        assert!(finish.pages_written > 0);
        assert!(finish.pages_written < 2 * 40 - 1, "intact orphans were reused");
        let loaded: SparseMerkleTree = store.load_tree(t.root_hash()).expect("load");
        assert_eq!(loaded.root_hash(), t.root_hash());
    }

    #[test]
    fn corrupt_page_fails_load_closed() {
        let dir = TempDir::new("pages-corrupt");
        let t = tree_of(30);
        let mut store = PageStore::open(dir.path(), WalConfig::default()).expect("open");
        store.persist_tree(&t).expect("persist");
        drop(store);
        // Flip one byte in the middle of the segment.
        let seg = segment_path(dir.path(), 0);
        let mut bytes = std::fs::read(&seg).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&seg, &bytes).expect("corrupt");
        let store = PageStore::open(dir.path(), WalConfig::default()).expect("reopen");
        // The scan already dropped everything at/after the corrupt frame;
        // loading the root must fail (missing or corrupt page), never
        // return a wrong tree.
        assert!(store.load_tree::<Hash>(t.root_hash()).is_err());
    }

    #[test]
    fn segments_rotate() {
        let dir = TempDir::new("pages-seg");
        let cfg = WalConfig { segment_bytes: 512, ..WalConfig::default() };
        let t = tree_of(100);
        let mut store = PageStore::open(dir.path(), cfg.clone()).expect("open");
        store.persist_tree(&t).expect("persist");
        assert!(store.segments.len() > 2, "small segments must rotate");
        drop(store);
        let store = PageStore::open(dir.path(), cfg).expect("reopen");
        let loaded: SparseMerkleTree = store.load_tree(t.root_hash()).expect("load");
        assert_eq!(loaded.len(), 100);
    }
}
