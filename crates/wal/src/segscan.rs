//! The one segment-directory recovery scan, shared by the WAL and the
//! page store (two hand-maintained copies of crash-recovery logic would
//! inevitably drift).
//!
//! Recovery rules: segments are `<prefix>-<id>.seg`, scanned in id order;
//! frames are parsed with [`crate::codec::parse_frame`]; the first torn
//! or corrupt frame ends the log — the file is truncated at that offset
//! and every *later* segment is deleted (append-only operation means they
//! can only postdate the crash point).

use std::fs::{File, OpenOptions};
use std::io::Read;
use std::path::{Path, PathBuf};

use crate::codec::parse_frame;

pub(crate) fn segment_path(dir: &Path, prefix: &str, id: u64) -> PathBuf {
    dir.join(format!("{prefix}-{id:08}.seg"))
}

/// List the segment ids present under `dir` for `prefix`, ascending.
/// Creates the directory (and segment 0) if nothing exists yet, so the
/// returned list is never empty. Gaps in the id sequence are legal: GC
/// and retention unlink whole segments out of the middle.
pub(crate) fn list_segment_ids(dir: &Path, prefix: &str) -> std::io::Result<Vec<u64>> {
    std::fs::create_dir_all(dir)?;
    let mut ids: Vec<u64> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            let id = name.strip_prefix(prefix)?.strip_prefix('-')?.strip_suffix(".seg")?;
            id.parse::<u64>().ok()
        })
        .collect();
    ids.sort_unstable();
    if ids.is_empty() {
        ids.push(0);
        File::create(segment_path(dir, prefix, 0))?;
    }
    Ok(ids)
}

/// Scan (and repair) the segment files under `dir`, invoking `on_frame`
/// with `(segment id, frame offset, payload)` for every intact frame in
/// order. Creates segment 0 if the directory is empty. Returns the
/// surviving segment ids, ascending; the last one is the append target.
pub(crate) fn recover_segments(
    dir: &Path,
    prefix: &str,
    min_payload: usize,
    on_frame: &mut dyn FnMut(u64, u64, &[u8]),
) -> std::io::Result<Vec<u64>> {
    let ids = list_segment_ids(dir, prefix)?;
    let mut keep: Vec<u64> = Vec::new();
    let mut torn_at: Option<(u64, u64)> = None;
    for &id in &ids {
        if torn_at.is_some() {
            std::fs::remove_file(segment_path(dir, prefix, id))?;
            continue;
        }
        let mut buf = Vec::new();
        File::open(segment_path(dir, prefix, id))?.read_to_end(&mut buf)?;
        let mut pos = 0usize;
        while let Some((payload, frame_len)) = parse_frame(&buf, pos, min_payload) {
            on_frame(id, pos as u64, payload);
            pos += frame_len;
        }
        keep.push(id);
        if pos < buf.len() {
            torn_at = Some((id, pos as u64));
        }
    }
    if let Some((id, offset)) = torn_at {
        // Physically drop the torn tail so later appends are framed from
        // a clean boundary.
        let f = OpenOptions::new().write(true).open(segment_path(dir, prefix, id))?;
        f.set_len(offset)?;
    }
    Ok(keep)
}
