//! Bounded, fault-on-demand page cache: O(working set) reads from a
//! [`PageStore`] without materializing the tree.
//!
//! [`PageStore::load_tree`] deserializes *every* page reachable from a
//! root before answering anything — O(history) work and memory that makes
//! reopening a multi-GB store pay for state it may never touch. A
//! [`PageCache`] instead walks the crit-bit path for one key, faulting in
//! only the ~log n nodes along it, and keeps faulted nodes in a
//! byte-bounded LRU (the same accounting style as the consensus layer's
//! `snapshot_max_bytes`). All cached pages are clean — the store is
//! append-only — so eviction is free.
//!
//! ## Per-node authentication
//!
//! `load_tree` verifies by rebuilding the whole tree and comparing roots;
//! a lazy walk can't do that. Instead every faulted node is verified
//! *individually* against the hash that named it: a leaf must satisfy
//! `leaf_hash(key_path(key), value.leaf_digest())`, a branch
//! `combine(left, right)` — the same domain-separated constructions the
//! tree uses. Starting from a trusted (certified) root, each verified
//! node transfers trust to the child hashes it names, so the walk is
//! Merkle-authenticated end to end and fails closed on any mismatch.

use std::collections::HashMap;

use ahl_crypto::Hash;
use ahl_store::{combine, key_path, leaf_hash};

use crate::pages::{decode_page, PageNode, PageStore, PageValue};
use crate::WalError;

/// Rough per-node bookkeeping overhead added to the payload size when
/// charging the byte budget.
const NODE_OVERHEAD: u64 = 64;

/// Read-side counters (the `store.cache_*` scoped stats).
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Node lookups answered from the cache.
    pub hits: u64,
    /// Node lookups that faulted a page in from the store.
    pub misses: u64,
    /// Clean pages evicted to stay under the byte budget.
    pub evictions: u64,
    /// Bytes currently resident.
    pub resident_bytes: u64,
    /// Pages currently resident.
    pub resident_pages: u64,
}

struct Entry<V> {
    node: PageNode<V>,
    bytes: u64,
    last_used: u64,
}

/// The bounded fault-on-demand node cache (see module docs).
pub struct PageCache<V: PageValue> {
    max_bytes: u64,
    tick: u64,
    resident_bytes: u64,
    map: HashMap<Hash, Entry<V>>,
    stats: CacheStats,
}

impl<V: PageValue> PageCache<V> {
    /// An empty cache holding at most `max_bytes` of decoded nodes.
    pub fn new(max_bytes: u64) -> Self {
        PageCache {
            max_bytes: max_bytes.max(1),
            tick: 0,
            resident_bytes: 0,
            map: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Read-side counters plus current residency.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            resident_bytes: self.resident_bytes,
            resident_pages: self.map.len() as u64,
            ..self.stats
        }
    }

    /// Look up `key` under `root`, faulting in only the nodes along its
    /// crit-bit path. `Hash::ZERO` is the empty tree. Every faulted node
    /// is hash-verified (see module docs); corruption fails closed.
    pub fn get(&mut self, store: &PageStore, root: Hash, key: &str) -> Result<Option<V>, WalError> {
        if root == Hash::ZERO {
            return Ok(None);
        }
        let path = key_path(key);
        let mut cur = root;
        // A 256-bit path bounds the walk; anything deeper is a cycle
        // forged into the page bytes.
        for _ in 0..=256 {
            match self.node(store, cur)? {
                PageNode::Leaf { key: leaf_key, value } => {
                    return Ok((leaf_key == key).then(|| value.clone()));
                }
                PageNode::Branch { bit, left, right } => {
                    cur = if bit_at(&path, *bit) == 0 { *left } else { *right };
                }
            }
        }
        Err(WalError::Corrupt("page walk exceeded path depth"))
    }

    /// Fetch one node, faulting and verifying on miss.
    fn node(&mut self, store: &PageStore, hash: Hash) -> Result<&PageNode<V>, WalError> {
        self.tick += 1;
        if let Some(e) = self.map.get_mut(&hash) {
            e.last_used = self.tick;
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
            let body = store.read_page(&hash)?;
            let node = decode_page::<V>(&body)?;
            verify_node(&hash, &node)?;
            let bytes = body.len() as u64 + NODE_OVERHEAD;
            self.resident_bytes += bytes;
            self.map.insert(hash, Entry { node, bytes, last_used: self.tick });
            self.maybe_evict(&hash);
        }
        Ok(&self.map.get(&hash).expect("resident").node)
    }

    /// Evict least-recently-used pages down to 7/8 of the budget (the
    /// slack amortizes the sort so a hot loop doesn't evict per fault).
    fn maybe_evict(&mut self, keep: &Hash) {
        if self.resident_bytes <= self.max_bytes {
            return;
        }
        let target = self.max_bytes - self.max_bytes / 8;
        let mut order: Vec<(u64, Hash)> = self
            .map
            .iter()
            .filter(|(h, _)| *h != keep)
            .map(|(h, e)| (e.last_used, *h))
            .collect();
        order.sort_unstable_by_key(|&(used, _)| used);
        for (_, h) in order {
            if self.resident_bytes <= target {
                break;
            }
            if let Some(e) = self.map.remove(&h) {
                self.resident_bytes -= e.bytes;
                self.stats.evictions += 1;
            }
        }
    }
}

/// Verify a decoded node hashes to the key it was fetched under — the
/// per-node Merkle check that lets a lazy walk trust child hashes.
fn verify_node<V: PageValue>(hash: &Hash, node: &PageNode<V>) -> Result<(), WalError> {
    let computed = match node {
        PageNode::Leaf { key, value } => leaf_hash(&key_path(key), &value.leaf_digest()),
        PageNode::Branch { left, right, .. } => {
            // `combine` passes a ZERO side through, which would let a
            // forged single-child branch alias its child's hash — the
            // path-compressed tree never stores such a node, so reject it
            // outright.
            if *left == Hash::ZERO || *right == Hash::ZERO {
                return Err(WalError::Corrupt("branch page with empty child"));
            }
            combine(left, right)
        }
    };
    if computed != *hash {
        return Err(WalError::Corrupt("page content does not hash to its key"));
    }
    Ok(())
}

/// Bit `bit` of a 256-bit path, MSB-first within each byte (the tree's
/// crit-bit convention).
fn bit_at(path: &Hash, bit: u16) -> u8 {
    let i = bit as usize;
    (path.0[i / 8] >> (7 - (i % 8))) & 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;
    use crate::WalConfig;
    use ahl_crypto::sha256_parts;
    use ahl_store::SparseMerkleTree;

    fn vh(i: u64) -> Hash {
        sha256_parts(&[&i.to_be_bytes()])
    }

    fn persisted(dir: &TempDir, n: u64) -> (PageStore, SparseMerkleTree) {
        let t = SparseMerkleTree::build((0..n).map(|i| (format!("key-{i}"), vh(i))));
        let mut store = PageStore::open(dir.path(), WalConfig::default()).expect("open");
        store.persist_tree(&t).expect("persist");
        (store, t)
    }

    #[test]
    fn lazy_get_faults_only_the_path() {
        let dir = TempDir::new("cache-path");
        let (store, t) = persisted(&dir, 1000);
        let mut cache: PageCache<Hash> = PageCache::new(1 << 20);
        assert_eq!(cache.get(&store, t.root_hash(), "key-42").expect("get"), Some(vh(42)));
        let s = cache.stats();
        assert!(
            s.misses < 30,
            "one key must fault ~log n nodes, not the whole store: {}",
            s.misses
        );
        assert!(s.resident_pages < 30);
        // Absent keys answer None without loading everything either.
        assert_eq!(cache.get(&store, t.root_hash(), "no-such-key").expect("get"), None);
        // Re-reading is all hits.
        let before = cache.stats().misses;
        assert_eq!(cache.get(&store, t.root_hash(), "key-42").expect("get"), Some(vh(42)));
        assert_eq!(cache.stats().misses, before);
        assert!(cache.stats().hits > 0);
        // Empty tree.
        assert_eq!(cache.get(&store, Hash::ZERO, "key-1").expect("get"), None);
    }

    #[test]
    fn eviction_keeps_resident_bytes_bounded() {
        let dir = TempDir::new("cache-evict");
        let (store, t) = persisted(&dir, 2000);
        // A budget far below the full tree forces steady eviction.
        let budget = 8 * 1024;
        let mut cache: PageCache<Hash> = PageCache::new(budget);
        for i in 0..2000u64 {
            let key = format!("key-{i}");
            assert_eq!(cache.get(&store, t.root_hash(), &key).expect("get"), Some(vh(i)));
            assert!(cache.stats().resident_bytes <= budget, "budget respected at every step");
        }
        let s = cache.stats();
        assert!(s.evictions > 0, "a full sweep far over budget must evict");
        assert!(s.resident_bytes <= budget);
    }

    #[test]
    fn corrupt_page_fails_closed() {
        let dir = TempDir::new("cache-corrupt");
        let (store, t) = persisted(&dir, 50);
        drop(store);
        // Flip a byte inside some frame *payload past the hash prefix* so
        // the CRC stays the only line of defense at frame level — then
        // also rewrite the CRC so only the per-node hash check can catch
        // it. Easiest deterministic approach: corrupt a value byte and
        // refresh the frame CRC.
        let seg = dir.path().join("pages-00000000.seg");
        let mut bytes = std::fs::read(&seg).expect("read");
        // Frame layout: [u32 len][u32 crc][32-byte hash][tag][body...]
        let len = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        let payload_start = 8;
        bytes[payload_start + len - 1] ^= 0xFF; // last payload byte
        let crc = crate::codec::crc32(&bytes[payload_start..payload_start + len]);
        bytes[4..8].copy_from_slice(&crc.to_be_bytes());
        std::fs::write(&seg, &bytes).expect("corrupt");
        let store = PageStore::open(dir.path(), WalConfig::default()).expect("reopen");
        let mut cache: PageCache<Hash> = PageCache::new(1 << 20);
        // Some key's walk crosses the corrupted node and must error —
        // never return a wrong value. Keys whose paths avoid it are fine.
        let mut saw_corrupt = false;
        for i in 0..50u64 {
            match cache.get(&store, t.root_hash(), &format!("key-{i}")) {
                Ok(v) => assert_eq!(v, Some(vh(i)), "untouched paths stay correct"),
                Err(_) => saw_corrupt = true,
            }
        }
        assert!(saw_corrupt, "the corrupted node must be detected by some walk");
    }
}
