//! Minimal binary codec shared by WAL records, pages, and manifests.
//!
//! Fixed-width big-endian integers, length-prefixed byte strings, and an
//! IEEE CRC-32 used to frame every on-disk record. The writer/reader pair
//! is deliberately tiny — no self-describing schema, no varints — because
//! every consumer knows exactly what it wrote; the CRC (not the codec)
//! is what detects torn or corrupted bytes.

use ahl_crypto::Hash;

/// IEEE CRC-32 (the Ethernet/zip polynomial), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// Largest credible frame payload: a length prefix claiming more is
/// treated as a torn write, not an allocation request (a corrupt prefix
/// must not ask a reader to allocate gigabytes).
pub const MAX_FRAME: usize = 64 << 20;

/// Frame a payload for append-only storage: `[u32 len][u32 crc][payload]`
/// (big-endian, CRC-32 of the payload) — the single on-disk record format
/// shared by WAL segments and page segments.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(&crc32(payload).to_be_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Parse the frame starting at `buf[pos..]`. Returns the payload slice
/// and the full frame length, or `None` when the bytes there are torn,
/// corrupt, or shorter than `min_payload` — the caller treats that as
/// end-of-log and truncates.
pub fn parse_frame(buf: &[u8], pos: usize, min_payload: usize) -> Option<(&[u8], usize)> {
    if pos + 8 > buf.len() {
        return None;
    }
    let len = u32::from_be_bytes([buf[pos], buf[pos + 1], buf[pos + 2], buf[pos + 3]]) as usize;
    let crc = u32::from_be_bytes([buf[pos + 4], buf[pos + 5], buf[pos + 6], buf[pos + 7]]);
    if len > MAX_FRAME || len < min_payload || pos + 8 + len > buf.len() {
        return None;
    }
    let payload = &buf[pos + 8..pos + 8 + len];
    (crc32(payload) == crc).then_some((payload, 8 + len))
}

/// `fsync` a directory, making renames and newly created files in it
/// durable (file-data fsyncs alone do not persist directory entries).
pub fn fsync_dir(dir: &std::path::Path) -> std::io::Result<()> {
    std::fs::File::open(dir)?.sync_all()
}

/// Append-only byte writer for record payloads.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a big-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Write a big-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Write a big-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Write a big-endian i64.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Write a 32-byte hash.
    pub fn hash(&mut self, h: &Hash) {
        self.buf.extend_from_slice(&h.0);
    }

    /// Write a length-prefixed byte string.
    pub fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }
}

/// Checked reader over an encoded payload; every accessor returns `None`
/// on truncation instead of panicking, so a corrupted record is rejected,
/// never trusted.
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from `data` starting at offset 0.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when the payload has been fully consumed.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.data.len() {
            return None;
        }
        let out = &self.data[self.pos..end];
        self.pos = end;
        Some(out)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    /// Read a big-endian u16.
    pub fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|b| u16::from_be_bytes([b[0], b[1]]))
    }

    /// Read a big-endian u32.
    pub fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a big-endian u64.
    pub fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_be_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Read a big-endian i64.
    pub fn i64(&mut self) -> Option<i64> {
        self.u64().map(|v| v as i64)
    }

    /// Read a 32-byte hash.
    pub fn hash(&mut self) -> Option<Hash> {
        let b = self.take(32)?;
        let mut h = Hash::ZERO;
        h.0.copy_from_slice(b);
        Some(h)
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Option<String> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahl_crypto::sha256;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }

    #[test]
    fn round_trip_all_types() {
        let h = sha256(b"x");
        let mut w = Writer::new();
        w.u8(7);
        w.u16(300);
        w.u32(70_000);
        w.u64(1 << 40);
        w.i64(-5);
        w.hash(&h);
        w.bytes(b"payload");
        w.str("key-\u{00e9}");
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8(), Some(7));
        assert_eq!(r.u16(), Some(300));
        assert_eq!(r.u32(), Some(70_000));
        assert_eq!(r.u64(), Some(1 << 40));
        assert_eq!(r.i64(), Some(-5));
        assert_eq!(r.hash(), Some(h));
        assert_eq!(r.bytes(), Some(&b"payload"[..]));
        assert_eq!(r.str(), Some("key-\u{00e9}".to_string()));
        assert!(r.is_done());
    }

    #[test]
    fn truncated_reads_fail_closed() {
        let mut w = Writer::new();
        w.u64(42);
        w.str("hello");
        let buf = w.into_bytes();
        // Every strict prefix fails to decode in full, never panics.
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            let ok = r.u64().is_some() && r.str().is_some();
            assert!(!ok, "prefix of {cut} bytes must not decode");
        }
        // A length prefix pointing past the buffer is refused.
        let mut w = Writer::new();
        w.u32(1_000_000);
        let buf = w.into_bytes();
        assert_eq!(Reader::new(&buf).bytes(), None);
    }
}
