//! Self-cleaning scratch directories for tests, benches, and smoke runs.
//!
//! The repository has no `tempfile` dependency (offline build), so this is
//! the one shared implementation of "give me a unique directory and delete
//! it when I'm done" — the tmpdir hygiene the recovery CI job relies on:
//! cleanup runs on `Drop`, so even a panicking test leaves nothing behind.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A uniquely named directory under the system temp dir, removed
/// (recursively, best-effort) on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create `"$TMPDIR/<prefix>-<pid>-<counter>"`. The pid keeps
    /// concurrent test processes apart; the counter keeps threads apart.
    pub fn new(prefix: &str) -> Self {
        let n = COUNTER.fetch_add(1, Ordering::SeqCst);
        let path = std::env::temp_dir().join(format!(
            "ahl-{prefix}-{}-{n}",
            std::process::id(),
        ));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_and_cleaned_up() {
        let a = TempDir::new("t");
        let b = TempDir::new("t");
        assert_ne!(a.path(), b.path());
        std::fs::write(a.path().join("f"), b"x").expect("write");
        let kept = a.path().to_path_buf();
        drop(a);
        assert!(!kept.exists(), "dropped tempdir must be removed");
        assert!(b.path().exists());
    }
}
