//! Durability round trip: `reopen(persist(store)) ≡ store` for random
//! operation sequences (tier-1).
//!
//! The store is driven through arbitrary prepare/commit/abort/direct
//! mixes, snapshotted, persisted to a real on-disk page store + manifest,
//! dropped, and reopened — the recovered store must agree on the root,
//! every key-value pair, the 2PC bookkeeping, and proof generation.

use ahl_crypto::Hash;
use ahl_ledger::persist::open_snapshot;
use ahl_ledger::{
    verify_state_proof, Condition, Mutation, Op, StateOp, StateSidecar, StateStore, TxId, Value,
};
use ahl_wal::codec::{Reader, Writer};
use ahl_wal::{open_node_dir, read_manifest, write_manifest, Manifest, TempDir, WalConfig};

fn transfer(from: &str, to: &str, amt: i64) -> StateOp {
    StateOp {
        conditions: vec![Condition::IntAtLeast { key: from.into(), min: amt }],
        mutations: vec![(from.into(), Mutation::Add(-amt)), (to.into(), Mutation::Add(amt))],
    }
}

/// Persist `store`'s snapshot (pages + manifest with encoded sidecar),
/// then reopen the directory and rebuild a store from disk.
fn persist_and_reopen(store: &StateStore, seq: u64) -> StateStore {
    let dir = TempDir::new("ledger-roundtrip");
    let cfg = WalConfig::default();
    {
        let mut node = open_node_dir(dir.path(), &cfg).expect("open");
        let snap = store.snapshot();
        snap.persist(&mut node.pages).expect("persist pages");
        node.pages.sync().expect("sync");
        let mut meta = Writer::new();
        snap.sidecar().encode(&mut meta);
        write_manifest(
            dir.path(),
            &Manifest { seq, root: snap.root(), meta: meta.into_bytes() },
            &cfg.kill,
        )
        .expect("manifest");
    }
    // Reopen cold: everything must come back from the files alone.
    let node = open_node_dir(dir.path(), &cfg).expect("reopen");
    let manifest = node.manifest.expect("manifest survives");
    assert_eq!(manifest.seq, seq);
    let sidecar =
        StateSidecar::decode(&mut Reader::new(&manifest.meta)).expect("sidecar decodes");
    let snap = open_snapshot(&node.pages, manifest.root, sidecar).expect("snapshot loads");
    StateStore::from_snapshot(&snap)
}

fn assert_equivalent(a: &StateStore, b: &StateStore) {
    assert_eq!(a.state_digest(), b.state_digest(), "roots agree");
    assert_eq!(a.len(), b.len());
    assert_eq!(a.pending_count(), b.pending_count());
    assert_eq!(a.resolved_count(), b.resolved_count());
    for (k, v) in a.iter() {
        assert_eq!(b.get(k), Some(v), "key {k}");
    }
}

#[test]
fn empty_store_round_trips() {
    let store = StateStore::new();
    let reopened = persist_and_reopen(&store, 1);
    assert_equivalent(&store, &reopened);
    assert_eq!(reopened.state_digest(), Hash::ZERO);
}

#[test]
fn pending_transactions_survive_reopen() {
    let mut store = StateStore::new();
    store.put("a".into(), Value::Int(100));
    store.put("b".into(), Value::Int(50));
    store.execute(&Op::Prepare { txid: TxId(1), op: transfer("a", "b", 30) });
    store.execute(&Op::Prepare { txid: TxId(9), op: transfer("b", "a", 1) });
    store.execute(&Op::Abort { txid: TxId(9) });

    let mut reopened = persist_and_reopen(&store, 4);
    assert_equivalent(&store, &reopened);
    // The in-flight transaction is still decidable after the restart...
    assert!(reopened.is_locked("a"));
    let r = reopened.execute(&Op::Commit { txid: TxId(1) });
    assert!(r.status.is_committed());
    assert_eq!(reopened.get_int("a"), 70);
    assert!(!reopened.is_locked("a"));
    // ...and the replayed decision for the aborted one is still refused.
    let r2 = reopened.execute(&Op::Prepare { txid: TxId(9), op: transfer("b", "a", 1) });
    assert!(!r2.status.is_committed());
}

proptest::proptest! {
    /// Random op sequences: persist + reopen reproduces the store exactly,
    /// and the reopened store generates proofs that verify against the
    /// persisted root.
    #[test]
    fn reopen_persist_equals_store(
        steps in proptest::collection::vec((0u8..5, 0usize..5, 0usize..5, 1i64..40), 1..50)
    ) {
        let accounts = ["v", "w", "x", "y", "z"];
        let mut store = StateStore::new();
        for a in accounts {
            store.put(a.into(), Value::Int(500));
        }
        store.put("blob".into(), Value::Opaque { size: 1 << 30, tag: 7 });
        let mut open: Vec<TxId> = Vec::new();
        for (i, (kind, from, to, amt)) in steps.into_iter().enumerate() {
            let txid = TxId(i as u64);
            match kind {
                0 => {
                    let op = transfer(accounts[from], accounts[to], amt);
                    if store.execute(&Op::Prepare { txid, op }).status.is_committed() {
                        open.push(txid);
                    }
                }
                1 => {
                    if let Some(txid) = open.pop() {
                        store.execute(&Op::Commit { txid });
                    }
                }
                2 => {
                    if let Some(txid) = open.pop() {
                        store.execute(&Op::Abort { txid });
                    }
                }
                3 => {
                    store.execute(&Op::Direct {
                        txid,
                        op: StateOp {
                            conditions: vec![],
                            mutations: vec![(
                                format!("kv{}", from * 5 + to),
                                if amt % 7 == 0 {
                                    Mutation::Delete
                                } else {
                                    Mutation::Set(Value::Bytes(vec![amt as u8; from + 1]))
                                },
                            )],
                        },
                    });
                }
                _ => {
                    let op = transfer(accounts[from], accounts[to], amt);
                    store.execute(&Op::Direct { txid, op });
                }
            }
        }
        let reopened = persist_and_reopen(&store, 17);
        assert_equivalent(&store, &reopened);
        // Proofs from the reopened store verify against the original root.
        let root = store.state_digest();
        let p = reopened.prove("v");
        proptest::prop_assert!(verify_state_proof(
            &root, "v", Some(&Value::Int(reopened.get_int("v")).digest()), &p
        ));
        let absent = reopened.prove("never-written");
        proptest::prop_assert!(verify_state_proof(&root, "never-written", None, &absent));
    }
}

#[test]
fn stale_manifest_recovers_older_checkpoint() {
    // Persist checkpoint A, then write checkpoint B's pages but "crash"
    // before the manifest swap (kill at the rename site): reopen must
    // land on A — older, but valid and verified.
    let dir = TempDir::new("ledger-stale");
    let cfg = WalConfig::default();
    let mut store = StateStore::new();
    store.put("a".into(), Value::Int(1));
    let root_a = store.state_digest();
    {
        let mut node = open_node_dir(dir.path(), &cfg).expect("open");
        let snap = store.snapshot();
        snap.persist(&mut node.pages).expect("persist A");
        let mut meta = Writer::new();
        snap.sidecar().encode(&mut meta);
        write_manifest(
            dir.path(),
            &Manifest { seq: 10, root: root_a, meta: meta.into_bytes() },
            &cfg.kill,
        )
        .expect("manifest A");

        store.put("b".into(), Value::Int(2));
        let snap_b = store.snapshot();
        snap_b.persist(&mut node.pages).expect("persist B pages");
        cfg.kill.arm(1); // fire at the manifest rename
        let mut meta_b = Writer::new();
        snap_b.sidecar().encode(&mut meta_b);
        write_manifest(
            dir.path(),
            &Manifest { seq: 20, root: store.state_digest(), meta: meta_b.into_bytes() },
            &cfg.kill,
        )
        .expect_err("crash before swap");
    }
    let manifest = read_manifest(dir.path()).expect("manifest present");
    assert_eq!(manifest.seq, 10, "stale manifest: checkpoint A is the durable truth");
    let node = open_node_dir(dir.path(), &cfg).expect("reopen");
    let sidecar = StateSidecar::decode(&mut Reader::new(&manifest.meta)).expect("sidecar");
    let snap = open_snapshot(&node.pages, manifest.root, sidecar).expect("A loads");
    assert_eq!(snap.root(), root_a);
}
