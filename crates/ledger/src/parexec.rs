//! Deterministic conflict-aware parallel execution of one block's batch.
//!
//! The engine turns the sequential `for op in batch { state.execute(op) }`
//! loop into wave-parallel execution with a bit-for-bit identical outcome:
//!
//! 1. **Infer** each operation's read/write resource set
//!    ([`crate::access::infer`] — conservative supersets).
//! 2. **Schedule** the batch into conflict-free waves with the
//!    deterministic greedy scheduler ([`crate::access::schedule`]): an
//!    operation lands one wave after the last operation it conflicts with.
//! 3. **Plan** every operation of a wave concurrently against the frozen
//!    store ([`StateStore::plan`] is read-only) on a fixed pool of scoped
//!    worker threads.
//! 4. **Apply** the plans serially in canonical batch order
//!    ([`StateStore::apply_plans`]), which also coalesces the wave's SMT
//!    writes into one parallel subtree re-hash.
//!
//! **Determinism guarantee.** Within a wave no operation writes a resource
//! another reads or writes, so each plan equals the plan sequential
//! execution would have produced at that operation's turn; applying plans
//! in batch order therefore reproduces the sequential receipt stream,
//! state root, lock table, and 2PC bookkeeping exactly — regardless of
//! worker count, thread interleaving, or hash-map iteration order. The
//! `parallel ≡ sequential` battery (`tests/parexec.rs` and the proptests
//! below) pins this for `workers ∈ {2, 4, 8}`.

use crate::state::StateStore;
use crate::types::{Op, Receipt};

/// What executing one operation produced: the receipt, plus whether an
/// `Abort` actually discarded a prepared write set (the exactly-once
/// signal consensus forwards to the safety checker).
#[derive(Clone, Debug)]
pub struct ExecOutcome {
    /// The operation's receipt, identical to sequential execution.
    pub receipt: Receipt,
    /// For `Abort` operations: whether a prepared write set existed at
    /// execution time. Always `false` for other operations.
    pub had_pending: bool,
}

/// Waves smaller than this are planned inline: spawning threads costs more
/// than planning a handful of operations.
const MIN_PARALLEL_WAVE: usize = 8;

/// Whether the conflict graph is too dense to pay for wave scheduling:
/// fewer than two operations per wave on average means the batch is an
/// (almost) serial dependency chain, and the per-wave snapshot/plan/apply
/// machinery costs more than it parallelizes. Public so the regression
/// test pins the policy.
pub fn dense_schedule(n_ops: usize, n_waves: usize) -> bool {
    n_ops < 2 * n_waves
}

/// Execute a batch against `state`, identical in every observable way to
/// executing the operations sequentially in order, but using up to
/// `workers` threads on conflict-free waves. `workers <= 1` *is* the
/// sequential path.
pub fn execute_ops(state: &mut StateStore, ops: &[&Op], workers: usize) -> Vec<ExecOutcome> {
    if workers <= 1 || ops.len() < 2 {
        return ops
            .iter()
            .map(|op| {
                let had_pending = match op {
                    Op::Abort { txid } => state.has_pending(*txid),
                    _ => false,
                };
                ExecOutcome { receipt: state.execute(op), had_pending }
            })
            .collect();
    }

    let waves = crate::access::schedule(ops, |t| state.pending_info(t));
    let n_waves = waves.iter().copied().max().map_or(0, |w| w + 1);
    if dense_schedule(ops.len(), n_waves) {
        // Contention-adaptive fallback: a dense conflict graph yields
        // mostly single-op waves, where per-wave plan/apply framing is
        // pure overhead over the plain sequential loop. Both paths are
        // observably identical, so this is a wall-clock decision only.
        return ops
            .iter()
            .map(|op| {
                let had_pending = match op {
                    Op::Abort { txid } => state.has_pending(*txid),
                    _ => false,
                };
                ExecOutcome { receipt: state.execute(op), had_pending }
            })
            .collect();
    }
    let mut by_wave: Vec<Vec<usize>> = vec![Vec::new(); n_waves];
    for (i, w) in waves.iter().enumerate() {
        by_wave[*w].push(i); // in batch order — `waves` is indexed by op
    }

    let mut outcomes: Vec<Option<ExecOutcome>> = (0..ops.len()).map(|_| None).collect();
    for wave in &by_wave {
        let plans = plan_wave(state, ops, wave, workers);
        let had: Vec<bool> = plans.iter().map(|p| p.had_pending()).collect();
        let receipts = state.apply_plans(plans, workers);
        for ((i, receipt), had_pending) in wave.iter().zip(receipts).zip(had) {
            outcomes[*i] = Some(ExecOutcome { receipt, had_pending });
        }
    }
    outcomes.into_iter().map(|o| o.expect("every op scheduled")).collect()
}

/// Plan one wave's operations against the frozen store, returning plans in
/// wave (= batch) order. Parallel across a scoped worker pool when the
/// wave is large enough to pay for the threads.
fn plan_wave(
    state: &StateStore,
    ops: &[&Op],
    wave: &[usize],
    workers: usize,
) -> Vec<crate::state::ExecPlan> {
    let pool = workers.min(wave.len());
    if pool <= 1 || wave.len() < MIN_PARALLEL_WAVE {
        return wave.iter().map(|&i| state.plan(ops[i])).collect();
    }
    let mut indexed: Vec<(usize, crate::state::ExecPlan)> = Vec::with_capacity(wave.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..pool)
            .map(|w| {
                // Deterministic round-robin assignment; results re-sort by
                // op index, so the partition only affects load balance.
                let mine: Vec<usize> =
                    wave.iter().copied().skip(w).step_by(pool).collect();
                s.spawn(move || {
                    mine.into_iter()
                        .map(|i| (i, state.plan(ops[i])))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            indexed.extend(h.join().expect("planner thread panicked"));
        }
    });
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, p)| p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::lock_key;
    use crate::types::{Condition, ExecStatus, Mutation, StateOp, TxId, Value};

    fn transfer(from: &str, to: &str, amt: i64) -> StateOp {
        StateOp {
            conditions: vec![Condition::IntAtLeast { key: from.into(), min: amt }],
            mutations: vec![
                (from.into(), Mutation::Add(-amt)),
                (to.into(), Mutation::Add(amt)),
            ],
        }
    }

    fn seeded_store(accounts: usize) -> StateStore {
        let mut s = StateStore::new();
        for i in 0..accounts {
            s.put(format!("acct{i}"), Value::Int(1000));
        }
        s
    }

    /// Run the same batch sequentially and with `workers`, asserting every
    /// observable output matches: receipts, root, lock table, bookkeeping.
    fn assert_equivalent(mut ops: Vec<Op>, workers: usize, accounts: usize) {
        let refs: Vec<&Op> = ops.iter().collect();
        let mut seq = seeded_store(accounts);
        let mut par = seeded_store(accounts);
        let seq_out = execute_ops(&mut seq, &refs, 1);
        let par_out = execute_ops(&mut par, &refs, workers);
        assert_eq!(seq_out.len(), par_out.len());
        for (a, b) in seq_out.iter().zip(&par_out) {
            assert_eq!(a.receipt, b.receipt);
            assert_eq!(a.had_pending, b.had_pending);
        }
        assert_eq!(seq.state_digest(), par.state_digest());
        assert_eq!(seq.pending_count(), par.pending_count());
        assert_eq!(seq.resolved_count(), par.resolved_count());
        assert_eq!(seq.take_write_bytes(), par.take_write_bytes());
        assert_eq!(seq.export_sidecar().wire_size(), par.export_sidecar().wire_size());
        ops.clear();
    }

    /// Pins the contention-adaptive policy: a fully serial dependency
    /// chain (every op touches the same key) schedules into one op per
    /// wave, which must trip the dense-schedule fallback — and the
    /// fallback must stay observably identical to the wave path.
    #[test]
    fn dense_conflict_chain_takes_sequential_fallback() {
        // Policy boundary: fewer than 2 ops/wave on average is dense.
        assert!(dense_schedule(64, 64), "serial chain is dense");
        assert!(dense_schedule(3, 2), "1.5 ops/wave is dense");
        assert!(!dense_schedule(4, 2), "2 ops/wave pays for scheduling");
        assert!(!dense_schedule(64, 1), "conflict-free batch is not dense");
        assert!(!dense_schedule(0, 0), "empty batch never falls back");

        // A same-key chain really is scheduled one-op-per-wave.
        let ops: Vec<Op> = (0..32)
            .map(|i| Op::Direct { txid: TxId(i), op: transfer("acct0", "acct1", 1) })
            .collect();
        let refs: Vec<&Op> = ops.iter().collect();
        let state = seeded_store(4);
        let waves = crate::access::schedule(&refs, |t| state.pending_info(t));
        let n_waves = waves.iter().copied().max().map_or(0, |w| w + 1);
        assert_eq!(n_waves, refs.len(), "same-key ops must serialize");
        assert!(dense_schedule(refs.len(), n_waves));

        // And the fallback path is byte-identical to sequential.
        assert_equivalent(ops, 4, 4);
    }

    #[test]
    fn conflict_free_batch_matches_sequential() {
        let ops: Vec<Op> = (0..64)
            .map(|i| Op::Direct {
                txid: TxId(i),
                op: transfer(&format!("acct{}", 2 * i), &format!("acct{}", 2 * i + 1), 5),
            })
            .collect();
        for workers in [2, 4, 8] {
            assert_equivalent(ops.clone(), workers, 128);
        }
    }

    #[test]
    fn hot_key_batch_matches_sequential() {
        // Every op touches acct0 — fully serialized waves, still identical.
        let ops: Vec<Op> = (0..32)
            .map(|i| Op::Direct {
                txid: TxId(i),
                op: transfer("acct0", &format!("acct{}", i + 1), 1),
            })
            .collect();
        assert_equivalent(ops, 4, 64);
    }

    #[test]
    fn two_pc_lifecycle_matches_sequential() {
        // Prepare/Commit/Abort mixed with directs, including same-batch
        // prepare→decide chains and decisions with no visible prepare.
        let mut ops = Vec::new();
        for i in 0..16u64 {
            ops.push(Op::Prepare {
                txid: TxId(100 + i),
                op: transfer(&format!("acct{}", 2 * i), &format!("acct{}", 2 * i + 1), 3),
            });
        }
        for i in 0..16u64 {
            if i % 3 == 0 {
                ops.push(Op::Abort { txid: TxId(100 + i) });
            } else {
                ops.push(Op::Commit { txid: TxId(100 + i) });
            }
        }
        ops.push(Op::Commit { txid: TxId(999) }); // no pending: NoPendingTx
        ops.push(Op::Abort { txid: TxId(998) }); // no pending: lock-free
        for i in 0..8u64 {
            ops.push(Op::Direct {
                txid: TxId(200 + i),
                op: transfer(&format!("acct{}", 2 * i), &format!("acct{}", 2 * i + 1), 1),
            });
        }
        for workers in [2, 4, 8] {
            assert_equivalent(ops.clone(), workers, 64);
        }
    }

    #[test]
    fn lock_conflicts_match_sequential() {
        // A prepare holds acct0; later directs and prepares on it abort
        // with the same receipts in both modes.
        let mut ops = vec![Op::Prepare { txid: TxId(1), op: transfer("acct0", "acct1", 5) }];
        for i in 0..8u64 {
            ops.push(Op::Direct { txid: TxId(10 + i), op: transfer("acct0", "acct2", 1) });
            ops.push(Op::Prepare { txid: TxId(20 + i), op: transfer("acct0", "acct3", 1) });
        }
        ops.push(Op::Read { txid: TxId(40), keys: vec!["acct0".into(), lock_key("acct0")] });
        assert_equivalent(ops, 4, 8);
    }

    #[test]
    fn failed_then_successful_same_tx_prepare_matches_sequential() {
        // Regression: the first Prepare(T5) fails at execution (acct0 is
        // locked by T1) and the *second* Prepare(T5), over different keys,
        // creates the pending entry. Commit(T5) therefore releases
        // L_acct3, and the trailing Direct on acct3 must observe that
        // release — under a first-prepare-wins scheduler memo it shared a
        // wave with the commit, planned against the still-locked state,
        // and produced a LockConflict receipt (and root) that sequential
        // execution never sees.
        let ops = vec![
            Op::Prepare { txid: TxId(1), op: transfer("acct0", "acct1", 1) },
            Op::Prepare { txid: TxId(5), op: transfer("acct0", "acct2", 1) }, // LockConflict
            Op::Prepare { txid: TxId(5), op: transfer("acct3", "acct4", 1) }, // wins
            Op::Commit { txid: TxId(5) },
            Op::Direct { txid: TxId(6), op: transfer("acct3", "acct5", 1) },
        ];
        for workers in [2, 4, 8] {
            assert_equivalent(ops.clone(), workers, 8);
        }
    }

    #[test]
    fn reads_and_noops_match_sequential() {
        let mut ops = Vec::new();
        for i in 0..24u64 {
            ops.push(Op::Read {
                txid: TxId(i),
                keys: vec![format!("acct{}", i % 4), "missing".into()],
            });
            ops.push(Op::Noop);
            ops.push(Op::Direct {
                txid: TxId(100 + i),
                op: StateOp {
                    conditions: vec![],
                    mutations: vec![(format!("acct{}", i % 4), Mutation::Add(1))],
                },
            });
        }
        assert_equivalent(ops, 8, 8);
    }

    #[test]
    fn receipt_values_of_reads_reflect_wave_ordering() {
        // A read scheduled after a write to the same key must observe the
        // written value, same as sequential.
        let ops = [
            Op::Direct {
                txid: TxId(1),
                op: StateOp {
                    conditions: vec![],
                    mutations: vec![("acct0".into(), Mutation::Set(Value::Int(7)))],
                },
            },
            Op::Read { txid: TxId(2), keys: vec!["acct0".into()] },
        ];
        let refs: Vec<&Op> = ops.iter().collect();
        let mut s = seeded_store(2);
        let out = execute_ops(&mut s, &refs, 4);
        match &out[1].receipt.status {
            ExecStatus::Committed(reads) => {
                assert_eq!(reads[0].1, Some(Value::Int(7)));
            }
            other => panic!("read aborted: {other:?}"),
        }
    }
}
