//! Binary codecs and page-store bindings: what makes ledger state
//! *durable*.
//!
//! `ahl-wal` is generic — it persists any tree whose values implement
//! [`PageValue`] and logs any byte payload. This module supplies the
//! ledger side of that contract: a self-contained binary encoding for
//! [`Value`] (note that [`Value::Opaque`] persists as its 16-byte model,
//! not its modelled gigabytes), for the full [`Op`] transaction model
//! (WAL batch records replay executed operations), and for the 2PC
//! [`StateSidecar`] (carried in the manifest metadata so prepared-but-
//! undecided transactions survive a crash).
//!
//! Snapshot persistence rides the content-addressed page store directly:
//! [`StateSnapshot::persist`] writes the authenticated tree's missing
//! pages (structurally shared nodes are shared on disk too), and
//! [`open_snapshot`] rebuilds a snapshot from a manifest root, verifying
//! the rebuilt root before anything is trusted.

use ahl_crypto::Hash;
use ahl_wal::codec::{Reader, Writer};
use ahl_wal::{CacheStats, PageCache, PageStore, PageValue, PersistStats, WalError};

use crate::state::{StateSidecar, StateSnapshot};
use crate::types::{Condition, Key, Mutation, Op, StateOp, TxId, Value};

impl PageValue for Value {
    fn encode_value(&self, w: &mut Writer) {
        encode_value(self, w);
    }
    fn decode_value(r: &mut Reader<'_>) -> Option<Self> {
        decode_value(r)
    }
}

/// Encode a [`Value`] (tag byte + body).
pub fn encode_value(v: &Value, w: &mut Writer) {
    match v {
        Value::Int(i) => {
            w.u8(0);
            w.i64(*i);
        }
        Value::Bytes(b) => {
            w.u8(1);
            w.bytes(b);
        }
        Value::Bool(b) => {
            w.u8(2);
            w.u8(*b as u8);
        }
        Value::Opaque { size, tag } => {
            w.u8(3);
            w.u64(*size);
            w.u64(*tag);
        }
    }
}

/// Decode a [`Value`]; `None` on truncation or an unknown tag.
pub fn decode_value(r: &mut Reader<'_>) -> Option<Value> {
    match r.u8()? {
        0 => Some(Value::Int(r.i64()?)),
        1 => Some(Value::Bytes(r.bytes()?.to_vec())),
        2 => Some(Value::Bool(r.u8()? != 0)),
        3 => Some(Value::Opaque { size: r.u64()?, tag: r.u64()? }),
        _ => None,
    }
}

pub(crate) fn encode_mutation(m: &Mutation, w: &mut Writer) {
    match m {
        Mutation::Set(v) => {
            w.u8(0);
            encode_value(v, w);
        }
        Mutation::Add(d) => {
            w.u8(1);
            w.i64(*d);
        }
        Mutation::Delete => w.u8(2),
    }
}

pub(crate) fn decode_mutation(r: &mut Reader<'_>) -> Option<Mutation> {
    match r.u8()? {
        0 => Some(Mutation::Set(decode_value(r)?)),
        1 => Some(Mutation::Add(r.i64()?)),
        2 => Some(Mutation::Delete),
        _ => None,
    }
}

fn encode_condition(c: &Condition, w: &mut Writer) {
    match c {
        Condition::Exists(k) => {
            w.u8(0);
            w.str(k);
        }
        Condition::NotExists(k) => {
            w.u8(1);
            w.str(k);
        }
        Condition::IntAtLeast { key, min } => {
            w.u8(2);
            w.str(key);
            w.i64(*min);
        }
    }
}

fn decode_condition(r: &mut Reader<'_>) -> Option<Condition> {
    match r.u8()? {
        0 => Some(Condition::Exists(r.str()?)),
        1 => Some(Condition::NotExists(r.str()?)),
        2 => Some(Condition::IntAtLeast { key: r.str()?, min: r.i64()? }),
        _ => None,
    }
}

pub(crate) fn encode_state_op(op: &StateOp, w: &mut Writer) {
    w.u32(op.conditions.len() as u32);
    for c in &op.conditions {
        encode_condition(c, w);
    }
    w.u32(op.mutations.len() as u32);
    for (k, m) in &op.mutations {
        w.str(k);
        encode_mutation(m, w);
    }
}

pub(crate) fn decode_state_op(r: &mut Reader<'_>) -> Option<StateOp> {
    let nc = r.u32()? as usize;
    let mut conditions = Vec::with_capacity(nc.min(1024));
    for _ in 0..nc {
        conditions.push(decode_condition(r)?);
    }
    let nm = r.u32()? as usize;
    let mut mutations = Vec::with_capacity(nm.min(1024));
    for _ in 0..nm {
        let k = r.str()?;
        mutations.push((k, decode_mutation(r)?));
    }
    Some(StateOp { conditions, mutations })
}

/// Encode an [`Op`] (the unit a WAL batch record replays).
pub fn encode_op(op: &Op, w: &mut Writer) {
    match op {
        Op::Direct { txid, op } => {
            w.u8(0);
            w.u64(txid.0);
            encode_state_op(op, w);
        }
        Op::Prepare { txid, op } => {
            w.u8(1);
            w.u64(txid.0);
            encode_state_op(op, w);
        }
        Op::Commit { txid } => {
            w.u8(2);
            w.u64(txid.0);
        }
        Op::Abort { txid } => {
            w.u8(3);
            w.u64(txid.0);
        }
        Op::Read { txid, keys } => {
            w.u8(4);
            w.u64(txid.0);
            w.u32(keys.len() as u32);
            for k in keys {
                w.str(k);
            }
        }
        Op::Noop => w.u8(5),
    }
}

/// Decode an [`Op`]; `None` on truncation or an unknown tag.
pub fn decode_op(r: &mut Reader<'_>) -> Option<Op> {
    match r.u8()? {
        0 => Some(Op::Direct { txid: TxId(r.u64()?), op: decode_state_op(r)? }),
        1 => Some(Op::Prepare { txid: TxId(r.u64()?), op: decode_state_op(r)? }),
        2 => Some(Op::Commit { txid: TxId(r.u64()?) }),
        3 => Some(Op::Abort { txid: TxId(r.u64()?) }),
        4 => {
            let txid = TxId(r.u64()?);
            let n = r.u32()? as usize;
            let mut keys: Vec<Key> = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                keys.push(r.str()?);
            }
            Some(Op::Read { txid, keys })
        }
        5 => Some(Op::Noop),
        _ => None,
    }
}

impl StateSnapshot {
    /// Write every page of this snapshot's authenticated tree that is not
    /// already in `pages` (consecutive checkpoints share unchanged pages
    /// on disk). The 2PC sidecar is *not* written here — serialize it
    /// into the manifest metadata with [`StateSidecar::encode`].
    pub fn persist(&self, pages: &mut PageStore) -> std::io::Result<PersistStats> {
        pages.persist_tree(self.smt())
    }
}

/// Rebuild a [`StateSnapshot`] from a persisted root: load and verify the
/// page-backed tree, then attach the sidecar recovered from the manifest
/// metadata. Fails closed — a missing or corrupt page, or a rebuilt root
/// that misses `root`, yields an error, never a wrong snapshot.
pub fn open_snapshot(
    pages: &PageStore,
    root: Hash,
    sidecar: StateSidecar,
) -> Result<StateSnapshot, WalError> {
    let smt = pages.load_tree::<Value>(root)?;
    Ok(StateSnapshot::from_parts(smt, sidecar))
}

/// A lazily opened snapshot: the fault-on-demand alternative to
/// [`open_snapshot`]. Instead of materializing the whole tree up front
/// (O(history) reads and memory), it holds only the certified root, the
/// recovered sidecar, and a byte-bounded [`PageCache`] — each
/// [`LazySnapshot::get`] faults in just the ~log n Merkle-verified pages
/// along the key's path. Reopening a multi-GB store this way costs
/// O(working set), which is what the `soak` experiment budgets.
pub struct LazySnapshot {
    root: Hash,
    sidecar: StateSidecar,
    cache: PageCache<Value>,
}

impl LazySnapshot {
    /// The certified state root this snapshot serves.
    pub fn root(&self) -> Hash {
        self.root
    }

    /// The recovered 2PC sidecar.
    pub fn sidecar(&self) -> &StateSidecar {
        &self.sidecar
    }

    /// Read one key, faulting in only its path. Every faulted page is
    /// verified against the hash that named it, so a walk from the
    /// certified root fails closed on any corruption.
    pub fn get(&mut self, pages: &PageStore, key: &str) -> Result<Option<Value>, WalError> {
        self.cache.get(pages, self.root, key)
    }

    /// Cache counters (the `store.cache_*` scoped stats).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Materialize the full [`StateSnapshot`] (eager load + root
    /// verification) — the upgrade path when a consumer needs complete
    /// state, e.g. to resume execution.
    pub fn materialize(&self, pages: &PageStore) -> Result<StateSnapshot, WalError> {
        open_snapshot(pages, self.root, self.sidecar.clone())
    }
}

/// Open a snapshot lazily: no page is read until the first
/// [`LazySnapshot::get`]. `cache_bytes` bounds the resident decoded
/// pages (`snapshot_max_bytes`-style accounting with LRU eviction of
/// clean pages).
pub fn open_snapshot_lazy(root: Hash, sidecar: StateSidecar, cache_bytes: u64) -> LazySnapshot {
    LazySnapshot { root, sidecar, cache: PageCache::new(cache_bytes) }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_op(op: Op) {
        let mut w = Writer::new();
        encode_op(&op, &mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(decode_op(&mut r), Some(op));
        assert!(r.is_done());
        // Every strict prefix fails closed.
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            let ok = decode_op(&mut r).is_some() && r.is_done();
            assert!(!ok, "prefix {cut} must not decode to a complete op");
        }
    }

    #[test]
    fn op_codec_round_trips() {
        round_trip_op(Op::Noop);
        round_trip_op(Op::Commit { txid: TxId(7) });
        round_trip_op(Op::Abort { txid: TxId(u64::MAX) });
        round_trip_op(Op::Read { txid: TxId(3), keys: vec!["a".into(), "b".into()] });
        round_trip_op(Op::Direct {
            txid: TxId(1),
            op: StateOp {
                conditions: vec![
                    Condition::Exists("x".into()),
                    Condition::NotExists("y".into()),
                    Condition::IntAtLeast { key: "z".into(), min: -4 },
                ],
                mutations: vec![
                    ("x".into(), Mutation::Set(Value::Int(-9))),
                    ("b".into(), Mutation::Set(Value::Bytes(vec![1, 2, 3]))),
                    ("l".into(), Mutation::Set(Value::Bool(true))),
                    ("o".into(), Mutation::Set(Value::Opaque { size: 1 << 33, tag: 9 })),
                    ("d".into(), Mutation::Delete),
                    ("a".into(), Mutation::Add(5)),
                ],
            },
        });
        round_trip_op(Op::Prepare {
            txid: TxId(2),
            op: StateOp { conditions: vec![], mutations: vec![] },
        });
    }

    #[test]
    fn opaque_values_persist_by_model_not_size() {
        // A "4 GB" opaque value encodes in a handful of bytes: the page
        // store must stay usable for the multi-GB reshard experiments.
        let v = Value::Opaque { size: 4 << 30, tag: 1 };
        let mut w = Writer::new();
        encode_value(&v, &mut w);
        assert!(w.len() < 32);
        let bytes = w.into_bytes();
        assert_eq!(decode_value(&mut Reader::new(&bytes)), Some(v));
    }
}
