//! Blocks and the hash-linked chain.

use ahl_crypto::{sha256_parts, Hash, MerkleTree};

use crate::types::{Op, Receipt};

/// Block header: hash-linked, with Merkle transaction root and state digest.
#[derive(Clone, Debug, PartialEq)]
pub struct BlockHeader {
    /// Height in the chain (genesis = 0).
    pub height: u64,
    /// Hash of the previous block header.
    pub prev: Hash,
    /// Merkle root over the transactions' digests.
    pub txn_root: Hash,
    /// State digest after executing this block.
    pub state_digest: Hash,
    /// Simulated timestamp (nanoseconds).
    pub timestamp: u64,
    /// Proposing replica.
    pub proposer: u64,
}

impl BlockHeader {
    /// Digest of the header (the block id).
    pub fn digest(&self) -> Hash {
        sha256_parts(&[
            b"ahl-block",
            &self.height.to_be_bytes(),
            &self.prev.0,
            &self.txn_root.0,
            &self.state_digest.0,
            &self.timestamp.to_be_bytes(),
            &self.proposer.to_be_bytes(),
        ])
    }
}

/// A block: header plus the ordered transactions it commits.
#[derive(Clone, Debug, PartialEq)]
pub struct Block {
    /// The header.
    pub header: BlockHeader,
    /// Ordered transactions.
    pub txns: Vec<Op>,
}

impl Block {
    /// Compute the Merkle root over `txns`.
    pub fn txn_root(txns: &[Op]) -> Hash {
        let leaves: Vec<[u8; 32]> = txns.iter().map(|t| t.digest().0).collect();
        MerkleTree::build(&leaves).root()
    }

    /// Build a block on top of `prev`.
    pub fn build(
        height: u64,
        prev: Hash,
        txns: Vec<Op>,
        state_digest: Hash,
        timestamp: u64,
        proposer: u64,
    ) -> Block {
        let txn_root = Self::txn_root(&txns);
        Block {
            header: BlockHeader {
                height,
                prev,
                txn_root,
                state_digest,
                timestamp,
                proposer,
            },
            txns,
        }
    }

    /// Verify the header's transaction root matches the body.
    pub fn verify_txn_root(&self) -> bool {
        Self::txn_root(&self.txns) == self.header.txn_root
    }

    /// Approximate wire size (header + transactions).
    pub fn wire_size(&self) -> usize {
        128 + self.txns.iter().map(Op::wire_size).sum::<usize>()
    }
}

/// Errors when appending to a [`Chain`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChainError {
    /// Height is not `tip_height + 1`.
    BadHeight {
        /// Expected height.
        expected: u64,
        /// Provided height.
        got: u64,
    },
    /// `prev` does not match the tip's digest.
    BadParent,
    /// Transaction root does not match the body.
    BadTxnRoot,
}

/// An append-only hash-linked chain of blocks, with execution receipts.
#[derive(Clone, Debug, Default)]
pub struct Chain {
    blocks: Vec<Block>,
    receipts: Vec<Vec<Receipt>>,
}

impl Chain {
    /// An empty chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current height (`None` when empty).
    pub fn tip_height(&self) -> Option<u64> {
        self.blocks.last().map(|b| b.header.height)
    }

    /// Digest of the tip header, or [`Hash::ZERO`] for an empty chain.
    pub fn tip_digest(&self) -> Hash {
        self.blocks
            .last()
            .map(|b| b.header.digest())
            .unwrap_or(Hash::ZERO)
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when the chain holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Total committed transactions across all blocks.
    pub fn total_txns(&self) -> usize {
        self.blocks.iter().map(|b| b.txns.len()).sum()
    }

    /// Access a block by height.
    pub fn block(&self, height: u64) -> Option<&Block> {
        self.blocks.get(height as usize)
    }

    /// Receipts of the block at `height`.
    pub fn receipts(&self, height: u64) -> Option<&[Receipt]> {
        self.receipts.get(height as usize).map(Vec::as_slice)
    }

    /// Validate and append `block` with its execution `receipts`.
    pub fn append(&mut self, block: Block, receipts: Vec<Receipt>) -> Result<(), ChainError> {
        let expected = self.tip_height().map_or(0, |h| h + 1);
        if block.header.height != expected {
            return Err(ChainError::BadHeight {
                expected,
                got: block.header.height,
            });
        }
        if block.header.prev != self.tip_digest() {
            return Err(ChainError::BadParent);
        }
        if !block.verify_txn_root() {
            return Err(ChainError::BadTxnRoot);
        }
        self.blocks.push(block);
        self.receipts.push(receipts);
        Ok(())
    }

    /// Verify the whole chain's hash links and roots from genesis.
    pub fn verify(&self) -> bool {
        let mut prev = Hash::ZERO;
        for (i, b) in self.blocks.iter().enumerate() {
            if b.header.height != i as u64 || b.header.prev != prev || !b.verify_txn_root() {
                return false;
            }
            prev = b.header.digest();
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Mutation, StateOp, TxId};

    fn op(i: u64) -> Op {
        Op::Direct {
            txid: TxId(i),
            op: StateOp {
                conditions: vec![],
                mutations: vec![(format!("k{i}"), Mutation::Add(1))],
            },
        }
    }

    fn build_chain(n: u64) -> Chain {
        let mut chain = Chain::new();
        for h in 0..n {
            let b = Block::build(h, chain.tip_digest(), vec![op(h)], Hash::ZERO, h, 0);
            chain.append(b, vec![]).expect("append");
        }
        chain
    }

    #[test]
    fn append_and_verify() {
        let chain = build_chain(5);
        assert_eq!(chain.len(), 5);
        assert_eq!(chain.tip_height(), Some(4));
        assert_eq!(chain.total_txns(), 5);
        assert!(chain.verify());
    }

    #[test]
    fn wrong_height_rejected() {
        let mut chain = build_chain(2);
        let b = Block::build(5, chain.tip_digest(), vec![], Hash::ZERO, 0, 0);
        assert_eq!(
            chain.append(b, vec![]),
            Err(ChainError::BadHeight { expected: 2, got: 5 })
        );
    }

    #[test]
    fn wrong_parent_rejected() {
        let mut chain = build_chain(2);
        let b = Block::build(2, Hash::ZERO, vec![], Hash::ZERO, 0, 0);
        assert_eq!(chain.append(b, vec![]), Err(ChainError::BadParent));
    }

    #[test]
    fn tampered_body_rejected() {
        let mut chain = build_chain(1);
        let mut b = Block::build(1, chain.tip_digest(), vec![op(1)], Hash::ZERO, 0, 0);
        b.txns.push(op(99)); // body no longer matches root
        assert_eq!(chain.append(b, vec![]), Err(ChainError::BadTxnRoot));
    }

    #[test]
    fn header_digest_covers_fields() {
        let b1 = Block::build(1, Hash::ZERO, vec![op(1)], Hash::ZERO, 7, 0);
        let mut h2 = b1.header.clone();
        h2.timestamp = 8;
        assert_ne!(b1.header.digest(), h2.digest());
    }

    #[test]
    fn empty_block_is_valid() {
        let mut chain = Chain::new();
        let b = Block::build(0, Hash::ZERO, vec![], Hash::ZERO, 0, 0);
        assert!(chain.append(b, vec![]).is_ok());
        assert!(chain.verify());
    }

    #[test]
    fn wire_size_grows_with_txns() {
        let small = Block::build(0, Hash::ZERO, vec![op(1)], Hash::ZERO, 0, 0);
        let large = Block::build(0, Hash::ZERO, (0..100).map(op).collect(), Hash::ZERO, 0, 0);
        assert!(large.wire_size() > small.wire_size());
    }
}
