//! The KVStore chaincode (BLOCKBENCH's key-value benchmark, §7).
//!
//! Single-shard experiments use 1-update transactions; the paper's
//! cross-shard driver was "modified to issue 3 updates per transaction".

use crate::types::{Key, Mutation, StateOp, Value};

/// Canonical KVStore key for index `i`.
pub fn kv_key(i: u64) -> Key {
    format!("kv_{i}")
}

/// A write transaction updating `keys` with `value_size`-byte payloads.
/// The payload content is derived from the key index so replicas agree.
pub fn kv_write(keys: &[u64], value_size: usize) -> StateOp {
    StateOp {
        conditions: vec![],
        mutations: keys
            .iter()
            .map(|&k| {
                let payload = vec![(k % 251) as u8; value_size];
                (kv_key(k), Mutation::Set(Value::Bytes(payload)))
            })
            .collect(),
    }
}

/// The keys a read transaction touches.
pub fn kv_read_keys(keys: &[u64]) -> Vec<Key> {
    keys.iter().map(|&k| kv_key(k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateStore;
    use crate::types::{Op, TxId};

    #[test]
    fn write_then_read() {
        let mut s = StateStore::new();
        let r = s.execute(&Op::Direct {
            txid: TxId(1),
            op: kv_write(&[1, 2, 3], 16),
        });
        assert!(r.status.is_committed());
        assert_eq!(s.len(), 3);
        assert!(matches!(s.get(&kv_key(2)), Some(Value::Bytes(b)) if b.len() == 16));
    }

    #[test]
    fn three_update_txn_touches_three_keys() {
        // The cross-shard KVStore driver issues 3 updates per transaction.
        let op = kv_write(&[10, 20, 30], 8);
        assert_eq!(op.touched_keys().len(), 3);
        assert_eq!(op.weight(), 3);
    }

    #[test]
    fn overwrite_same_key() {
        let mut s = StateStore::new();
        s.execute(&Op::Direct { txid: TxId(1), op: kv_write(&[5], 4) });
        s.execute(&Op::Direct { txid: TxId(2), op: kv_write(&[5], 9) });
        assert!(matches!(s.get(&kv_key(5)), Some(Value::Bytes(b)) if b.len() == 9));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn read_keys_mapping() {
        assert_eq!(kv_read_keys(&[1, 2]), vec!["kv_1".to_string(), "kv_2".to_string()]);
    }
}
