//! Core ledger data types: keys, values, and the transaction operation
//! model.
//!
//! The paper targets *general* blockchain workloads (not UTXO): Hyperledger
//! models state as key-value tuples that chaincode reads and writes. We
//! capture chaincode execution as [`StateOp`]s — guarded sets of mutations —
//! which is expressive enough for KVStore, SmallBank, and the prepare /
//! commit / abort split of §6.3, while staying analyzable.

use ahl_crypto::{sha256_parts, Hash};

/// A state key (Hyperledger-style string key).
pub type Key = String;

/// A state value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// Integer (balances, counters).
    Int(i64),
    /// Raw bytes (KVStore payloads).
    Bytes(Vec<u8>),
    /// Boolean (lock markers).
    Bool(bool),
    /// A large payload modelled by size only: transfers and digests cost as
    /// if `size` bytes were present, without the host actually storing them
    /// (used to model multi-gigabyte shard state in reconfiguration and
    /// state-sync experiments).
    Opaque {
        /// Modelled payload size in bytes.
        size: u64,
        /// Content tag distinguishing payloads of equal size.
        tag: u64,
    },
}

impl Value {
    /// Integer content, or `None` for other variants.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Approximate serialized size in bytes.
    pub fn size(&self) -> usize {
        match self {
            Value::Int(_) => 8,
            Value::Bytes(b) => b.len(),
            Value::Bool(_) => 1,
            Value::Opaque { size, .. } => *size as usize,
        }
    }

    /// Approximate *resident* (host-memory) size in bytes. Differs from
    /// [`Value::size`] only for [`Value::Opaque`], which models gigabytes
    /// while occupying 16 bytes — memory-pressure accounting (snapshot
    /// eviction budgets) must use this, wire/CPU models use `size`.
    pub fn resident_bytes(&self) -> usize {
        match self {
            Value::Int(_) => 8,
            Value::Bytes(b) => b.len(),
            Value::Bool(_) => 1,
            Value::Opaque { .. } => 16,
        }
    }

    fn digest_bytes(&self) -> Vec<u8> {
        match self {
            Value::Int(i) => {
                let mut v = vec![0u8];
                v.extend_from_slice(&i.to_be_bytes());
                v
            }
            Value::Bytes(b) => {
                let mut v = vec![1u8];
                v.extend_from_slice(b);
                v
            }
            Value::Bool(b) => vec![2u8, *b as u8],
            Value::Opaque { size, tag } => {
                let mut v = vec![3u8];
                v.extend_from_slice(&size.to_be_bytes());
                v.extend_from_slice(&tag.to_be_bytes());
                v
            }
        }
    }

    /// Canonical content digest — the SMT leaf value hash ([`StateStore`]'s
    /// authenticated index commits to it per key).
    ///
    /// [`StateStore`]: crate::StateStore
    pub fn digest(&self) -> Hash {
        sha256_parts(&[&self.digest_bytes()])
    }
}

impl ahl_store::StateValue for Value {
    fn leaf_digest(&self) -> Hash {
        self.digest()
    }
}

/// A state mutation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Overwrite the key with a value.
    Set(Value),
    /// Integer addition (creates the key at `delta` if absent). The natural
    /// encoding for balance transfers.
    Add(i64),
    /// Remove the key.
    Delete,
}

/// A guard evaluated against current state before mutations apply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Condition {
    /// The key must exist.
    Exists(Key),
    /// The key must not exist (e.g. "this transaction has not begun").
    NotExists(Key),
    /// The key's integer value must be at least `min` (absent counts as 0).
    IntAtLeast {
        /// Guarded key.
        key: Key,
        /// Minimum required value.
        min: i64,
    },
}

impl Condition {
    /// The key this condition reads.
    pub fn key(&self) -> &Key {
        match self {
            Condition::Exists(k) | Condition::NotExists(k) => k,
            Condition::IntAtLeast { key, .. } => key,
        }
    }
}

/// A guarded set of mutations — the unit of chaincode execution.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct StateOp {
    /// All guards must hold or the operation aborts.
    pub conditions: Vec<Condition>,
    /// Applied atomically when the guards hold.
    pub mutations: Vec<(Key, Mutation)>,
}

impl StateOp {
    /// Every key the operation touches (guards + mutations), deduplicated,
    /// in first-occurrence order. This is the 2PL lock set.
    pub fn touched_keys(&self) -> Vec<Key> {
        let mut keys: Vec<Key> = Vec::new();
        for c in &self.conditions {
            if !keys.contains(c.key()) {
                keys.push(c.key().clone());
            }
        }
        for (k, _) in &self.mutations {
            if !keys.contains(k) {
                keys.push(k.clone());
            }
        }
        keys
    }

    /// Number of state accesses (used by the execution cost model).
    pub fn weight(&self) -> usize {
        self.conditions.len() + self.mutations.len()
    }

    /// Restrict this operation to the keys selected by `owned`: guards and
    /// mutations on foreign keys are dropped. This is how a cross-shard
    /// transaction is split into per-shard sub-operations.
    pub fn restrict_to(&self, owned: impl Fn(&Key) -> bool) -> StateOp {
        StateOp {
            conditions: self
                .conditions
                .iter()
                .filter(|c| owned(c.key()))
                .cloned()
                .collect(),
            mutations: self
                .mutations
                .iter()
                .filter(|(k, _)| owned(k))
                .cloned()
                .collect(),
        }
    }
}

/// Globally unique transaction identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct TxId(pub u64);

/// A ledger transaction: an identified operation.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// Execute a [`StateOp`] directly (single-shard transaction).
    Direct {
        /// Transaction id.
        txid: TxId,
        /// The guarded mutation set.
        op: StateOp,
    },
    /// Phase 1 of 2PC (§6.3 `preparePayment`): validate guards, acquire
    /// locks on every touched key, stash the mutations as pending.
    Prepare {
        /// Cross-shard transaction id.
        txid: TxId,
        /// The local shard's slice of the transaction.
        op: StateOp,
    },
    /// Phase 2 commit (§6.3 `commitPayment`): apply pending mutations and
    /// release locks.
    Commit {
        /// Cross-shard transaction id.
        txid: TxId,
    },
    /// Phase 2 abort (§6.3 `abortPayment`): discard pending mutations and
    /// release locks.
    Abort {
        /// Cross-shard transaction id.
        txid: TxId,
    },
    /// Read-only query.
    Read {
        /// Transaction id.
        txid: TxId,
        /// Keys to read.
        keys: Vec<Key>,
    },
    /// No-op (padding / keep-alive).
    Noop,
}

impl Op {
    /// The transaction id, if any.
    pub fn txid(&self) -> Option<TxId> {
        match self {
            Op::Direct { txid, .. }
            | Op::Prepare { txid, .. }
            | Op::Commit { txid }
            | Op::Abort { txid }
            | Op::Read { txid, .. } => Some(*txid),
            Op::Noop => None,
        }
    }

    /// State-access weight for the execution cost model.
    pub fn weight(&self) -> usize {
        match self {
            Op::Direct { op, .. } | Op::Prepare { op, .. } => op.weight().max(1),
            Op::Commit { .. } | Op::Abort { .. } => 1,
            Op::Read { keys, .. } => keys.len().max(1),
            Op::Noop => 1,
        }
    }

    /// Approximate wire size in bytes (for network modelling).
    pub fn wire_size(&self) -> usize {
        match self {
            Op::Direct { op, .. } | Op::Prepare { op, .. } => {
                32 + op
                    .mutations
                    .iter()
                    .map(|(k, m)| {
                        k.len()
                            + match m {
                                Mutation::Set(v) => v.size(),
                                _ => 8,
                            }
                    })
                    .sum::<usize>()
                    + op.conditions.iter().map(|c| c.key().len() + 9).sum::<usize>()
            }
            Op::Commit { .. } | Op::Abort { .. } => 40,
            Op::Read { keys, .. } => 32 + keys.iter().map(String::len).sum::<usize>(),
            Op::Noop => 16,
        }
    }

    /// Content digest for Merkle roots and signatures.
    pub fn digest(&self) -> Hash {
        let mut parts: Vec<Vec<u8>> = Vec::new();
        match self {
            Op::Direct { txid, op } => {
                parts.push(b"direct".to_vec());
                parts.push(txid.0.to_be_bytes().to_vec());
                parts.push(state_op_bytes(op));
            }
            Op::Prepare { txid, op } => {
                parts.push(b"prepare".to_vec());
                parts.push(txid.0.to_be_bytes().to_vec());
                parts.push(state_op_bytes(op));
            }
            Op::Commit { txid } => {
                parts.push(b"commit".to_vec());
                parts.push(txid.0.to_be_bytes().to_vec());
            }
            Op::Abort { txid } => {
                parts.push(b"abort".to_vec());
                parts.push(txid.0.to_be_bytes().to_vec());
            }
            Op::Read { txid, keys } => {
                parts.push(b"read".to_vec());
                parts.push(txid.0.to_be_bytes().to_vec());
                for k in keys {
                    parts.push(k.as_bytes().to_vec());
                }
            }
            Op::Noop => parts.push(b"noop".to_vec()),
        }
        let refs: Vec<&[u8]> = parts.iter().map(Vec::as_slice).collect();
        sha256_parts(&refs)
    }
}

fn state_op_bytes(op: &StateOp) -> Vec<u8> {
    let mut out = Vec::new();
    for c in &op.conditions {
        match c {
            Condition::Exists(k) => {
                out.push(0);
                out.extend_from_slice(k.as_bytes());
            }
            Condition::NotExists(k) => {
                out.push(2);
                out.extend_from_slice(k.as_bytes());
            }
            Condition::IntAtLeast { key, min } => {
                out.push(1);
                out.extend_from_slice(key.as_bytes());
                out.extend_from_slice(&min.to_be_bytes());
            }
        }
        out.push(0xff);
    }
    for (k, m) in &op.mutations {
        out.extend_from_slice(k.as_bytes());
        match m {
            Mutation::Set(v) => {
                out.push(0);
                out.extend_from_slice(&v.digest_bytes());
            }
            Mutation::Add(d) => {
                out.push(1);
                out.extend_from_slice(&d.to_be_bytes());
            }
            Mutation::Delete => out.push(2),
        }
        out.push(0xfe);
    }
    out
}

/// Why a transaction aborted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AbortReason {
    /// A 2PL lock on a touched key is held by another transaction.
    LockConflict(Key),
    /// A guard failed (e.g. insufficient balance).
    ConditionFailed(Condition),
    /// Commit/Abort for a transaction with no pending prepare.
    NoPendingTx,
    /// A prepare for a txid that already has a pending prepare.
    DuplicatePrepare,
    /// A prepare arriving after the transaction was already decided
    /// (commit/abort executed) on this shard.
    AlreadyResolved,
}

/// Execution outcome.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecStatus {
    /// Applied successfully. Carries read results for `Op::Read`.
    Committed(Vec<(Key, Option<Value>)>),
    /// Rejected; state unchanged (other than 2PC bookkeeping).
    Aborted(AbortReason),
}

impl ExecStatus {
    /// True for the committed outcome.
    pub fn is_committed(&self) -> bool {
        matches!(self, ExecStatus::Committed(_))
    }
}

/// A transaction receipt recorded alongside the block.
#[derive(Clone, Debug, PartialEq)]
pub struct Receipt {
    /// The transaction this receipt belongs to.
    pub txid: Option<TxId>,
    /// Outcome.
    pub status: ExecStatus,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_op() -> StateOp {
        StateOp {
            conditions: vec![Condition::IntAtLeast { key: "ck_a".into(), min: 10 }],
            mutations: vec![
                ("ck_a".into(), Mutation::Add(-10)),
                ("ck_b".into(), Mutation::Add(10)),
            ],
        }
    }

    #[test]
    fn touched_keys_deduplicated_ordered() {
        let op = sample_op();
        assert_eq!(op.touched_keys(), vec!["ck_a".to_string(), "ck_b".to_string()]);
    }

    #[test]
    fn weight_counts_accesses() {
        assert_eq!(sample_op().weight(), 3);
        let d = Op::Direct { txid: TxId(1), op: sample_op() };
        assert_eq!(d.weight(), 3);
        assert_eq!(Op::Noop.weight(), 1);
    }

    #[test]
    fn restrict_to_splits_by_ownership() {
        let op = sample_op();
        let only_a = op.restrict_to(|k| k.ends_with('a'));
        assert_eq!(only_a.conditions.len(), 1);
        assert_eq!(only_a.mutations.len(), 1);
        let only_b = op.restrict_to(|k| k.ends_with('b'));
        assert!(only_b.conditions.is_empty());
        assert_eq!(only_b.mutations.len(), 1);
    }

    #[test]
    fn digests_distinguish_ops() {
        let a = Op::Direct { txid: TxId(1), op: sample_op() };
        let b = Op::Prepare { txid: TxId(1), op: sample_op() };
        let c = Op::Commit { txid: TxId(1) };
        let d = Op::Commit { txid: TxId(2) };
        assert_ne!(a.digest(), b.digest());
        assert_ne!(c.digest(), d.digest());
        assert_eq!(a.digest(), a.clone().digest());
    }

    #[test]
    fn wire_size_reasonable() {
        let op = Op::Direct { txid: TxId(1), op: sample_op() };
        assert!(op.wire_size() > 32);
        assert!(op.wire_size() < 1024);
        assert_eq!(Op::Noop.wire_size(), 16);
    }

    #[test]
    fn value_helpers() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Bool(true).as_int(), None);
        assert_eq!(Value::Bytes(vec![0; 100]).size(), 100);
    }

    #[test]
    fn txid_extraction() {
        assert_eq!(Op::Commit { txid: TxId(9) }.txid(), Some(TxId(9)));
        assert_eq!(Op::Noop.txid(), None);
    }
}
