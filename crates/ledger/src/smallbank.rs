//! The SmallBank chaincode (BLOCKBENCH's Smallbank benchmark, §6.3/§7).
//!
//! Accounts have a checking and a savings balance, stored under
//! `"ck_" + acc` and `"sv_" + acc`. Each of the six classic SmallBank
//! procedures compiles to a [`StateOp`]; `send_payment` is the transaction
//! the paper's multi-shard experiments issue (reads and writes two
//! different accounts).

use crate::types::{Condition, Key, Mutation, StateOp, Value};

/// Key of an account's checking balance.
pub fn checking_key(account: &str) -> Key {
    format!("ck_{account}")
}

/// Key of an account's savings balance.
pub fn savings_key(account: &str) -> Key {
    format!("sv_{account}")
}

/// Genesis state for `n` accounts, each with the given balances.
pub fn genesis(n: usize, checking: i64, savings: i64) -> Vec<(Key, Value)> {
    let mut out = Vec::with_capacity(2 * n);
    for i in 0..n {
        let acc = account_name(i);
        out.push((checking_key(&acc), Value::Int(checking)));
        out.push((savings_key(&acc), Value::Int(savings)));
    }
    out
}

/// Canonical account name for index `i`.
pub fn account_name(i: usize) -> String {
    format!("acc{i}")
}

/// `sendPayment(from, to, amount)` — the §6.3 running example: moves
/// `amount` from `from`'s checking to `to`'s checking, guarded by a
/// sufficient-funds check.
pub fn send_payment(from: &str, to: &str, amount: i64) -> StateOp {
    StateOp {
        conditions: vec![Condition::IntAtLeast {
            key: checking_key(from),
            min: amount,
        }],
        mutations: vec![
            (checking_key(from), Mutation::Add(-amount)),
            (checking_key(to), Mutation::Add(amount)),
        ],
    }
}

/// `transactSavings(acc, amount)` — adjust the savings balance; negative
/// adjustments are guarded against overdraft.
pub fn transact_savings(account: &str, amount: i64) -> StateOp {
    let mut conditions = Vec::new();
    if amount < 0 {
        conditions.push(Condition::IntAtLeast {
            key: savings_key(account),
            min: -amount,
        });
    }
    StateOp {
        conditions,
        mutations: vec![(savings_key(account), Mutation::Add(amount))],
    }
}

/// `depositChecking(acc, amount)` — unconditional checking credit.
pub fn deposit_checking(account: &str, amount: i64) -> StateOp {
    StateOp {
        conditions: vec![],
        mutations: vec![(checking_key(account), Mutation::Add(amount))],
    }
}

/// `writeCheck(acc, amount)` — checking debit guarded by available funds.
pub fn write_check(account: &str, amount: i64) -> StateOp {
    StateOp {
        conditions: vec![Condition::IntAtLeast {
            key: checking_key(account),
            min: amount,
        }],
        mutations: vec![(checking_key(account), Mutation::Add(-amount))],
    }
}

/// `amalgamate(a, b)` — move all of `a`'s funds (checking + savings,
/// `a_ck + a_sv = total`) into `b`'s checking.
///
/// Because [`Mutation`]s are static deltas, the amount must be bound at
/// compile time from the current balances — callers supply the observed
/// balances and the guards ensure they still hold at execution (optimistic
/// re-validation, the standard batching pattern).
pub fn amalgamate(a: &str, b: &str, a_checking: i64, a_savings: i64) -> StateOp {
    StateOp {
        conditions: vec![
            Condition::IntAtLeast { key: checking_key(a), min: a_checking },
            Condition::IntAtLeast { key: savings_key(a), min: a_savings },
        ],
        mutations: vec![
            (checking_key(a), Mutation::Add(-a_checking)),
            (savings_key(a), Mutation::Add(-a_savings)),
            (checking_key(b), Mutation::Add(a_checking + a_savings)),
        ],
    }
}

/// The keys `balance(acc)` reads.
pub fn balance_keys(account: &str) -> Vec<Key> {
    vec![checking_key(account), savings_key(account)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateStore;
    use crate::types::{Op, TxId};

    fn store() -> StateStore {
        let mut s = StateStore::new();
        for (k, v) in genesis(4, 100, 200) {
            s.put(k, v);
        }
        s
    }

    #[test]
    fn genesis_populates_balances() {
        let s = store();
        assert_eq!(s.get_int(&checking_key("acc0")), 100);
        assert_eq!(s.get_int(&savings_key("acc3")), 200);
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn send_payment_moves_funds() {
        let mut s = store();
        let r = s.execute(&Op::Direct {
            txid: TxId(1),
            op: send_payment("acc0", "acc1", 40),
        });
        assert!(r.status.is_committed());
        assert_eq!(s.get_int(&checking_key("acc0")), 60);
        assert_eq!(s.get_int(&checking_key("acc1")), 140);
    }

    #[test]
    fn send_payment_overdraft_aborts() {
        let mut s = store();
        let r = s.execute(&Op::Direct {
            txid: TxId(1),
            op: send_payment("acc0", "acc1", 101),
        });
        assert!(!r.status.is_committed());
        assert_eq!(s.get_int(&checking_key("acc0")), 100);
    }

    #[test]
    fn transact_savings_guards_overdraft() {
        let mut s = store();
        assert!(s
            .execute(&Op::Direct { txid: TxId(1), op: transact_savings("acc0", -150) })
            .status
            .is_committed());
        assert_eq!(s.get_int(&savings_key("acc0")), 50);
        assert!(!s
            .execute(&Op::Direct { txid: TxId(2), op: transact_savings("acc0", -60) })
            .status
            .is_committed());
    }

    #[test]
    fn deposit_checking_unconditional() {
        let mut s = store();
        assert!(s
            .execute(&Op::Direct { txid: TxId(1), op: deposit_checking("acc2", 1000) })
            .status
            .is_committed());
        assert_eq!(s.get_int(&checking_key("acc2")), 1100);
    }

    #[test]
    fn write_check_guards_funds() {
        let mut s = store();
        assert!(s
            .execute(&Op::Direct { txid: TxId(1), op: write_check("acc0", 100) })
            .status
            .is_committed());
        assert!(!s
            .execute(&Op::Direct { txid: TxId(2), op: write_check("acc0", 1) })
            .status
            .is_committed());
    }

    #[test]
    fn amalgamate_moves_everything() {
        let mut s = store();
        let r = s.execute(&Op::Direct {
            txid: TxId(1),
            op: amalgamate("acc0", "acc1", 100, 200),
        });
        assert!(r.status.is_committed());
        assert_eq!(s.get_int(&checking_key("acc0")), 0);
        assert_eq!(s.get_int(&savings_key("acc0")), 0);
        assert_eq!(s.get_int(&checking_key("acc1")), 400);
    }

    #[test]
    fn amalgamate_stale_balance_aborts() {
        let mut s = store();
        // Observed balances are stale (too high) — guard fails, no partial
        // application.
        let r = s.execute(&Op::Direct {
            txid: TxId(1),
            op: amalgamate("acc0", "acc1", 150, 200),
        });
        assert!(!r.status.is_committed());
        assert_eq!(s.get_int(&checking_key("acc0")), 100);
        assert_eq!(s.get_int(&checking_key("acc1")), 100);
    }

    #[test]
    fn send_payment_touches_two_accounts() {
        // The paper: "the original sendPayment transaction ... reads and
        // writes two different states."
        let op = send_payment("acc0", "acc1", 1);
        assert_eq!(op.touched_keys().len(), 2);
    }
}
