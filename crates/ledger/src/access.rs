//! Read/write-set inference for [`Op`]s — the conflict model behind
//! deterministic parallel execution ([`crate::parexec`]).
//!
//! Every operation's effect on a [`crate::StateStore`] is confined to a set
//! of *resources*: ordinary state keys, their 2PL lock markers
//! (`"L_" + key`), and one per-transaction bookkeeping slot (the
//! pending/resolved entries keyed by [`TxId`]). Two operations commute —
//! execute to the same receipts and state in either order — whenever
//! neither writes a resource the other reads or writes. The inference here
//! is deliberately *conservative*: a superset of the true access set only
//! costs parallelism, never correctness.
//!
//! Inference rules (one per [`Op`] variant):
//!
//! | op | reads | writes |
//! |----|-------|--------|
//! | `Direct` | condition keys, lock markers of touched keys, `Add`-target keys | mutated keys |
//! | `Prepare` | condition keys | lock markers of touched keys, tx slot |
//! | `Commit` | `Add`-target keys of the pending write set | pending mutated keys, their lock markers, tx slot |
//! | `Abort` | — | lock markers of the pending lock set, tx slot |
//! | `Read` | read keys | — |
//! | `Noop` | — | — |
//!
//! A `Commit`/`Abort` whose prepare is not visible yet (neither pending in
//! the store nor earlier in the same batch) touches only its tx slot: it
//! resolves to `NoPendingTx` / a lock-free abort, and the tx slot alone
//! serializes it against any later prepare for the same transaction.

use std::collections::HashMap;

use crate::state::lock_key;
use crate::types::{Key, Mutation, Op, StateOp, TxId};

/// One schedulable resource: a state key or a transaction's 2PC
/// bookkeeping slot. Lock markers are ordinary state keys (`"L_" + key`),
/// so they need no variant of their own; the tx slot does, because state
/// keys are arbitrary strings and no string namespace is collision-free.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Resource {
    /// A state key (data key or lock marker).
    State(Key),
    /// The pending/resolved bookkeeping slot of one transaction.
    Tx(TxId),
}

/// The resources an operation may read and write.
#[derive(Clone, Debug, Default)]
pub struct AccessSet {
    /// Resources whose content the operation's outcome depends on.
    pub reads: Vec<Resource>,
    /// Resources the operation may create, mutate, or delete.
    pub writes: Vec<Resource>,
}

impl AccessSet {
    fn read_key(&mut self, k: &str) {
        self.reads.push(Resource::State(k.to_string()));
    }

    fn write_key(&mut self, k: &str) {
        self.writes.push(Resource::State(k.to_string()));
    }

    /// True when the two sets conflict: either writes what the other reads
    /// or writes. (Quadratic; scheduling uses indexed maps instead — this
    /// is the reference predicate for tests.)
    pub fn conflicts(&self, other: &AccessSet) -> bool {
        let hits = |a: &[Resource], b: &[Resource]| a.iter().any(|r| b.contains(r));
        hits(&self.writes, &other.writes)
            || hits(&self.writes, &other.reads)
            || hits(&self.reads, &other.writes)
    }
}

fn state_op_accesses(acc: &mut AccessSet, op: &StateOp) {
    for c in &op.conditions {
        acc.read_key(c.key());
    }
    for (k, m) in &op.mutations {
        if matches!(m, Mutation::Add(_)) {
            acc.read_key(k); // read-modify-write
        }
        acc.write_key(k);
    }
}

/// What the scheduler knows about a transaction's prepared write set when
/// it meets the matching `Commit`/`Abort`: the lock set and the mutated
/// keys. Sourced from the store's live pending table or from an earlier
/// `Prepare` in the same batch.
pub type PendingInfo = (Vec<Key>, Vec<Key>);

/// Infer the access set of `op`. `pending` resolves a [`TxId`] to the
/// `(locks, mutated keys)` of its prepared write set, if one could be
/// visible when `op` executes (see the module table for how `None` is
/// handled).
pub fn infer(op: &Op, pending: impl Fn(TxId) -> Option<PendingInfo>) -> AccessSet {
    let mut acc = AccessSet::default();
    match op {
        Op::Direct { op, .. } => {
            for k in op.touched_keys() {
                acc.read_key(&lock_key(&k)); // 2PL: abort if any key is locked
            }
            state_op_accesses(&mut acc, op);
        }
        Op::Prepare { txid, op } => {
            for c in &op.conditions {
                acc.read_key(c.key());
            }
            for k in op.touched_keys() {
                acc.write_key(&lock_key(&k)); // checked *and* acquired
            }
            acc.writes.push(Resource::Tx(*txid));
        }
        Op::Commit { txid } => {
            acc.writes.push(Resource::Tx(*txid));
            if let Some((locks, mutated)) = pending(*txid) {
                for k in &mutated {
                    acc.read_key(k); // Add mutations read the current value
                    acc.write_key(k);
                }
                for k in &locks {
                    acc.write_key(&lock_key(k));
                }
            }
        }
        Op::Abort { txid } => {
            acc.writes.push(Resource::Tx(*txid));
            if let Some((locks, _)) = pending(*txid) {
                for k in &locks {
                    acc.write_key(&lock_key(k));
                }
            }
        }
        Op::Read { keys, .. } => {
            for k in keys {
                acc.read_key(k);
            }
        }
        Op::Noop => {}
    }
    acc
}

/// Partition a batch into *waves* with the deterministic greedy (list)
/// scheduler: operation `i` lands in the wave right after the latest wave
/// containing anything it conflicts with, so every wave is conflict-free
/// and an operation's full dependency prefix has executed before its wave
/// runs. Returns each operation's wave index (wave 0 first); the partition
/// is a pure function of the batch order and the access sets.
///
/// `pending` is consulted for `Commit`/`Abort` whose prepare is not in the
/// store yet — the scheduler resolves it against earlier `Prepare`s *in
/// this batch* before falling back to the tx slot alone.
pub fn schedule(ops: &[&Op], pending: impl Fn(TxId) -> Option<PendingInfo>) -> Vec<usize> {
    // Prepares earlier in the batch can create the pending entry a later
    // Commit/Abort consumes; their write sets must conflict.
    let mut batch_prepares: HashMap<TxId, PendingInfo> = HashMap::new();
    let mut last_read: HashMap<Resource, usize> = HashMap::new();
    let mut last_write: HashMap<Resource, usize> = HashMap::new();
    let mut waves = Vec::with_capacity(ops.len());
    for op in ops {
        let acc = infer(op, |t| pending(t).or_else(|| batch_prepares.get(&t).cloned()));
        let mut wave = 0usize;
        for r in &acc.reads {
            if let Some(w) = last_write.get(r) {
                wave = wave.max(w + 1);
            }
        }
        for r in &acc.writes {
            if let Some(w) = last_write.get(r) {
                wave = wave.max(w + 1);
            }
            if let Some(w) = last_read.get(r) {
                wave = wave.max(w + 1);
            }
        }
        for r in acc.reads {
            let e = last_read.entry(r).or_insert(wave);
            *e = (*e).max(wave);
        }
        for r in acc.writes {
            last_write.insert(r, wave);
        }
        if let Op::Prepare { txid, op } = op {
            // *Any* same-txid prepare in the batch may be the one that
            // actually creates the pending entry: an earlier one can fail
            // at execution (its key already locked, say) and leave a later
            // one to succeed. The memo is therefore the union of every
            // prepare's lock/mutated key sets — a conservative superset of
            // whichever prepare wins, so the eventual Commit/Abort keeps
            // its release edges no matter which one created the entry.
            // Keys from losing prepares only add phantom edges.
            let (locks, mutated) = batch_prepares.entry(*txid).or_default();
            for k in op.touched_keys() {
                if !locks.contains(&k) {
                    locks.push(k);
                }
            }
            for (k, _) in &op.mutations {
                if !mutated.contains(k) {
                    mutated.push(k.clone());
                }
            }
        }
        waves.push(wave);
    }
    waves
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Condition, Value};

    fn transfer(from: &str, to: &str, amt: i64) -> StateOp {
        StateOp {
            conditions: vec![Condition::IntAtLeast { key: from.into(), min: amt }],
            mutations: vec![
                (from.into(), Mutation::Add(-amt)),
                (to.into(), Mutation::Add(amt)),
            ],
        }
    }

    fn no_pending(_: TxId) -> Option<PendingInfo> {
        None
    }

    #[test]
    fn disjoint_directs_do_not_conflict() {
        let a = infer(&Op::Direct { txid: TxId(1), op: transfer("a", "b", 1) }, no_pending);
        let b = infer(&Op::Direct { txid: TxId(2), op: transfer("c", "d", 1) }, no_pending);
        assert!(!a.conflicts(&b));
    }

    #[test]
    fn overlapping_directs_conflict() {
        let a = infer(&Op::Direct { txid: TxId(1), op: transfer("a", "b", 1) }, no_pending);
        let b = infer(&Op::Direct { txid: TxId(2), op: transfer("b", "c", 1) }, no_pending);
        assert!(a.conflicts(&b));
    }

    #[test]
    fn prepare_conflicts_with_direct_via_lock_marker() {
        // The prepare writes L_a; the direct reads L_a (2PL lock check).
        let p = infer(&Op::Prepare { txid: TxId(1), op: transfer("a", "x", 1) }, no_pending);
        let d = infer(
            &Op::Direct {
                txid: TxId(2),
                op: StateOp { conditions: vec![], mutations: vec![("a".into(), Mutation::Add(1))] },
            },
            no_pending,
        );
        assert!(p.conflicts(&d));
    }

    #[test]
    fn commit_uses_pending_write_set() {
        let info = |_| Some((vec!["a".to_string()], vec!["a".to_string()]));
        let c = infer(&Op::Commit { txid: TxId(1) }, info);
        assert!(c.writes.contains(&Resource::State("a".into())));
        assert!(c.writes.contains(&Resource::State(lock_key("a"))));
        assert!(c.writes.contains(&Resource::Tx(TxId(1))));
        // Without pending info only the tx slot is claimed.
        let blind = infer(&Op::Commit { txid: TxId(1) }, no_pending);
        assert_eq!(blind.writes, vec![Resource::Tx(TxId(1))]);
        assert!(blind.reads.is_empty());
    }

    #[test]
    fn schedule_groups_independent_ops() {
        let ops = [
            Op::Direct { txid: TxId(1), op: transfer("a", "b", 1) },
            Op::Direct { txid: TxId(2), op: transfer("c", "d", 1) },
            Op::Direct { txid: TxId(3), op: transfer("b", "c", 1) }, // hits both
            Op::Direct { txid: TxId(4), op: transfer("e", "f", 1) },
        ];
        let refs: Vec<&Op> = ops.iter().collect();
        let waves = schedule(&refs, no_pending);
        assert_eq!(waves, vec![0, 0, 1, 0]);
    }

    #[test]
    fn schedule_serializes_same_tx_lifecycle() {
        // Prepare → Commit for one txid must order, even though the commit
        // has no pending entry in the store yet (it is created in-batch).
        let ops = [
            Op::Prepare { txid: TxId(7), op: transfer("a", "b", 1) },
            Op::Commit { txid: TxId(7) },
            Op::Direct { txid: TxId(8), op: transfer("a", "z", 1) },
        ];
        let refs: Vec<&Op> = ops.iter().collect();
        let waves = schedule(&refs, no_pending);
        assert!(waves[1] > waves[0], "commit must follow its prepare: {waves:?}");
        // The direct touches "a", locked by the prepare: later wave too.
        assert!(waves[2] > waves[0], "direct must observe the lock: {waves:?}");
    }

    #[test]
    fn schedule_orders_decide_before_late_prepare() {
        // Commit with no visible prepare claims only its tx slot, which
        // still serializes it against a *later* prepare of the same tx.
        let ops = [
            Op::Commit { txid: TxId(9) },
            Op::Prepare { txid: TxId(9), op: transfer("a", "b", 1) },
        ];
        let refs: Vec<&Op> = ops.iter().collect();
        let waves = schedule(&refs, no_pending);
        assert!(waves[1] > waves[0], "{waves:?}");
    }

    #[test]
    fn duplicate_prepare_does_not_steal_the_lock_set() {
        // Prepare(T) locks "a"; a duplicate Prepare(T) over different keys
        // aborts at execution without acquiring anything, so Commit(T)
        // still releases "a" — its schedule edge to a later Direct on "a"
        // must survive the duplicate (the memo unions both key sets, so
        // the duplicate's keys become phantom edges, never lost ones).
        let ops = [
            Op::Prepare { txid: TxId(5), op: transfer("a", "b", 1) },
            Op::Prepare { txid: TxId(5), op: transfer("x", "y", 1) }, // dup
            Op::Commit { txid: TxId(5) },
            Op::Direct { txid: TxId(6), op: transfer("a", "z", 1) },
        ];
        let refs: Vec<&Op> = ops.iter().collect();
        let waves = schedule(&refs, no_pending);
        assert!(
            waves[3] > waves[2],
            "direct must run after the commit that frees its lock: {waves:?}"
        );
    }

    #[test]
    fn failed_first_prepare_keeps_commit_release_edges() {
        // The mirror case of the duplicate test: the *first* Prepare(T)
        // fails at execution ("x" is locked by tx 1), so the *second*
        // Prepare(T) — over different keys — creates the pending entry.
        // Commit(T) then releases L_a/L_b, so the later Direct on "a" must
        // wave strictly after it; with a first-prepare-wins memo the
        // commit's write set would only cover {x, w} and the Direct could
        // share the commit's wave, planning against stale locked state.
        let ops = [
            Op::Prepare { txid: TxId(1), op: transfer("x", "y", 1) },
            Op::Prepare { txid: TxId(5), op: transfer("x", "w", 1) }, // fails: x locked
            Op::Prepare { txid: TxId(5), op: transfer("a", "b", 1) }, // wins
            Op::Commit { txid: TxId(5) },
            Op::Direct { txid: TxId(6), op: transfer("a", "z", 1) },
        ];
        let refs: Vec<&Op> = ops.iter().collect();
        let waves = schedule(&refs, no_pending);
        assert!(
            waves[4] > waves[3],
            "direct must run after the commit that frees L_a: {waves:?}"
        );
    }

    #[test]
    fn reads_share_a_wave() {
        let ops = [
            Op::Read { txid: TxId(1), keys: vec!["a".into()] },
            Op::Read { txid: TxId(2), keys: vec!["a".into()] },
        ];
        let refs: Vec<&Op> = ops.iter().collect();
        assert_eq!(schedule(&refs, no_pending), vec![0, 0]);
    }

    #[test]
    fn write_after_read_ordered() {
        let ops = [
            Op::Read { txid: TxId(1), keys: vec!["a".into()] },
            Op::Direct {
                txid: TxId(2),
                op: StateOp {
                    conditions: vec![],
                    mutations: vec![("a".into(), Mutation::Set(Value::Int(1)))],
                },
            },
        ];
        let refs: Vec<&Op> = ops.iter().collect();
        let waves = schedule(&refs, no_pending);
        assert!(waves[1] > waves[0], "{waves:?}");
    }
}
