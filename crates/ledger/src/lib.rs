//! # ahl-ledger — blockchain ledger substrate
//!
//! The Hyperledger-style ledger the consensus and transaction layers build
//! on: key-value state, guarded-mutation transactions, hash-linked blocks
//! with Merkle transaction roots, and the two benchmark chaincodes the
//! paper evaluates with (BLOCKBENCH's KVStore and SmallBank).
//!
//! * [`StateStore`] — versioned KV state with 2PL execution semantics: the
//!   §6.3 prepare / commit / abort split, lock markers under `"L_" + key`,
//!   pending write sets, and a rolling state digest.
//! * [`Op`] / [`StateOp`] — the transaction model: guarded mutation sets,
//!   general enough for any non-UTXO blockchain application (the paper's
//!   target workloads).
//! * [`Block`] / [`Chain`] — hash-linked blocks with Merkle roots.
//! * [`smallbank`] / [`kvstore`] — the benchmark chaincodes.

#![warn(missing_docs)]

mod block;
pub mod kvstore;
pub mod smallbank;
mod state;
mod types;

pub use block::{Block, BlockHeader, Chain, ChainError};
pub use state::{lock_key, StateStore, LOCK_PREFIX};
pub use types::{
    AbortReason, Condition, ExecStatus, Key, Mutation, Op, Receipt, StateOp, TxId, Value,
};
