//! # ahl-ledger — blockchain ledger substrate
//!
//! The Hyperledger-style ledger the consensus and transaction layers build
//! on: key-value state, guarded-mutation transactions, hash-linked blocks
//! with Merkle transaction roots, and the two benchmark chaincodes the
//! paper evaluates with (BLOCKBENCH's KVStore and SmallBank).
//!
//! * [`StateStore`] — versioned KV state with 2PL execution semantics: the
//!   §6.3 prepare / commit / abort split, lock markers under `"L_" + key`,
//!   pending write sets, and an **authenticated index**: a sparse Merkle
//!   tree over all live keys whose root is [`StateStore::state_digest`].
//!   (Earlier revisions kept a rolling mutation-history digest; the SMT
//!   root replaced it so that state content — not history — is what
//!   replicas certify, any key supports inclusion/exclusion proofs via
//!   [`StateStore::prove`], and state sync can verify fetched chunks
//!   against a checkpoint certificate. The flat map remains the read
//!   cache.)
//! * [`Op`] / [`StateOp`] — the transaction model: guarded mutation sets,
//!   general enough for any non-UTXO blockchain application (the paper's
//!   target workloads).
//! * [`Block`] / [`Chain`] — hash-linked blocks with Merkle roots.
//! * [`smallbank`] / [`kvstore`] — the benchmark chaincodes.
//! * [`access`] / [`parexec`] — deterministic conflict-aware parallel
//!   execution: read/write-set inference, the greedy wave scheduler, and
//!   the plan/apply engine ([`parexec::execute_ops`]) whose output is
//!   byte-identical to sequential execution at any worker count.

#![warn(missing_docs)]

pub mod access;
mod block;
pub mod kvstore;
pub mod parexec;
pub mod persist;
pub mod smallbank;
mod state;
mod types;

pub use block::{Block, BlockHeader, Chain, ChainError};
pub use parexec::{execute_ops, ExecOutcome};
pub use state::{lock_key, ExecPlan, StateSidecar, StateSnapshot, StateStore, LOCK_PREFIX};
// Proof verification for state roots (re-exported so ledger users need not
// depend on `ahl-store` directly).
pub use ahl_store::{verify_proof as verify_state_proof, SmtProof};
pub use types::{
    AbortReason, Condition, ExecStatus, Key, Mutation, Op, Receipt, StateOp, TxId, Value,
};
