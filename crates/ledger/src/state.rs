//! The key-value state store with two-phase-locking execution semantics
//! and an authenticated index.
//!
//! Implements the execution model of §6.3: locks are ordinary blockchain
//! states under the key `"L_" + key`, prepares stash their write sets as
//! pending state, commits apply them, aborts discard them. Single-shard
//! (`Direct`) transactions abort on locked keys, which is how 2PL isolation
//! manifests without intra-shard concurrency (execution is sequential
//! within a shard — concurrency only arises across shards).
//!
//! ## Authenticated state (root vs rolling digest)
//!
//! Earlier revisions kept a *rolling* digest — a hash chain over applied
//! mutations. That committed to the mutation history, not the state: no key
//! could be proven present or absent, and state transfer could only be
//! trusted byte-for-byte. [`StateStore::state_digest`] is now the root of a
//! sparse Merkle tree ([`ahl_store::SparseMerkleTree`]) over all live keys
//! (lock markers included). The flat `HashMap` remains as the read cache —
//! every `get` is still O(1) — while the SMT supports per-key
//! inclusion/exclusion proofs ([`StateStore::prove`]) and verified chunked
//! state sync. The root is order-insensitive: any operation sequence
//! reaching the same map reaches the same root.
//!
//! ## Snapshots
//!
//! The SMT is *persistent* (copy-on-write, structurally shared) and its
//! leaves carry the values, so [`StateStore::snapshot`] is an **O(1) root
//! handle**, not a deep clone: a [`StateSnapshot`] freezes root, keys, and
//! values at capture time and serves complete state-sync chunks
//! ([`StateSnapshot::chunk_entries`] / [`StateSnapshot::chunk_proof`]) no
//! matter how the live store evolves. Checkpoints take one per interval;
//! retained snapshots also power incremental (diff) sync — see
//! [`StateStore::apply_diff`].

use std::collections::HashMap;

use ahl_crypto::Hash;
use ahl_store::{SmtProof, SparseMerkleTree};

use crate::types::{
    AbortReason, Condition, ExecStatus, Key, Mutation, Op, Receipt, StateOp, TxId, Value,
};

/// Prefix for lock marker keys, as in the paper ("L_"acc).
pub const LOCK_PREFIX: &str = "L_";

#[derive(Clone, Debug)]
struct PendingTx {
    locks: Vec<Key>,
    mutations: Vec<(Key, Mutation)>,
}

/// One prepared-but-undecided transaction in a [`StateSidecar`]: its id,
/// lock set, and stashed mutations.
type PendingEntry = (TxId, Vec<Key>, Vec<(Key, Mutation)>);

/// Unauthenticated 2PC bookkeeping that travels alongside a certified state
/// transfer: prepared-but-undecided write sets and the recently-decided
/// transaction ids (replay protection). Snapshotted at checkpoint heights
/// and installed by a syncing replica after its chunks verify.
#[derive(Clone, Debug, Default)]
pub struct StateSidecar {
    pending: Vec<PendingEntry>,
    resolved: Vec<(TxId, u64)>,
    resolved_epoch: u64,
}

impl StateSidecar {
    /// Serialize for the durable checkpoint manifest (the 2PC bookkeeping
    /// must survive a crash, or prepared-but-undecided transactions would
    /// leak their locks forever on the recovered node).
    pub fn encode(&self, w: &mut ahl_wal::codec::Writer) {
        w.u64(self.resolved_epoch);
        w.u32(self.pending.len() as u32);
        for (txid, locks, muts) in &self.pending {
            w.u64(txid.0);
            w.u32(locks.len() as u32);
            for k in locks {
                w.str(k);
            }
            w.u32(muts.len() as u32);
            for (k, m) in muts {
                w.str(k);
                crate::persist::encode_mutation(m, w);
            }
        }
        w.u32(self.resolved.len() as u32);
        for (txid, epoch) in &self.resolved {
            w.u64(txid.0);
            w.u64(*epoch);
        }
    }

    /// Decode a sidecar written by [`StateSidecar::encode`]; `None` on
    /// truncation or corruption.
    pub fn decode(r: &mut ahl_wal::codec::Reader<'_>) -> Option<StateSidecar> {
        let resolved_epoch = r.u64()?;
        let np = r.u32()? as usize;
        let mut pending = Vec::with_capacity(np.min(1024));
        for _ in 0..np {
            let txid = TxId(r.u64()?);
            let nl = r.u32()? as usize;
            let mut locks = Vec::with_capacity(nl.min(1024));
            for _ in 0..nl {
                locks.push(r.str()?);
            }
            let nm = r.u32()? as usize;
            let mut muts = Vec::with_capacity(nm.min(1024));
            for _ in 0..nm {
                let k = r.str()?;
                muts.push((k, crate::persist::decode_mutation(r)?));
            }
            pending.push((txid, locks, muts));
        }
        let nr = r.u32()? as usize;
        let mut resolved = Vec::with_capacity(nr.min(65536));
        for _ in 0..nr {
            resolved.push((TxId(r.u64()?), r.u64()?));
        }
        Some(StateSidecar { pending, resolved, resolved_epoch })
    }

    /// Approximate wire size in bytes.
    pub fn wire_size(&self) -> usize {
        32 + self
            .pending
            .iter()
            .map(|(_, locks, muts)| 16 + 24 * locks.len() + 40 * muts.len())
            .sum::<usize>()
            + 8 * self.resolved.len()
    }
}

/// A frozen, authenticated snapshot of a [`StateStore`]'s key-value
/// content (plus the 2PC sidecar captured alongside it).
///
/// Creation ([`StateStore::snapshot`]) is O(1) in the state size: the
/// persistent SMT is shared structurally, and its leaves carry the values,
/// so the snapshot serves complete state-sync chunks — keys, values, and
/// proofs — without a copy of the flat map. PBFT keeps one per certified
/// checkpoint; diff sync compares two of them.
#[derive(Clone, Debug)]
pub struct StateSnapshot {
    smt: SparseMerkleTree<Value>,
    sidecar: StateSidecar,
}

impl StateSnapshot {
    /// Assemble a snapshot from a verified tree and a recovered sidecar
    /// (the durable-checkpoint reopen path — see
    /// [`crate::persist::open_snapshot`]).
    pub fn from_parts(smt: SparseMerkleTree<Value>, sidecar: StateSidecar) -> Self {
        StateSnapshot { smt, sidecar }
    }

    /// The state root the snapshot is frozen at.
    pub fn root(&self) -> Hash {
        self.smt.root_hash()
    }

    /// Number of live keys (lock markers included).
    pub fn len(&self) -> usize {
        self.smt.len()
    }

    /// True when the snapshot holds no keys.
    pub fn is_empty(&self) -> bool {
        self.smt.is_empty()
    }

    /// The frozen authenticated tree (diff computation, proof serving).
    pub fn smt(&self) -> &SparseMerkleTree<Value> {
        &self.smt
    }

    /// The 2PC bookkeeping captured with the snapshot.
    pub fn sidecar(&self) -> &StateSidecar {
        &self.sidecar
    }

    /// The complete `(key, value)` payload of one state-sync chunk, in
    /// path order.
    pub fn chunk_entries(&self, chunk: u32, bits: u8) -> Vec<(Key, Value)> {
        self.smt
            .chunk_entries(chunk, bits)
            .into_iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    /// Sibling hashes proving a chunk against [`StateSnapshot::root`].
    pub fn chunk_proof(&self, chunk: u32, bits: u8) -> Vec<Hash> {
        self.smt.chunk_proof(chunk, bits)
    }

    /// The chunk indices (of `1 << bits`) whose content changed between
    /// this (older) snapshot and `newer` — the server half of diff sync.
    pub fn diff_chunks(&self, newer: &StateSnapshot, bits: u8) -> Vec<u32> {
        self.smt.diff_chunks(&newer.smt, bits)
    }
}

/// The ledger state of one shard.
#[derive(Clone, Debug, Default)]
pub struct StateStore {
    /// Read cache: every lookup is O(1); the SMT is the authenticated index
    /// *and* the snapshot/serve source (its leaves carry the values).
    map: HashMap<Key, Value>,
    /// Authenticated index over `map` (root = [`StateStore::state_digest`]).
    smt: SparseMerkleTree<Value>,
    pending: HashMap<TxId, PendingTx>,
    /// Transactions already committed or aborted here, tagged with the
    /// checkpoint epoch in which they resolved. A PrepareTx that arrives
    /// after its decision (reordered across the network) must be refused,
    /// or its locks would never be released. Entries older than a full
    /// checkpoint interval are pruned by [`StateStore::checkpoint_prune`].
    resolved: HashMap<TxId, u64>,
    /// Current checkpoint epoch (bumped by `checkpoint_prune`).
    resolved_epoch: u64,
    /// Approximate resident bytes written since the last
    /// [`StateStore::take_write_bytes`] — the copy-on-write tree clones
    /// about this much when a frozen snapshot is outstanding, so it is the
    /// marginal memory cost of *retaining* the previous snapshot (the
    /// quantity byte-budgeted snapshot eviction charges per checkpoint).
    write_bytes: u64,
}

impl StateStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bulk-load genesis state into an empty store (one hash per tree node
    /// instead of O(log n) per key — use for large genesis populations).
    pub fn load_genesis(&mut self, entries: &[(Key, Value)]) {
        debug_assert!(self.map.is_empty(), "genesis load requires an empty store");
        self.map = entries.iter().cloned().collect();
        self.smt = SparseMerkleTree::build(
            self.map.iter().map(|(k, v)| (k.clone(), v.clone())),
        );
    }

    /// Rebuild a store from a complete key-value enumeration (state-sync
    /// install; the caller has verified every entry against a certified
    /// root). Pending/resolved bookkeeping starts empty — install the
    /// transferred [`StateSidecar`] afterwards.
    pub fn from_entries(entries: Vec<(Key, Value)>) -> Self {
        let mut s = StateStore::new();
        s.load_genesis(&entries);
        s
    }

    /// Freeze the current state as a [`StateSnapshot`] — O(1) in the state
    /// size (one shared tree handle plus the small 2PC sidecar), replacing
    /// the full deep clone checkpoints used to take.
    pub fn snapshot(&self) -> StateSnapshot {
        StateSnapshot { smt: self.smt.clone(), sidecar: self.export_sidecar() }
    }

    /// Reconstruct a full store from a retained snapshot (durable-
    /// checkpoint restart, diff-sync base). The authenticated tree is
    /// shared back in O(1); only the flat read cache is rebuilt, and the
    /// snapshot's 2PC sidecar is installed.
    pub fn from_snapshot(snap: &StateSnapshot) -> Self {
        let mut s = StateStore {
            map: snap
                .smt
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            smt: snap.smt.clone(),
            ..StateStore::default()
        };
        s.install_sidecar(&snap.sidecar);
        s
    }

    /// Apply an incremental state-sync result: for every `(chunk, entries)`
    /// pair, drop the local content of that key-range chunk and install the
    /// verified replacement. After overlaying all changed chunks the root
    /// must equal the certified one — callers check [`Self::state_digest`]
    /// and fall back to a full transfer on mismatch (a server that lied
    /// about the changed-chunk set cannot slip state past the root).
    pub fn apply_diff(&mut self, bits: u8, chunks: &[(u32, Vec<(Key, Value)>)]) {
        for (chunk, entries) in chunks {
            let stale: Vec<Key> = self
                .smt
                .chunk_keys(*chunk, bits)
                .iter()
                .map(|k| k.to_string())
                .collect();
            for k in stale {
                self.write_bytes += Self::write_cost(&k, 0);
                self.smt.remove(&k);
                self.map.remove(&k);
            }
            for (k, v) in entries {
                self.put(k.clone(), v.clone());
            }
        }
    }

    /// Read a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.map.get(key)
    }

    /// Integer value of a key, treating absent as 0.
    pub fn get_int(&self, key: &str) -> i64 {
        self.map.get(key).and_then(Value::as_int).unwrap_or(0)
    }

    /// Approximate resident bytes one write to `key` dirties (leaf value
    /// plus the O(log n) copy-on-write node overhead along the root path).
    fn write_cost(key: &str, value_bytes: usize) -> u64 {
        (48 + key.len() + value_bytes) as u64
    }

    /// Drain the resident-byte write accumulator (read at checkpoint
    /// heights: it approximates the marginal memory cost of keeping the
    /// previous snapshot alive — see the `snapshot_max_bytes` retention
    /// budget in the consensus layer).
    pub fn take_write_bytes(&mut self) -> u64 {
        std::mem::take(&mut self.write_bytes)
    }

    /// Direct write (genesis/state-sync only; transactions go through
    /// [`StateStore::execute`]).
    pub fn put(&mut self, key: Key, value: Value) {
        self.write_bytes += Self::write_cost(&key, value.resident_bytes());
        self.smt.insert(&key, value.clone());
        self.map.insert(key, value);
    }

    /// Number of live keys (including lock markers).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of transactions currently prepared but not yet resolved.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Whether `txid` holds a prepared-but-unresolved write set here.
    /// (Adversary harness: distinguishes a decision that actually applied
    /// or discarded a prepared transaction from a no-op late delivery.)
    pub fn has_pending(&self, txid: TxId) -> bool {
        self.pending.contains_key(&txid)
    }

    /// Number of remembered resolved-transaction ids (bounded by
    /// [`StateStore::checkpoint_prune`]).
    pub fn resolved_count(&self) -> usize {
        self.resolved.len()
    }

    /// Iterate all live key-value pairs (post-run inspection, audits).
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &Value)> {
        self.map.iter()
    }

    /// Whether `key` is currently locked by a prepared transaction.
    pub fn is_locked(&self, key: &str) -> bool {
        matches!(self.map.get(&lock_key(key)), Some(Value::Bool(true)))
    }

    /// The state root: the sparse-Merkle-tree commitment to every live
    /// key-value pair. Identical across replicas that hold identical state,
    /// regardless of the operation order that produced it.
    pub fn state_digest(&self) -> Hash {
        self.smt.root_hash()
    }

    /// The authenticated index (proof generation, chunk serving).
    pub fn smt(&self) -> &SparseMerkleTree<Value> {
        &self.smt
    }

    /// Produce an inclusion proof (key live) or exclusion proof (key
    /// absent) for `key` against the current root. Verify with
    /// [`ahl_store::verify_proof`].
    pub fn prove(&self, key: &str) -> SmtProof {
        self.smt.prove(key)
    }

    /// Re-derive every cached hash in the authenticated index bottom-up
    /// (across up to `workers` threads on disjoint subtrees) and compare
    /// against the stored values. `true` means the cached root is exactly
    /// what a from-scratch rebuild would produce — the cheap paranoia
    /// check the parallel-execution path runs at checkpoint time before
    /// certifying a root.
    pub fn rehash_audit(&self, workers: usize) -> bool {
        self.smt.rehash_audit(workers)
    }

    /// Snapshot the 2PC bookkeeping for a certified state transfer.
    ///
    /// Pending and resolved entries are sorted by transaction id: both live
    /// in hash maps whose iteration order depends on insertion history and
    /// the per-process hasher seed, and the sidecar's byte encoding flows
    /// into durable checkpoint manifests and sync transfers — unsorted
    /// iteration here made those bytes nondeterministic across replicas
    /// holding identical state.
    pub fn export_sidecar(&self) -> StateSidecar {
        let mut pending: Vec<PendingEntry> = self
            .pending
            .iter()
            .map(|(txid, p)| (*txid, p.locks.clone(), p.mutations.clone()))
            .collect();
        pending.sort_by_key(|(txid, _, _)| *txid);
        let mut resolved: Vec<(TxId, u64)> =
            self.resolved.iter().map(|(t, e)| (*t, *e)).collect();
        resolved.sort_unstable();
        StateSidecar { pending, resolved, resolved_epoch: self.resolved_epoch }
    }

    /// Install transferred 2PC bookkeeping (replaces local pending/resolved
    /// state; the key-value content came through verified chunks).
    pub fn install_sidecar(&mut self, sidecar: &StateSidecar) {
        self.pending = sidecar
            .pending
            .iter()
            .map(|(txid, locks, mutations)| {
                (*txid, PendingTx { locks: locks.clone(), mutations: mutations.clone() })
            })
            .collect();
        self.resolved = sidecar.resolved.iter().copied().collect();
        self.resolved_epoch = sidecar.resolved_epoch;
    }

    /// Checkpoint-boundary maintenance: forget resolved-transaction ids
    /// older than one full checkpoint interval and advance the epoch.
    /// Returns how many ids were pruned.
    ///
    /// Ids resolved in the epoch just ended stay for one more interval, so
    /// a prepare reordered behind its own decision is still refused unless
    /// it is delayed by more than an entire checkpoint interval — beyond
    /// every retransmission horizon in the system. Without this the set
    /// grows without bound over a long run.
    pub fn checkpoint_prune(&mut self) -> usize {
        let epoch = self.resolved_epoch;
        let before = self.resolved.len();
        self.resolved.retain(|_, e| *e >= epoch);
        self.resolved_epoch += 1;
        before - self.resolved.len()
    }

    fn check_conditions(&self, op: &StateOp) -> Result<(), AbortReason> {
        for c in &op.conditions {
            let ok = match c {
                Condition::Exists(k) => self.map.contains_key(k),
                Condition::NotExists(k) => !self.map.contains_key(k),
                Condition::IntAtLeast { key, min } => self.get_int(key) >= *min,
            };
            if !ok {
                return Err(AbortReason::ConditionFailed(c.clone()));
            }
        }
        Ok(())
    }

    fn check_unlocked(&self, op: &StateOp) -> Result<(), AbortReason> {
        for k in op.touched_keys() {
            if self.is_locked(&k) {
                return Err(AbortReason::LockConflict(k));
            }
        }
        Ok(())
    }

    fn apply_mutation(&mut self, key: &Key, m: &Mutation) {
        match m {
            Mutation::Set(v) => {
                self.write_bytes += Self::write_cost(key, v.resident_bytes());
                self.smt.insert(key, v.clone());
                self.map.insert(key.clone(), v.clone());
            }
            Mutation::Add(d) => {
                let cur = self.get_int(key);
                let v = Value::Int(cur + d);
                self.write_bytes += Self::write_cost(key, v.resident_bytes());
                self.smt.insert(key, v.clone());
                self.map.insert(key.clone(), v);
            }
            Mutation::Delete => {
                self.write_bytes += Self::write_cost(key, 0);
                self.smt.remove(key);
                self.map.remove(key);
            }
        }
    }

    /// Execute one transaction operation, returning its receipt.
    pub fn execute(&mut self, op: &Op) -> Receipt {
        let status = match op {
            Op::Direct { op, .. } => self.exec_direct(op),
            Op::Prepare { txid, op } => self.exec_prepare(*txid, op),
            Op::Commit { txid } => self.exec_commit(*txid),
            Op::Abort { txid } => self.exec_abort(*txid),
            Op::Read { keys, .. } => ExecStatus::Committed(
                keys.iter()
                    .map(|k| (k.clone(), self.map.get(k).cloned()))
                    .collect(),
            ),
            Op::Noop => ExecStatus::Committed(vec![]),
        };
        Receipt { txid: op.txid(), status }
    }

    fn exec_direct(&mut self, op: &StateOp) -> ExecStatus {
        if let Err(r) = self.check_unlocked(op) {
            return ExecStatus::Aborted(r);
        }
        if let Err(r) = self.check_conditions(op) {
            return ExecStatus::Aborted(r);
        }
        for (k, m) in &op.mutations {
            self.apply_mutation(k, m);
        }
        ExecStatus::Committed(vec![])
    }

    fn exec_prepare(&mut self, txid: TxId, op: &StateOp) -> ExecStatus {
        if self.pending.contains_key(&txid) {
            return ExecStatus::Aborted(AbortReason::DuplicatePrepare);
        }
        if self.resolved.contains_key(&txid) {
            return ExecStatus::Aborted(AbortReason::AlreadyResolved);
        }
        // Every check runs before any lock marker is written, so lock
        // acquisition is all-or-nothing by construction: a rejected
        // prepare is a perfect no-op on the state root and the write
        // accounting, and a partial acquisition can never leak (nothing
        // would record it, so no watchdog could ever release it).
        // Conditions therefore evaluate against the pre-acquisition state
        // — a guard targeting a literal `L_`-prefixed key this op is about
        // to lock does not observe its own marker.
        if let Err(r) = self.check_unlocked(op) {
            return ExecStatus::Aborted(r);
        }
        if let Err(r) = self.check_conditions(op) {
            return ExecStatus::Aborted(r);
        }
        // Acquire locks: write ⟨L_key, true⟩ to the blockchain state (§6.3).
        let locks = op.touched_keys();
        for k in &locks {
            let lk = lock_key(k);
            let v = Value::Bool(true);
            self.write_bytes += Self::write_cost(&lk, 1);
            self.smt.insert(&lk, v.clone());
            self.map.insert(lk, v);
        }
        self.pending.insert(
            txid,
            PendingTx { locks, mutations: op.mutations.clone() },
        );
        ExecStatus::Committed(vec![])
    }

    fn exec_commit(&mut self, txid: TxId) -> ExecStatus {
        let Some(p) = self.pending.remove(&txid) else {
            return ExecStatus::Aborted(AbortReason::NoPendingTx);
        };
        for (k, m) in &p.mutations {
            self.apply_mutation(k, m);
        }
        self.release_locks(&p.locks);
        self.resolved.insert(txid, self.resolved_epoch);
        ExecStatus::Committed(vec![])
    }

    fn exec_abort(&mut self, txid: TxId) -> ExecStatus {
        // Remember the decision so a reordered late PrepareTx is refused.
        self.resolved.insert(txid, self.resolved_epoch);
        let Some(p) = self.pending.remove(&txid) else {
            // Aborting an unknown/never-prepared tx still records the
            // decision: the coordinator broadcasts aborts to shards whose
            // prepare may not have executed yet.
            return ExecStatus::Committed(vec![]);
        };
        self.release_locks(&p.locks);
        ExecStatus::Committed(vec![])
    }

    fn release_locks(&mut self, locks: &[Key]) {
        for k in locks {
            let lk = lock_key(k);
            self.write_bytes += Self::write_cost(&lk, 0);
            self.smt.remove(&lk);
            self.map.remove(&lk);
        }
    }

    // ---- plan/apply split (deterministic parallel execution) ------------
    //
    // `plan` is `execute` factored into a read-only half: it computes the
    // receipt and the full effect list of an operation against the current
    // state without touching it, so many non-conflicting operations can be
    // planned concurrently against one `&StateStore`. `apply_plan` replays
    // the effects; for every operation and state,
    // `apply_plan(plan(op)) ≡ execute(op)` — same receipt, same map, same
    // root, same pending/resolved tables, same write-byte accounting (the
    // `plan_matches_execute` proptest below pins this). `crate::parexec`
    // builds conflict-free waves on top.

    /// The pending lock set and mutated-key set of a prepared transaction,
    /// if present — what [`crate::access`] needs to infer the write set of
    /// a `Commit`/`Abort`.
    pub fn pending_info(&self, txid: TxId) -> Option<(Vec<Key>, Vec<Key>)> {
        self.pending.get(&txid).map(|p| {
            (p.locks.clone(), p.mutations.iter().map(|(k, _)| k.clone()).collect())
        })
    }

    /// Plan one operation against the current state without executing it:
    /// the returned [`ExecPlan`] carries the receipt status plus the exact
    /// effect list [`StateStore::apply_plan`] needs to make it real.
    /// Read-only, so disjoint operations can be planned in parallel.
    pub fn plan(&self, op: &Op) -> ExecPlan {
        let mut effects = Vec::new();
        let mut had_pending = false;
        let status = match op {
            Op::Direct { op, .. } => self.plan_direct(op, &mut effects),
            Op::Prepare { txid, op } => self.plan_prepare(*txid, op, &mut effects),
            Op::Commit { txid } => self.plan_commit(*txid, &mut effects),
            Op::Abort { txid } => {
                had_pending = self.pending.contains_key(txid);
                self.plan_abort(*txid, &mut effects)
            }
            Op::Read { keys, .. } => ExecStatus::Committed(
                keys.iter()
                    .map(|k| (k.clone(), self.map.get(k).cloned()))
                    .collect(),
            ),
            Op::Noop => ExecStatus::Committed(vec![]),
        };
        ExecPlan { txid: op.txid(), status, effects, had_pending }
    }

    /// Apply a plan produced by [`StateStore::plan`] against the *same*
    /// logical state (no conflicting effect may have intervened), returning
    /// the operation's receipt.
    pub fn apply_plan(&mut self, plan: ExecPlan) -> Receipt {
        for e in plan.effects {
            self.apply_effect(e);
        }
        Receipt { txid: plan.txid, status: plan.status }
    }

    /// Apply one conflict-free wave of plans in canonical order. With
    /// `workers > 1` the flat map and 2PC bookkeeping update serially (they
    /// are cheap) while all SMT changes coalesce into one
    /// [`SparseMerkleTree::batch_apply`] that re-hashes disjoint subtrees
    /// in parallel — the dominant cost of applying a large wave.
    pub fn apply_plans(&mut self, plans: Vec<ExecPlan>, workers: usize) -> Vec<Receipt> {
        if workers <= 1 {
            return plans.into_iter().map(|p| self.apply_plan(p)).collect();
        }
        let mut receipts = Vec::with_capacity(plans.len());
        let mut changes: Vec<(Key, Option<Value>)> = Vec::new();
        for plan in plans {
            for e in plan.effects {
                match e {
                    Effect::Put(k, v) => {
                        self.write_bytes += Self::write_cost(&k, v.resident_bytes());
                        self.map.insert(k.clone(), v.clone());
                        changes.push((k, Some(v)));
                    }
                    Effect::Remove(k) => {
                        self.write_bytes += Self::write_cost(&k, 0);
                        self.map.remove(&k);
                        changes.push((k, None));
                    }
                    other => self.apply_effect(other),
                }
            }
            receipts.push(Receipt { txid: plan.txid, status: plan.status });
        }
        self.smt.batch_apply(changes, workers);
        receipts
    }

    fn apply_effect(&mut self, e: Effect) {
        match e {
            Effect::Put(k, v) => {
                self.write_bytes += Self::write_cost(&k, v.resident_bytes());
                self.smt.insert(&k, v.clone());
                self.map.insert(k, v);
            }
            Effect::Remove(k) => {
                self.write_bytes += Self::write_cost(&k, 0);
                self.smt.remove(&k);
                self.map.remove(&k);
            }
            Effect::Stash(txid, locks, mutations) => {
                self.pending.insert(txid, PendingTx { locks, mutations });
            }
            Effect::Drop(txid) => {
                self.pending.remove(&txid);
            }
            Effect::Resolve(txid) => {
                self.resolved.insert(txid, self.resolved_epoch);
            }
        }
    }

    /// Materialize a mutation list into `Put`/`Remove` effects, threading a
    /// local overlay so sequenced mutations of one key compose exactly as
    /// [`StateStore::apply_mutation`] would (`Add` after `Set`/`Delete`
    /// reads the in-op value, not the stale store).
    fn plan_mutations(&self, muts: &[(Key, Mutation)], effects: &mut Vec<Effect>) {
        let mut overlay: HashMap<&Key, Option<Value>> = HashMap::new();
        for (k, m) in muts {
            match m {
                Mutation::Set(v) => {
                    effects.push(Effect::Put(k.clone(), v.clone()));
                    overlay.insert(k, Some(v.clone()));
                }
                Mutation::Add(d) => {
                    let cur = match overlay.get(k) {
                        Some(v) => v.as_ref().and_then(Value::as_int).unwrap_or(0),
                        None => self.get_int(k),
                    };
                    let v = Value::Int(cur + d);
                    effects.push(Effect::Put(k.clone(), v.clone()));
                    overlay.insert(k, Some(v));
                }
                Mutation::Delete => {
                    effects.push(Effect::Remove(k.clone()));
                    overlay.insert(k, None);
                }
            }
        }
    }

    fn plan_direct(&self, op: &StateOp, effects: &mut Vec<Effect>) -> ExecStatus {
        if let Err(r) = self.check_unlocked(op) {
            return ExecStatus::Aborted(r);
        }
        if let Err(r) = self.check_conditions(op) {
            return ExecStatus::Aborted(r);
        }
        self.plan_mutations(&op.mutations, effects);
        ExecStatus::Committed(vec![])
    }

    fn plan_prepare(&self, txid: TxId, op: &StateOp, effects: &mut Vec<Effect>) -> ExecStatus {
        if self.pending.contains_key(&txid) {
            return ExecStatus::Aborted(AbortReason::DuplicatePrepare);
        }
        if self.resolved.contains_key(&txid) {
            return ExecStatus::Aborted(AbortReason::AlreadyResolved);
        }
        // Same check-before-write order as `exec_prepare`: conditions see
        // the pre-acquisition state, and no effect is emitted until every
        // check passes.
        if let Err(r) = self.check_unlocked(op) {
            return ExecStatus::Aborted(r);
        }
        if let Err(r) = self.check_conditions(op) {
            return ExecStatus::Aborted(r);
        }
        let locks = op.touched_keys();
        for k in &locks {
            effects.push(Effect::Put(lock_key(k), Value::Bool(true)));
        }
        effects.push(Effect::Stash(txid, locks, op.mutations.clone()));
        ExecStatus::Committed(vec![])
    }

    fn plan_commit(&self, txid: TxId, effects: &mut Vec<Effect>) -> ExecStatus {
        let Some(p) = self.pending.get(&txid) else {
            return ExecStatus::Aborted(AbortReason::NoPendingTx);
        };
        effects.push(Effect::Drop(txid));
        self.plan_mutations(&p.mutations, effects);
        for k in &p.locks {
            effects.push(Effect::Remove(lock_key(k)));
        }
        effects.push(Effect::Resolve(txid));
        ExecStatus::Committed(vec![])
    }

    fn plan_abort(&self, txid: TxId, effects: &mut Vec<Effect>) -> ExecStatus {
        effects.push(Effect::Resolve(txid));
        if let Some(p) = self.pending.get(&txid) {
            effects.push(Effect::Drop(txid));
            for k in &p.locks {
                effects.push(Effect::Remove(lock_key(k)));
            }
        }
        ExecStatus::Committed(vec![])
    }
}

/// One primitive state change recorded in an [`ExecPlan`].
#[derive(Clone, Debug)]
enum Effect {
    /// Insert/overwrite a key (data or lock marker).
    Put(Key, Value),
    /// Delete a key (data or lock marker; no-op if absent, but the write
    /// cost is still charged — matching [`StateStore::apply_mutation`]).
    Remove(Key),
    /// Stash a prepared write set under its transaction id.
    Stash(TxId, Vec<Key>, Vec<(Key, Mutation)>),
    /// Discard a prepared write set.
    Drop(TxId),
    /// Record a commit/abort decision for replay protection.
    Resolve(TxId),
}

/// The planned outcome of one operation: the receipt it will produce plus
/// the effect list that realizes it. Produced read-only by
/// [`StateStore::plan`], consumed by [`StateStore::apply_plan`].
#[derive(Clone, Debug)]
pub struct ExecPlan {
    txid: Option<TxId>,
    status: ExecStatus,
    effects: Vec<Effect>,
    had_pending: bool,
}

impl ExecPlan {
    /// Whether the planned operation was an `Abort` that found (and will
    /// discard) a prepared write set — the signal the safety checker's
    /// exactly-once accounting needs from the execution site.
    pub fn had_pending(&self) -> bool {
        self.had_pending
    }

    /// The planned receipt status (inspection/tests).
    pub fn status(&self) -> &ExecStatus {
        &self.status
    }
}

/// The lock marker key for `key` ("L_" + key, §6.3).
pub fn lock_key(key: &str) -> Key {
    format!("{LOCK_PREFIX}{key}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahl_store::verify_proof;

    fn transfer(from: &str, to: &str, amt: i64) -> StateOp {
        StateOp {
            conditions: vec![Condition::IntAtLeast { key: from.into(), min: amt }],
            mutations: vec![
                (from.into(), Mutation::Add(-amt)),
                (to.into(), Mutation::Add(amt)),
            ],
        }
    }

    fn store_with_balances() -> StateStore {
        let mut s = StateStore::new();
        s.put("a".into(), Value::Int(100));
        s.put("b".into(), Value::Int(50));
        s
    }

    #[test]
    fn direct_transfer_applies() {
        let mut s = store_with_balances();
        let r = s.execute(&Op::Direct { txid: TxId(1), op: transfer("a", "b", 30) });
        assert!(r.status.is_committed());
        assert_eq!(s.get_int("a"), 70);
        assert_eq!(s.get_int("b"), 80);
    }

    #[test]
    fn direct_insufficient_funds_aborts() {
        let mut s = store_with_balances();
        let r = s.execute(&Op::Direct { txid: TxId(1), op: transfer("a", "b", 500) });
        assert!(matches!(
            r.status,
            ExecStatus::Aborted(AbortReason::ConditionFailed(_))
        ));
        assert_eq!(s.get_int("a"), 100);
        assert_eq!(s.get_int("b"), 50);
    }

    #[test]
    fn prepare_locks_and_stashes() {
        let mut s = store_with_balances();
        let r = s.execute(&Op::Prepare { txid: TxId(1), op: transfer("a", "b", 30) });
        assert!(r.status.is_committed());
        assert!(s.is_locked("a"));
        assert!(s.is_locked("b"));
        // Balances unchanged until commit.
        assert_eq!(s.get_int("a"), 100);
        assert_eq!(s.pending_count(), 1);
    }

    #[test]
    fn commit_applies_and_unlocks() {
        let mut s = store_with_balances();
        s.execute(&Op::Prepare { txid: TxId(1), op: transfer("a", "b", 30) });
        let r = s.execute(&Op::Commit { txid: TxId(1) });
        assert!(r.status.is_committed());
        assert_eq!(s.get_int("a"), 70);
        assert_eq!(s.get_int("b"), 80);
        assert!(!s.is_locked("a"));
        assert_eq!(s.pending_count(), 0);
    }

    #[test]
    fn abort_discards_and_unlocks() {
        let mut s = store_with_balances();
        s.execute(&Op::Prepare { txid: TxId(1), op: transfer("a", "b", 30) });
        let r = s.execute(&Op::Abort { txid: TxId(1) });
        assert!(r.status.is_committed());
        assert_eq!(s.get_int("a"), 100);
        assert_eq!(s.get_int("b"), 50);
        assert!(!s.is_locked("a"));
    }

    #[test]
    fn conflicting_prepare_rejected() {
        let mut s = store_with_balances();
        s.execute(&Op::Prepare { txid: TxId(1), op: transfer("a", "b", 30) });
        // Second transaction touching "a" must observe the lock (isolation).
        let r = s.execute(&Op::Prepare { txid: TxId(2), op: transfer("a", "b", 10) });
        assert!(matches!(
            r.status,
            ExecStatus::Aborted(AbortReason::LockConflict(_))
        ));
        // Direct transactions also respect locks.
        let r2 = s.execute(&Op::Direct { txid: TxId(3), op: transfer("a", "b", 10) });
        assert!(matches!(
            r2.status,
            ExecStatus::Aborted(AbortReason::LockConflict(_))
        ));
    }

    #[test]
    fn disjoint_prepares_coexist() {
        let mut s = store_with_balances();
        s.put("c".into(), Value::Int(10));
        s.put("d".into(), Value::Int(10));
        let r1 = s.execute(&Op::Prepare { txid: TxId(1), op: transfer("a", "b", 5) });
        let r2 = s.execute(&Op::Prepare { txid: TxId(2), op: transfer("c", "d", 5) });
        assert!(r1.status.is_committed());
        assert!(r2.status.is_committed());
        assert_eq!(s.pending_count(), 2);
    }

    #[test]
    fn commit_without_prepare_aborts() {
        let mut s = StateStore::new();
        let r = s.execute(&Op::Commit { txid: TxId(7) });
        assert!(matches!(
            r.status,
            ExecStatus::Aborted(AbortReason::NoPendingTx)
        ));
    }

    #[test]
    fn abort_without_prepare_is_noop_success() {
        let mut s = StateStore::new();
        let r = s.execute(&Op::Abort { txid: TxId(7) });
        assert!(r.status.is_committed());
    }

    #[test]
    fn duplicate_prepare_rejected() {
        let mut s = store_with_balances();
        s.execute(&Op::Prepare { txid: TxId(1), op: transfer("a", "b", 5) });
        let r = s.execute(&Op::Prepare { txid: TxId(1), op: transfer("a", "b", 5) });
        assert!(matches!(
            r.status,
            ExecStatus::Aborted(AbortReason::DuplicatePrepare)
        ));
    }

    #[test]
    fn read_returns_values() {
        let mut s = store_with_balances();
        let r = s.execute(&Op::Read {
            txid: TxId(1),
            keys: vec!["a".into(), "zz".into()],
        });
        match r.status {
            ExecStatus::Committed(vals) => {
                assert_eq!(vals[0].1, Some(Value::Int(100)));
                assert_eq!(vals[1].1, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn state_digest_changes_with_writes() {
        let mut s = StateStore::new();
        let d0 = s.state_digest();
        s.put("a".into(), Value::Int(1));
        let d1 = s.state_digest();
        assert_ne!(d0, d1);
        s.execute(&Op::Direct {
            txid: TxId(1),
            op: StateOp {
                conditions: vec![],
                mutations: vec![("a".into(), Mutation::Add(1))],
            },
        });
        assert_ne!(s.state_digest(), d1);
    }

    #[test]
    fn digest_deterministic_across_replicas() {
        let build = || {
            let mut s = StateStore::new();
            s.put("a".into(), Value::Int(100));
            s.execute(&Op::Prepare { txid: TxId(1), op: transfer("a", "a2", 3) });
            s.execute(&Op::Commit { txid: TxId(1) });
            s.state_digest()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn digest_is_content_addressed_not_history_addressed() {
        // Same final state through different histories → same root. This is
        // the property the rolling digest lacked and state sync requires.
        let mut a = store_with_balances();
        a.execute(&Op::Direct { txid: TxId(1), op: transfer("a", "b", 30) });

        let mut b = store_with_balances();
        b.execute(&Op::Prepare { txid: TxId(2), op: transfer("a", "b", 10) });
        b.execute(&Op::Commit { txid: TxId(2) });
        b.execute(&Op::Direct { txid: TxId(3), op: transfer("a", "b", 20) });

        assert_eq!(a.state_digest(), b.state_digest());
        // And it matches a bulk rebuild from the final content.
        let rebuilt = StateStore::from_entries(a.iter().map(|(k, v)| (k.clone(), v.clone())).collect());
        assert_eq!(rebuilt.state_digest(), a.state_digest());
    }

    #[test]
    fn proofs_verify_against_root() {
        let s = store_with_balances();
        let root = s.state_digest();
        let p = s.prove("a");
        assert!(verify_proof(&root, "a", Some(&Value::Int(100).digest()), &p));
        assert!(!verify_proof(&root, "a", Some(&Value::Int(99).digest()), &p));
        let absent = s.prove("nobody");
        assert!(verify_proof(&root, "nobody", None, &absent));
    }

    #[test]
    fn load_genesis_matches_incremental_puts() {
        let entries: Vec<(Key, Value)> =
            (0..200).map(|i| (format!("acc{i}"), Value::Int(i))).collect();
        let mut bulk = StateStore::new();
        bulk.load_genesis(&entries);
        let mut inc = StateStore::new();
        for (k, v) in &entries {
            inc.put(k.clone(), v.clone());
        }
        assert_eq!(bulk.state_digest(), inc.state_digest());
        assert_eq!(bulk.len(), inc.len());
    }

    #[test]
    fn checkpoint_prune_bounds_resolved_set() {
        let mut s = store_with_balances();
        for i in 0..10u64 {
            s.execute(&Op::Prepare { txid: TxId(i), op: transfer("a", "b", 1) });
            s.execute(&Op::Commit { txid: TxId(i) });
        }
        assert_eq!(s.resolved_count(), 10);
        // First checkpoint: current-epoch entries survive one interval.
        assert_eq!(s.checkpoint_prune(), 0);
        assert_eq!(s.resolved_count(), 10);
        // A late prepare within the protection window is still refused.
        let r = s.execute(&Op::Prepare { txid: TxId(3), op: transfer("a", "b", 1) });
        assert!(matches!(
            r.status,
            ExecStatus::Aborted(AbortReason::AlreadyResolved)
        ));
        // New resolutions land in the new epoch.
        s.execute(&Op::Prepare { txid: TxId(100), op: transfer("a", "b", 1) });
        s.execute(&Op::Commit { txid: TxId(100) });
        // Second checkpoint: the old epoch is pruned (TxId 3 survived as it
        // was re-refused, not re-resolved; the original 10 go, minus any
        // re-tagged ones).
        let pruned = s.checkpoint_prune();
        assert_eq!(pruned, 10);
        assert_eq!(s.resolved_count(), 1);
    }

    #[test]
    fn sidecar_round_trip() {
        let mut s = store_with_balances();
        s.execute(&Op::Prepare { txid: TxId(1), op: transfer("a", "b", 30) });
        s.execute(&Op::Prepare { txid: TxId(9), op: transfer("b", "a", 1) });
        s.execute(&Op::Abort { txid: TxId(9) });
        let sidecar = s.export_sidecar();
        assert!(sidecar.wire_size() > 32);

        // A synced replica rebuilds content from verified chunks, then
        // installs the sidecar — and can decide the in-flight transaction.
        let mut synced =
            StateStore::from_entries(s.iter().map(|(k, v)| (k.clone(), v.clone())).collect());
        assert_eq!(synced.state_digest(), s.state_digest());
        synced.install_sidecar(&sidecar);
        assert_eq!(synced.pending_count(), 1);
        let r = synced.execute(&Op::Commit { txid: TxId(1) });
        assert!(r.status.is_committed());
        assert_eq!(synced.get_int("a"), 70);
        // The replayed decision for the aborted tx is refused.
        let r2 = synced.execute(&Op::Prepare { txid: TxId(9), op: transfer("b", "a", 1) });
        assert!(matches!(
            r2.status,
            ExecStatus::Aborted(AbortReason::AlreadyResolved)
        ));
    }

    #[test]
    fn delete_mutation() {
        let mut s = store_with_balances();
        s.execute(&Op::Direct {
            txid: TxId(1),
            op: StateOp {
                conditions: vec![Condition::Exists("a".into())],
                mutations: vec![("a".into(), Mutation::Delete)],
            },
        });
        assert!(s.get("a").is_none());
        // Exists guard now fails.
        let r = s.execute(&Op::Direct {
            txid: TxId(2),
            op: StateOp {
                conditions: vec![Condition::Exists("a".into())],
                mutations: vec![],
            },
        });
        assert!(!r.status.is_committed());
    }

    #[test]
    fn prepare_lock_acquisition_is_all_or_nothing() {
        // tx1 locks "b"; tx2 then prepares over ["a", "b"]: the conflict
        // on "b" must leave no trace of "a"'s lock — a leaked L_a would be
        // invisible to the 2PC watchdog (no pending entry records it).
        // All checks run before any marker is written, so the failure is
        // a perfect no-op on root and write accounting.
        let mut s = store_with_balances();
        s.execute(&Op::Prepare {
            txid: TxId(1),
            op: StateOp {
                conditions: vec![],
                mutations: vec![("b".into(), Mutation::Add(1))],
            },
        });
        let root = s.state_digest();
        let bytes = s.take_write_bytes();
        let r = s.execute(&Op::Prepare { txid: TxId(2), op: transfer("a", "b", 10) });
        assert!(matches!(
            r.status,
            ExecStatus::Aborted(AbortReason::LockConflict(ref k)) if k == "b"
        ));
        assert!(!s.is_locked("a"), "mid-set lock must be released on conflict");
        assert!(s.is_locked("b"), "the conflicting holder keeps its lock");
        assert_eq!(s.pending_count(), 1);
        assert_eq!(s.state_digest(), root, "failed prepare must not move the root");
        assert_eq!(s.take_write_bytes(), 0, "failed prepare must not charge writes");
        let _ = bytes;
    }

    #[test]
    fn failed_condition_rolls_back_acquired_locks() {
        // Every key checks lock-free, then a guard fails: no lock marker
        // and no write-byte charge may survive the rejected prepare.
        let mut s = store_with_balances();
        s.take_write_bytes();
        let r = s.execute(&Op::Prepare { txid: TxId(1), op: transfer("a", "b", 500) });
        assert!(matches!(
            r.status,
            ExecStatus::Aborted(AbortReason::ConditionFailed(_))
        ));
        assert!(!s.is_locked("a"));
        assert!(!s.is_locked("b"));
        assert_eq!(s.pending_count(), 0);
        assert_eq!(s.take_write_bytes(), 0);
    }

    #[test]
    fn sidecar_export_is_insertion_order_independent() {
        // Two stores reach identical pending/resolved content through
        // different insertion orders; their hash maps iterate differently,
        // but the exported sidecar (whose encoding feeds durable manifests
        // and sync transfers) must serialize to identical bytes.
        let build = |txids: &[u64]| {
            let mut s = StateStore::new();
            for i in 0..64u64 {
                s.put(format!("k{i}"), Value::Int(100));
            }
            for &t in txids {
                let key = format!("k{t}");
                s.execute(&Op::Prepare {
                    txid: TxId(t),
                    op: StateOp {
                        conditions: vec![],
                        mutations: vec![(key, Mutation::Add(1))],
                    },
                });
            }
            // Resolve half of them (odd ids) so `resolved` is populated.
            for &t in txids {
                if t % 2 == 1 {
                    s.execute(&Op::Commit { txid: TxId(t) });
                }
            }
            s
        };
        let fwd: Vec<u64> = (0..64).collect();
        let rev: Vec<u64> = (0..64).rev().collect();
        let a = build(&fwd);
        let b = build(&rev);
        let encode = |s: &StateStore| {
            let mut w = ahl_wal::codec::Writer::new();
            s.export_sidecar().encode(&mut w);
            w.into_bytes()
        };
        assert_eq!(a.state_digest(), b.state_digest());
        assert_eq!(encode(&a), encode(&b), "sidecar bytes must be canonical");
    }

    #[test]
    fn plan_apply_equals_execute_on_lifecycle() {
        // Spot checks of the plan/apply ≡ execute invariant across every
        // op variant (the proptest below randomizes the sequence).
        let ops = [
            Op::Direct { txid: TxId(1), op: transfer("a", "b", 10) },
            Op::Prepare { txid: TxId(2), op: transfer("a", "b", 5) },
            Op::Commit { txid: TxId(2) },
            Op::Prepare { txid: TxId(3), op: transfer("b", "a", 7) },
            Op::Abort { txid: TxId(3) },
            Op::Commit { txid: TxId(99) },           // NoPendingTx
            Op::Abort { txid: TxId(98) },            // lock-free abort
            Op::Prepare { txid: TxId(3), op: transfer("b", "a", 7) }, // AlreadyResolved
            Op::Read { txid: TxId(4), keys: vec!["a".into(), "missing".into()] },
            Op::Direct { txid: TxId(5), op: transfer("a", "b", 100_000) }, // ConditionFailed
            Op::Noop,
        ];
        let mut via_exec = store_with_balances();
        let mut via_plan = store_with_balances();
        for op in &ops {
            let r1 = via_exec.execute(op);
            let plan = via_plan.plan(op);
            let r2 = via_plan.apply_plan(plan);
            assert_eq!(r1, r2, "op {op:?}");
            assert_eq!(via_exec.state_digest(), via_plan.state_digest(), "op {op:?}");
            assert_eq!(via_exec.pending_count(), via_plan.pending_count());
            assert_eq!(via_exec.resolved_count(), via_plan.resolved_count());
        }
        assert_eq!(via_exec.take_write_bytes(), via_plan.take_write_bytes());
    }

    proptest::proptest! {
        /// `apply_plan(plan(op)) ≡ execute(op)` over random op sequences:
        /// same receipts, same root, same bookkeeping, same write bytes.
        #[test]
        fn plan_matches_execute(
            steps in proptest::collection::vec((0u8..5, 0usize..4, 0usize..4, 1i64..50), 1..60)
        ) {
            let accounts = ["w", "x", "y", "z"];
            let mut via_exec = StateStore::new();
            let mut via_plan = StateStore::new();
            for a in accounts {
                via_exec.put(a.into(), Value::Int(1000));
                via_plan.put(a.into(), Value::Int(1000));
            }
            let mut open: Vec<TxId> = Vec::new();
            for (next_tx, (kind, from, to, amt)) in steps.into_iter().enumerate() {
                let txid = TxId(next_tx as u64);
                let op = match kind {
                    0 => Op::Prepare { txid, op: transfer(accounts[from], accounts[to], amt) },
                    1 => match open.pop() {
                        Some(t) => Op::Commit { txid: t },
                        None => Op::Commit { txid: TxId(9999) },
                    },
                    2 => match open.pop() {
                        Some(t) => Op::Abort { txid: t },
                        None => Op::Abort { txid: TxId(9998) },
                    },
                    3 => Op::Read {
                        txid,
                        keys: vec![accounts[from].into(), accounts[to].into()],
                    },
                    _ => Op::Direct { txid, op: transfer(accounts[from], accounts[to], amt) },
                };
                let r1 = via_exec.execute(&op);
                let plan = via_plan.plan(&op);
                let r2 = via_plan.apply_plan(plan);
                if matches!(op, Op::Prepare { .. }) && r1.status.is_committed() {
                    open.push(txid);
                }
                proptest::prop_assert_eq!(r1, r2);
                proptest::prop_assert_eq!(
                    via_exec.state_digest(), via_plan.state_digest()
                );
                proptest::prop_assert_eq!(
                    via_exec.take_write_bytes(), via_plan.take_write_bytes()
                );
            }
        }

        /// Atomicity invariant: a sequence of random transfers through
        /// prepare/commit/abort conserves the total balance.
        #[test]
        fn conservation_of_funds(
            steps in proptest::collection::vec((0u8..4, 0usize..4, 0usize..4, 1i64..50), 1..60)
        ) {
            let accounts = ["w", "x", "y", "z"];
            let mut s = StateStore::new();
            for a in accounts {
                s.put(a.into(), Value::Int(1000));
            }
            let mut next_tx = 0u64;
            let mut open: Vec<TxId> = Vec::new();
            for (kind, from, to, amt) in steps {
                match kind {
                    0 => {
                        let txid = TxId(next_tx);
                        next_tx += 1;
                        let op = transfer(accounts[from], accounts[to], amt);
                        if s.execute(&Op::Prepare { txid, op }).status.is_committed() {
                            open.push(txid);
                        }
                    }
                    1 => {
                        if let Some(txid) = open.pop() {
                            s.execute(&Op::Commit { txid });
                        }
                    }
                    2 => {
                        if let Some(txid) = open.pop() {
                            s.execute(&Op::Abort { txid });
                        }
                    }
                    _ => {
                        let txid = TxId(next_tx);
                        next_tx += 1;
                        let op = transfer(accounts[from], accounts[to], amt);
                        s.execute(&Op::Direct { txid, op });
                    }
                }
            }
            // Resolve the rest.
            for txid in open {
                s.execute(&Op::Commit { txid });
            }
            let total: i64 = accounts.iter().map(|a| s.get_int(a)).sum();
            proptest::prop_assert_eq!(total, 4000);
            // And no locks should remain.
            for a in accounts {
                proptest::prop_assert!(!s.is_locked(a));
            }
        }

        /// The SMT root always equals a bulk rebuild of the surviving map:
        /// content-addressed, order-insensitive, across arbitrary op mixes.
        #[test]
        fn root_matches_reference_map(
            steps in proptest::collection::vec((0u8..4, 0usize..4, 0usize..4, 1i64..50), 1..60)
        ) {
            let accounts = ["w", "x", "y", "z"];
            let mut s = StateStore::new();
            for a in accounts {
                s.put(a.into(), Value::Int(1000));
            }
            let mut open: Vec<TxId> = Vec::new();
            for (next_tx, (kind, from, to, amt)) in steps.into_iter().enumerate() {
                let txid = TxId(next_tx as u64);
                match kind {
                    0 => {
                        let op = transfer(accounts[from], accounts[to], amt);
                        if s.execute(&Op::Prepare { txid, op }).status.is_committed() {
                            open.push(txid);
                        }
                    }
                    1 => {
                        if let Some(txid) = open.pop() {
                            s.execute(&Op::Commit { txid });
                        }
                    }
                    2 => {
                        if let Some(txid) = open.pop() {
                            s.execute(&Op::Abort { txid });
                        }
                    }
                    _ => {
                        let op = transfer(accounts[from], accounts[to], amt);
                        s.execute(&Op::Direct { txid, op });
                    }
                }
                let reference = StateStore::from_entries(
                    s.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
                );
                proptest::prop_assert_eq!(reference.state_digest(), s.state_digest());
            }
        }
    }
}
