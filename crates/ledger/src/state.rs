//! The key-value state store with two-phase-locking execution semantics.
//!
//! Implements the execution model of §6.3: locks are ordinary blockchain
//! states under the key `"L_" + key`, prepares stash their write sets as
//! pending state, commits apply them, aborts discard them. Single-shard
//! (`Direct`) transactions abort on locked keys, which is how 2PL isolation
//! manifests without intra-shard concurrency (execution is sequential
//! within a shard — concurrency only arises across shards).

use std::collections::HashMap;

use ahl_crypto::{sha256_parts, Hash};

use crate::types::{
    AbortReason, Condition, ExecStatus, Key, Mutation, Op, Receipt, StateOp, TxId, Value,
};

/// Prefix for lock marker keys, as in the paper ("L_"acc).
pub const LOCK_PREFIX: &str = "L_";

#[derive(Clone, Debug)]
struct PendingTx {
    locks: Vec<Key>,
    mutations: Vec<(Key, Mutation)>,
}

/// The ledger state of one shard.
#[derive(Clone, Debug, Default)]
pub struct StateStore {
    map: HashMap<Key, Value>,
    pending: HashMap<TxId, PendingTx>,
    /// Transactions already committed or aborted here. A PrepareTx that
    /// arrives after its decision (reordered across the network) must be
    /// refused, or its locks would never be released.
    resolved: std::collections::HashSet<TxId>,
    /// Rolling state digest, updated on every applied mutation.
    state_digest: Hash,
}

impl StateStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.map.get(key)
    }

    /// Integer value of a key, treating absent as 0.
    pub fn get_int(&self, key: &str) -> i64 {
        self.map.get(key).and_then(Value::as_int).unwrap_or(0)
    }

    /// Direct write (genesis/state-sync only; transactions go through
    /// [`StateStore::execute`]).
    pub fn put(&mut self, key: Key, value: Value) {
        self.bump_digest(&key, Some(&value));
        self.map.insert(key, value);
    }

    /// Number of live keys (including lock markers).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of transactions currently prepared but not yet resolved.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Iterate all live key-value pairs (post-run inspection, audits).
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &Value)> {
        self.map.iter()
    }

    /// Whether `key` is currently locked by a prepared transaction.
    pub fn is_locked(&self, key: &str) -> bool {
        matches!(self.map.get(&lock_key(key)), Some(Value::Bool(true)))
    }

    /// Rolling digest of all applied state transitions (stands in for a
    /// state-trie root: collision-resistant commitment to the mutation
    /// history, cheap enough to maintain per transaction).
    pub fn state_digest(&self) -> Hash {
        self.state_digest
    }

    fn bump_digest(&mut self, key: &str, value: Option<&Value>) {
        let val_part: Vec<u8> = match value {
            Some(Value::Int(i)) => i.to_be_bytes().to_vec(),
            Some(Value::Bytes(b)) => b.clone(),
            Some(Value::Bool(b)) => vec![*b as u8],
            None => vec![0xde, 0x1e, 0x7e],
        };
        self.state_digest = sha256_parts(&[&self.state_digest.0, key.as_bytes(), &val_part]);
    }

    fn check_conditions(&self, op: &StateOp) -> Result<(), AbortReason> {
        for c in &op.conditions {
            let ok = match c {
                Condition::Exists(k) => self.map.contains_key(k),
                Condition::NotExists(k) => !self.map.contains_key(k),
                Condition::IntAtLeast { key, min } => self.get_int(key) >= *min,
            };
            if !ok {
                return Err(AbortReason::ConditionFailed(c.clone()));
            }
        }
        Ok(())
    }

    fn check_unlocked(&self, op: &StateOp) -> Result<(), AbortReason> {
        for k in op.touched_keys() {
            if self.is_locked(&k) {
                return Err(AbortReason::LockConflict(k));
            }
        }
        Ok(())
    }

    fn apply_mutation(&mut self, key: &Key, m: &Mutation) {
        match m {
            Mutation::Set(v) => {
                self.bump_digest(key, Some(v));
                self.map.insert(key.clone(), v.clone());
            }
            Mutation::Add(d) => {
                let cur = self.get_int(key);
                let v = Value::Int(cur + d);
                self.bump_digest(key, Some(&v));
                self.map.insert(key.clone(), v);
            }
            Mutation::Delete => {
                self.bump_digest(key, None);
                self.map.remove(key);
            }
        }
    }

    /// Execute one transaction operation, returning its receipt.
    pub fn execute(&mut self, op: &Op) -> Receipt {
        let status = match op {
            Op::Direct { op, .. } => self.exec_direct(op),
            Op::Prepare { txid, op } => self.exec_prepare(*txid, op),
            Op::Commit { txid } => self.exec_commit(*txid),
            Op::Abort { txid } => self.exec_abort(*txid),
            Op::Read { keys, .. } => ExecStatus::Committed(
                keys.iter()
                    .map(|k| (k.clone(), self.map.get(k).cloned()))
                    .collect(),
            ),
            Op::Noop => ExecStatus::Committed(vec![]),
        };
        Receipt { txid: op.txid(), status }
    }

    fn exec_direct(&mut self, op: &StateOp) -> ExecStatus {
        if let Err(r) = self.check_unlocked(op) {
            return ExecStatus::Aborted(r);
        }
        if let Err(r) = self.check_conditions(op) {
            return ExecStatus::Aborted(r);
        }
        for (k, m) in &op.mutations {
            self.apply_mutation(k, m);
        }
        ExecStatus::Committed(vec![])
    }

    fn exec_prepare(&mut self, txid: TxId, op: &StateOp) -> ExecStatus {
        if self.pending.contains_key(&txid) {
            return ExecStatus::Aborted(AbortReason::DuplicatePrepare);
        }
        if self.resolved.contains(&txid) {
            return ExecStatus::Aborted(AbortReason::AlreadyResolved);
        }
        if let Err(r) = self.check_unlocked(op) {
            return ExecStatus::Aborted(r);
        }
        if let Err(r) = self.check_conditions(op) {
            return ExecStatus::Aborted(r);
        }
        // Acquire locks: write ⟨L_key, true⟩ to the blockchain state (§6.3).
        let locks = op.touched_keys();
        for k in &locks {
            let lk = lock_key(k);
            let v = Value::Bool(true);
            self.bump_digest(&lk, Some(&v));
            self.map.insert(lk, v);
        }
        self.pending.insert(
            txid,
            PendingTx { locks, mutations: op.mutations.clone() },
        );
        ExecStatus::Committed(vec![])
    }

    fn exec_commit(&mut self, txid: TxId) -> ExecStatus {
        let Some(p) = self.pending.remove(&txid) else {
            return ExecStatus::Aborted(AbortReason::NoPendingTx);
        };
        for (k, m) in &p.mutations {
            self.apply_mutation(k, m);
        }
        self.release_locks(&p.locks);
        self.resolved.insert(txid);
        ExecStatus::Committed(vec![])
    }

    fn exec_abort(&mut self, txid: TxId) -> ExecStatus {
        // Remember the decision so a reordered late PrepareTx is refused.
        self.resolved.insert(txid);
        let Some(p) = self.pending.remove(&txid) else {
            // Aborting an unknown/never-prepared tx still records the
            // decision: the coordinator broadcasts aborts to shards whose
            // prepare may not have executed yet.
            return ExecStatus::Committed(vec![]);
        };
        self.release_locks(&p.locks);
        ExecStatus::Committed(vec![])
    }

    fn release_locks(&mut self, locks: &[Key]) {
        for k in locks {
            let lk = lock_key(k);
            self.bump_digest(&lk, None);
            self.map.remove(&lk);
        }
    }
}

/// The lock marker key for `key` ("L_" + key, §6.3).
pub fn lock_key(key: &str) -> Key {
    format!("{LOCK_PREFIX}{key}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transfer(from: &str, to: &str, amt: i64) -> StateOp {
        StateOp {
            conditions: vec![Condition::IntAtLeast { key: from.into(), min: amt }],
            mutations: vec![
                (from.into(), Mutation::Add(-amt)),
                (to.into(), Mutation::Add(amt)),
            ],
        }
    }

    fn store_with_balances() -> StateStore {
        let mut s = StateStore::new();
        s.put("a".into(), Value::Int(100));
        s.put("b".into(), Value::Int(50));
        s
    }

    #[test]
    fn direct_transfer_applies() {
        let mut s = store_with_balances();
        let r = s.execute(&Op::Direct { txid: TxId(1), op: transfer("a", "b", 30) });
        assert!(r.status.is_committed());
        assert_eq!(s.get_int("a"), 70);
        assert_eq!(s.get_int("b"), 80);
    }

    #[test]
    fn direct_insufficient_funds_aborts() {
        let mut s = store_with_balances();
        let r = s.execute(&Op::Direct { txid: TxId(1), op: transfer("a", "b", 500) });
        assert!(matches!(
            r.status,
            ExecStatus::Aborted(AbortReason::ConditionFailed(_))
        ));
        assert_eq!(s.get_int("a"), 100);
        assert_eq!(s.get_int("b"), 50);
    }

    #[test]
    fn prepare_locks_and_stashes() {
        let mut s = store_with_balances();
        let r = s.execute(&Op::Prepare { txid: TxId(1), op: transfer("a", "b", 30) });
        assert!(r.status.is_committed());
        assert!(s.is_locked("a"));
        assert!(s.is_locked("b"));
        // Balances unchanged until commit.
        assert_eq!(s.get_int("a"), 100);
        assert_eq!(s.pending_count(), 1);
    }

    #[test]
    fn commit_applies_and_unlocks() {
        let mut s = store_with_balances();
        s.execute(&Op::Prepare { txid: TxId(1), op: transfer("a", "b", 30) });
        let r = s.execute(&Op::Commit { txid: TxId(1) });
        assert!(r.status.is_committed());
        assert_eq!(s.get_int("a"), 70);
        assert_eq!(s.get_int("b"), 80);
        assert!(!s.is_locked("a"));
        assert_eq!(s.pending_count(), 0);
    }

    #[test]
    fn abort_discards_and_unlocks() {
        let mut s = store_with_balances();
        s.execute(&Op::Prepare { txid: TxId(1), op: transfer("a", "b", 30) });
        let r = s.execute(&Op::Abort { txid: TxId(1) });
        assert!(r.status.is_committed());
        assert_eq!(s.get_int("a"), 100);
        assert_eq!(s.get_int("b"), 50);
        assert!(!s.is_locked("a"));
    }

    #[test]
    fn conflicting_prepare_rejected() {
        let mut s = store_with_balances();
        s.execute(&Op::Prepare { txid: TxId(1), op: transfer("a", "b", 30) });
        // Second transaction touching "a" must observe the lock (isolation).
        let r = s.execute(&Op::Prepare { txid: TxId(2), op: transfer("a", "b", 10) });
        assert!(matches!(
            r.status,
            ExecStatus::Aborted(AbortReason::LockConflict(_))
        ));
        // Direct transactions also respect locks.
        let r2 = s.execute(&Op::Direct { txid: TxId(3), op: transfer("a", "b", 10) });
        assert!(matches!(
            r2.status,
            ExecStatus::Aborted(AbortReason::LockConflict(_))
        ));
    }

    #[test]
    fn disjoint_prepares_coexist() {
        let mut s = store_with_balances();
        s.put("c".into(), Value::Int(10));
        s.put("d".into(), Value::Int(10));
        let r1 = s.execute(&Op::Prepare { txid: TxId(1), op: transfer("a", "b", 5) });
        let r2 = s.execute(&Op::Prepare { txid: TxId(2), op: transfer("c", "d", 5) });
        assert!(r1.status.is_committed());
        assert!(r2.status.is_committed());
        assert_eq!(s.pending_count(), 2);
    }

    #[test]
    fn commit_without_prepare_aborts() {
        let mut s = StateStore::new();
        let r = s.execute(&Op::Commit { txid: TxId(7) });
        assert!(matches!(
            r.status,
            ExecStatus::Aborted(AbortReason::NoPendingTx)
        ));
    }

    #[test]
    fn abort_without_prepare_is_noop_success() {
        let mut s = StateStore::new();
        let r = s.execute(&Op::Abort { txid: TxId(7) });
        assert!(r.status.is_committed());
    }

    #[test]
    fn duplicate_prepare_rejected() {
        let mut s = store_with_balances();
        s.execute(&Op::Prepare { txid: TxId(1), op: transfer("a", "b", 5) });
        let r = s.execute(&Op::Prepare { txid: TxId(1), op: transfer("a", "b", 5) });
        assert!(matches!(
            r.status,
            ExecStatus::Aborted(AbortReason::DuplicatePrepare)
        ));
    }

    #[test]
    fn read_returns_values() {
        let mut s = store_with_balances();
        let r = s.execute(&Op::Read {
            txid: TxId(1),
            keys: vec!["a".into(), "zz".into()],
        });
        match r.status {
            ExecStatus::Committed(vals) => {
                assert_eq!(vals[0].1, Some(Value::Int(100)));
                assert_eq!(vals[1].1, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn state_digest_changes_with_writes() {
        let mut s = StateStore::new();
        let d0 = s.state_digest();
        s.put("a".into(), Value::Int(1));
        let d1 = s.state_digest();
        assert_ne!(d0, d1);
        s.execute(&Op::Direct {
            txid: TxId(1),
            op: StateOp {
                conditions: vec![],
                mutations: vec![("a".into(), Mutation::Add(1))],
            },
        });
        assert_ne!(s.state_digest(), d1);
    }

    #[test]
    fn digest_deterministic_across_replicas() {
        let build = || {
            let mut s = StateStore::new();
            s.put("a".into(), Value::Int(100));
            s.execute(&Op::Prepare { txid: TxId(1), op: transfer("a", "a2", 3) });
            s.execute(&Op::Commit { txid: TxId(1) });
            s.state_digest()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn delete_mutation() {
        let mut s = store_with_balances();
        s.execute(&Op::Direct {
            txid: TxId(1),
            op: StateOp {
                conditions: vec![Condition::Exists("a".into())],
                mutations: vec![("a".into(), Mutation::Delete)],
            },
        });
        assert!(s.get("a").is_none());
        // Exists guard now fails.
        let r = s.execute(&Op::Direct {
            txid: TxId(2),
            op: StateOp {
                conditions: vec![Condition::Exists("a".into())],
                mutations: vec![],
            },
        });
        assert!(!r.status.is_committed());
    }

    proptest::proptest! {
        /// Atomicity invariant: a sequence of random transfers through
        /// prepare/commit/abort conserves the total balance.
        #[test]
        fn conservation_of_funds(
            steps in proptest::collection::vec((0u8..4, 0usize..4, 0usize..4, 1i64..50), 1..60)
        ) {
            let accounts = ["w", "x", "y", "z"];
            let mut s = StateStore::new();
            for a in accounts {
                s.put(a.into(), Value::Int(1000));
            }
            let mut next_tx = 0u64;
            let mut open: Vec<TxId> = Vec::new();
            for (kind, from, to, amt) in steps {
                match kind {
                    0 => {
                        let txid = TxId(next_tx);
                        next_tx += 1;
                        let op = transfer(accounts[from], accounts[to], amt);
                        if s.execute(&Op::Prepare { txid, op }).status.is_committed() {
                            open.push(txid);
                        }
                    }
                    1 => {
                        if let Some(txid) = open.pop() {
                            s.execute(&Op::Commit { txid });
                        }
                    }
                    2 => {
                        if let Some(txid) = open.pop() {
                            s.execute(&Op::Abort { txid });
                        }
                    }
                    _ => {
                        let txid = TxId(next_tx);
                        next_tx += 1;
                        let op = transfer(accounts[from], accounts[to], amt);
                        s.execute(&Op::Direct { txid, op });
                    }
                }
            }
            // Resolve the rest.
            for txid in open {
                s.execute(&Op::Commit { txid });
            }
            let total: i64 = accounts.iter().map(|a| s.get_int(a)).sum();
            proptest::prop_assert_eq!(total, 4000);
            // And no locks should remain.
            for a in accounts {
                proptest::prop_assert!(!s.is_locked(a));
            }
        }
    }
}
