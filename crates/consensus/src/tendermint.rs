//! Tendermint consensus (Figure 2 baseline).
//!
//! Simplified but structurally faithful: heights proceed in **lockstep**
//! (a new block is proposed only after the previous one commits — the
//! property the paper identifies as Tendermint's scalability limiter,
//! Appendix C.2), proposers rotate round-robin per (height + round),
//! safety uses polka-locking, and liveness uses round timeouts. The
//! `timeout_commit` pause (Tendermint's default 1 s between blocks) is the
//! main throughput cap at small N.
//!
//! Omissions relative to full Tendermint (documented for reviewers):
//! nil-prevotes/nil-precommits are collapsed into round timeouts, and
//! evidence/slashing is absent — neither affects throughput shape in the
//! fault-free Figure 2 setting.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use ahl_crypto::{sha256_parts, Hash};
use ahl_ledger::StateStore;
use ahl_mempool::{Mempool, MempoolConfig};
use ahl_simkit::{Actor, Ctx, MsgClass, NodeId, Phase, Scope, SimDuration};

use crate::adversary::{
    self, commit_digest, Attack, EquivocationTracker, SafetyChecker, VoteAttackPlan,
};
use crate::clients::ClientProtocol;
use crate::common::{stat, Request};

/// Tendermint wire messages.
#[derive(Clone, Debug)]
pub enum TmMsg {
    /// Client → node: new transaction.
    Request(Request),
    /// Node → all: mempool gossip.
    GossipTx(Request),
    /// Proposer → all: block proposal.
    Proposal {
        /// Height.
        height: u64,
        /// Round within the height.
        round: u32,
        /// Batched transactions.
        block: Arc<Vec<Request>>,
        /// Block digest.
        digest: Hash,
        /// Proposer index.
        proposer: usize,
    },
    /// Prevote for a digest.
    Prevote {
        /// Height.
        height: u64,
        /// Round.
        round: u32,
        /// Voted digest.
        digest: Hash,
        /// Voter index.
        replica: usize,
    },
    /// Precommit for a digest.
    Precommit {
        /// Height.
        height: u64,
        /// Round.
        round: u32,
        /// Voted digest.
        digest: Hash,
        /// Voter index.
        replica: usize,
    },
    /// Execution acknowledgement to the client.
    Reply {
        /// Request id.
        req_id: u64,
        /// Commit status.
        committed: bool,
    },
}

impl TmMsg {
    /// Queue class (Tendermint uses one reactor per channel; we model the
    /// consensus channel as higher-integrity like HL's).
    pub fn class(&self) -> MsgClass {
        match self {
            TmMsg::Request(_) | TmMsg::GossipTx(_) | TmMsg::Reply { .. } => MsgClass::REQUEST,
            _ => MsgClass::CONSENSUS,
        }
    }

    /// Approximate wire size.
    pub fn wire_size(&self) -> usize {
        match self {
            TmMsg::Request(r) | TmMsg::GossipTx(r) => 250 + r.op.wire_size(),
            TmMsg::Proposal { block, .. } => {
                120 + block.iter().map(|r| 64 + r.op.wire_size()).sum::<usize>()
            }
            TmMsg::Prevote { .. } | TmMsg::Precommit { .. } => 120,
            TmMsg::Reply { .. } => 100,
        }
    }
}

impl ClientProtocol for TmMsg {
    fn make_request(req: Request) -> Self {
        TmMsg::Request(req)
    }
    fn reply_id(&self) -> Option<u64> {
        match self {
            TmMsg::Reply { req_id, .. } => Some(*req_id),
            _ => None,
        }
    }
}

/// Tendermint node configuration.
#[derive(Clone, Debug)]
pub struct TmConfig {
    /// Committee size (N = 3f + 1 tolerance).
    pub n: usize,
    /// Maximum transactions per block.
    pub max_block_txns: usize,
    /// Pause after a commit before the next proposal (`timeout_commit`,
    /// Tendermint default 1 s).
    pub timeout_commit: SimDuration,
    /// Round timeout before moving to the next proposer.
    pub timeout_round: SimDuration,
    /// Signature creation cost.
    pub sign_cost: SimDuration,
    /// Signature verification cost.
    pub verify_cost: SimDuration,
    /// RPC ingest cost per transaction.
    pub ingest_cost: SimDuration,
    /// Execution cost per state access (tm-bench's KV app is in-memory).
    pub exec_cost_per_op: SimDuration,
    /// Per-node transaction pool (capacity + admission policy).
    pub mempool: MempoolConfig,
    /// Pool eviction/ordering seed (set per node by `build_tm_group` so
    /// it derives from the run seed).
    pub pool_seed: u64,
    /// Number of Byzantine validators (the highest indices).
    pub byzantine: usize,
    /// What the Byzantine validators do (see [`Attack`]; equivocation
    /// fires whenever a Byzantine validator's turn as proposer comes up).
    pub attack: Attack,
    /// Global safety oracle honest validators report commits into.
    pub safety: Option<SafetyChecker>,
    /// This committee's id in the checker's records.
    pub committee_id: usize,
    /// Worker threads for block execution (`1` = the sequential loop;
    /// above that the batch goes through the deterministic conflict-aware
    /// engine with byte-identical results).
    pub exec_workers: usize,
    /// Re-derive every cached hash of the authenticated index across the
    /// worker pool every this-many committed heights when
    /// `exec_workers > 1` (the same paranoia audit PBFT runs at each
    /// checkpoint; Tendermint has no checkpoint machinery, so the
    /// cadence is its own knob).
    pub audit_interval: u64,
}

impl TmConfig {
    /// Defaults matching the Figure 2 comparison.
    pub fn new(n: usize) -> Self {
        TmConfig {
            n,
            max_block_txns: 1000,
            timeout_commit: SimDuration::from_secs(1),
            timeout_round: SimDuration::from_secs(3),
            sign_cost: SimDuration::from_micros(150),
            verify_cost: SimDuration::from_micros(200),
            ingest_cost: SimDuration::from_millis(1),
            exec_cost_per_op: SimDuration::from_micros(20),
            mempool: MempoolConfig::default(),
            pool_seed: 0,
            byzantine: 0,
            attack: Attack::default(),
            safety: None,
            committee_id: 0,
            exec_workers: 1,
            audit_interval: 128,
        }
    }

    /// Byzantine quorum (2f + 1).
    pub fn quorum(&self) -> usize {
        2 * ((self.n.saturating_sub(1)) / 3) + 1
    }

    /// Whether validator `i` is Byzantine (highest indices).
    pub fn is_byzantine(&self, i: usize) -> bool {
        self.byzantine > 0 && i >= self.n - self.byzantine
    }
}

const TIMER_ROUND: u64 = 1;
const TIMER_COMMIT: u64 = 2;

type RoundKey = (u64, u32);

/// A Tendermint validator.
pub struct TmNode {
    cfg: TmConfig,
    group: Vec<NodeId>,
    me: usize,
    reporter: bool,

    height: u64,
    round: u32,
    locked: Option<(u32, Hash, Arc<Vec<Request>>)>,
    proposal: Option<(Hash, Arc<Vec<Request>>)>,
    /// Proposals for rounds we have not entered yet (nodes run at slightly
    /// different heights; real Tendermint buffers and gossips).
    proposal_buf: HashMap<RoundKey, (Hash, Arc<Vec<Request>>)>,
    prevotes: HashMap<RoundKey, HashMap<Hash, HashSet<usize>>>,
    precommits: HashMap<RoundKey, HashMap<Hash, HashSet<usize>>>,
    sent_prevote: HashSet<RoundKey>,
    sent_precommit: HashSet<RoundKey>,
    round_epoch: u64,
    /// Between a commit and the timeout_commit expiry: no proposing.
    waiting_commit: bool,

    pool: Mempool<Request>,
    executed: HashSet<u64>,
    state: StateStore,

    byzantine: bool,
    /// Stale-replay attack state: previous (prevote, precommit).
    stale_votes: [Option<TmMsg>; 2],
    /// Equivocation-collusion state (shared double-signing bookkeeping).
    byz_equiv: EquivocationTracker,
}

impl TmNode {
    /// Create a validator with group index `me`.
    pub fn new(cfg: TmConfig, group: Vec<NodeId>, me: usize, reporter: bool) -> Self {
        let pool = Mempool::new(cfg.mempool.clone(), cfg.pool_seed ^ me as u64);
        TmNode {
            byzantine: cfg.is_byzantine(me),
            stale_votes: [None, None],
            byz_equiv: EquivocationTracker::new(),
            cfg,
            group,
            me,
            reporter,
            height: 1,
            round: 0,
            locked: None,
            proposal: None,
            proposal_buf: HashMap::new(),
            prevotes: HashMap::new(),
            precommits: HashMap::new(),
            sent_prevote: HashSet::new(),
            sent_precommit: HashSet::new(),
            round_epoch: 0,
            waiting_commit: false,
            pool,
            executed: HashSet::new(),
            state: StateStore::new(),
        }
    }

    /// Current height (post-run inspection).
    pub fn height(&self) -> u64 {
        self.height
    }

    /// Current round (post-run inspection).
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Debug snapshot: (has proposal, locked, buffered proposals,
    /// max precommit votes seen for the current height, waiting_commit).
    pub fn debug_snapshot(&self) -> (bool, bool, usize, usize, bool) {
        let max_pc = self
            .precommits
            .iter()
            .filter(|((h, _), _)| *h == self.height)
            .flat_map(|(_, by)| by.values().map(|v| v.len()))
            .max()
            .unwrap_or(0);
        (
            self.proposal.is_some(),
            self.locked.is_some(),
            self.proposal_buf.len(),
            max_pc,
            self.waiting_commit,
        )
    }

    fn proposer(&self, height: u64, round: u32) -> usize {
        ((height + round as u64) % self.cfg.n as u64) as usize
    }

    fn others(&self) -> Vec<NodeId> {
        let mine = self.group[self.me];
        self.group.iter().copied().filter(|&g| g != mine).collect()
    }

    fn charge(&self, ctx: &mut Ctx<'_, TmMsg>, d: SimDuration) {
        ctx.consume_cpu(d);
        ctx.stats().inc(stat::CONSENSUS_CPU_NS, d.as_nanos());
    }

    fn enter_round(&mut self, ctx: &mut Ctx<'_, TmMsg>) {
        // Keep the previous round's proposal: a precommit quorum for it may
        // still arrive (Tendermint's commit rule is round-agnostic).
        if let Some((d, b)) = self.proposal.take() {
            self.proposal_buf.entry((self.height, self.round)).or_insert((d, b));
        }
        self.waiting_commit = false;
        self.round_epoch += 1;
        let epoch = self.round_epoch;
        ctx.set_timer(self.cfg.timeout_round, TIMER_ROUND | (epoch << 8));
        // Adopt a buffered proposal for this round, if one arrived early.
        let key = (self.height, self.round);
        if let Some((digest, block)) = self.proposal_buf.remove(&key) {
            self.proposal = Some((digest, block));
            self.broadcast_prevote(digest, ctx);
        }
        if self.proposer(self.height, self.round) == self.me && self.proposal.is_none() {
            self.propose(ctx);
        }
        self.recheck_votes(ctx);
    }

    /// Re-evaluate buffered votes for the current (height, round): quorums
    /// may already exist from messages that arrived while we lagged.
    fn recheck_votes(&mut self, ctx: &mut Ctx<'_, TmMsg>) {
        let key = (self.height, self.round);
        if let Some(by_digest) = self.prevotes.get(&key) {
            let ready: Vec<Hash> = by_digest
                .iter()
                .filter(|(_, votes)| votes.len() >= self.cfg.quorum())
                .map(|(d, _)| *d)
                .collect();
            for d in ready {
                self.record_prevote(key, d, self.me, ctx);
            }
        }
        self.try_commit_any_round(ctx);
    }

    /// Tendermint's commit rule is round-agnostic: 2f+1 precommits for a
    /// block at *any* round of the current height commit it (a node that
    /// moved past the deciding round must still be able to commit).
    fn try_commit_any_round(&mut self, ctx: &mut Ctx<'_, TmMsg>) {
        let h = self.height;
        let quorum = self.cfg.quorum();
        let mut decided: Option<(Hash, u32)> = None;
        for ((hh, r), by_digest) in &self.precommits {
            if *hh != h {
                continue;
            }
            for (d, votes) in by_digest {
                if votes.len() >= quorum {
                    decided = Some((*d, *r));
                    break;
                }
            }
            if decided.is_some() {
                break;
            }
        }
        let Some((digest, round)) = decided else { return };
        let block = match (&self.proposal, &self.locked) {
            (Some((d, b)), _) if *d == digest => Some(b.clone()),
            (_, Some((_, d, b))) if *d == digest => Some(b.clone()),
            _ => {
                let _ = round;
                // Any stashed proposal at this height with the right digest.
                self.proposal_buf
                    .iter()
                    .find(|((hh, _), (d, _))| *hh == h && *d == digest)
                    .map(|(_, (_, b))| b.clone())
            }
        };
        if let Some(block) = block {
            self.commit(block, ctx);
        }
    }

    /// Double-sign equivocation (proposer side): two conflicting blocks
    /// for the same (height, round), the lower digest to committee half 0
    /// and the higher to half 1, both to Byzantine colleagues — plus the
    /// proposer's own per-half prevotes/precommits. With the colluders'
    /// echoes this forks the chain exactly when f > ⌊(n−1)/3⌋.
    fn equivocate_propose(&mut self, block: Arc<Vec<Request>>, ctx: &mut Ctx<'_, TmMsg>) {
        let (height, round, me) = (self.height, self.round, self.me);
        self.charge(ctx, self.cfg.sign_cost);
        let (group, cfg) = (&self.group, &self.cfg);
        adversary::equivocate_propose(
            block,
            |b| block_digest(height, round, b),
            cfg.n,
            me,
            |g| cfg.is_byzantine(g),
            |g, digest, blk| {
                let peer = group[g];
                ctx.send(
                    peer,
                    TmMsg::Proposal { height, round, block: blk.clone(), digest, proposer: me },
                );
                ctx.send(peer, TmMsg::Prevote { height, round, digest, replica: me });
                ctx.send(peer, TmMsg::Precommit { height, round, digest, replica: me });
            },
        );
    }

    /// Double-sign equivocation (colluding voter side): echo prevotes and
    /// precommits for every proposal seen at a slot, each to the half its
    /// digest rank assigns.
    fn equivocate_echo(&mut self, height: u64, round: u32, digest: Hash, ctx: &mut Ctx<'_, TmMsg>) {
        let Some(targets) = adversary::equivocation_echo_targets(
            &mut self.byz_equiv,
            height,
            round,
            digest,
            self.cfg.n,
            self.me,
        ) else {
            return;
        };
        self.charge(ctx, self.cfg.sign_cost);
        let me = self.me;
        let targets: Vec<NodeId> = targets.into_iter().map(|g| self.group[g]).collect();
        ctx.multicast(targets.clone(), TmMsg::Prevote { height, round, digest, replica: me });
        ctx.multicast(targets, TmMsg::Precommit { height, round, digest, replica: me });
    }

    /// Byzantine vote emission, dispatched by the configured [`Attack`]
    /// through the shared [`adversary::byzantine_vote`] planner.
    fn byzantine_vote(&mut self, prevote: bool, digest: Hash, ctx: &mut Ctx<'_, TmMsg>) {
        let (height, round, me) = (self.height, self.round, self.me);
        let make = |digest: Hash| {
            if prevote {
                TmMsg::Prevote { height, round, digest, replica: me }
            } else {
                TmMsg::Precommit { height, round, digest, replica: me }
            }
        };
        let plan = adversary::byzantine_vote(
            self.cfg.attack,
            &mut self.stale_votes,
            prevote,
            digest,
            self.cfg.n,
            me,
            make,
        );
        match plan {
            VoteAttackPlan::Silent | VoteAttackPlan::Replay(None) => {}
            VoteAttackPlan::Replay(Some(stale)) => {
                ctx.stats().inc("adv.stale_replays", 1);
                self.charge(ctx, self.cfg.sign_cost);
                ctx.multicast(self.others(), stale);
            }
            VoteAttackPlan::Corrupt(votes) => {
                self.charge(ctx, self.cfg.sign_cost);
                for (g, vote) in votes {
                    ctx.send(self.group[g], vote);
                }
            }
        }
    }

    fn propose(&mut self, ctx: &mut Ctx<'_, TmMsg>) {
        if self.waiting_commit {
            return;
        }
        let block: Arc<Vec<Request>> = if let Some((_, _, b)) = &self.locked {
            b.clone()
        } else {
            let now = ctx.now();
            Arc::new(self.pool.take_batch(
                self.cfg.max_block_txns,
                usize::MAX,
                now,
                ctx.stats(),
            ))
        };
        if block.is_empty() {
            // Nothing to propose: empty blocks are skipped (tm-bench mode);
            // the round timer will re-trigger.
            return;
        }
        if self.byzantine && self.cfg.attack == Attack::Equivocate {
            self.equivocate_propose(block, ctx);
            return;
        }
        for r in block.iter() {
            ctx.trace(r.id, Phase::Propose);
        }
        let digest = block_digest(self.height, self.round, &block);
        self.charge(ctx, self.cfg.sign_cost);
        let msg = TmMsg::Proposal {
            height: self.height,
            round: self.round,
            block: block.clone(),
            digest,
            proposer: self.me,
        };
        ctx.multicast(self.others(), msg);
        self.proposal = Some((digest, block));
        self.broadcast_prevote(digest, ctx);
    }

    fn broadcast_prevote(&mut self, digest: Hash, ctx: &mut Ctx<'_, TmMsg>) {
        let key = (self.height, self.round);
        if !self.sent_prevote.insert(key) {
            return;
        }
        // Locked validators prevote their lock.
        let digest = match &self.locked {
            Some((_, d, _)) => *d,
            None => digest,
        };
        if self.byzantine {
            self.byzantine_vote(true, digest, ctx);
            return;
        }
        self.charge(ctx, self.cfg.sign_cost);
        let msg = TmMsg::Prevote {
            height: self.height,
            round: self.round,
            digest,
            replica: self.me,
        };
        ctx.multicast(self.others(), msg);
        self.record_prevote(key, digest, self.me, ctx);
    }

    fn record_prevote(&mut self, key: RoundKey, digest: Hash, who: usize, ctx: &mut Ctx<'_, TmMsg>) {
        let votes = self.prevotes.entry(key).or_default().entry(digest).or_default();
        votes.insert(who);
        let polka = votes.len() >= self.cfg.quorum();
        if polka && key == (self.height, self.round) {
            // Lock on the polka block if we have it.
            if let Some((d, b)) = &self.proposal {
                if *d == digest {
                    self.locked = Some((self.round, digest, b.clone()));
                }
            }
            self.broadcast_precommit(digest, ctx);
        }
    }

    fn broadcast_precommit(&mut self, digest: Hash, ctx: &mut Ctx<'_, TmMsg>) {
        let key = (self.height, self.round);
        if !self.sent_precommit.insert(key) {
            return;
        }
        if self.byzantine {
            self.byzantine_vote(false, digest, ctx);
            return;
        }
        self.charge(ctx, self.cfg.sign_cost);
        let msg = TmMsg::Precommit {
            height: self.height,
            round: self.round,
            digest,
            replica: self.me,
        };
        ctx.multicast(self.others(), msg);
        self.record_precommit(key, digest, self.me, ctx);
    }

    fn record_precommit(&mut self, key: RoundKey, digest: Hash, who: usize, ctx: &mut Ctx<'_, TmMsg>) {
        let votes = self.precommits.entry(key).or_default().entry(digest).or_default();
        votes.insert(who);
        if votes.len() >= self.cfg.quorum() && key == (self.height, self.round) {
            let block = match (&self.proposal, &self.locked) {
                (Some((d, b)), _) if *d == digest => Some(b.clone()),
                (_, Some((_, d, b))) if *d == digest => Some(b.clone()),
                _ => None,
            };
            if let Some(block) = block {
                self.commit(block, ctx);
            }
        }
    }

    fn commit(&mut self, block: Arc<Vec<Request>>, ctx: &mut Ctx<'_, TmMsg>) {
        let _prof = ahl_telemetry::Profiler::span("tendermint.exec");
        let mut committed = 0u64;
        let mut weight = 0usize;
        let checker = if self.byzantine { None } else { self.cfg.safety.clone() };
        // Pre-pass admission, conflict-aware batch execution, post-pass
        // observation — same canonical order and outputs as the old
        // per-request loop (`exec_workers <= 1` is that loop).
        let mut fresh = Vec::with_capacity(block.len());
        for req in block.iter() {
            if !self.executed.insert(req.id) {
                continue;
            }
            self.pool.remove(req.id);
            weight += req.op.weight();
            fresh.push(req);
        }
        let ops: Vec<&ahl_ledger::Op> = fresh.iter().map(|r| &r.op).collect();
        let outcomes = ahl_ledger::execute_ops(&mut self.state, &ops, self.cfg.exec_workers);
        for (req, outcome) in fresh.iter().zip(outcomes) {
            let had_pending = outcome.had_pending;
            let receipt = outcome.receipt;
            if let Some(ck) = &checker {
                ck.observe_exec(
                    self.cfg.committee_id,
                    self.me,
                    req.id,
                    &req.op,
                    had_pending,
                    receipt.status.is_committed(),
                );
            }
            ctx.trace(req.id, Phase::Exec);
            if receipt.status.is_committed() {
                committed += 1;
            }
            if self.reporter {
                let lat = ctx.now().since(req.submitted);
                let scope = Scope::committee(self.cfg.committee_id);
                ctx.stats().record_latency_scoped(stat::TXN_LATENCY, scope, lat);
            }
        }
        if let Some(ck) = &checker {
            let digest = commit_digest(block.iter().map(|r| r.id));
            ck.record_commit(self.cfg.committee_id, self.height, digest);
        }
        let exec = self.cfg.exec_cost_per_op.saturating_mul(weight as u64);
        ctx.consume_cpu(exec);
        ctx.stats().inc(stat::EXEC_CPU_NS, exec.as_nanos());
        if self.reporter {
            let now = ctx.now();
            let scope = Scope::committee(self.cfg.committee_id);
            ctx.stats().inc_scoped(stat::TXN_COMMITTED, scope, committed);
            ctx.stats().inc_scoped(stat::BLOCKS_COMMITTED, scope, 1);
            ctx.stats().record_point(stat::COMMIT_SERIES, now, committed as f64);
        }
        // Advance height; lockstep: wait timeout_commit before next round.
        self.height += 1;
        // Parallel-execution paranoia, mirroring the PBFT checkpoint-time
        // audit: periodically re-derive every cached hash of the
        // authenticated index across the worker pool and compare. Proven
        // equivalent to sequential execution, so a hit means engine
        // corruption — count it loudly, don't mask it.
        if self.cfg.exec_workers > 1
            && self.cfg.audit_interval > 0
            && self.height.is_multiple_of(self.cfg.audit_interval)
            && !self.state.rehash_audit(self.cfg.exec_workers)
        {
            ctx.stats().inc(stat::CKPT_AUDIT_FAILURES, 1);
        }
        self.round = 0;
        self.locked = None;
        self.proposal = None;
        let h = self.height;
        self.prevotes.retain(|(hh, _), _| *hh >= h);
        self.precommits.retain(|(hh, _), _| *hh >= h);
        self.sent_prevote.retain(|(hh, _)| *hh >= h);
        self.sent_precommit.retain(|(hh, _)| *hh >= h);
        self.proposal_buf.retain(|(hh, _), _| *hh >= h);
        self.round_epoch += 1;
        self.waiting_commit = true;
        ctx.set_timer(self.cfg.timeout_commit, TIMER_COMMIT | (self.round_epoch << 8));
    }

    fn pool_tx(&mut self, req: Request, ctx: &mut Ctx<'_, TmMsg>) {
        if self.executed.contains(&req.id) {
            return;
        }
        let now = ctx.now();
        let _ = self.pool.insert(req, now, ctx.stats());
    }
}

fn block_digest(height: u64, round: u32, block: &[Request]) -> Hash {
    let mut parts: Vec<Vec<u8>> = vec![
        b"tm-block".to_vec(),
        height.to_be_bytes().to_vec(),
        round.to_be_bytes().to_vec(),
    ];
    for r in block {
        parts.push(r.id.to_be_bytes().to_vec());
    }
    let refs: Vec<&[u8]> = parts.iter().map(Vec::as_slice).collect();
    sha256_parts(&refs)
}

impl Actor for TmNode {
    type Msg = TmMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, TmMsg>) {
        self.enter_round(ctx);
    }

    fn on_message(&mut self, _from: NodeId, msg: TmMsg, ctx: &mut Ctx<'_, TmMsg>) {
        match msg {
            TmMsg::Request(req) => {
                self.charge(ctx, self.cfg.ingest_cost);
                // Client-facing ingest on the contacted replica only (the
                // gossip fan-out below doesn't re-stamp), so the liveness
                // oracle sees each request admitted exactly once.
                ctx.trace(req.id, Phase::Ingest);
                ctx.multicast(self.others(), TmMsg::GossipTx(req.clone()));
                let id = req.id;
                self.pool_tx(req, ctx);
                ctx.trace(id, Phase::Admit);
                // A proposer idling on an empty pool proposes as soon as
                // transactions show up.
                if self.proposer(self.height, self.round) == self.me && self.proposal.is_none() {
                    self.propose(ctx);
                }
            }
            TmMsg::GossipTx(req) => {
                self.charge(ctx, self.cfg.verify_cost);
                self.pool_tx(req, ctx);
                if self.proposer(self.height, self.round) == self.me && self.proposal.is_none() {
                    self.propose(ctx);
                }
            }
            TmMsg::Proposal { height, round, block, digest, proposer } => {
                if height < self.height || proposer != self.proposer(height, round) {
                    return;
                }
                self.charge(ctx, self.cfg.verify_cost);
                // A colluding equivocator first emits its two-faced echo
                // votes, then keeps processing like everyone else — it
                // must track the committee's height (via the observed
                // quorums) or its own proposer turns would equivocate at
                // a stale height nobody accepts. Its honest-path votes
                // stay suppressed by `byzantine_vote`.
                if self.byzantine && self.cfg.attack == Attack::Equivocate {
                    self.equivocate_echo(height, round, digest, ctx);
                }
                if (height, round) == (self.height, self.round) {
                    self.proposal = Some((digest, block));
                    self.broadcast_prevote(digest, ctx);
                    self.recheck_votes(ctx);
                } else {
                    // Buffer proposals we have not caught up to yet.
                    self.proposal_buf.insert((height, round), (digest, block));
                }
            }
            TmMsg::Prevote { height, round, digest, replica } => {
                if height < self.height {
                    return;
                }
                self.charge(ctx, self.cfg.verify_cost);
                self.prevotes.entry((height, round)).or_default().entry(digest).or_default().insert(replica);
                if (height, round) == (self.height, self.round) {
                    self.record_prevote((height, round), digest, replica, ctx);
                }
            }
            TmMsg::Precommit { height, round, digest, replica } => {
                if height < self.height {
                    return;
                }
                self.charge(ctx, self.cfg.verify_cost);
                self.precommits.entry((height, round)).or_default().entry(digest).or_default().insert(replica);
                if (height, round) == (self.height, self.round) {
                    self.record_precommit((height, round), digest, replica, ctx);
                } else if height == self.height {
                    self.try_commit_any_round(ctx);
                }
            }
            TmMsg::Reply { .. } => {}
        }
    }

    fn on_timer(&mut self, kind: u64, ctx: &mut Ctx<'_, TmMsg>) {
        let epoch = kind >> 8;
        if epoch != self.round_epoch {
            return; // stale timer from an earlier round
        }
        match kind & 0xff {
            TIMER_ROUND => {
                // No commit this round: rotate proposer.
                self.round += 1;
                ctx.stats().inc("tendermint.round_changes", 1);
                self.enter_round(ctx);
            }
            TIMER_COMMIT => {
                self.enter_round(ctx);
            }
            _ => {}
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// Build a Tendermint committee simulation (clients added by caller).
pub fn build_tm_group(
    cfg: &TmConfig,
    network: Box<dyn ahl_simkit::Network>,
    uplink_bps: Option<f64>,
    seed: u64,
) -> (ahl_simkit::Sim<TmMsg>, Vec<NodeId>) {
    fn classify(m: &TmMsg) -> MsgClass {
        m.class()
    }
    fn size_of(m: &TmMsg) -> usize {
        m.wire_size()
    }
    let mut sim_cfg = ahl_simkit::SimConfig::new(seed);
    sim_cfg.network = network;
    sim_cfg.classify = classify;
    sim_cfg.size_of = size_of;
    sim_cfg.uplink_bps = uplink_bps;
    let mut sim = ahl_simkit::Sim::new(sim_cfg);
    let group: Vec<NodeId> = (0..cfg.n).collect();
    for i in 0..cfg.n {
        let mut ncfg = cfg.clone();
        ncfg.pool_seed = ahl_simkit::rng::derive_seed(seed, 0x7E4D_0000 | i as u64);
        let node = TmNode::new(ncfg, group.clone(), i, i == 0);
        sim.add_actor(
            Box::new(node),
            ahl_simkit::QueueConfig::shared(8192),
        );
    }
    (sim, group)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clients::OpenLoopClient;
    use ahl_ledger::{kvstore, Op, TxId};
    use ahl_simkit::{QueueConfig, SimTime, UniformNetwork};

    fn run_tm(n: usize, secs: u64) -> (u64, u64) {
        run_tm_cfg(TmConfig::new(n), secs).0
    }

    fn run_tm_cfg(cfg: TmConfig, secs: u64) -> ((u64, u64), u64) {
        let net = Box::new(UniformNetwork::new(SimDuration::from_micros(300)));
        let (mut sim, group) = build_tm_group(&cfg, net, Some(1e9), 11);
        let stop = SimTime::ZERO + SimDuration::from_secs(secs);
        let mut i = 0u64;
        let factory = Box::new(move |_r: &mut rand::rngs::SmallRng| {
            i += 1;
            Op::Direct { txid: TxId(i), op: kvstore::kv_write(&[i % 50], 16) }
        });
        let client = OpenLoopClient::new(group.clone(), SimDuration::from_millis(2), stop, factory);
        sim.add_actor(Box::new(client), QueueConfig::unbounded());
        sim.run_until(stop + SimDuration::from_secs(3));
        (
            (
                sim.stats().counter(stat::TXN_COMMITTED),
                sim.stats().counter(stat::BLOCKS_COMMITTED),
            ),
            sim.stats().counter(stat::CKPT_AUDIT_FAILURES),
        )
    }

    /// With parallel block execution the per-height rehash audit must run
    /// (and pass) without perturbing commits: parallel execution is
    /// byte-identical to sequential by contract.
    #[test]
    fn parallel_exec_audit_stays_clean() {
        let mut cfg = TmConfig::new(4);
        cfg.exec_workers = 4;
        cfg.audit_interval = 1; // audit at every committed height
        let ((committed, blocks), audit_failures) = run_tm_cfg(cfg, 5);
        let (seq_committed, seq_blocks) = run_tm(4, 5);
        assert_eq!((committed, blocks), (seq_committed, seq_blocks), "workers leaked into sim");
        assert!(committed > 1000, "committed {committed}");
        assert_eq!(audit_failures, 0, "hash-cache divergence under parallel execution");
    }

    #[test]
    fn commits_transactions() {
        let (committed, blocks) = run_tm(4, 5);
        assert!(committed > 1000, "committed {committed}");
        assert!(blocks >= 4, "blocks {blocks}");
    }

    #[test]
    fn lockstep_limits_block_rate() {
        // With timeout_commit = 1 s, block rate ≈ 1/s regardless of load.
        let (_, blocks) = run_tm(4, 6);
        assert!(blocks <= 8, "blocks {blocks}");
    }

    #[test]
    fn single_validator_works() {
        let (committed, _) = run_tm(1, 4);
        assert!(committed > 500, "committed {committed}");
    }

    #[test]
    fn validators_reach_same_height() {
        let cfg = TmConfig::new(4);
        let net = Box::new(UniformNetwork::new(SimDuration::from_micros(300)));
        let (mut sim, group) = build_tm_group(&cfg, net, Some(1e9), 3);
        let stop = SimTime::ZERO + SimDuration::from_secs(4);
        let mut i = 0u64;
        let factory = Box::new(move |_r: &mut rand::rngs::SmallRng| {
            i += 1;
            Op::Direct { txid: TxId(i), op: kvstore::kv_write(&[i], 16) }
        });
        let client = OpenLoopClient::new(group.clone(), SimDuration::from_millis(5), stop, factory);
        sim.add_actor(Box::new(client), QueueConfig::unbounded());
        sim.run_until(stop + SimDuration::from_secs(5));
        let heights: Vec<u64> = group
            .iter()
            .map(|&id| {
                sim.actor(id)
                    .as_any()
                    .expect("inspectable")
                    .downcast_ref::<TmNode>()
                    .expect("tm node")
                    .height()
            })
            .collect();
        let max = *heights.iter().max().expect("non-empty");
        let min = *heights.iter().min().expect("non-empty");
        assert!(max > 1);
        assert!(max - min <= 1, "heights {heights:?}");
    }
}
