//! The replica's on-disk persistence: WAL records, checkpoint pages, and
//! restart-from-disk recovery.
//!
//! Until this module existed, a replica's "durable checkpoint" was an
//! in-memory field annotated *modelling the on-disk checkpoint*; a
//! `Restart` recovered from state that a real crash would have destroyed.
//! [`NodeStore`] replaces the model with a real `ahl-wal` node directory:
//!
//! * every executed batch appends a [`WalRecord::Batch`] (full requests,
//!   so recovery can re-execute them) followed by one
//!   [`WalRecord::TwoPc`] per 2PC transition the batch performed (an
//!   audit journal recovery cross-checks replay against — a mismatch
//!   means corruption the CRCs missed, and replay stops rather than
//!   trusts);
//! * every certified checkpoint persists the snapshot's pages
//!   (content-addressed — consecutive checkpoints share unchanged pages),
//!   publishes the manifest (certificate + executed-request set + 2PC
//!   sidecar in the metadata), logs a [`WalRecord::Ckpt`] marker, and
//!   compacts the WAL to the last two checkpoint generations;
//! * [`NodeStore::open`] reopens the directory after a crash: validates
//!   the manifest, loads and root-verifies the checkpoint tree, and hands
//!   back the decoded WAL tail for replay.
//!
//! Any I/O error — including an injected [`ahl_wal::KillSwitch`] crash —
//! is treated by the replica as its own crash: it goes dark exactly as if
//! the process had died, and the next `Restart` recovers from whatever
//! actually reached the disk.

use std::collections::HashSet;
use std::path::{Path, PathBuf};

use ahl_crypto::{Hash, Signature};
use ahl_ledger::persist::{decode_op, encode_op, open_snapshot};
use ahl_ledger::{StateSidecar, StateSnapshot};
use ahl_simkit::SimTime;
use ahl_store::CheckpointCert;
use ahl_wal::codec::{Reader, Writer};
use ahl_wal::{open_node_dir, write_manifest, GcStats, Manifest, NodeDir, PersistStats, WalConfig};

use crate::common::Request;
use crate::pbft::msg::PbftBlock;

const REC_BATCH: u8 = 1;
const REC_CKPT: u8 = 2;
const REC_TWOPC: u8 = 3;

/// A 2PC transition kind journaled alongside its batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TwoPcKind {
    /// `Op::Prepare` executed (locks acquired).
    Prepare,
    /// `Op::Commit` executed (mutations applied, locks released).
    Commit,
    /// `Op::Abort` executed (pending discarded, locks released).
    Abort,
}

impl TwoPcKind {
    fn tag(self) -> u8 {
        match self {
            TwoPcKind::Prepare => 0,
            TwoPcKind::Commit => 1,
            TwoPcKind::Abort => 2,
        }
    }

    fn from_tag(t: u8) -> Option<Self> {
        match t {
            0 => Some(TwoPcKind::Prepare),
            1 => Some(TwoPcKind::Commit),
            2 => Some(TwoPcKind::Abort),
            _ => None,
        }
    }
}

/// The 2PC transition a committed execution of `op` performs, if any —
/// the single mapping shared by the journaling site (`execute_block`) and
/// recovery replay, whose cross-check depends on the two agreeing.
pub fn twopc_kind(op: &ahl_ledger::Op) -> Option<TwoPcKind> {
    match op {
        ahl_ledger::Op::Prepare { .. } => Some(TwoPcKind::Prepare),
        ahl_ledger::Op::Commit { .. } => Some(TwoPcKind::Commit),
        ahl_ledger::Op::Abort { .. } => Some(TwoPcKind::Abort),
        _ => None,
    }
}

/// A decoded WAL record.
pub enum WalRecord {
    /// An executed batch: enough to re-execute it on recovery.
    Batch {
        /// Block sequence number.
        seq: u64,
        /// The batched requests (ids, clients, ops).
        reqs: Vec<Request>,
    },
    /// A durable-checkpoint marker (the authoritative copy lives in the
    /// manifest; the marker keeps the log self-describing).
    Ckpt {
        /// Certified sequence.
        seq: u64,
        /// Certified root.
        root: Hash,
    },
    /// One 2PC sidecar transition performed by the preceding batch.
    TwoPc {
        /// Transaction id.
        txid: u64,
        /// Transition kind.
        kind: TwoPcKind,
    },
}

fn encode_batch_record(block: &PbftBlock) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(REC_BATCH);
    w.u64(block.seq);
    w.u64(block.view);
    w.u32(block.reqs.len() as u32);
    for r in block.reqs.iter() {
        w.u64(r.id);
        w.u64(r.client as u64);
        w.u64(r.submitted.as_nanos());
        encode_op(&r.op, &mut w);
    }
    w.into_bytes()
}

fn encode_twopc_record(txid: u64, kind: TwoPcKind) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(REC_TWOPC);
    w.u64(txid);
    w.u8(kind.tag());
    w.into_bytes()
}

fn encode_ckpt_record(seq: u64, root: &Hash) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(REC_CKPT);
    w.u64(seq);
    w.hash(root);
    w.into_bytes()
}

/// Decode one WAL payload; `None` rejects the record (recovery stops at
/// the first undecodable record — trust nothing past it).
pub fn decode_record(payload: &[u8]) -> Option<WalRecord> {
    let mut r = Reader::new(payload);
    match r.u8()? {
        REC_BATCH => {
            let seq = r.u64()?;
            let view = r.u64()?;
            let _ = view; // provenance only; replay is view-agnostic
            let n = r.u32()? as usize;
            let mut reqs = Vec::with_capacity(n.min(65_536));
            for _ in 0..n {
                let id = r.u64()?;
                let client = r.u64()? as usize;
                let submitted = SimTime(r.u64()?);
                let op = decode_op(&mut r)?;
                reqs.push(Request { id, client, op, submitted });
            }
            r.is_done().then_some(WalRecord::Batch { seq, reqs })
        }
        REC_CKPT => {
            let seq = r.u64()?;
            let root = r.hash()?;
            r.is_done().then_some(WalRecord::Ckpt { seq, root })
        }
        REC_TWOPC => {
            let txid = r.u64()?;
            let kind = TwoPcKind::from_tag(r.u8()?)?;
            r.is_done().then_some(WalRecord::TwoPc { txid, kind })
        }
        _ => None,
    }
}

fn encode_cert(cert: &CheckpointCert, w: &mut Writer) {
    w.u64(cert.seq);
    w.hash(&cert.root);
    w.u32(cert.votes.len() as u32);
    for (replica, sig) in &cert.votes {
        w.u64(*replica as u64);
        match sig {
            Some(s) => {
                w.u8(1);
                w.bytes(&s.to_bytes());
            }
            None => w.u8(0),
        }
    }
}

fn decode_cert(r: &mut Reader<'_>) -> Option<CheckpointCert> {
    let seq = r.u64()?;
    let root = r.hash()?;
    let n = r.u32()? as usize;
    let mut votes = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let replica = r.u64()? as usize;
        let sig = match r.u8()? {
            0 => None,
            1 => {
                let b = r.bytes()?;
                let arr: &[u8; Signature::BYTES] = b.try_into().ok()?;
                Some(Signature::from_bytes(arr))
            }
            _ => return None,
        };
        votes.push((replica, sig));
    }
    Some(CheckpointCert { seq, root, votes })
}

/// The durable checkpoint recovered from a reopened node directory.
pub struct DurableState {
    /// The persisted (and re-verified: `cert.seq == manifest.seq`,
    /// `cert.root == rebuilt root`) checkpoint certificate.
    pub cert: CheckpointCert,
    /// The page-backed snapshot, root-verified on load.
    pub snapshot: StateSnapshot,
    /// Executed-request ids at the checkpoint (replay protection).
    pub executed: HashSet<u64>,
}

/// What one [`NodeStore::persist_checkpoint`] did on disk: the page
/// writes themselves plus the page-store GC pass, when the disk-pressure
/// trigger fired one.
pub struct CheckpointIo {
    /// Page-write accounting (new vs structurally shared pages).
    pub pages: PersistStats,
    /// Mark-and-sweep accounting, `None` when the store stayed under
    /// `gc_trigger_bytes` and no collection ran.
    pub gc: Option<GcStats>,
}

/// A replica's open node directory (see module docs).
pub struct NodeStore {
    dir: PathBuf,
    node: NodeDir,
    cfg: WalConfig,
}

impl NodeStore {
    /// Open (or create) `dir`, returning the store plus the recovered
    /// durable checkpoint (if a valid manifest exists) and the decoded
    /// WAL tail, oldest first. Decoding stops at the first undecodable
    /// record; an unloadable checkpoint degrades to a cold start.
    pub fn open(
        dir: &Path,
        cfg: &WalConfig,
    ) -> std::io::Result<(NodeStore, Option<DurableState>, Vec<WalRecord>)> {
        let node = open_node_dir(dir, cfg)?;
        let durable = node.manifest.as_ref().and_then(|m| {
            let mut r = Reader::new(&m.meta);
            let cert = decode_cert(&mut r)?;
            if cert.seq != m.seq || cert.root != m.root {
                return None; // manifest/cert mismatch: not trusted
            }
            let n = r.u32()? as usize;
            let mut executed = HashSet::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                executed.insert(r.u64()?);
            }
            let sidecar = StateSidecar::decode(&mut r)?;
            let snapshot = open_snapshot(&node.pages, m.root, sidecar).ok()?;
            Some(DurableState { cert, snapshot, executed })
        });
        let mut tail = Vec::with_capacity(node.tail.len());
        for payload in &node.tail {
            match decode_record(payload) {
                Some(rec) => tail.push(rec),
                None => break,
            }
        }
        let mut store = NodeStore { dir: dir.to_path_buf(), node, cfg: cfg.clone() };
        // `node.tail` owns the raw payloads; drop them now that they are
        // decoded (a long tail of large batches would otherwise sit in
        // memory for the node's lifetime).
        store.node.tail = Vec::new();
        Ok((store, durable, tail))
    }

    /// Journal one executed batch (buffered; committed by
    /// [`NodeStore::commit`] — group commit spans the batch plus its 2PC
    /// transition records).
    pub fn log_batch(&mut self, block: &PbftBlock) {
        self.node.wal.append(encode_batch_record(block));
    }

    /// Journal one 2PC transition of the batch being executed.
    pub fn log_twopc(&mut self, txid: u64, kind: TwoPcKind) {
        self.node.wal.append(encode_twopc_record(txid, kind));
    }

    /// Group-commit everything buffered since the last call.
    pub fn commit(&mut self) -> std::io::Result<()> {
        self.node.wal.commit()
    }

    /// Persist a certified checkpoint: pages (deduplicated against every
    /// earlier checkpoint), sync barrier, manifest swap, WAL marker, then
    /// compact the log to the last two checkpoint generations and collect
    /// dead page segments if disk pressure asks for it.
    ///
    /// Ordering audit (the invariant the post-rename manifest kill point
    /// pins): every space-reclaiming step — WAL compaction in
    /// `rotate_keep`, page GC in `maybe_gc` — runs strictly *after*
    /// `write_manifest` returns, i.e. after the rename's directory fsync.
    /// Reclaiming earlier would let a lost rename resurrect the old
    /// manifest while the WAL records and pages it still needs are gone.
    pub fn persist_checkpoint(
        &mut self,
        cert: &CheckpointCert,
        snapshot: &StateSnapshot,
        executed: &HashSet<u64>,
    ) -> std::io::Result<CheckpointIo> {
        let stats = snapshot.persist(&mut self.node.pages)?;
        self.node.pages.sync()?;
        let mut meta = Writer::new();
        encode_cert(cert, &mut meta);
        meta.u32(executed.len() as u32);
        // Deterministic encoding order (the set iterates arbitrarily).
        let mut ids: Vec<u64> = executed.iter().copied().collect();
        ids.sort_unstable();
        for id in ids {
            meta.u64(id);
        }
        snapshot.sidecar().encode(&mut meta);
        write_manifest(
            &self.dir,
            &Manifest { seq: cert.seq, root: cert.root, meta: meta.into_bytes() },
            &self.cfg.kill,
        )?;
        self.node.wal.append(encode_ckpt_record(cert.seq, &cert.root));
        self.node.wal.commit()?;
        self.node.wal.rotate_keep(2)?;
        // The manifest just published is the only checkpoint a restart
        // can anchor on, so its root is the whole live set — older
        // checkpoints' unshared pages are garbage from here on.
        let gc = self.node.pages.maybe_gc(&[cert.root])?;
        Ok(CheckpointIo { pages: stats, gc })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahl_crypto::KeyRegistry;
    use ahl_ledger::{Op, StateStore, TxId, Value};
    use ahl_wal::TempDir;

    fn block(seq: u64, reqs: Vec<Request>) -> PbftBlock {
        PbftBlock::new(0, seq, 0, reqs)
    }

    fn req(id: u64, op: Op) -> Request {
        Request { id, client: 9, op, submitted: SimTime::ZERO }
    }

    #[test]
    fn wal_records_round_trip() {
        let b = block(
            4,
            vec![
                req(1, Op::Noop),
                req(2, Op::Commit { txid: TxId(8) }),
            ],
        );
        let payload = encode_batch_record(&b);
        match decode_record(&payload) {
            Some(WalRecord::Batch { seq, reqs }) => {
                assert_eq!(seq, 4);
                assert_eq!(reqs.len(), 2);
                assert_eq!(reqs[0].id, 1);
                assert_eq!(reqs[1].op, Op::Commit { txid: TxId(8) });
                assert_eq!(reqs[1].client, 9);
            }
            _ => panic!("batch record"),
        }
        let payload = encode_twopc_record(7, TwoPcKind::Abort);
        assert!(matches!(
            decode_record(&payload),
            Some(WalRecord::TwoPc { txid: 7, kind: TwoPcKind::Abort })
        ));
        let root = ahl_crypto::sha256(b"r");
        let payload = encode_ckpt_record(11, &root);
        assert!(matches!(
            decode_record(&payload),
            Some(WalRecord::Ckpt { seq: 11, root: r }) if r == root
        ));
        assert!(decode_record(&[0xEE]).is_none());
    }

    #[test]
    fn signed_cert_survives_manifest_round_trip() {
        let mut reg = KeyRegistry::new();
        let keys: Vec<_> = (0..3).map(|i| reg.generate(i)).collect();
        let root = ahl_crypto::sha256(b"state");
        let votes = keys
            .iter()
            .enumerate()
            .map(|(i, k)| {
                (i, Some(k.sign(&ahl_store::checkpoint_digest(6, &root))))
            })
            .collect();
        let cert = CheckpointCert { seq: 6, root, votes };
        assert!(cert.verify(3, Some(&reg)));

        let mut w = Writer::new();
        encode_cert(&cert, &mut w);
        let bytes = w.into_bytes();
        let decoded = decode_cert(&mut Reader::new(&bytes)).expect("decodes");
        assert_eq!(decoded.seq, 6);
        assert_eq!(decoded.root, root);
        // The signatures still verify after the disk round trip.
        assert!(decoded.verify(3, Some(&reg)));
    }

    #[test]
    fn checkpoint_persist_and_reopen() {
        let dir = TempDir::new("nodestore");
        let cfg = WalConfig::default();
        let mut state = StateStore::new();
        state.put("a".into(), Value::Int(10));
        let snap = state.snapshot();
        let cert = CheckpointCert { seq: 5, root: snap.root(), votes: vec![(0, None), (1, None)] };
        let executed: HashSet<u64> = [3, 9].into_iter().collect();
        {
            let (mut store, durable, tail) = NodeStore::open(dir.path(), &cfg).expect("open");
            assert!(durable.is_none() && tail.is_empty());
            store.log_batch(&block(6, vec![req(1, Op::Noop)]));
            store.commit().expect("commit");
            store.persist_checkpoint(&cert, &snap, &executed).expect("checkpoint");
            // A post-checkpoint batch lands in the fresh segment.
            store.log_batch(&block(7, vec![req(2, Op::Noop)]));
            store.commit().expect("commit 2");
        }
        let (_, durable, tail) = NodeStore::open(dir.path(), &cfg).expect("reopen");
        let durable = durable.expect("durable checkpoint recovered");
        assert_eq!(durable.cert.seq, 5);
        assert_eq!(durable.snapshot.root(), snap.root());
        assert_eq!(durable.executed, executed);
        // The tail still holds both batches (two-generation retention)
        // plus the checkpoint marker; recovery filters by sequence.
        let seqs: Vec<u64> = tail
            .iter()
            .filter_map(|r| match r {
                WalRecord::Batch { seq, .. } => Some(*seq),
                _ => None,
            })
            .collect();
        assert!(seqs.contains(&7), "post-checkpoint batch retained: {seqs:?}");
    }
}
