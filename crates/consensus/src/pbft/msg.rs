//! PBFT wire messages.

use std::sync::Arc;

use std::collections::HashSet;

use ahl_crypto::{sha256_parts, Hash, Signature};
use ahl_ledger::{Key, StateSidecar, Value};
use ahl_simkit::{MsgClass, NodeId};
use ahl_store::{CheckpointCert, CheckpointVote};
use ahl_tee::Attestation;

use crate::clients::ClientProtocol;
use crate::common::Request;

/// A proposed block: a batch of requests bound to (view, seq).
#[derive(Clone, Debug)]
pub struct PbftBlock {
    /// View in which the block was proposed.
    pub view: u64,
    /// Sequence number.
    pub seq: u64,
    /// Proposing replica (group index).
    pub proposer: usize,
    /// The batched requests.
    pub reqs: Arc<Vec<Request>>,
    /// Content digest (binds view/seq/proposer/request ids and ops).
    pub digest: Hash,
}

impl PbftBlock {
    /// Build a block and compute its digest.
    pub fn new(view: u64, seq: u64, proposer: usize, reqs: Vec<Request>) -> Self {
        let digest = Self::compute_digest(view, seq, proposer, &reqs);
        PbftBlock {
            view,
            seq,
            proposer,
            reqs: Arc::new(reqs),
            digest,
        }
    }

    /// The canonical digest over the block contents.
    pub fn compute_digest(view: u64, seq: u64, proposer: usize, reqs: &[Request]) -> Hash {
        let mut parts: Vec<Vec<u8>> = vec![
            b"pbft-block".to_vec(),
            view.to_be_bytes().to_vec(),
            seq.to_be_bytes().to_vec(),
            (proposer as u64).to_be_bytes().to_vec(),
        ];
        for r in reqs {
            parts.push(r.id.to_be_bytes().to_vec());
            parts.push(r.op.digest().0.to_vec());
        }
        let refs: Vec<&[u8]> = parts.iter().map(Vec::as_slice).collect();
        sha256_parts(&refs)
    }

    /// Approximate wire size.
    pub fn wire_size(&self) -> usize {
        96 + self
            .reqs
            .iter()
            .map(|r| 64 + r.op.wire_size())
            .sum::<usize>()
    }
}

/// Authentication attached to a consensus message.
#[derive(Clone, Debug)]
pub enum MsgCert {
    /// Cost-only mode: no bytes carried; costs still charged.
    Simulated,
    /// Native signature (HL).
    Sig(Signature),
    /// Enclave attestation binding the digest to the (view, seq) slot
    /// (AHL family — this is what removes equivocation).
    Attested(Attestation),
}

/// A prepare/commit vote.
#[derive(Clone, Debug)]
pub struct Vote {
    /// View.
    pub view: u64,
    /// Sequence number.
    pub seq: u64,
    /// Digest of the block being voted on.
    pub digest: Hash,
    /// Voting replica (group index).
    pub replica: usize,
    /// Authentication.
    pub cert: MsgCert,
}

/// An aggregation proof produced by the AHLR leader enclave: attests that a
/// quorum of `count` valid votes for (view, seq, digest, phase) was seen.
#[derive(Clone, Debug)]
pub struct AggProof {
    /// View.
    pub view: u64,
    /// Sequence number.
    pub seq: u64,
    /// Digest of the block.
    pub digest: Hash,
    /// Number of aggregated votes.
    pub count: usize,
    /// Enclave signature over the above (None in cost-only mode).
    pub sig: Option<Signature>,
}

/// View-change message (simplified PBFT: carries the last stable checkpoint
/// and the prepared set's (seq, digest) pairs).
#[derive(Clone, Debug)]
pub struct ViewChangeMsg {
    /// Proposed new view.
    pub new_view: u64,
    /// Sender's last stable checkpoint sequence.
    pub last_stable: u64,
    /// Sequences prepared at the sender (re-proposal candidates).
    pub prepared: Vec<(u64, Hash)>,
    /// Sender (group index).
    pub replica: usize,
}

/// All PBFT wire messages.
#[derive(Clone, Debug)]
pub enum PbftMsg {
    /// Client → replica: fresh request (REST ingest).
    Request(Request),
    /// Replica → leader: forwarded request (optimization 2).
    Relay(Request),
    /// Replica → all: request re-broadcast (HL behaviour that
    /// optimization 2 removes).
    Gossip(Request),
    /// Leader → all: block proposal.
    PrePrepare {
        /// The proposed block (shared pointer: broadcast clones are cheap).
        block: Arc<PbftBlock>,
        /// Leader authentication.
        cert: MsgCert,
    },
    /// Replica → all: prepare vote.
    Prepare(Vote),
    /// Replica → all: commit vote.
    Commit(Vote),
    /// Replica → leader: prepare vote for enclave aggregation (AHLR).
    RelayPrepare(Vote),
    /// Replica → leader: commit vote for enclave aggregation (AHLR).
    RelayCommit(Vote),
    /// Leader → all: aggregated prepare quorum proof (AHLR).
    AggPrepare(AggProof),
    /// Leader → all: aggregated commit quorum proof (AHLR).
    AggCommit(AggProof),
    /// Replica → all: signed checkpoint vote over `(height, state_root)`.
    /// A quorum of matching votes forms a [`CheckpointCert`] that gates
    /// pruning and anchors state sync.
    Checkpoint {
        /// The vote (root, height, signature).
        vote: CheckpointVote,
    },
    /// Replica → all: view change.
    ViewChange(ViewChangeMsg),
    /// New leader → all: pool-digest pull after a view change. Replicas
    /// answer by re-relaying their pooled (admitted, unexecuted) requests
    /// so client transactions stranded at the deposed — possibly
    /// Byzantine — leader get re-proposed (`mempool.viewchange_regossip`).
    PoolPull {
        /// The view the new leader just installed.
        view: u64,
    },
    /// New leader → all: new view installation with re-proposals.
    NewView {
        /// The view being installed.
        view: u64,
        /// Blocks re-proposed into the new view.
        reproposals: Vec<Arc<PbftBlock>>,
    },
    /// Replica → client: execution result.
    Reply {
        /// The request this reply answers.
        req_id: u64,
        /// Whether the transaction committed (vs aborted by execution).
        committed: bool,
    },
    /// Replica → client: the ingest replica's transaction pool refused the
    /// request (admission control / backpressure). The client may retry
    /// after a backoff; the request was *not* relayed into consensus.
    Rejected {
        /// The refused request.
        req_id: u64,
    },
    /// Leader → relaying replica: the leader's pool refused the relayed
    /// request, so the relayer should reclaim its own pooled copy — it can
    /// never be proposed and would otherwise occupy ingest-pool capacity
    /// until a view change.
    RelayRejected {
        /// The refused request.
        req_id: u64,
    },
    /// Leader → all: liveness heartbeat (PBFT null request). Lets replicas
    /// distinguish "I am cut off" (no traffic at all) from "consensus is
    /// stuck" (heartbeats still arriving), which gates view changes — and
    /// carries the leader's execution point, so a replica that fell
    /// behind and then saw traffic stop (nothing left to evidence the
    /// gap) still notices and requests catch-up.
    Heartbeat {
        /// The leader's view.
        view: u64,
        /// The leader's highest executed sequence.
        exec_seq: u64,
    },
    /// Lagging/joining replica → peer: open a state-sync exchange (§5.3
    /// state transfer). The server answers with [`PbftMsg::SyncTail`] when
    /// the requester only misses recent blocks, [`PbftMsg::SyncManifest`]
    /// when it needs a certified chunked transfer, or [`PbftMsg::SyncNack`]
    /// when it has nothing to offer.
    SyncRequest {
        /// Requester's group index.
        requester: usize,
        /// Highest sequence the requester has executed.
        have_seq: u64,
        /// Force a full chunked transfer even if `have_seq` is recent
        /// (transitioning nodes re-fetch their new shard's entire state).
        full: bool,
        /// Every *certified* state root the requester still retains a
        /// snapshot of, newest first (bounded by `snapshot_retention`).
        /// A server that retains *any* of them answers with an
        /// incremental manifest diffed against the newest match; empty
        /// means no diff anchor (full chunked transfer). Advertising the
        /// whole window instead of just the newest root lets servers with
        /// sparse snapshot windows (freshly restarted peers retain only
        /// their own durable checkpoint) still serve a diff.
        old_roots: Vec<Hash>,
    },
    /// Peer → requester: the plan for a chunked transfer anchored at the
    /// latest checkpoint certificate.
    SyncManifest {
        /// The certificate the requester must verify chunks against.
        cert: CheckpointCert,
        /// Chunk-count exponent: the transfer has `1 << bits` chunks.
        bits: u8,
        /// Total key-value pairs in the certified state (progress display).
        leaves: u64,
        /// 2PC bookkeeping at the certified height (prepared write sets and
        /// recently decided ids; unauthenticated sidecar).
        sidecar: Arc<StateSidecar>,
        /// Request ids executed up to the certified height (replay
        /// protection for re-submitted client requests).
        executed: Arc<HashSet<u64>>,
        /// Sender's current view.
        view: u64,
        /// Incremental plan: the chunk indices whose content changed since
        /// the requester's advertised `old_root` (`None` = full transfer,
        /// every chunk). An empty list means the retained state already
        /// matches the certified root.
        diff: Option<Arc<Vec<u32>>>,
        /// Echo of the `old_root` the diff was computed against (`None`
        /// for a full manifest). The requester only applies the plan when
        /// this still matches its retained anchor — a late manifest
        /// answering an earlier advertisement must not overlay a newer
        /// base.
        diff_base: Option<Hash>,
    },
    /// Requester → peer: fetch one key-range chunk of the certified state.
    ChunkRequest {
        /// Requester's group index.
        requester: usize,
        /// The certified height the transfer is anchored at.
        seq: u64,
        /// Chunk index in `0..1 << bits`.
        chunk: u32,
    },
    /// Peer → requester: one chunk plus the proof tying it to the certified
    /// root. The requester verifies before applying; a tampered or stale
    /// chunk is rejected and re-requested from another peer.
    ChunkData {
        /// The certified height the transfer is anchored at.
        seq: u64,
        /// Chunk index.
        chunk: u32,
        /// The chunk's complete key-value content, in path order.
        entries: Arc<Vec<(Key, Value)>>,
        /// Sibling subtree hashes ([`ahl_store::SparseMerkleTree::chunk_proof`]).
        proof: Arc<Vec<Hash>>,
    },
    /// Peer → requester: committed blocks above the requester's execution
    /// point (the catch-up tail after a chunked install, or the whole
    /// answer for a replica that only lags a little).
    SyncTail {
        /// Committed blocks, ascending and contiguous from the requester's
        /// `have_seq + 1`.
        blocks: Vec<Arc<PbftBlock>>,
        /// Sender's current view.
        view: u64,
    },
    /// Peer → requester: cannot serve (no certificate/snapshot yet, or the
    /// requester is already current). The requester rotates peers/retries.
    SyncNack {
        /// Echo of the requester's `have_seq`.
        have_seq: u64,
    },
    /// Harness/controller → replica: transition into a new shard (§5.3).
    /// The replica pauses consensus participation, re-fetches the full
    /// shard state through the certified chunk protocol, and resumes once
    /// verified — the throughput cost of reconfiguration thus emerges from
    /// real transfer volume.
    Transition {
        /// Actor to notify with [`PbftMsg::TransitionDone`] (batch
        /// sequencing in the reshard experiment).
        controller: Option<NodeId>,
        /// The node is re-joining a shard whose state it recently held
        /// (elastico-style reshuffles move some members back into their
        /// previous shard): it may advertise its last certified root and
        /// fetch only the diff. `false` models a cross-shard move — the old
        /// root belongs to different state and a full fetch is required.
        rejoin: bool,
    },
    /// Replica → controller: its transition fetch completed and it rejoined
    /// consensus.
    TransitionDone {
        /// The transitioned replica's group index.
        replica: usize,
    },
    /// Harness → replica: crash. The node goes dark — every message is
    /// dropped until a [`PbftMsg::Restart`] arrives (modelling real
    /// downtime, during which the committee moves on without it).
    Crash,
    /// Harness → replica: (re)start after a crash. All volatile state
    /// (ledger, pool, protocol instances) is lost; only the durable
    /// checkpoint — the last certified snapshot, if one formed — survives,
    /// and the replica recovers via (diff) state sync from it.
    Restart,
}

/// Modeled bytes of one `(key, value)` chunk entry — the single source for
/// the ChunkData wire size, the requester's `sync.bytes_synced` metric, and
/// both sides' serialization/verification CPU charges.
pub fn chunk_entry_bytes(key: &str, value: &Value) -> usize {
    16 + key.len() + value.size()
}

impl PbftMsg {
    /// Queue class: requests and replies must not crowd out consensus
    /// traffic when queues are split (optimization 1).
    pub fn class(&self) -> MsgClass {
        match self {
            PbftMsg::Request(_)
            | PbftMsg::Relay(_)
            | PbftMsg::Gossip(_)
            | PbftMsg::Reply { .. }
            | PbftMsg::Rejected { .. }
            | PbftMsg::RelayRejected { .. }
            // Bulk state transfer must not crowd out consensus votes.
            | PbftMsg::SyncRequest { .. }
            | PbftMsg::SyncManifest { .. }
            | PbftMsg::ChunkRequest { .. }
            | PbftMsg::ChunkData { .. }
            | PbftMsg::SyncTail { .. }
            | PbftMsg::SyncNack { .. } => MsgClass::REQUEST,
            _ => MsgClass::CONSENSUS,
        }
    }

    /// Approximate wire size in bytes.
    pub fn wire_size(&self) -> usize {
        match self {
            PbftMsg::Request(r) | PbftMsg::Relay(r) | PbftMsg::Gossip(r) => 250 + r.op.wire_size(),
            PbftMsg::PrePrepare { block, .. } => 150 + block.wire_size(),
            PbftMsg::Prepare(_) | PbftMsg::Commit(_) => 150,
            PbftMsg::RelayPrepare(_) | PbftMsg::RelayCommit(_) => 150,
            PbftMsg::AggPrepare(_) | PbftMsg::AggCommit(_) => 220,
            PbftMsg::Checkpoint { .. } => 120,
            PbftMsg::ViewChange(vc) => 600 + 48 * vc.prepared.len(),
            PbftMsg::NewView { reproposals, .. } => {
                200 + reproposals.iter().map(|b| b.wire_size()).sum::<usize>()
            }
            PbftMsg::Reply { .. } => 100,
            PbftMsg::Rejected { .. } | PbftMsg::RelayRejected { .. } => 90,
            PbftMsg::Heartbeat { .. } | PbftMsg::PoolPull { .. } => 60,
            PbftMsg::SyncRequest { old_roots, .. } => 80 + 32 * old_roots.len(),
            PbftMsg::SyncManifest { cert, sidecar, executed, diff, diff_base, .. } => {
                120 + cert.wire_size()
                    + sidecar.wire_size()
                    + 8 * executed.len()
                    + 4 * diff.as_ref().map_or(0, |d| d.len())
                    + diff_base.map_or(0, |_| 32)
            }
            PbftMsg::ChunkRequest { .. } => 90,
            // The dominant transfer cost: every key and value in the chunk,
            // plus the sibling hashes of its proof.
            PbftMsg::ChunkData { entries, proof, .. } => {
                64 + entries
                    .iter()
                    .map(|(k, v)| chunk_entry_bytes(k, v))
                    .sum::<usize>()
                    + 32 * proof.len()
            }
            PbftMsg::SyncTail { blocks, .. } => {
                120 + blocks.iter().map(|b| b.wire_size()).sum::<usize>()
            }
            PbftMsg::SyncNack { .. } => 70,
            PbftMsg::Transition { .. } | PbftMsg::TransitionDone { .. } => 60,
            PbftMsg::Crash | PbftMsg::Restart => 60,
        }
    }
}

impl ClientProtocol for PbftMsg {
    fn make_request(req: Request) -> Self {
        PbftMsg::Request(req)
    }
    fn reply_id(&self) -> Option<u64> {
        match self {
            PbftMsg::Reply { req_id, .. } => Some(*req_id),
            _ => None,
        }
    }
    fn reject_id(&self) -> Option<u64> {
        match self {
            PbftMsg::Rejected { req_id } => Some(*req_id),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahl_ledger::Op;
    use ahl_simkit::SimTime;

    fn req(i: u64) -> Request {
        Request {
            id: i,
            client: 0,
            op: Op::Noop,
            submitted: SimTime::ZERO,
        }
    }

    #[test]
    fn block_digest_binds_contents() {
        let a = PbftBlock::new(0, 1, 0, vec![req(1), req(2)]);
        let b = PbftBlock::new(0, 1, 0, vec![req(1), req(3)]);
        let c = PbftBlock::new(0, 2, 0, vec![req(1), req(2)]);
        let d = PbftBlock::new(1, 1, 0, vec![req(1), req(2)]);
        assert_ne!(a.digest, b.digest);
        assert_ne!(a.digest, c.digest);
        assert_ne!(a.digest, d.digest);
    }

    #[test]
    fn classes_split_requests_from_consensus() {
        assert_eq!(PbftMsg::Request(req(1)).class(), MsgClass::REQUEST);
        assert_eq!(PbftMsg::Gossip(req(1)).class(), MsgClass::REQUEST);
        assert_eq!(
            PbftMsg::Reply { req_id: 1, committed: true }.class(),
            MsgClass::REQUEST
        );
        let block = Arc::new(PbftBlock::new(0, 1, 0, vec![req(1)]));
        assert_eq!(
            PbftMsg::PrePrepare { block, cert: MsgCert::Simulated }.class(),
            MsgClass::CONSENSUS
        );
    }

    #[test]
    fn wire_sizes_scale() {
        let small = Arc::new(PbftBlock::new(0, 1, 0, vec![req(1)]));
        let large = Arc::new(PbftBlock::new(0, 1, 0, (0..100).map(req).collect()));
        let s = PbftMsg::PrePrepare { block: small, cert: MsgCert::Simulated }.wire_size();
        let l = PbftMsg::PrePrepare { block: large, cert: MsgCert::Simulated }.wire_size();
        assert!(l > s * 10);
    }
}
