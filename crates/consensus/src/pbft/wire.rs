//! Hand-rolled wire codec for [`PbftMsg`] (style of `ledger::persist`).
//!
//! This is what real sockets carry: every variant encodes to a
//! tag-prefixed byte string over the WAL's [`Writer`]/[`Reader`] pair and
//! decodes fail-closed — any truncation, unknown tag, or trailing byte
//! rejects the whole message. Block digests are **recomputed** on decode
//! ([`PbftBlock::compute_digest`]), so a forged digest field cannot even
//! be represented on the wire.
//!
//! Collections with nondeterministic iteration order (the executed-id
//! set) are sorted before encoding, keeping the encoding canonical: equal
//! messages produce equal bytes on every process.

use std::collections::HashSet;
use std::sync::Arc;

use ahl_crypto::{Hash, Signature};
use ahl_ledger::{persist, StateSidecar, Value};
use ahl_net::wire::Wire;
use ahl_simkit::SimTime;
use ahl_store::{CheckpointCert, CheckpointVote};
use ahl_tee::{Attestation, LogId, Slot};
use ahl_wal::codec::{Reader, Writer};

use crate::common::Request;

use super::msg::{AggProof, MsgCert, PbftBlock, PbftMsg, ViewChangeMsg, Vote};

fn enc_sig(s: &Signature, w: &mut Writer) {
    w.bytes(&s.to_bytes());
}

fn dec_sig(r: &mut Reader<'_>) -> Option<Signature> {
    let b: [u8; Signature::BYTES] = r.bytes()?.try_into().ok()?;
    Some(Signature::from_bytes(&b))
}

fn enc_opt_sig(s: &Option<Signature>, w: &mut Writer) {
    match s {
        Some(s) => {
            w.u8(1);
            enc_sig(s, w);
        }
        None => w.u8(0),
    }
}

fn dec_opt_sig(r: &mut Reader<'_>) -> Option<Option<Signature>> {
    match r.u8()? {
        0 => Some(None),
        1 => Some(Some(dec_sig(r)?)),
        _ => None,
    }
}

fn enc_attestation(a: &Attestation, w: &mut Writer) {
    w.u32(a.log.0);
    w.u64(a.slot.view);
    w.u64(a.slot.seq);
    w.hash(&a.digest);
    enc_sig(&a.sig, w);
}

fn dec_attestation(r: &mut Reader<'_>) -> Option<Attestation> {
    Some(Attestation {
        log: LogId(r.u32()?),
        slot: Slot { view: r.u64()?, seq: r.u64()? },
        digest: r.hash()?,
        sig: dec_sig(r)?,
    })
}

fn enc_cert(c: &MsgCert, w: &mut Writer) {
    match c {
        MsgCert::Simulated => w.u8(0),
        MsgCert::Sig(s) => {
            w.u8(1);
            enc_sig(s, w);
        }
        MsgCert::Attested(a) => {
            w.u8(2);
            enc_attestation(a, w);
        }
    }
}

fn dec_cert(r: &mut Reader<'_>) -> Option<MsgCert> {
    match r.u8()? {
        0 => Some(MsgCert::Simulated),
        1 => Some(MsgCert::Sig(dec_sig(r)?)),
        2 => Some(MsgCert::Attested(dec_attestation(r)?)),
        _ => None,
    }
}

fn enc_vote(v: &Vote, w: &mut Writer) {
    w.u64(v.view);
    w.u64(v.seq);
    w.hash(&v.digest);
    w.u64(v.replica as u64);
    enc_cert(&v.cert, w);
}

fn dec_vote(r: &mut Reader<'_>) -> Option<Vote> {
    Some(Vote {
        view: r.u64()?,
        seq: r.u64()?,
        digest: r.hash()?,
        replica: r.u64()? as usize,
        cert: dec_cert(r)?,
    })
}

fn enc_agg(a: &AggProof, w: &mut Writer) {
    w.u64(a.view);
    w.u64(a.seq);
    w.hash(&a.digest);
    w.u64(a.count as u64);
    enc_opt_sig(&a.sig, w);
}

fn dec_agg(r: &mut Reader<'_>) -> Option<AggProof> {
    Some(AggProof {
        view: r.u64()?,
        seq: r.u64()?,
        digest: r.hash()?,
        count: r.u64()? as usize,
        sig: dec_opt_sig(r)?,
    })
}

fn enc_request(q: &Request, w: &mut Writer) {
    w.u64(q.id);
    w.u64(q.client as u64);
    persist::encode_op(&q.op, w);
    w.u64(q.submitted.as_nanos());
}

fn dec_request(r: &mut Reader<'_>) -> Option<Request> {
    Some(Request {
        id: r.u64()?,
        client: r.u64()? as usize,
        op: persist::decode_op(r)?,
        submitted: SimTime(r.u64()?),
    })
}

fn enc_block(b: &PbftBlock, w: &mut Writer) {
    w.u64(b.view);
    w.u64(b.seq);
    w.u64(b.proposer as u64);
    w.u32(b.reqs.len() as u32);
    for q in b.reqs.iter() {
        enc_request(q, w);
    }
}

fn dec_block(r: &mut Reader<'_>) -> Option<Arc<PbftBlock>> {
    let view = r.u64()?;
    let seq = r.u64()?;
    let proposer = r.u64()? as usize;
    let n = r.u32()? as usize;
    let mut reqs = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        reqs.push(dec_request(r)?);
    }
    // new() recomputes the digest, so wire bytes cannot smuggle a digest
    // that disagrees with the block's contents.
    Some(Arc::new(PbftBlock::new(view, seq, proposer, reqs)))
}

fn enc_ckpt_vote(v: &CheckpointVote, w: &mut Writer) {
    w.u64(v.seq);
    w.hash(&v.root);
    w.u64(v.replica as u64);
    enc_opt_sig(&v.sig, w);
}

fn dec_ckpt_vote(r: &mut Reader<'_>) -> Option<CheckpointVote> {
    Some(CheckpointVote {
        seq: r.u64()?,
        root: r.hash()?,
        replica: r.u64()? as usize,
        sig: dec_opt_sig(r)?,
    })
}

fn enc_ckpt_cert(c: &CheckpointCert, w: &mut Writer) {
    w.u64(c.seq);
    w.hash(&c.root);
    w.u32(c.votes.len() as u32);
    for (replica, sig) in &c.votes {
        w.u64(*replica as u64);
        enc_opt_sig(sig, w);
    }
}

fn dec_ckpt_cert(r: &mut Reader<'_>) -> Option<CheckpointCert> {
    let seq = r.u64()?;
    let root = r.hash()?;
    let n = r.u32()? as usize;
    let mut votes = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        votes.push((r.u64()? as usize, dec_opt_sig(r)?));
    }
    Some(CheckpointCert { seq, root, votes })
}

fn enc_vc(vc: &ViewChangeMsg, w: &mut Writer) {
    w.u64(vc.new_view);
    w.u64(vc.last_stable);
    w.u32(vc.prepared.len() as u32);
    for (seq, digest) in &vc.prepared {
        w.u64(*seq);
        w.hash(digest);
    }
    w.u64(vc.replica as u64);
}

fn dec_vc(r: &mut Reader<'_>) -> Option<ViewChangeMsg> {
    let new_view = r.u64()?;
    let last_stable = r.u64()?;
    let n = r.u32()? as usize;
    let mut prepared = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        prepared.push((r.u64()?, r.hash()?));
    }
    Some(ViewChangeMsg { new_view, last_stable, prepared, replica: r.u64()? as usize })
}

fn enc_opt_hash(h: &Option<Hash>, w: &mut Writer) {
    match h {
        Some(h) => {
            w.u8(1);
            w.hash(h);
        }
        None => w.u8(0),
    }
}

fn dec_opt_hash(r: &mut Reader<'_>) -> Option<Option<Hash>> {
    match r.u8()? {
        0 => Some(None),
        1 => Some(Some(r.hash()?)),
        _ => None,
    }
}

impl Wire for PbftMsg {
    fn encode(&self, w: &mut Writer) {
        match self {
            PbftMsg::Request(q) => {
                w.u8(0);
                enc_request(q, w);
            }
            PbftMsg::Relay(q) => {
                w.u8(1);
                enc_request(q, w);
            }
            PbftMsg::Gossip(q) => {
                w.u8(2);
                enc_request(q, w);
            }
            PbftMsg::PrePrepare { block, cert } => {
                w.u8(3);
                enc_block(block, w);
                enc_cert(cert, w);
            }
            PbftMsg::Prepare(v) => {
                w.u8(4);
                enc_vote(v, w);
            }
            PbftMsg::Commit(v) => {
                w.u8(5);
                enc_vote(v, w);
            }
            PbftMsg::RelayPrepare(v) => {
                w.u8(6);
                enc_vote(v, w);
            }
            PbftMsg::RelayCommit(v) => {
                w.u8(7);
                enc_vote(v, w);
            }
            PbftMsg::AggPrepare(a) => {
                w.u8(8);
                enc_agg(a, w);
            }
            PbftMsg::AggCommit(a) => {
                w.u8(9);
                enc_agg(a, w);
            }
            PbftMsg::Checkpoint { vote } => {
                w.u8(10);
                enc_ckpt_vote(vote, w);
            }
            PbftMsg::ViewChange(vc) => {
                w.u8(11);
                enc_vc(vc, w);
            }
            PbftMsg::PoolPull { view } => {
                w.u8(12);
                w.u64(*view);
            }
            PbftMsg::NewView { view, reproposals } => {
                w.u8(13);
                w.u64(*view);
                w.u32(reproposals.len() as u32);
                for b in reproposals {
                    enc_block(b, w);
                }
            }
            PbftMsg::Reply { req_id, committed } => {
                w.u8(14);
                w.u64(*req_id);
                w.u8(u8::from(*committed));
            }
            PbftMsg::Rejected { req_id } => {
                w.u8(15);
                w.u64(*req_id);
            }
            PbftMsg::RelayRejected { req_id } => {
                w.u8(16);
                w.u64(*req_id);
            }
            PbftMsg::Heartbeat { view, exec_seq } => {
                w.u8(17);
                w.u64(*view);
                w.u64(*exec_seq);
            }
            PbftMsg::SyncRequest { requester, have_seq, full, old_roots } => {
                w.u8(18);
                w.u64(*requester as u64);
                w.u64(*have_seq);
                w.u8(u8::from(*full));
                w.u32(old_roots.len() as u32);
                for h in old_roots {
                    w.hash(h);
                }
            }
            PbftMsg::SyncManifest { cert, bits, leaves, sidecar, executed, view, diff, diff_base } => {
                w.u8(19);
                enc_ckpt_cert(cert, w);
                w.u8(*bits);
                w.u64(*leaves);
                sidecar.encode(w);
                // Canonical order: HashSet iteration is nondeterministic.
                let mut ids: Vec<u64> = executed.iter().copied().collect();
                ids.sort_unstable();
                w.u32(ids.len() as u32);
                for id in ids {
                    w.u64(id);
                }
                w.u64(*view);
                match diff {
                    Some(d) => {
                        w.u8(1);
                        w.u32(d.len() as u32);
                        for c in d.iter() {
                            w.u32(*c);
                        }
                    }
                    None => w.u8(0),
                }
                enc_opt_hash(diff_base, w);
            }
            PbftMsg::ChunkRequest { requester, seq, chunk } => {
                w.u8(20);
                w.u64(*requester as u64);
                w.u64(*seq);
                w.u32(*chunk);
            }
            PbftMsg::ChunkData { seq, chunk, entries, proof } => {
                w.u8(21);
                w.u64(*seq);
                w.u32(*chunk);
                w.u32(entries.len() as u32);
                for (k, v) in entries.iter() {
                    w.str(k);
                    persist::encode_value(v, w);
                }
                w.u32(proof.len() as u32);
                for h in proof.iter() {
                    w.hash(h);
                }
            }
            PbftMsg::SyncTail { blocks, view } => {
                w.u8(22);
                w.u32(blocks.len() as u32);
                for b in blocks {
                    enc_block(b, w);
                }
                w.u64(*view);
            }
            PbftMsg::SyncNack { have_seq } => {
                w.u8(23);
                w.u64(*have_seq);
            }
            PbftMsg::Transition { controller, rejoin } => {
                w.u8(24);
                match controller {
                    Some(c) => {
                        w.u8(1);
                        w.u64(*c as u64);
                    }
                    None => w.u8(0),
                }
                w.u8(u8::from(*rejoin));
            }
            PbftMsg::TransitionDone { replica } => {
                w.u8(25);
                w.u64(*replica as u64);
            }
            PbftMsg::Crash => w.u8(26),
            PbftMsg::Restart => w.u8(27),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(match r.u8()? {
            0 => PbftMsg::Request(dec_request(r)?),
            1 => PbftMsg::Relay(dec_request(r)?),
            2 => PbftMsg::Gossip(dec_request(r)?),
            3 => PbftMsg::PrePrepare { block: dec_block(r)?, cert: dec_cert(r)? },
            4 => PbftMsg::Prepare(dec_vote(r)?),
            5 => PbftMsg::Commit(dec_vote(r)?),
            6 => PbftMsg::RelayPrepare(dec_vote(r)?),
            7 => PbftMsg::RelayCommit(dec_vote(r)?),
            8 => PbftMsg::AggPrepare(dec_agg(r)?),
            9 => PbftMsg::AggCommit(dec_agg(r)?),
            10 => PbftMsg::Checkpoint { vote: dec_ckpt_vote(r)? },
            11 => PbftMsg::ViewChange(dec_vc(r)?),
            12 => PbftMsg::PoolPull { view: r.u64()? },
            13 => {
                let view = r.u64()?;
                let n = r.u32()? as usize;
                let mut reproposals = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    reproposals.push(dec_block(r)?);
                }
                PbftMsg::NewView { view, reproposals }
            }
            14 => PbftMsg::Reply { req_id: r.u64()?, committed: dec_bool(r)? },
            15 => PbftMsg::Rejected { req_id: r.u64()? },
            16 => PbftMsg::RelayRejected { req_id: r.u64()? },
            17 => PbftMsg::Heartbeat { view: r.u64()?, exec_seq: r.u64()? },
            18 => {
                let requester = r.u64()? as usize;
                let have_seq = r.u64()?;
                let full = dec_bool(r)?;
                let n = r.u32()? as usize;
                let mut old_roots = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    old_roots.push(r.hash()?);
                }
                PbftMsg::SyncRequest { requester, have_seq, full, old_roots }
            }
            19 => {
                let cert = dec_ckpt_cert(r)?;
                let bits = r.u8()?;
                let leaves = r.u64()?;
                let sidecar = Arc::new(StateSidecar::decode(r)?);
                let n = r.u32()? as usize;
                let mut executed = HashSet::with_capacity(n.min(65536));
                for _ in 0..n {
                    executed.insert(r.u64()?);
                }
                let view = r.u64()?;
                let diff = match r.u8()? {
                    0 => None,
                    1 => {
                        let n = r.u32()? as usize;
                        let mut d = Vec::with_capacity(n.min(65536));
                        for _ in 0..n {
                            d.push(r.u32()?);
                        }
                        Some(Arc::new(d))
                    }
                    _ => return None,
                };
                PbftMsg::SyncManifest {
                    cert,
                    bits,
                    leaves,
                    sidecar,
                    executed: Arc::new(executed),
                    view,
                    diff,
                    diff_base: dec_opt_hash(r)?,
                }
            }
            20 => PbftMsg::ChunkRequest {
                requester: r.u64()? as usize,
                seq: r.u64()?,
                chunk: r.u32()?,
            },
            21 => {
                let seq = r.u64()?;
                let chunk = r.u32()?;
                let n = r.u32()? as usize;
                let mut entries: Vec<(String, Value)> = Vec::with_capacity(n.min(65536));
                for _ in 0..n {
                    let k = r.str()?;
                    entries.push((k, persist::decode_value(r)?));
                }
                let np = r.u32()? as usize;
                let mut proof = Vec::with_capacity(np.min(4096));
                for _ in 0..np {
                    proof.push(r.hash()?);
                }
                PbftMsg::ChunkData {
                    seq,
                    chunk,
                    entries: Arc::new(entries),
                    proof: Arc::new(proof),
                }
            }
            22 => {
                let n = r.u32()? as usize;
                let mut blocks = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    blocks.push(dec_block(r)?);
                }
                PbftMsg::SyncTail { blocks, view: r.u64()? }
            }
            23 => PbftMsg::SyncNack { have_seq: r.u64()? },
            24 => {
                let controller = match r.u8()? {
                    0 => None,
                    1 => Some(r.u64()? as usize),
                    _ => return None,
                };
                PbftMsg::Transition { controller, rejoin: dec_bool(r)? }
            }
            25 => PbftMsg::TransitionDone { replica: r.u64()? as usize },
            26 => PbftMsg::Crash,
            27 => PbftMsg::Restart,
            _ => return None,
        })
    }
}

fn dec_bool(r: &mut Reader<'_>) -> Option<bool> {
    match r.u8()? {
        0 => Some(false),
        1 => Some(true),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahl_crypto::{sha256, KeyRegistry};
    use ahl_ledger::{kvstore, Op, TxId};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn sig(seed: u64) -> Signature {
        let mut reg = KeyRegistry::new();
        let key = reg.generate(seed);
        key.sign(&sha256(seed.to_be_bytes()))
    }

    fn req(rng: &mut SmallRng) -> Request {
        Request {
            id: rng.gen(),
            client: rng.gen_range(0..64usize),
            op: Op::Direct {
                txid: TxId(rng.gen()),
                op: kvstore::kv_write(&[rng.gen_range(0..100u64)], 16),
            },
            submitted: SimTime(rng.gen_range(0..u64::MAX / 2)),
        }
    }

    fn cert(rng: &mut SmallRng) -> MsgCert {
        match rng.gen_range(0..3u8) {
            0 => MsgCert::Simulated,
            1 => MsgCert::Sig(sig(rng.gen())),
            _ => MsgCert::Attested(Attestation {
                log: LogId(rng.gen()),
                slot: Slot { view: rng.gen(), seq: rng.gen() },
                digest: sha256(rng.gen::<u64>().to_be_bytes()),
                sig: sig(rng.gen()),
            }),
        }
    }

    fn vote(rng: &mut SmallRng) -> Vote {
        Vote {
            view: rng.gen(),
            seq: rng.gen(),
            digest: sha256(rng.gen::<u64>().to_be_bytes()),
            replica: rng.gen_range(0..16usize),
            cert: cert(rng),
        }
    }

    fn block(rng: &mut SmallRng) -> Arc<PbftBlock> {
        let n = rng.gen_range(0..5usize);
        let reqs: Vec<Request> = (0..n).map(|_| req(rng)).collect();
        Arc::new(PbftBlock::new(rng.gen_range(0..9u64), rng.gen_range(0..999u64), rng.gen_range(0..7usize), reqs))
    }

    fn ckpt_cert(rng: &mut SmallRng) -> CheckpointCert {
        CheckpointCert {
            seq: rng.gen(),
            root: sha256(rng.gen::<u64>().to_be_bytes()),
            votes: (0..rng.gen_range(0..5usize))
                .map(|i| (i, rng.gen_bool(0.5).then(|| sig(rng.gen()))))
                .collect(),
        }
    }

    /// Build one message of the given variant from the rng — covers all
    /// 28 variants.
    fn make(variant: u8, rng: &mut SmallRng) -> PbftMsg {
        match variant % 28 {
            0 => PbftMsg::Request(req(rng)),
            1 => PbftMsg::Relay(req(rng)),
            2 => PbftMsg::Gossip(req(rng)),
            3 => PbftMsg::PrePrepare { block: block(rng), cert: cert(rng) },
            4 => PbftMsg::Prepare(vote(rng)),
            5 => PbftMsg::Commit(vote(rng)),
            6 => PbftMsg::RelayPrepare(vote(rng)),
            7 => PbftMsg::RelayCommit(vote(rng)),
            8 => PbftMsg::AggPrepare(AggProof {
                view: rng.gen(),
                seq: rng.gen(),
                digest: sha256(b"a"),
                count: rng.gen_range(0..20usize),
                sig: rng.gen_bool(0.5).then(|| sig(rng.gen())),
            }),
            9 => PbftMsg::AggCommit(AggProof {
                view: rng.gen(),
                seq: rng.gen(),
                digest: sha256(b"b"),
                count: rng.gen_range(0..20usize),
                sig: None,
            }),
            10 => PbftMsg::Checkpoint {
                vote: CheckpointVote {
                    seq: rng.gen(),
                    root: sha256(rng.gen::<u64>().to_be_bytes()),
                    replica: rng.gen_range(0..16usize),
                    sig: rng.gen_bool(0.5).then(|| sig(rng.gen())),
                },
            },
            11 => PbftMsg::ViewChange(ViewChangeMsg {
                new_view: rng.gen(),
                last_stable: rng.gen(),
                prepared: (0..rng.gen_range(0..6usize))
                    .map(|_| (rng.gen(), sha256(rng.gen::<u64>().to_be_bytes())))
                    .collect(),
                replica: rng.gen_range(0..16usize),
            }),
            12 => PbftMsg::PoolPull { view: rng.gen() },
            13 => PbftMsg::NewView {
                view: rng.gen(),
                reproposals: (0..rng.gen_range(0..3usize)).map(|_| block(rng)).collect(),
            },
            14 => PbftMsg::Reply { req_id: rng.gen(), committed: rng.gen_bool(0.5) },
            15 => PbftMsg::Rejected { req_id: rng.gen() },
            16 => PbftMsg::RelayRejected { req_id: rng.gen() },
            17 => PbftMsg::Heartbeat { view: rng.gen(), exec_seq: rng.gen() },
            18 => PbftMsg::SyncRequest {
                requester: rng.gen_range(0..16usize),
                have_seq: rng.gen(),
                full: rng.gen_bool(0.5),
                old_roots: (0..rng.gen_range(0..4usize))
                    .map(|_| sha256(rng.gen::<u64>().to_be_bytes()))
                    .collect(),
            },
            19 => PbftMsg::SyncManifest {
                cert: ckpt_cert(rng),
                bits: rng.gen_range(0..12u8),
                leaves: rng.gen(),
                sidecar: Arc::new(StateSidecar::default()),
                executed: Arc::new((0..rng.gen_range(0..20u64)).map(|_| rng.gen()).collect()),
                view: rng.gen(),
                diff: rng
                    .gen_bool(0.5)
                    .then(|| Arc::new((0..rng.gen_range(0..8u32)).map(|_| rng.gen()).collect())),
                diff_base: rng.gen_bool(0.5).then(|| sha256(b"base")),
            },
            20 => PbftMsg::ChunkRequest {
                requester: rng.gen_range(0..16usize),
                seq: rng.gen(),
                chunk: rng.gen(),
            },
            21 => PbftMsg::ChunkData {
                seq: rng.gen(),
                chunk: rng.gen(),
                entries: Arc::new(
                    (0..rng.gen_range(0..6usize))
                        .map(|i| (format!("key{i}"), Value::Int(rng.gen())))
                        .collect(),
                ),
                proof: Arc::new(
                    (0..rng.gen_range(0..6usize))
                        .map(|_| sha256(rng.gen::<u64>().to_be_bytes()))
                        .collect(),
                ),
            },
            22 => PbftMsg::SyncTail {
                blocks: (0..rng.gen_range(0..3usize)).map(|_| block(rng)).collect(),
                view: rng.gen(),
            },
            23 => PbftMsg::SyncNack { have_seq: rng.gen() },
            24 => PbftMsg::Transition {
                controller: rng.gen_bool(0.5).then(|| rng.gen_range(0..32usize)),
                rejoin: rng.gen_bool(0.5),
            },
            25 => PbftMsg::TransitionDone { replica: rng.gen_range(0..16usize) },
            26 => PbftMsg::Crash,
            _ => PbftMsg::Restart,
        }
    }

    /// Structural equality via canonical bytes: the codec sorts
    /// nondeterministic collections, so equal messages encode equally.
    fn assert_roundtrip(m: &PbftMsg) {
        let bytes = m.to_vec();
        let back = PbftMsg::from_slice(&bytes)
            .unwrap_or_else(|| panic!("decode failed for {m:?}"));
        assert_eq!(bytes, back.to_vec(), "re-encode mismatch for {m:?}");
    }

    #[test]
    fn all_variants_roundtrip() {
        let mut rng = SmallRng::seed_from_u64(42);
        for variant in 0..28u8 {
            for _ in 0..8 {
                assert_roundtrip(&make(variant, &mut rng));
            }
        }
    }

    #[test]
    fn every_truncation_fails_closed() {
        let mut rng = SmallRng::seed_from_u64(7);
        for variant in 0..28u8 {
            let m = make(variant, &mut rng);
            let bytes = m.to_vec();
            for cut in 0..bytes.len() {
                assert!(
                    PbftMsg::from_slice(&bytes[..cut]).is_none(),
                    "truncated at {cut}/{} decoded for {m:?}",
                    bytes.len()
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut bytes = make(4, &mut rng).to_vec();
        bytes.push(0);
        assert!(PbftMsg::from_slice(&bytes).is_none());
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(PbftMsg::from_slice(&[200]).is_none());
    }

    #[test]
    fn decoded_block_digest_is_recomputed() {
        let mut rng = SmallRng::seed_from_u64(3);
        let b = block(&mut rng);
        let m = PbftMsg::PrePrepare { block: b.clone(), cert: MsgCert::Simulated };
        match PbftMsg::from_slice(&m.to_vec()).expect("decodes") {
            PbftMsg::PrePrepare { block: back, .. } => assert_eq!(back.digest, b.digest),
            other => panic!("wrong variant {other:?}"),
        }
    }

    proptest::proptest! {
        /// Satellite battery: random variant × random contents roundtrip,
        /// and every strict prefix of the encoding fails closed (the
        /// torn-frame discipline mirrored from the WAL kill-point tests).
        #[test]
        fn proptest_roundtrip_and_torn_rejection(seed: u64, variant in 0u8..28) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let m = make(variant, &mut rng);
            let bytes = m.to_vec();
            let back = PbftMsg::from_slice(&bytes);
            proptest::prop_assert!(back.is_some());
            proptest::prop_assert_eq!(&bytes, &back.expect("checked").to_vec());
            // Torn prefix: cut at a position derived from the seed.
            if !bytes.is_empty() {
                let cut = (seed % bytes.len() as u64) as usize;
                proptest::prop_assert!(PbftMsg::from_slice(&bytes[..cut]).is_none());
            }
        }
    }

    #[test]
    fn framed_corruption_rejected_by_crc() {
        use ahl_wal::codec::{encode_frame, parse_frame};
        let mut rng = SmallRng::seed_from_u64(11);
        let m = make(3, &mut rng);
        let framed = encode_frame(&m.to_vec());
        assert!(parse_frame(&framed, 0, 1).is_some(), "clean frame parses");
        // Flip every byte in turn: CRC (or the length prefix) must reject.
        for i in 0..framed.len() {
            let mut bad = framed.clone();
            bad[i] ^= 0x40;
            if let Some((payload, _)) = parse_frame(&bad, 0, 1) {
                // A length-prefix flip can still frame-parse only if the
                // CRC happens to match a shorter payload — astronomically
                // unlikely; if it ever frames, the codec must reject it.
                assert!(PbftMsg::from_slice(payload).is_none(), "flip at {i}");
            }
        }
        // Torn frame (truncated mid-payload) never parses.
        for cut in 0..framed.len() {
            assert!(parse_frame(&framed[..cut], 0, 1).is_none(), "torn at {cut}");
        }
    }
}
