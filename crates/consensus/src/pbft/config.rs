//! Configuration for the PBFT engine and its four paper variants.

use ahl_mempool::MempoolConfig;
use ahl_simkit::SimDuration;
use ahl_tee::CostModel;

use crate::adversary::{Attack, SafetyChecker};
use crate::common::CryptoMode;

/// Quorum rule: the difference trusted hardware makes (paper §4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultModel {
    /// Classic Byzantine: N = 3f + 1, quorum 2f + 1.
    Byzantine,
    /// Non-equivocating Byzantine via attested log: N = 2f + 1, quorum f + 1.
    Attested,
}

impl FaultModel {
    /// Tolerated faults for committee size `n`.
    pub fn max_faults(self, n: usize) -> usize {
        match self {
            FaultModel::Byzantine => (n.saturating_sub(1)) / 3,
            FaultModel::Attested => (n.saturating_sub(1)) / 2,
        }
    }

    /// Quorum size for committee size `n` (votes counted including own).
    pub fn quorum(self, n: usize) -> usize {
        match self {
            FaultModel::Byzantine => 2 * self.max_faults(n) + 1,
            FaultModel::Attested => self.max_faults(n) + 1,
        }
    }

    /// Minimum committee size tolerating `f` faults.
    pub fn committee_for_faults(self, f: usize) -> usize {
        match self {
            FaultModel::Byzantine => 3 * f + 1,
            FaultModel::Attested => 2 * f + 1,
        }
    }
}

/// The four protocol variants evaluated in §7.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BftVariant {
    /// Hyperledger's original PBFT: Byzantine quorums, shared message queue,
    /// request re-broadcast.
    Hl,
    /// Attested HyperLedger: PBFT + TEE attested log (N = 2f+1), but still
    /// the shared queue and the request broadcast.
    Ahl,
    /// AHL + optimization 1 (split queues) + optimization 2 (forward
    /// requests to the leader instead of broadcasting).
    AhlPlus,
    /// AHL+ + optimization 3 (leader aggregates quorum messages inside its
    /// enclave, Byzcoin-style; O(N) communication).
    Ahlr,
}

impl BftVariant {
    /// The fault/quorum model of this variant.
    pub fn fault_model(self) -> FaultModel {
        match self {
            BftVariant::Hl => FaultModel::Byzantine,
            _ => FaultModel::Attested,
        }
    }

    /// Whether consensus messages require attested-log bindings.
    pub fn attested(self) -> bool {
        !matches!(self, BftVariant::Hl)
    }

    /// Optimization 1: separate queues for consensus and request traffic.
    pub fn split_queues(self) -> bool {
        matches!(self, BftVariant::AhlPlus | BftVariant::Ahlr)
    }

    /// Optimization 2: forward requests to the leader instead of
    /// broadcasting them to all replicas.
    pub fn relay_to_leader(self) -> bool {
        matches!(self, BftVariant::AhlPlus | BftVariant::Ahlr)
    }

    /// Optimization 3: leader-side enclave aggregation of quorum messages.
    pub fn leader_aggregation(self) -> bool {
        matches!(self, BftVariant::Ahlr)
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            BftVariant::Hl => "HL",
            BftVariant::Ahl => "AHL",
            BftVariant::AhlPlus => "AHL+",
            BftVariant::Ahlr => "AHLR",
        }
    }
}

/// Who sends the execution reply for a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplyPolicy {
    /// No replies (open-loop throughput runs; latency is measured
    /// replica-side from the request timestamp).
    None,
    /// The replica that ingested the request replies to its client
    /// (one reply per request; needed by closed-loop clients).
    IngestReplica,
}

/// Full PBFT engine configuration.
#[derive(Clone, Debug)]
pub struct PbftConfig {
    /// Protocol variant (display/default source for the flags below).
    pub variant: BftVariant,
    /// Committee size.
    pub n: usize,
    /// Use the TEE attested log (N = 2f+1 quorums).
    pub attested: bool,
    /// Optimization 1: split consensus/request queues.
    pub split_queues: bool,
    /// Optimization 2: forward requests to the leader instead of
    /// broadcasting.
    pub relay_to_leader: bool,
    /// Optimization 3: leader-side enclave aggregation (AHLR).
    pub leader_aggregation: bool,
    /// Transactions per block (Hyperledger batch).
    pub batch_size: usize,
    /// Flush a partial batch after this long.
    pub batch_timeout: SimDuration,
    /// Batch byte cap / byte-trigger threshold (`usize::MAX` = txs only).
    pub batch_bytes: usize,
    /// Per-replica transaction pool (capacity + admission policy). The
    /// pool's eviction seed is derived per replica by the group builders.
    pub mempool: MempoolConfig,
    /// Pool eviction/ordering seed (set per replica by `build_group` /
    /// `add_committee` so eviction choices differ across replicas but stay
    /// deterministic in the run seed).
    pub pool_seed: u64,
    /// Maximum blocks in flight (PBFT pipelining; lockstep = 1).
    pub pipeline_width: u64,
    /// Stable checkpoint every this many sequence numbers. At each multiple
    /// the replica snapshots its state, votes on `(seq, state_root)`, and a
    /// quorum certificate ([`ahl_store::CheckpointCert`]) gates pruning and
    /// anchors chunked state sync.
    pub checkpoint_interval: u64,
    /// Target key-value pairs per state-sync chunk. The manifest advertises
    /// `ceil(log2(state_len / target))` chunk bits; smaller chunks mean more
    /// round trips, larger chunks mean coarser retransmission on failure.
    pub sync_chunk_target: usize,
    /// Maximum chunk requests a syncing replica keeps in flight, each to a
    /// different peer in rotation (chunks verify independently, so they can
    /// be fetched out of order in parallel). 1 = the old sequential fetch.
    pub sync_fanout: usize,
    /// Serve and accept incremental (diff) state sync: a requester that
    /// still holds an older certified root advertises it, and a server that
    /// retains a snapshot at that root answers with only the changed
    /// chunks. Disabled, every chunked transfer is full.
    pub diff_sync: bool,
    /// Certified snapshots each replica retains for serving and diff
    /// computation. Snapshots are O(1) copy-on-write handles, so a deep
    /// window is nearly free — it is what lets a node that was away for
    /// several checkpoint intervals still diff-sync instead of
    /// re-transferring everything. Minimum 2 (a transfer anchored at the
    /// previous certificate must survive a checkpoint forming mid-flight).
    pub snapshot_retention: usize,
    /// Approximate resident-byte budget for the retained snapshot window.
    /// Each retained snapshot is charged the bytes written during its
    /// checkpoint interval (≈ what copy-on-write duplicates while the
    /// previous snapshot stays alive); when the window's total exceeds
    /// the budget, the oldest unpinned snapshots are evicted — the
    /// durable checkpoint and the newest snapshot are always kept. The
    /// default (`u64::MAX`) disables byte-based eviction, leaving the
    /// count cap (`snapshot_retention`) in charge.
    pub snapshot_max_bytes: u64,
    /// Node-directory root for real on-disk persistence (`ahl-wal`).
    /// `Some(dir)` makes each replica journal executed batches to a
    /// write-ahead log and persist certified checkpoints as page-backed
    /// snapshots under `dir/node-<actor id>`; a `Restart` then recovers
    /// by *reopening the directory* — manifest validation, WAL tail
    /// replay, then diff sync for the remainder — instead of consuming an
    /// in-memory stand-in. `None` (the default) keeps the pre-WAL
    /// behaviour for pure simulation sweeps. The directory must be fresh
    /// per run (replicas start from genesis).
    pub data_dir: Option<std::path::PathBuf>,
    /// WAL/page-store tuning: segment size, fsync policy (`Off` for
    /// simulation, `Always`/`EveryN` for durability benchmarks), and the
    /// crash-injection switch used by the recovery test matrix.
    pub wal: ahl_wal::WalConfig,
    /// Replay-protection horizon. Requests whose `submitted` timestamp is
    /// older than this are refused at every admission point (client
    /// ingest, relays, gossip, and batch formation), and executed request
    /// ids are remembered for at least this long regardless of checkpoint
    /// epochs. Together the two rules provably close the replay window:
    /// a stale copy (e.g. re-relayed out of a deposed Byzantine leader's
    /// pool at a view change) is either too old to admit or young enough
    /// that the executed cache still dedups it. For the closure to hold,
    /// same-id client retransmissions must reuse the *original*
    /// submission timestamp (the cross-shard driver does); retransmitting
    /// under a fresh id (how the closed-loop client and the watchdog's
    /// idempotent decision re-sends work) is always safe. Must exceed
    /// the longest same-id client retry horizon.
    pub request_ttl: SimDuration,
    /// Base view-change timeout (doubles per consecutive failure).
    pub vc_timeout: SimDuration,
    /// Reply policy.
    pub reply_policy: ReplyPolicy,
    /// Enclave operation costs (Table 2).
    pub costs: CostModel,
    /// Native (outside-enclave) signature creation cost.
    pub native_sign: SimDuration,
    /// Native signature verification cost.
    pub native_verify: SimDuration,
    /// Client-facing request ingestion cost (REST + TLS + signature check;
    /// Hyperledger v0.6 caps out near 400 requests/s per node — Appendix C.2).
    pub ingest_cost: SimDuration,
    /// Execution cost per state access (chaincode + validation).
    pub exec_cost_per_op: SimDuration,
    /// CPU scale factor (>1 = slower node, e.g. 2-vCPU GCP instances).
    pub cpu_scale: f64,
    /// Number of Byzantine replicas (assigned to the highest indices
    /// unless [`PbftConfig::byzantine_set`] overrides the placement).
    pub byzantine: usize,
    /// Explicit Byzantine group indices. `None` keeps the historical
    /// rule (highest `byzantine` indices); `Some` lets a scenario make
    /// e.g. the view-0 leader Byzantine (required by the equivocating-
    /// leader attack and the over-threshold canary).
    pub byzantine_set: Option<Vec<usize>>,
    /// What the Byzantine replicas do (see [`Attack`]). The default,
    /// [`Attack::PaperFlood`], reproduces the paper's §7.2 behaviour.
    pub attack: Attack,
    /// Global safety oracle honest replicas report commits, executions
    /// and 2PC resolutions into (`None` = no observation overhead).
    pub safety: Option<SafetyChecker>,
    /// This committee's id in the checker's records (shard number; the
    /// reference committee gets its own id).
    pub committee_id: usize,
    /// Compute real MACs or charge costs only.
    pub crypto: CryptoMode,
    /// Per-queue capacity for replica inbound queues.
    pub queue_capacity: usize,
    /// Worker threads for in-shard block execution. `1` (the default) is
    /// the classic sequential loop; `> 1` routes each block's batch
    /// through the conflict-aware wave scheduler
    /// (`ahl_ledger::parexec::execute_ops`), whose receipts, state root,
    /// and 2PC bookkeeping are byte-identical to sequential execution, and
    /// additionally runs a parallel SMT re-hash audit at checkpoint time.
    pub exec_workers: usize,
}

impl PbftConfig {
    /// Defaults for `variant` with committee size `n`.
    pub fn new(variant: BftVariant, n: usize) -> Self {
        PbftConfig {
            variant,
            n,
            attested: variant.attested(),
            split_queues: variant.split_queues(),
            relay_to_leader: variant.relay_to_leader(),
            leader_aggregation: variant.leader_aggregation(),
            batch_size: 64,
            batch_timeout: SimDuration::from_millis(25),
            batch_bytes: usize::MAX,
            mempool: MempoolConfig::default(),
            pool_seed: 0,
            pipeline_width: 4,
            checkpoint_interval: 128,
            sync_chunk_target: 1024,
            sync_fanout: 4,
            diff_sync: true,
            snapshot_retention: 8,
            snapshot_max_bytes: u64::MAX,
            data_dir: None,
            wal: ahl_wal::WalConfig::default(),
            request_ttl: SimDuration::from_secs(10),
            vc_timeout: SimDuration::from_secs(2),
            reply_policy: ReplyPolicy::None,
            costs: CostModel::default(),
            native_sign: SimDuration::from_micros(150),
            native_verify: SimDuration::from_micros(200),
            ingest_cost: SimDuration::from_micros(1200),
            exec_cost_per_op: SimDuration::from_micros(100),
            cpu_scale: 1.0,
            byzantine: 0,
            byzantine_set: None,
            attack: Attack::default(),
            safety: None,
            committee_id: 0,
            crypto: CryptoMode::CostOnly,
            queue_capacity: 4096,
            exec_workers: 1,
        }
    }

    /// Whether group index `i` is Byzantine under this configuration.
    pub fn is_byzantine(&self, i: usize) -> bool {
        match &self.byzantine_set {
            Some(set) => set.contains(&i),
            None => i >= self.n - self.byzantine,
        }
    }

    /// The effective fault model (from the `attested` flag, so ablations
    /// can toggle optimizations independently of the variant label).
    pub fn fault_model(&self) -> FaultModel {
        if self.attested {
            FaultModel::Attested
        } else {
            FaultModel::Byzantine
        }
    }

    /// Fault threshold for this configuration.
    pub fn f(&self) -> usize {
        self.fault_model().max_faults(self.n)
    }

    /// Quorum size (votes counted including own).
    pub fn quorum(&self) -> usize {
        self.fault_model().quorum(self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_model_thresholds() {
        // Paper §3.3 running example: n = 100 PBFT tolerates f = 33.
        assert_eq!(FaultModel::Byzantine.max_faults(100), 33);
        assert_eq!(FaultModel::Byzantine.quorum(100), 67);
        // §4.1: attested tolerates f = (n-1)/2 with quorum f+1.
        assert_eq!(FaultModel::Attested.max_faults(79), 39);
        assert_eq!(FaultModel::Attested.quorum(79), 40);
    }

    #[test]
    fn committee_for_faults_inverse() {
        for f in 1..30 {
            let nb = FaultModel::Byzantine.committee_for_faults(f);
            assert_eq!(FaultModel::Byzantine.max_faults(nb), f);
            let na = FaultModel::Attested.committee_for_faults(f);
            assert_eq!(FaultModel::Attested.max_faults(na), f);
        }
    }

    #[test]
    fn variant_feature_matrix() {
        use BftVariant::*;
        assert!(!Hl.attested() && !Hl.split_queues() && !Hl.relay_to_leader());
        assert!(Ahl.attested() && !Ahl.split_queues() && !Ahl.relay_to_leader());
        assert!(AhlPlus.attested() && AhlPlus.split_queues() && AhlPlus.relay_to_leader());
        assert!(!AhlPlus.leader_aggregation());
        assert!(Ahlr.leader_aggregation() && Ahlr.relay_to_leader());
    }

    #[test]
    fn config_quorums() {
        let hl = PbftConfig::new(BftVariant::Hl, 7);
        assert_eq!(hl.f(), 2);
        assert_eq!(hl.quorum(), 5);
        let ahl = PbftConfig::new(BftVariant::Ahl, 7);
        assert_eq!(ahl.f(), 3);
        assert_eq!(ahl.quorum(), 4);
    }
}
