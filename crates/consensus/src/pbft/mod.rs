//! PBFT and its TEE-assisted variants (paper §4.1): HL, AHL, AHL+, AHLR.

mod config;
mod durable;
mod msg;
mod replica;
mod wire;

pub use config::{BftVariant, FaultModel, PbftConfig, ReplyPolicy};
pub use msg::{chunk_entry_bytes, AggProof, MsgCert, PbftBlock, PbftMsg, ViewChangeMsg, Vote};
pub use replica::Replica;

use std::sync::Arc;

use ahl_crypto::KeyRegistry;
use ahl_ledger::Value;
use ahl_simkit::{MsgClass, Network, NodeId, QueueConfig, Sim, SimConfig};

/// Build a simulation containing one PBFT committee.
///
/// Returns the simulation and the replicas' actor ids (group index order).
/// Clients are added by the caller afterwards.
pub fn build_group(
    cfg: &PbftConfig,
    network: Box<dyn Network>,
    uplink_bps: Option<f64>,
    genesis: &[(String, Value)],
    seed: u64,
) -> (Sim<PbftMsg>, Vec<NodeId>) {
    fn classify(m: &PbftMsg) -> MsgClass {
        m.class()
    }
    fn size_of(m: &PbftMsg) -> usize {
        m.wire_size()
    }
    let mut sim_cfg = SimConfig::new(seed);
    sim_cfg.network = network;
    sim_cfg.classify = classify;
    sim_cfg.size_of = size_of;
    sim_cfg.uplink_bps = uplink_bps;
    let mut sim = Sim::new(sim_cfg);

    let mut registry = KeyRegistry::new();
    let keys: Vec<_> = (0..cfg.n).map(|i| registry.generate(seed ^ (i as u64) << 8)).collect();
    let tee_keys: Vec<_> = (0..cfg.n)
        .map(|i| registry.generate(seed ^ ((i as u64) << 8) ^ 1))
        .collect();
    let registry = Arc::new(registry);

    let group: Vec<NodeId> = (0..cfg.n).collect();
    let mut keys = keys.into_iter();
    let mut tee_keys = tee_keys.into_iter();
    for i in 0..cfg.n {
        // Reporter: lowest-index replica that is never Byzantine and is not
        // the initial leader (when the committee is bigger than one).
        let reporter = if cfg.n == 1 { i == 0 } else { i == 1 };
        let mut rcfg = cfg.clone();
        rcfg.pool_seed = ahl_simkit::rng::derive_seed(seed, 0x4D45_4D50 ^ i as u64);
        let replica = Replica::new(
            rcfg,
            group.clone(),
            i,
            keys.next().expect("one key per replica"),
            tee_keys.next().expect("one TEE key per replica"),
            registry.clone(),
            genesis,
            reporter,
        );
        let queues = if cfg.split_queues {
            QueueConfig::split(cfg.queue_capacity, cfg.queue_capacity)
        } else {
            QueueConfig::shared(cfg.queue_capacity)
        };
        let id = sim.add_actor(Box::new(replica), queues);
        debug_assert_eq!(id, group[i]);
    }
    (sim, group)
}

/// Add one PBFT committee to an existing simulation (used by the sharded
/// system where many committees share one simulation). The committee's
/// replicas receive the next `cfg.n` consecutive actor ids.
pub fn add_committee(
    sim: &mut Sim<PbftMsg>,
    cfg: &PbftConfig,
    genesis: &[(String, Value)],
    seed: u64,
) -> Vec<NodeId> {
    let start = sim.num_actors();
    let group: Vec<NodeId> = (start..start + cfg.n).collect();
    let mut registry = KeyRegistry::new();
    let keys: Vec<_> = (0..cfg.n)
        .map(|i| registry.generate(seed ^ ((i as u64) << 8)))
        .collect();
    let tee_keys: Vec<_> = (0..cfg.n)
        .map(|i| registry.generate(seed ^ ((i as u64) << 8) ^ 1))
        .collect();
    let registry = Arc::new(registry);
    let mut keys = keys.into_iter();
    let mut tee_keys = tee_keys.into_iter();
    for i in 0..cfg.n {
        let reporter = if cfg.n == 1 { i == 0 } else { i == 1 };
        let mut rcfg = cfg.clone();
        rcfg.pool_seed = ahl_simkit::rng::derive_seed(seed, 0x4D45_4D50 ^ i as u64);
        let replica = Replica::new(
            rcfg,
            group.clone(),
            i,
            keys.next().expect("one key per replica"),
            tee_keys.next().expect("one TEE key per replica"),
            registry.clone(),
            genesis,
            reporter,
        );
        let queues = if cfg.split_queues {
            QueueConfig::split(cfg.queue_capacity, cfg.queue_capacity)
        } else {
            QueueConfig::shared(cfg.queue_capacity)
        };
        let id = sim.add_actor(Box::new(replica), queues);
        debug_assert_eq!(id, group[i]);
    }
    group
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clients::OpenLoopClient;
    use crate::common::{stat, CryptoMode};
    use ahl_ledger::{kvstore, Op, TxId};
    use ahl_simkit::{SimDuration, SimTime, UniformNetwork};

    fn kv_factory() -> crate::common::OpFactory {
        let mut i = 0u64;
        Box::new(move |_rng| {
            i += 1;
            Op::Direct {
                txid: TxId(i),
                op: kvstore::kv_write(&[i % 100], 16),
            }
        })
    }

    fn run_variant(variant: BftVariant, n: usize, secs: u64, byz: usize) -> (u64, u64, u64) {
        let mut cfg = PbftConfig::new(variant, n);
        cfg.byzantine = byz;
        cfg.crypto = CryptoMode::Real;
        cfg.batch_size = 10;
        cfg.vc_timeout = SimDuration::from_millis(500);
        let net = Box::new(UniformNetwork::new(SimDuration::from_micros(300)));
        let (mut sim, group) = build_group(&cfg, net, Some(1e9), &[], 42);
        let stop = SimTime::ZERO + SimDuration::from_secs(secs);
        let client = OpenLoopClient::new(
            group.clone(),
            SimDuration::from_millis(2),
            stop,
            kv_factory(),
        );
        sim.add_actor(Box::new(client), QueueConfig::unbounded());
        sim.run_until(stop + SimDuration::from_secs(2));
        (
            sim.stats().counter(stat::TXN_COMMITTED),
            sim.stats().counter(stat::VIEW_CHANGES),
            sim.stats().counter(stat::TXN_ABORTED),
        )
    }

    #[test]
    fn hl_commits_transactions() {
        let (committed, _vc, aborted) = run_variant(BftVariant::Hl, 4, 2, 0);
        assert!(committed > 500, "committed {committed}");
        assert_eq!(aborted, 0);
    }

    #[test]
    fn ahl_commits_transactions() {
        let (committed, vc, _) = run_variant(BftVariant::Ahl, 3, 2, 0);
        assert!(committed > 500, "committed {committed}");
        assert_eq!(vc, 0);
    }

    #[test]
    fn ahl_plus_commits_transactions() {
        let (committed, vc, _) = run_variant(BftVariant::AhlPlus, 5, 2, 0);
        assert!(committed > 500, "committed {committed}");
        assert_eq!(vc, 0);
    }

    #[test]
    fn ahlr_commits_transactions() {
        let (committed, _vc, _) = run_variant(BftVariant::Ahlr, 5, 2, 0);
        assert!(committed > 300, "committed {committed}");
    }

    #[test]
    fn single_node_degenerate_group() {
        let (committed, _, _) = run_variant(BftVariant::Hl, 1, 1, 0);
        assert!(committed > 200, "committed {committed}");
    }

    #[test]
    fn ahl_tolerates_f_withholding_byzantine() {
        // n = 5 attested tolerates f = 2: with 2 Byzantine (withholding)
        // replicas the committee still commits.
        let (committed, _, _) = run_variant(BftVariant::AhlPlus, 5, 3, 2);
        assert!(committed > 200, "committed {committed}");
    }

    #[test]
    fn hl_equivocation_degrades_but_does_not_break_safety() {
        // n = 7 Byzantine model tolerates f = 2 equivocators.
        let (committed, _vc, _) = run_variant(BftVariant::Hl, 7, 3, 2);
        assert!(committed > 50, "committed {committed}");
    }

    #[test]
    fn replicas_agree_on_state() {
        let mut cfg = PbftConfig::new(BftVariant::AhlPlus, 5);
        cfg.crypto = CryptoMode::Real;
        cfg.batch_size = 5;
        let net = Box::new(UniformNetwork::new(SimDuration::from_micros(300)));
        let (mut sim, group) = build_group(&cfg, net, Some(1e9), &[], 7);
        let stop = SimTime::ZERO + SimDuration::from_secs(1);
        let client = OpenLoopClient::new(
            group.clone(),
            SimDuration::from_millis(5),
            stop,
            kv_factory(),
        );
        sim.add_actor(Box::new(client), QueueConfig::unbounded());
        sim.run_until(stop + SimDuration::from_secs(3));
        // All honest replicas executed the same prefix: compare states of
        // replicas with equal exec_seq (they all should have caught up at
        // quiescence).
        let digests: Vec<_> = group
            .iter()
            .map(|&id| {
                let r = sim
                    .actor(id)
                    .as_any()
                    .expect("replica supports inspection")
                    .downcast_ref::<Replica>()
                    .expect("replica actor");
                (r.exec_seq(), r.state().state_digest())
            })
            .collect();
        let max_seq = digests.iter().map(|(s, _)| *s).max().expect("non-empty");
        assert!(max_seq > 0);
        for (s, d) in &digests {
            if *s == max_seq {
                assert_eq!(*d, digests.iter().find(|(s2, _)| *s2 == max_seq).expect("exists").1);
            }
        }
    }

    /// Minimal [`ahl_simkit::Host`] for driving one replica handler at a
    /// time — the same entry point [`ahl_net::NodeRuntime`] uses — so a
    /// test can inspect the exact outbox each delivery produces.
    struct TestHost {
        now: SimTime,
        rng: rand::rngs::SmallRng,
        stats: ahl_simkit::Stats,
    }

    impl ahl_simkit::Host for TestHost {
        fn now(&self) -> SimTime {
            self.now
        }
        fn num_nodes(&self) -> usize {
            4
        }
        fn set_timer(&mut self, _node: NodeId, _delay: SimDuration, _kind: u64) {}
        fn rng(&mut self, _node: NodeId) -> &mut rand::rngs::SmallRng {
            &mut self.rng
        }
        fn stats(&mut self) -> &mut ahl_simkit::Stats {
            &mut self.stats
        }
        fn halt(&mut self) {}
    }

    /// Deferred batch verification must not let a forged signature vote
    /// count toward a quorum: votes with `MsgCert::Sig` are admitted
    /// tentatively, then settled via [`KeyRegistry::verify_batch`] when
    /// the digest reaches quorum. A forged vote (right key id, wrong
    /// digest signed) must be evicted at settle time — no commit until a
    /// genuine quorum exists.
    #[test]
    fn forged_sig_vote_is_evicted_at_quorum_settle() {
        use ahl_simkit::{Actor, Ctx};
        use rand::SeedableRng;

        let seed = 42u64;
        let mut cfg = PbftConfig::new(BftVariant::Hl, 4);
        cfg.crypto = CryptoMode::Real;
        let mut registry = KeyRegistry::new();
        let mut keys: Vec<_> =
            (0..cfg.n).map(|i| registry.generate(seed ^ (i as u64) << 8)).collect();
        let tee_keys: Vec<_> =
            (0..cfg.n).map(|i| registry.generate(seed ^ ((i as u64) << 8) ^ 1)).collect();
        let registry = Arc::new(registry);

        let block = Arc::new(PbftBlock::new(0, 1, 0, vec![]));
        let leader_cert = MsgCert::Sig(keys[0].sign(&block.digest));
        let valid_vote = |replica: usize, keys: &[ahl_crypto::SigningKey]| Vote {
            view: 0,
            seq: 1,
            digest: block.digest,
            replica,
            cert: MsgCert::Sig(keys[replica].sign(&block.digest)),
        };
        let vote2 = valid_vote(2, &keys);
        let vote3_good = valid_vote(3, &keys);
        // Replica 3's genuine key signing the WRONG digest: the signer id
        // matches, the MAC does not — exactly what batch verification has
        // to catch.
        let forged3 = Vote {
            cert: MsgCert::Sig(keys[3].sign(&ahl_crypto::sha256(b"some other block"))),
            ..vote3_good.clone()
        };

        let mut tee_keys = tee_keys.into_iter();
        let mut replica = Replica::new(
            cfg,
            (0..4).collect(),
            1,
            keys.swap_remove(1),
            tee_keys.nth(1).expect("tee key"),
            registry,
            &[],
            false,
        );
        let mut host = TestHost {
            now: SimTime::ZERO + SimDuration::from_millis(1),
            rng: rand::rngs::SmallRng::seed_from_u64(seed),
            stats: ahl_simkit::Stats::new(),
        };
        let deliver = |r: &mut Replica, host: &mut TestHost, from: NodeId, msg: PbftMsg| {
            let mut ctx = Ctx::for_host(host, 1);
            r.on_message(from, msg, &mut ctx);
            ctx.finish().1
        };

        // Leader proposal: replica 1 accepts and multicasts its prepare.
        let out =
            deliver(&mut replica, &mut host, 0, PbftMsg::PrePrepare { block: block.clone(), cert: leader_cert });
        assert!(
            out.iter().any(|(_, m)| matches!(m, PbftMsg::Prepare(_))),
            "follower must prepare after a certified pre-prepare"
        );

        // Forged vote from replica 3 trips the quorum count (leader + self
        // + forged = 2f + 1) — batch settle must reject it and evict the
        // vote, so no commit goes out.
        let out = deliver(&mut replica, &mut host, 3, PbftMsg::Prepare(forged3));
        assert!(
            !out.iter().any(|(_, m)| matches!(m, PbftMsg::Commit(_))),
            "forged vote must not complete a prepare quorum"
        );
        assert_eq!(host.stats.counter("consensus.invalid_msg"), 1, "forgery counted");

        // A genuine third vote completes the quorum: commit goes out.
        let out = deliver(&mut replica, &mut host, 2, PbftMsg::Prepare(vote2));
        assert!(
            out.iter().any(|(_, m)| matches!(m, PbftMsg::Commit(_))),
            "genuine quorum must produce a commit"
        );

        // Replica 3 re-voting honestly is counted normally (its forged
        // vote was evicted, not blacklisted) and settles clean.
        let before = host.stats.counter("consensus.invalid_msg");
        deliver(&mut replica, &mut host, 3, PbftMsg::Prepare(vote3_good));
        assert_eq!(host.stats.counter("consensus.invalid_msg"), before);
    }
}
