//! PBFT and its TEE-assisted variants (paper §4.1): HL, AHL, AHL+, AHLR.

mod config;
mod durable;
mod msg;
mod replica;

pub use config::{BftVariant, FaultModel, PbftConfig, ReplyPolicy};
pub use msg::{chunk_entry_bytes, AggProof, MsgCert, PbftBlock, PbftMsg, ViewChangeMsg, Vote};
pub use replica::Replica;

use std::sync::Arc;

use ahl_crypto::KeyRegistry;
use ahl_ledger::Value;
use ahl_simkit::{MsgClass, Network, NodeId, QueueConfig, Sim, SimConfig};

/// Build a simulation containing one PBFT committee.
///
/// Returns the simulation and the replicas' actor ids (group index order).
/// Clients are added by the caller afterwards.
pub fn build_group(
    cfg: &PbftConfig,
    network: Box<dyn Network>,
    uplink_bps: Option<f64>,
    genesis: &[(String, Value)],
    seed: u64,
) -> (Sim<PbftMsg>, Vec<NodeId>) {
    fn classify(m: &PbftMsg) -> MsgClass {
        m.class()
    }
    fn size_of(m: &PbftMsg) -> usize {
        m.wire_size()
    }
    let mut sim_cfg = SimConfig::new(seed);
    sim_cfg.network = network;
    sim_cfg.classify = classify;
    sim_cfg.size_of = size_of;
    sim_cfg.uplink_bps = uplink_bps;
    let mut sim = Sim::new(sim_cfg);

    let mut registry = KeyRegistry::new();
    let keys: Vec<_> = (0..cfg.n).map(|i| registry.generate(seed ^ (i as u64) << 8)).collect();
    let tee_keys: Vec<_> = (0..cfg.n)
        .map(|i| registry.generate(seed ^ ((i as u64) << 8) ^ 1))
        .collect();
    let registry = Arc::new(registry);

    let group: Vec<NodeId> = (0..cfg.n).collect();
    let mut keys = keys.into_iter();
    let mut tee_keys = tee_keys.into_iter();
    for i in 0..cfg.n {
        // Reporter: lowest-index replica that is never Byzantine and is not
        // the initial leader (when the committee is bigger than one).
        let reporter = if cfg.n == 1 { i == 0 } else { i == 1 };
        let mut rcfg = cfg.clone();
        rcfg.pool_seed = ahl_simkit::rng::derive_seed(seed, 0x4D45_4D50 ^ i as u64);
        let replica = Replica::new(
            rcfg,
            group.clone(),
            i,
            keys.next().expect("one key per replica"),
            tee_keys.next().expect("one TEE key per replica"),
            registry.clone(),
            genesis,
            reporter,
        );
        let queues = if cfg.split_queues {
            QueueConfig::split(cfg.queue_capacity, cfg.queue_capacity)
        } else {
            QueueConfig::shared(cfg.queue_capacity)
        };
        let id = sim.add_actor(Box::new(replica), queues);
        debug_assert_eq!(id, group[i]);
    }
    (sim, group)
}

/// Add one PBFT committee to an existing simulation (used by the sharded
/// system where many committees share one simulation). The committee's
/// replicas receive the next `cfg.n` consecutive actor ids.
pub fn add_committee(
    sim: &mut Sim<PbftMsg>,
    cfg: &PbftConfig,
    genesis: &[(String, Value)],
    seed: u64,
) -> Vec<NodeId> {
    let start = sim.num_actors();
    let group: Vec<NodeId> = (start..start + cfg.n).collect();
    let mut registry = KeyRegistry::new();
    let keys: Vec<_> = (0..cfg.n)
        .map(|i| registry.generate(seed ^ ((i as u64) << 8)))
        .collect();
    let tee_keys: Vec<_> = (0..cfg.n)
        .map(|i| registry.generate(seed ^ ((i as u64) << 8) ^ 1))
        .collect();
    let registry = Arc::new(registry);
    let mut keys = keys.into_iter();
    let mut tee_keys = tee_keys.into_iter();
    for i in 0..cfg.n {
        let reporter = if cfg.n == 1 { i == 0 } else { i == 1 };
        let mut rcfg = cfg.clone();
        rcfg.pool_seed = ahl_simkit::rng::derive_seed(seed, 0x4D45_4D50 ^ i as u64);
        let replica = Replica::new(
            rcfg,
            group.clone(),
            i,
            keys.next().expect("one key per replica"),
            tee_keys.next().expect("one TEE key per replica"),
            registry.clone(),
            genesis,
            reporter,
        );
        let queues = if cfg.split_queues {
            QueueConfig::split(cfg.queue_capacity, cfg.queue_capacity)
        } else {
            QueueConfig::shared(cfg.queue_capacity)
        };
        let id = sim.add_actor(Box::new(replica), queues);
        debug_assert_eq!(id, group[i]);
    }
    group
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clients::OpenLoopClient;
    use crate::common::{stat, CryptoMode};
    use ahl_ledger::{kvstore, Op, TxId};
    use ahl_simkit::{SimDuration, SimTime, UniformNetwork};

    fn kv_factory() -> crate::common::OpFactory {
        let mut i = 0u64;
        Box::new(move |_rng| {
            i += 1;
            Op::Direct {
                txid: TxId(i),
                op: kvstore::kv_write(&[i % 100], 16),
            }
        })
    }

    fn run_variant(variant: BftVariant, n: usize, secs: u64, byz: usize) -> (u64, u64, u64) {
        let mut cfg = PbftConfig::new(variant, n);
        cfg.byzantine = byz;
        cfg.crypto = CryptoMode::Real;
        cfg.batch_size = 10;
        cfg.vc_timeout = SimDuration::from_millis(500);
        let net = Box::new(UniformNetwork::new(SimDuration::from_micros(300)));
        let (mut sim, group) = build_group(&cfg, net, Some(1e9), &[], 42);
        let stop = SimTime::ZERO + SimDuration::from_secs(secs);
        let client = OpenLoopClient::new(
            group.clone(),
            SimDuration::from_millis(2),
            stop,
            kv_factory(),
        );
        sim.add_actor(Box::new(client), QueueConfig::unbounded());
        sim.run_until(stop + SimDuration::from_secs(2));
        (
            sim.stats().counter(stat::TXN_COMMITTED),
            sim.stats().counter(stat::VIEW_CHANGES),
            sim.stats().counter(stat::TXN_ABORTED),
        )
    }

    #[test]
    fn hl_commits_transactions() {
        let (committed, _vc, aborted) = run_variant(BftVariant::Hl, 4, 2, 0);
        assert!(committed > 500, "committed {committed}");
        assert_eq!(aborted, 0);
    }

    #[test]
    fn ahl_commits_transactions() {
        let (committed, vc, _) = run_variant(BftVariant::Ahl, 3, 2, 0);
        assert!(committed > 500, "committed {committed}");
        assert_eq!(vc, 0);
    }

    #[test]
    fn ahl_plus_commits_transactions() {
        let (committed, vc, _) = run_variant(BftVariant::AhlPlus, 5, 2, 0);
        assert!(committed > 500, "committed {committed}");
        assert_eq!(vc, 0);
    }

    #[test]
    fn ahlr_commits_transactions() {
        let (committed, _vc, _) = run_variant(BftVariant::Ahlr, 5, 2, 0);
        assert!(committed > 300, "committed {committed}");
    }

    #[test]
    fn single_node_degenerate_group() {
        let (committed, _, _) = run_variant(BftVariant::Hl, 1, 1, 0);
        assert!(committed > 200, "committed {committed}");
    }

    #[test]
    fn ahl_tolerates_f_withholding_byzantine() {
        // n = 5 attested tolerates f = 2: with 2 Byzantine (withholding)
        // replicas the committee still commits.
        let (committed, _, _) = run_variant(BftVariant::AhlPlus, 5, 3, 2);
        assert!(committed > 200, "committed {committed}");
    }

    #[test]
    fn hl_equivocation_degrades_but_does_not_break_safety() {
        // n = 7 Byzantine model tolerates f = 2 equivocators.
        let (committed, _vc, _) = run_variant(BftVariant::Hl, 7, 3, 2);
        assert!(committed > 50, "committed {committed}");
    }

    #[test]
    fn replicas_agree_on_state() {
        let mut cfg = PbftConfig::new(BftVariant::AhlPlus, 5);
        cfg.crypto = CryptoMode::Real;
        cfg.batch_size = 5;
        let net = Box::new(UniformNetwork::new(SimDuration::from_micros(300)));
        let (mut sim, group) = build_group(&cfg, net, Some(1e9), &[], 7);
        let stop = SimTime::ZERO + SimDuration::from_secs(1);
        let client = OpenLoopClient::new(
            group.clone(),
            SimDuration::from_millis(5),
            stop,
            kv_factory(),
        );
        sim.add_actor(Box::new(client), QueueConfig::unbounded());
        sim.run_until(stop + SimDuration::from_secs(3));
        // All honest replicas executed the same prefix: compare states of
        // replicas with equal exec_seq (they all should have caught up at
        // quiescence).
        let digests: Vec<_> = group
            .iter()
            .map(|&id| {
                let r = sim
                    .actor(id)
                    .as_any()
                    .expect("replica supports inspection")
                    .downcast_ref::<Replica>()
                    .expect("replica actor");
                (r.exec_seq(), r.state().state_digest())
            })
            .collect();
        let max_seq = digests.iter().map(|(s, _)| *s).max().expect("non-empty");
        assert!(max_seq > 0);
        for (s, d) in &digests {
            if *s == max_seq {
                assert_eq!(*d, digests.iter().find(|(s2, _)| *s2 == max_seq).expect("exists").1);
            }
        }
    }
}
