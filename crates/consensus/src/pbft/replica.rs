//! The PBFT replica state machine, covering all four paper variants
//! (HL, AHL, AHL+, AHLR) via [`PbftConfig`].
//!
//! Normal case: the leader batches requests into blocks and drives the
//! three-phase protocol (pre-prepare / prepare / commit) with pipelining —
//! several blocks in flight, the property that lets PBFT outperform the
//! lockstep protocols in Figure 2. Faulty leaders are replaced by a view
//! change with exponential backoff.
//!
//! Variant behaviour:
//! * **HL** — Byzantine quorums (2f+1 of 3f+1), native signatures, request
//!   re-broadcast to all replicas, one shared inbound queue.
//! * **AHL** — every consensus send first binds its digest to the enclave's
//!   attested log (equivocation impossible), so quorums shrink to f+1 of
//!   2f+1.
//! * **AHL+** — adds optimization 1 (split queues, configured by the
//!   harness) and optimization 2 (requests forwarded to the leader only).
//! * **AHLR** — adds optimization 3: votes go only to the leader, whose
//!   enclave verifies a quorum and emits one aggregated proof (O(N)
//!   messages, at the cost of leader CPU and fragility — reproducing the
//!   paper's finding that AHL+ beats AHLR).

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::Arc;

use ahl_crypto::{Hash, KeyRegistry, SigningKey};
use ahl_ledger::{
    Block as LedgerBlock, Chain, Key, StateSidecar, StateSnapshot, StateStore, Value,
};
use ahl_mempool::{Admission, BatchBuilder, BatchConfig, Mempool};
use ahl_simkit::{Actor, Ctx, NodeId, Phase, Scope, SimDuration, SimTime};
use ahl_store::{
    chunk_bits_for, CheckpointCert, CheckpointTracker, CheckpointVote, SyncError, SyncSession,
};
use ahl_tee::{verify_attestation, AttestedLog, LogId, Slot, TeeOp};

use crate::adversary::{equivocation_half, Attack, EquivocationTracker};
use crate::common::{stat, CryptoMode, ExecutedCache, Request};
use crate::pbft::config::{PbftConfig, ReplyPolicy};
use crate::pbft::durable::{twopc_kind, NodeStore, TwoPcKind, WalRecord};
use crate::pbft::msg::{chunk_entry_bytes, AggProof, MsgCert, PbftBlock, PbftMsg, ViewChangeMsg, Vote};

const TIMER_BATCH: u64 = 1;
const TIMER_VC: u64 = 2;
const TIMER_HEARTBEAT: u64 = 3;
const TIMER_SYNC: u64 = 4;

const PREPARE_LOG: LogId = LogId(1);
const COMMIT_LOG: LogId = LogId(2);
const PREPREPARE_LOG: LogId = LogId(3);

/// Per-sequence protocol instance.
#[derive(Default)]
struct Instance {
    view: u64,
    block: Option<Arc<PbftBlock>>,
    prepares: HashMap<Hash, HashSet<usize>>,
    commits: HashMap<Hash, HashSet<usize>>,
    relay_prepares: HashMap<Hash, HashSet<usize>>,
    relay_commits: HashMap<Hash, HashSet<usize>>,
    /// Signature certificates admitted tentatively, awaiting quorum-time
    /// batch verification ([`KeyRegistry::verify_batch`]): digest → voter
    /// → signature. Only populated for `MsgCert::Sig` votes (HL under
    /// real crypto); prepare and commit votes by one replica sign the
    /// same block digest, so one pool covers both phases.
    pending_sigs: HashMap<Hash, HashMap<usize, ahl_crypto::Signature>>,
    sent_prepare: bool,
    sent_commit: bool,
    agg_prepare_sent: bool,
    agg_commit_sent: bool,
    committed: bool,
    executed: bool,
}

/// State + executed-request snapshot taken at a checkpoint height; once a
/// certificate forms for that height it becomes the serving source for
/// chunked state sync (chunks must verify against the *certified* root, so
/// they cannot be cut from live, still-mutating state).
///
/// Capture is O(1) in the state size: [`StateStore::snapshot`] hands out a
/// frozen copy-on-write tree handle whose leaves carry the values, so the
/// snapshot serves complete chunks without a deep clone of the flat map.
/// Retaining several of these is what makes diff sync serveable.
#[derive(Clone)]
struct CkptSnapshot {
    seq: u64,
    snap: Arc<StateSnapshot>,
    executed: Arc<HashSet<u64>>,
    /// Approximate resident bytes written during this snapshot's
    /// checkpoint interval — what retaining the *previous* snapshot costs
    /// in copy-on-write duplication. Byte-budgeted eviction
    /// (`snapshot_max_bytes`) sums these over the serving window.
    approx_bytes: u64,
}

/// Requester-side phase of an in-flight state sync.
enum SyncPhase {
    /// Waiting for the server's manifest (or a direct block tail).
    AwaitManifest,
    /// Fetching and verifying chunks against the certified root. Up to
    /// `sync_fanout` chunk requests stay in flight, each to a different
    /// peer in rotation (`inflight` lists the outstanding chunk indices).
    Chunks {
        session: SyncSession<Value>,
        sidecar: Arc<StateSidecar>,
        executed: Arc<HashSet<u64>>,
        view: u64,
        inflight: Vec<u32>,
    },
    /// Chunks installed; waiting for the block tail above the certificate.
    AwaitTail,
}

/// An in-flight state-sync exchange (requester side).
struct SyncRun {
    phase: SyncPhase,
    /// Current serving peer (group index); rotated on failure/timeout and
    /// per in-flight chunk request (fan-out).
    peer: usize,
    /// Full re-fetch (shard transition / restart) vs gap catch-up.
    full: bool,
    /// Full fetch into a shard whose state this node recently held: its
    /// old certified root is meaningful and diff sync applies.
    rejoin: bool,
    /// Whether a chunked transfer happened (vs tail-only catch-up).
    chunked: bool,
    /// Whether a diff (incremental) session ran in this exchange.
    diffed: bool,
    /// Diff disabled for the rest of this exchange (a diff install missed
    /// the certified root; the retry must be a full transfer).
    no_diff: bool,
    /// The retained snapshot matching the manifest's `diff_base` — the
    /// base a diff plan's chunks overlay onto. Resolved when the manifest
    /// arrives (the requester advertises its whole retained window; the
    /// server picks any root it also holds).
    anchor: Option<Arc<StateSnapshot>>,
    /// Highest certificate sequence this exchange has committed to.
    /// Manifests below it are refused: peers that are themselves stale
    /// (freshly restarted, still recovering) keep serving their old
    /// certificate, and accepting it would make the exchange oscillate
    /// between targets instead of converging.
    floor_seq: u64,
    /// Consecutive chunk-phase Nacks without progress. One stale peer in
    /// the rotation must not reset the whole session (re-anchoring
    /// discards every verified chunk); only a full rotation's worth of
    /// Nacks — evidence the *committee* moved past our certificate —
    /// forces a re-anchor.
    nack_strikes: u8,
    started: SimTime,
    last_activity: SimTime,
    /// Actors to notify with `TransitionDone` when the sync completes
    /// (overlapping reshard events can each be waiting on this replica).
    notify: Vec<NodeId>,
}

/// A PBFT replica actor.
pub struct Replica {
    cfg: PbftConfig,
    /// Actor ids of all committee members; index = group index.
    group: Vec<NodeId>,
    /// My group index.
    me: usize,
    /// Report global throughput/latency stats from this replica only.
    reporter: bool,
    /// Maintain a full ledger chain (disable for very large sweeps).
    maintain_chain: bool,

    key: SigningKey,
    registry: Arc<KeyRegistry>,
    tee: AttestedLog,

    state: StateStore,
    chain: Chain,

    view: u64,
    next_seq: u64,
    exec_seq: u64,
    low_mark: u64,
    insts: HashMap<u64, Instance>,

    /// The shard's transaction pool: deduplication, admission control and
    /// batch ordering live here (replacing the old private `VecDeque`).
    pool: Mempool<Request>,
    /// Size/byte/timeout batch-formation triggers over `pool`.
    batcher: BatchBuilder,
    ingested: HashMap<u64, NodeId>,
    /// Executed-request replay protection, pruned at checkpoint epochs
    /// (bounded — see [`ExecutedCache`]).
    executed_reqs: ExecutedCache,

    /// Genesis state (reloaded on a crash/restart before state sync).
    genesis: Arc<Vec<(Key, Value)>>,

    /// Checkpoint votes → certificates (pruning + sync anchoring).
    ckpt: CheckpointTracker,
    /// Snapshots at recent own checkpoint heights, awaiting certification.
    snapshots: Vec<CkptSnapshot>,
    /// The certified snapshots this replica serves state sync from — the
    /// latest `snapshot_retention` certificates (snapshots are O(1)
    /// copy-on-write handles, so a deep window costs almost nothing). A
    /// transfer anchored at an older retained certificate survives
    /// checkpoints forming mid-transfer, and a rejoiner whose last
    /// certified root is anywhere in the window gets a diff.
    serving: Vec<(CheckpointCert, CkptSnapshot)>,
    /// Sequence below which executed instances have been pruned. Kept one
    /// checkpoint interval behind `low_mark` so the committed-block tail
    /// above the previous certificate stays servable.
    insts_floor: u64,
    /// The last certified own snapshot. Without a `data_dir` this is an
    /// in-memory stand-in for the on-disk checkpoint; with one, it mirrors
    /// what [`NodeStore::persist_checkpoint`] actually put on disk, and
    /// `Restart` re-reads the disk copy instead of trusting this field.
    durable: Option<(CheckpointCert, CkptSnapshot)>,
    /// This replica's node directory (`<data_dir>/node-<actor id>`), when
    /// real persistence is configured.
    store_dir: Option<PathBuf>,
    /// Open WAL + page store handles. Dropped on crash (a dead process
    /// holds no file handles); reopened — with full recovery validation —
    /// on restart. `None` also after an I/O error: persistence failures
    /// are treated as crashes, never silently ignored.
    durable_store: Option<NodeStore>,
    /// In-flight state sync (requester side).
    sync: Option<SyncRun>,
    /// True while a full re-fetch (transition/restart) suspends consensus
    /// participation: no votes, proposals, or relays until sync completes.
    paused: bool,
    /// Dark after a [`PbftMsg::Crash`] until the matching `Restart`: every
    /// message is dropped, timers idle.
    crashed: bool,

    /// View-change votes with arrival times: only fresh votes count toward
    /// quorums, so votes cast by nodes that were briefly cut off long ago
    /// cannot combine into a surprise view change much later.
    vc_votes: HashMap<u64, HashMap<usize, (ahl_simkit::SimTime, ViewChangeMsg)>>,
    vc_backoff: u32,
    last_progress_seq: u64,
    highest_vc_sent: u64,
    /// Last time any peer message arrived (isolation detection: a node
    /// receiving nothing at all is cut off — suspecting the leader is
    /// pointless and a view change could never gather a quorum).
    last_msg_at: ahl_simkit::SimTime,
    /// Consecutive no-progress checks (a view change needs two strikes, so
    /// a single transient stall — rejoining after isolation, state sync in
    /// flight — never triggers one).
    stall_strikes: u8,

    byzantine: bool,
    /// Stale-replay attack state: the previous (prepare, commit) votes,
    /// replayed in place of current ones.
    stale_votes: [Option<Vote>; 2],
    /// Equivocation-collusion state (shared double-signing bookkeeping).
    byz_equiv: EquivocationTracker,
}

impl Replica {
    /// Create a replica.
    ///
    /// `group` are the actor ids of the committee (index = group index),
    /// `me` is this replica's group index, `key` its (enclave) signing key
    /// and `registry` the shared verification oracle.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cfg: PbftConfig,
        group: Vec<NodeId>,
        me: usize,
        key: SigningKey,
        tee_key: SigningKey,
        registry: Arc<KeyRegistry>,
        genesis: &[(String, Value)],
        reporter: bool,
    ) -> Self {
        let byzantine = cfg.is_byzantine(me);
        let genesis: Arc<Vec<(Key, Value)>> = Arc::new(genesis.to_vec());
        let mut state = StateStore::new();
        state.load_genesis(&genesis);
        // Real persistence: one node directory per actor id (unique even
        // when several committees share a simulation). The directory is
        // expected to be fresh per run; recovery happens via `Restart`.
        // A directory that cannot even be created/opened is a
        // configuration error (unwritable path, typo): failing loudly
        // beats silently running the whole simulation diskless.
        let store_dir = cfg.data_dir.as_ref().map(|d| d.join(format!("node-{}", group[me])));
        let durable_store = store_dir.as_ref().map(|d| {
            let (store, _, _) = NodeStore::open(d, &cfg.wal)
                .unwrap_or_else(|e| panic!("data_dir {d:?} is unusable: {e}"));
            store
        });
        let pool = Mempool::new(cfg.mempool.clone(), cfg.pool_seed ^ me as u64);
        let batcher = BatchBuilder::new(BatchConfig {
            max_txs: cfg.batch_size,
            max_bytes: cfg.batch_bytes,
            timeout: cfg.batch_timeout,
        });
        Replica {
            maintain_chain: cfg.n <= 24,
            byzantine,
            cfg,
            group,
            me,
            reporter,
            key,
            registry,
            tee: AttestedLog::new(tee_key),
            state,
            chain: Chain::new(),
            view: 0,
            next_seq: 1,
            exec_seq: 0,
            low_mark: 0,
            insts: HashMap::new(),
            pool,
            batcher,
            ingested: HashMap::new(),
            executed_reqs: ExecutedCache::new(),
            genesis,
            ckpt: CheckpointTracker::new(),
            snapshots: Vec::new(),
            serving: Vec::new(),
            insts_floor: 0,
            durable: None,
            store_dir,
            durable_store,
            sync: None,
            paused: false,
            crashed: false,
            vc_votes: HashMap::new(),
            vc_backoff: 0,
            last_progress_seq: 0,
            highest_vc_sent: 0,
            last_msg_at: ahl_simkit::SimTime::ZERO,
            stall_strikes: 0,
            stale_votes: [None, None],
            byz_equiv: EquivocationTracker::new(),
        }
    }

    /// Override chain maintenance (tests force it on; big sweeps off).
    pub fn set_maintain_chain(&mut self, on: bool) {
        self.maintain_chain = on;
    }

    /// The replica's ledger state (post-run inspection).
    pub fn state(&self) -> &StateStore {
        &self.state
    }

    /// The replica's chain (post-run inspection).
    pub fn chain(&self) -> &Chain {
        &self.chain
    }

    /// Current view.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// Highest executed sequence number.
    pub fn exec_seq(&self) -> u64 {
        self.exec_seq
    }

    /// The replica's transaction pool (post-run inspection).
    pub fn pool(&self) -> &Mempool<Request> {
        &self.pool
    }

    /// Number of remembered executed-request ids (replay protection;
    /// bounded by checkpoint-epoch pruning — post-run inspection).
    pub fn executed_len(&self) -> usize {
        self.executed_reqs.len()
    }

    fn leader_of(&self, view: u64) -> usize {
        (view % self.cfg.n as u64) as usize
    }

    fn is_leader(&self) -> bool {
        self.leader_of(self.view) == self.me
    }

    fn quorum(&self) -> usize {
        self.cfg.quorum()
    }

    fn charge(&self, ctx: &mut Ctx<'_, PbftMsg>, d: SimDuration, exec: bool) {
        let scaled = if self.cfg.cpu_scale == 1.0 {
            d
        } else {
            d.mul_f64(self.cfg.cpu_scale)
        };
        ctx.consume_cpu(scaled);
        ctx.stats().inc(
            if exec { stat::EXEC_CPU_NS } else { stat::CONSENSUS_CPU_NS },
            scaled.as_nanos(),
        );
    }

    fn others(&self) -> Vec<NodeId> {
        let mine = self.group[self.me];
        self.group.iter().copied().filter(|&g| g != mine).collect()
    }

    // ---------- authentication helpers ----------

    /// Produce a certificate for a consensus message, charging the cost.
    fn certify(
        &mut self,
        ctx: &mut Ctx<'_, PbftMsg>,
        log: LogId,
        view: u64,
        seq: u64,
        digest: Hash,
    ) -> Option<MsgCert> {
        if self.cfg.attested {
            self.charge(ctx, self.cfg.costs.cost(TeeOp::AhlAppend), false);
            if self.cfg.crypto == CryptoMode::Real {
                match self.tee.append(log, Slot { view, seq }, digest) {
                    Ok(att) => Some(MsgCert::Attested(att)),
                    Err(_) => None, // enclave refused (equivocation attempt)
                }
            } else {
                Some(MsgCert::Simulated)
            }
        } else {
            self.charge(ctx, self.cfg.native_sign, false);
            if self.cfg.crypto == CryptoMode::Real {
                Some(MsgCert::Sig(self.key.sign(&digest)))
            } else {
                Some(MsgCert::Simulated)
            }
        }
    }

    /// Verify a vote/proposal certificate, charging the cost. Returns false
    /// if the message must be discarded.
    fn verify_cert(
        &mut self,
        ctx: &mut Ctx<'_, PbftMsg>,
        cert: &MsgCert,
        view: u64,
        seq: u64,
        digest: &Hash,
    ) -> bool {
        self.charge(ctx, self.cfg.native_verify, false);
        match cert {
            // Real-crypto mode never produces bare Simulated certs: one
            // arriving is a Byzantine replica trying to skip the crypto.
            MsgCert::Simulated => self.cfg.crypto != CryptoMode::Real,
            // Attested committees require the enclave binding: a plain
            // signature is exactly how an equivocator would dodge the
            // attested log, so it is refused outright.
            MsgCert::Sig(sig) => !self.cfg.attested && self.registry.verify(digest, sig),
            MsgCert::Attested(att) => {
                att.digest == *digest
                    && att.slot == Slot { view, seq }
                    && verify_attestation(&self.registry, att)
            }
        }
    }

    // ---------- request handling ----------

    /// Replay-horizon admission check: a request older than `request_ttl`
    /// must not (re)enter consensus — the executed-id cache is only
    /// guaranteed to remember ids that long, so admitting an older copy
    /// (stranded in some pool, re-relayed at a view change) could
    /// re-execute it. Honest traffic always carries fresh timestamps.
    fn expired(&self, req: &Request, ctx: &mut Ctx<'_, PbftMsg>) -> bool {
        if ctx.now().since(req.submitted) > self.cfg.request_ttl {
            ctx.stats().inc("consensus.expired_requests", 1);
            true
        } else {
            false
        }
    }

    /// Pool a gossiped copy of a request (HL re-broadcast; some other
    /// replica is the ingest point, so rejections here are only counted,
    /// not signalled — the ingest replica's copy carries the client reply).
    fn pool_request(&mut self, req: Request, ctx: &mut Ctx<'_, PbftMsg>) {
        if self.executed_reqs.contains(req.id) || self.expired(&req, ctx) {
            return;
        }
        let now = ctx.now();
        let _ = self.pool.insert(req, now, ctx.stats());
    }

    fn on_request(&mut self, req: Request, ctx: &mut Ctx<'_, PbftMsg>) {
        // Client-facing ingest: REST + TLS + signature verification.
        self.charge(ctx, self.cfg.ingest_cost, false);
        ctx.trace(req.id, Phase::Ingest);
        if self.executed_reqs.contains(req.id) {
            // Retransmission of an executed request: nothing to do.
            return;
        }
        if self.expired(&req, ctx) {
            // Past the replay horizon: bounce it like backpressure — a
            // live client retries with a fresh timestamp.
            ctx.send(req.client, PbftMsg::Rejected { req_id: req.id });
            return;
        }
        let now = ctx.now();
        let admission = self.pool.insert(req.clone(), now, ctx.stats());
        if admission == Admission::Rejected {
            // Admission control: surface backpressure to the client and do
            // NOT forward the request into consensus.
            ctx.stats().inc(stat::BACKPRESSURE, 1);
            ctx.send(req.client, PbftMsg::Rejected { req_id: req.id });
            return;
        }
        ctx.trace(req.id, Phase::Admit);
        if self.cfg.reply_policy == ReplyPolicy::IngestReplica {
            self.ingested.insert(req.id, req.client);
        }
        if self.paused {
            // Transitioning/restarting: pool only. The backlog is relayed
            // to the leader when the sync completes, so the post-recovery
            // drain spike (paper Figure 12) emerges naturally.
            return;
        }
        // Forward admitted requests and retransmissions of already-pooled
        // ones (a client retrying after leader-side backpressure arrives
        // here as `Duplicate`; the relay must still reach the leader).
        if self.cfg.relay_to_leader {
            // Optimization 2: forward to the leader only.
            let leader = self.group[self.leader_of(self.view)];
            if leader != self.group[self.me] {
                ctx.send(leader, PbftMsg::Relay(req));
            }
        } else {
            // HL behaviour: broadcast the request to every replica.
            ctx.multicast(self.others(), PbftMsg::Gossip(req));
        }
        self.try_propose(ctx);
    }

    fn on_relay(&mut self, from: NodeId, req: Request, ctx: &mut Ctx<'_, PbftMsg>) {
        // Leader-side pooling of a relayed request: cheap enqueue.
        self.charge(ctx, SimDuration::from_micros(10), false);
        if self.executed_reqs.contains(req.id) {
            return;
        }
        if self.expired(&req, ctx) {
            // Stale copy past the replay horizon (e.g. re-relayed out of
            // a long-stranded pool): refuse, and tell the relayer to
            // reclaim its own copy.
            if from != self.group[self.me] {
                ctx.send(from, PbftMsg::RelayRejected { req_id: req.id });
            }
            return;
        }
        let (req_id, client) = (req.id, req.client);
        let now = ctx.now();
        let admission = self.pool.insert(req, now, ctx.stats());
        if admission == Admission::Rejected {
            // Only the leader's pool feeds proposals in relay mode, so a
            // drop here is real backpressure: tell the client directly
            // (the request carries its reply address) instead of letting
            // it wait on a request that can never be proposed, and tell
            // the relayer to reclaim its stranded pooled copy.
            ctx.stats().inc(stat::BACKPRESSURE, 1);
            ctx.send(client, PbftMsg::Rejected { req_id });
            if from != self.group[self.me] {
                ctx.send(from, PbftMsg::RelayRejected { req_id });
            }
            return;
        }
        self.try_propose(ctx);
    }

    /// The leader refused our relayed request: drop our pooled copy (it
    /// can never be proposed from here short of a view change) so dead
    /// entries do not eat ingest-pool capacity under sustained overload.
    fn on_relay_rejected(&mut self, req_id: u64, ctx: &mut Ctx<'_, PbftMsg>) {
        self.charge(ctx, SimDuration::from_micros(5), false);
        self.pool.remove(req_id);
        self.ingested.remove(&req_id);
    }

    fn on_gossip(&mut self, req: Request, ctx: &mut Ctx<'_, PbftMsg>) {
        // Re-broadcast copy: deduplication + cached-certificate check (the
        // ingest replica already verified the client signature; Hyperledger
        // validates again lazily at execution, charged in exec cost).
        self.charge(ctx, SimDuration::from_micros(20), false);
        self.pool_request(req, ctx);
        self.try_propose(ctx);
    }

    // ---------- proposing ----------

    fn try_propose(&mut self, ctx: &mut Ctx<'_, PbftMsg>) {
        if !self.is_leader() || self.paused {
            return;
        }
        while self.next_seq <= self.exec_seq + self.cfg.pipeline_width {
            let now = ctx.now();
            let Some(batch) = self.batcher.take_full(&mut self.pool, now, ctx.stats()) else {
                break;
            };
            self.propose_batch(batch, ctx);
        }
    }

    fn flush_partial_batch(&mut self, ctx: &mut Ctx<'_, PbftMsg>) {
        if self.is_leader() && !self.paused && self.next_seq <= self.exec_seq + self.cfg.pipeline_width {
            let now = ctx.now();
            if let Some(batch) = self.batcher.take_due(&mut self.pool, now, ctx.stats()) {
                self.propose_batch(batch, ctx);
            }
        }
    }

    fn propose_batch(&mut self, mut batch: Vec<Request>, ctx: &mut Ctx<'_, PbftMsg>) {
        // Entries can cross the replay horizon *inside* the pool (a
        // leader that lagged for a long time still holds them): filter at
        // batch formation, the last gate before ordering.
        let now = ctx.now();
        let ttl = self.cfg.request_ttl;
        batch.retain(|r| {
            if now.since(r.submitted) > ttl {
                ctx.stats().inc("consensus.expired_requests", 1);
                false
            } else {
                true
            }
        });
        if batch.is_empty() {
            return;
        }
        for r in batch.iter() {
            ctx.trace(r.id, Phase::Propose);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let view = self.view;
        // Digest cost: hashing the batch.
        let hash_cost = self
            .cfg
            .costs
            .cost(TeeOp::Sha256)
            .saturating_mul(1 + batch.len() as u64 / 8);
        self.charge(ctx, hash_cost, false);

        if self.byzantine {
            match self.cfg.attack {
                Attack::PaperFlood if !self.cfg.attested => {
                    // §7.2 equivocating leader: conflicting *sequence
                    // numbers* to different halves.
                    let block_a = Arc::new(PbftBlock::new(view, seq, self.me, batch.clone()));
                    let mut rev = batch;
                    rev.reverse();
                    let block_b = Arc::new(PbftBlock::new(view, seq + 1_000_000, self.me, rev));
                    self.charge(ctx, self.cfg.native_sign, false);
                    for (i, peer) in self.others().into_iter().enumerate() {
                        let block = if i % 2 == 0 { block_a.clone() } else { block_b.clone() };
                        ctx.send(peer, PbftMsg::PrePrepare { block, cert: MsgCert::Simulated });
                    }
                    return;
                }
                Attack::Equivocate => {
                    self.equivocate_propose(batch, view, seq, ctx);
                    return;
                }
                // The remaining attacks strike at votes/checkpoints; a
                // Byzantine leader proposes honestly under them.
                _ => {}
            }
        }

        let block = Arc::new(PbftBlock::new(view, seq, self.me, batch));
        let Some(cert) = self.certify(ctx, PREPREPARE_LOG, view, seq, block.digest) else {
            return;
        };
        let recipients = if self.byzantine && self.cfg.attack == Attack::PaperFlood {
            // Attested Byzantine leader cannot equivocate; the worst it can
            // do is withhold the proposal from half the replicas.
            self.others().into_iter().enumerate().filter(|(i, _)| i % 2 == 0).map(|(_, p)| p).collect()
        } else {
            self.others()
        };
        ctx.multicast(recipients, PbftMsg::PrePrepare { block: block.clone(), cert });
        // Local application of our own proposal.
        self.accept_block(block, ctx);
    }

    // ---------- three-phase protocol ----------

    fn on_preprepare(
        &mut self,
        block: Arc<PbftBlock>,
        cert: MsgCert,
        from_idx: usize,
        ctx: &mut Ctx<'_, PbftMsg>,
    ) {
        if block.view != self.view
            || block.seq <= self.low_mark
            || from_idx != self.leader_of(block.view)
            || block.proposer != from_idx
        {
            return;
        }
        if !self.verify_cert(ctx, &cert, block.view, block.seq, &block.digest) {
            ctx.stats().inc("consensus.invalid_msg", 1);
            return;
        }
        // Hash the batch to validate the digest.
        let hash_cost = self
            .cfg
            .costs
            .cost(TeeOp::Sha256)
            .saturating_mul(1 + block.reqs.len() as u64 / 8);
        self.charge(ctx, hash_cost, false);
        if let Some(inst) = self.insts.get(&block.seq) {
            if let Some(existing) = &inst.block {
                if existing.digest != block.digest && inst.view == block.view {
                    // Conflicting proposal for a bound slot: equivocation.
                    ctx.stats().inc("consensus.equivocation_detected", 1);
                    return;
                }
            }
        }
        self.accept_block(block, ctx);
    }

    fn accept_block(&mut self, block: Arc<PbftBlock>, ctx: &mut Ctx<'_, PbftMsg>) {
        let seq = block.seq;
        let view = block.view;
        let digest = block.digest;
        let leader = self.leader_of(view);
        let me = self.me;
        {
            let inst = self.insts.entry(seq).or_default();
            if inst.executed {
                return;
            }
            inst.view = view;
            inst.block = Some(block);
            // The pre-prepare counts as the leader's prepare vote.
            inst.prepares.entry(digest).or_default().insert(leader);
        }
        if me != leader && !self.insts[&seq].sent_prepare {
            self.send_prepare(view, seq, digest, ctx);
        } else {
            // Leader: its "prepare" is implicit; in AHLR it seeds the relay
            // aggregation set.
            if self.cfg.leader_aggregation {
                self.insts
                    .entry(seq)
                    .or_default()
                    .relay_prepares
                    .entry(digest)
                    .or_default()
                    .insert(me);
            }
            self.check_prepared(seq, digest, ctx);
        }
    }

    fn send_prepare(&mut self, view: u64, seq: u64, digest: Hash, ctx: &mut Ctx<'_, PbftMsg>) {
        let Some(cert) = self.certify(ctx, PREPARE_LOG, view, seq, digest) else {
            return;
        };
        if let Some(inst) = self.insts.get_mut(&seq) {
            inst.sent_prepare = true;
            inst.prepares.entry(digest).or_default().insert(self.me);
        }
        let vote = Vote { view, seq, digest, replica: self.me, cert };
        if self.cfg.leader_aggregation {
            let leader = self.group[self.leader_of(view)];
            ctx.send(leader, PbftMsg::RelayPrepare(vote));
        } else if self.byzantine {
            self.byzantine_vote(vote, true, ctx);
        } else {
            ctx.multicast(self.others(), PbftMsg::Prepare(vote));
        }
        self.check_prepared(seq, digest, ctx);
    }

    /// A Byzantine replica's message authentication: it deliberately
    /// avoids its enclave (the attested log would refuse to double-sign),
    /// so it signs natively in real-crypto mode — which honest replicas
    /// in attested committees reject, exactly the paper's point.
    fn byz_cert(&self, digest: &Hash) -> MsgCert {
        if self.cfg.crypto == CryptoMode::Real {
            MsgCert::Sig(self.key.sign(digest))
        } else {
            MsgCert::Simulated
        }
    }

    /// Double-sign equivocation (leader side): two conflicting blocks for
    /// the *same* (view, seq), the lower digest to committee half 0, the
    /// higher to half 1, and both to fellow Byzantine colluders. The
    /// leader also emits per-half commit votes so each half can close its
    /// own fork — which only succeeds when the colluding votes push a
    /// half past quorum, i.e. when f exceeds the protocol's bound.
    fn equivocate_propose(
        &mut self,
        batch: Vec<Request>,
        view: u64,
        seq: u64,
        ctx: &mut Ctx<'_, PbftMsg>,
    ) {
        let alt: Vec<Request> = batch[1..].to_vec();
        let x = Arc::new(PbftBlock::new(view, seq, self.me, batch));
        let y = Arc::new(PbftBlock::new(view, seq, self.me, alt));
        let (lo, hi) = if x.digest.0 <= y.digest.0 { (x, y) } else { (y, x) };
        self.charge(ctx, self.cfg.native_sign, false);
        for g in 0..self.cfg.n {
            if g == self.me {
                continue;
            }
            let peer = self.group[g];
            let blocks: &[&Arc<PbftBlock>] = if self.cfg.is_byzantine(g) {
                &[&lo, &hi] // colluders see both stories
            } else if equivocation_half(g) == 0 {
                &[&lo]
            } else {
                &[&hi]
            };
            for block in blocks {
                let cert = self.byz_cert(&block.digest);
                ctx.send(peer, PbftMsg::PrePrepare { block: (*block).clone(), cert });
                let vote = Vote {
                    view,
                    seq,
                    digest: block.digest,
                    replica: self.me,
                    cert: self.byz_cert(&block.digest),
                };
                ctx.send(peer, PbftMsg::Commit(vote));
            }
        }
    }

    /// Double-sign equivocation (colluding voter side): echo prepare and
    /// commit votes for *every* proposal seen at a slot, each to the
    /// committee half its digest rank assigns — the two-faced voting that
    /// makes both forks complete once the Byzantine count exceeds the
    /// quorum-intersection bound.
    fn equivocate_echo(&mut self, view: u64, seq: u64, digest: Hash, ctx: &mut Ctx<'_, PbftMsg>) {
        let Some((half, split)) = self.byz_equiv.observe(seq as u128, digest) else {
            return;
        };
        self.charge(ctx, self.cfg.native_sign, false);
        let me = self.me;
        let targets: Vec<NodeId> = (0..self.cfg.n)
            .filter(|g| *g != me && (!split || equivocation_half(*g) == half))
            .map(|g| self.group[g])
            .collect();
        let prepare = Vote { view, seq, digest, replica: me, cert: self.byz_cert(&digest) };
        let commit = Vote { view, seq, digest, replica: me, cert: self.byz_cert(&digest) };
        ctx.multicast(targets.clone(), PbftMsg::Prepare(prepare));
        ctx.multicast(targets, PbftMsg::Commit(commit));
    }

    /// Byzantine vote emission, dispatched by the configured [`Attack`].
    /// The default is the paper's attack: "Byzantine nodes send
    /// conflicting messages (with different sequence numbers) to different
    /// nodes" — equivocate (HL) or withhold (attested), plus a flood of
    /// junk votes at shifted sequence numbers that loads honest queues.
    fn byzantine_vote(&mut self, vote: Vote, prepare: bool, ctx: &mut Ctx<'_, PbftMsg>) {
        match self.cfg.attack {
            Attack::PaperFlood => self.paper_flood_vote(vote, prepare, ctx),
            // Equivocation votes are emitted by the proposal-echo path;
            // withholders say nothing at all.
            Attack::Equivocate | Attack::WithholdVotes => {}
            Attack::StaleReplay => {
                let slot = usize::from(!prepare);
                if let Some(stale) = self.stale_votes[slot].clone() {
                    ctx.stats().inc("adv.stale_replays", 1);
                    // Charge the send like IBFT/Tendermint do, so attacker
                    // CPU accounting is comparable across matrix cells.
                    self.charge(ctx, self.cfg.native_sign, false);
                    let msg = if prepare {
                        PbftMsg::Prepare(stale)
                    } else {
                        PbftMsg::Commit(stale)
                    };
                    ctx.multicast(self.others(), msg);
                }
                self.stale_votes[slot] = Some(vote);
            }
            // The checkpoint attack leaves normal-case votes honest.
            Attack::BogusCheckpoint => {
                let msg = if prepare { PbftMsg::Prepare(vote) } else { PbftMsg::Commit(vote) };
                ctx.multicast(self.others(), msg);
            }
        }
    }

    /// The §7.2 composite vote attack (see [`Replica::byzantine_vote`]).
    fn paper_flood_vote(&mut self, vote: Vote, prepare: bool, ctx: &mut Ctx<'_, PbftMsg>) {
        let others = self.others();
        for (i, peer) in others.iter().copied().enumerate() {
            if self.cfg.attested {
                // Cannot equivocate: withhold from odd half.
                if i % 2 == 0 {
                    let msg = if prepare {
                        PbftMsg::Prepare(vote.clone())
                    } else {
                        PbftMsg::Commit(vote.clone())
                    };
                    ctx.send(peer, msg);
                }
            } else {
                // Conflicting digests to different peers.
                let mut v = vote.clone();
                if i % 2 == 1 {
                    v.digest.0[0] ^= 0xff;
                }
                let msg = if prepare { PbftMsg::Prepare(v) } else { PbftMsg::Commit(v) };
                ctx.send(peer, msg);
            }
        }
        // Sequence-number flooding inside the watermark window: honest
        // nodes must fully verify each conflicting message before they can
        // discard it. (The attested log does not help here: these slots are
        // not yet bound by the attacker's enclave, so it happily signs.)
        for j in 1..=3u64 {
            let mut junk = vote.clone();
            junk.seq = vote.seq.wrapping_add(j);
            junk.digest.0[1] ^= j as u8;
            let msg = if prepare {
                PbftMsg::Prepare(junk)
            } else {
                PbftMsg::Commit(junk)
            };
            ctx.multicast(others.clone(), msg);
        }
        // Plus a far-out-of-window burst (crowds queues; cheap to reject).
        let mut far = vote.clone();
        far.seq = vote.seq.wrapping_add(1_000_000);
        let msg = if prepare { PbftMsg::Prepare(far) } else { PbftMsg::Commit(far) };
        ctx.multicast(others.clone(), msg);
    }

    /// PBFT watermark window `(h, h + L]` anchored at the *stable
    /// checkpoint* `h` (not the local execution point — a lagging replica
    /// must still accept votes for sequences it has yet to execute).
    /// Messages beyond the window are discarded before signature
    /// verification — the defense that keeps sequence-number flooding from
    /// consuming crypto cycles.
    fn in_watermarks(&self, seq: u64) -> bool {
        let window = (4 * self.cfg.checkpoint_interval).max(self.cfg.pipeline_width * 16 + 64);
        seq > self.low_mark && seq <= self.low_mark + window
    }

    /// Admit a vote's certificate. `MsgCert::Sig` votes (HL under real
    /// crypto) are admitted *tentatively*: the arrival pays the same
    /// verification cost as before, but the actual signature check is
    /// deferred and runs as one [`KeyRegistry::verify_batch`] call when
    /// the digest reaches quorum ([`Replica::settle_deferred`]) — the
    /// quorum-certificate shape batch verification is built for. Eagerly
    /// verified certs return `Ok(None)`; rejected votes return `Err(())`.
    fn admit_vote(
        &mut self,
        vote: &Vote,
        ctx: &mut Ctx<'_, PbftMsg>,
    ) -> Result<Option<ahl_crypto::Signature>, ()> {
        if let MsgCert::Sig(sig) = &vote.cert {
            if !self.cfg.attested && self.cfg.crypto == CryptoMode::Real {
                self.charge(ctx, self.cfg.native_verify, false);
                return Ok(Some(*sig));
            }
        }
        if self.verify_cert(ctx, &vote.cert, vote.view, vote.seq, &vote.digest) {
            Ok(None)
        } else {
            Err(())
        }
    }

    /// Batch-verify the deferred signatures pooled for `(seq, digest)`.
    /// Returns true when the collected vote sets stand; on a batch
    /// failure it falls back per-signature, evicts the forgeries from
    /// both vote sets (counting each as an invalid message), and returns
    /// false so the caller re-evaluates quorum over the survivors.
    fn settle_deferred(&mut self, seq: u64, digest: &Hash, ctx: &mut Ctx<'_, PbftMsg>) -> bool {
        let registry = self.registry.clone();
        let Some(inst) = self.insts.get_mut(&seq) else { return true };
        let Some(pending) = inst.pending_sigs.get_mut(digest) else { return true };
        if pending.is_empty() {
            return true;
        }
        let ok = registry.verify_batch(
            digest,
            pending.iter().map(|(r, s)| (ahl_crypto::KeyId(*r as u64), s)),
        );
        if ok {
            // Verified: the votes are final, nothing left to settle.
            inst.pending_sigs.remove(digest);
            return true;
        }
        let forged: Vec<usize> = pending
            .iter()
            .filter(|(r, s)| {
                s.signer != ahl_crypto::KeyId(**r as u64) || !registry.verify(digest, s)
            })
            .map(|(r, _)| *r)
            .collect();
        for r in &forged {
            pending.remove(r);
            if let Some(set) = inst.prepares.get_mut(digest) {
                set.remove(r);
            }
            if let Some(set) = inst.commits.get_mut(digest) {
                set.remove(r);
            }
            ctx.stats().inc("consensus.invalid_msg", 1);
        }
        false
    }

    fn on_prepare(&mut self, vote: Vote, ctx: &mut Ctx<'_, PbftMsg>) {
        if vote.view != self.view || vote.seq <= self.low_mark {
            return;
        }
        if !self.in_watermarks(vote.seq) {
            self.charge(ctx, SimDuration::from_micros(20), false);
            ctx.stats().inc("consensus.out_of_window", 1);
            return;
        }
        let Ok(deferred) = self.admit_vote(&vote, ctx) else {
            ctx.stats().inc("consensus.invalid_msg", 1);
            return;
        };
        let inst = self.insts.entry(vote.seq).or_default();
        inst.prepares.entry(vote.digest).or_default().insert(vote.replica);
        if let Some(sig) = deferred {
            inst.pending_sigs.entry(vote.digest).or_default().insert(vote.replica, sig);
        }
        self.check_prepared(vote.seq, vote.digest, ctx);
    }

    fn check_prepared(&mut self, seq: u64, digest: Hash, ctx: &mut Ctx<'_, PbftMsg>) {
        if self.cfg.leader_aggregation {
            return; // prepared is signalled by AggPrepare in AHLR
        }
        let quorum = self.quorum();
        // Loop: a failed batch settle evicts forged votes, shrinking the
        // prepare set, so quorum must be re-checked over the survivors.
        // Terminates because each settle failure strictly shrinks the
        // pending pool.
        loop {
            let ready = {
                let Some(inst) = self.insts.get(&seq) else { return };
                let Some(block) = &inst.block else { return };
                block.digest == digest
                    && !inst.sent_commit
                    && inst.prepares.get(&digest).map_or(0, HashSet::len) >= quorum
            };
            if !ready {
                return;
            }
            if self.settle_deferred(seq, &digest, ctx) {
                break;
            }
        }
        self.send_commit(seq, digest, ctx);
    }

    fn send_commit(&mut self, seq: u64, digest: Hash, ctx: &mut Ctx<'_, PbftMsg>) {
        let view = self.view;
        let Some(cert) = self.certify(ctx, COMMIT_LOG, view, seq, digest) else {
            return;
        };
        if let Some(inst) = self.insts.get_mut(&seq) {
            inst.sent_commit = true;
            inst.commits.entry(digest).or_default().insert(self.me);
        }
        let vote = Vote { view, seq, digest, replica: self.me, cert };
        if self.cfg.leader_aggregation {
            let leader = self.group[self.leader_of(view)];
            if self.leader_of(view) == self.me {
                self.on_relay_commit(vote, ctx);
            } else {
                ctx.send(leader, PbftMsg::RelayCommit(vote));
            }
        } else if self.byzantine {
            self.byzantine_vote(vote, false, ctx);
        } else {
            ctx.multicast(self.others(), PbftMsg::Commit(vote));
        }
        self.check_committed(seq, digest, ctx);
    }

    fn on_commit(&mut self, vote: Vote, ctx: &mut Ctx<'_, PbftMsg>) {
        if vote.view != self.view || vote.seq <= self.low_mark {
            return;
        }
        if !self.in_watermarks(vote.seq) {
            self.charge(ctx, SimDuration::from_micros(20), false);
            ctx.stats().inc("consensus.out_of_window", 1);
            return;
        }
        let Ok(deferred) = self.admit_vote(&vote, ctx) else {
            ctx.stats().inc("consensus.invalid_msg", 1);
            return;
        };
        let inst = self.insts.entry(vote.seq).or_default();
        inst.commits.entry(vote.digest).or_default().insert(vote.replica);
        if let Some(sig) = deferred {
            inst.pending_sigs.entry(vote.digest).or_default().insert(vote.replica, sig);
        }
        self.check_committed(vote.seq, vote.digest, ctx);
    }

    fn check_committed(&mut self, seq: u64, digest: Hash, ctx: &mut Ctx<'_, PbftMsg>) {
        let quorum = self.quorum();
        // Same settle-at-quorum loop as check_prepared: see the comment
        // there for the termination argument.
        let ready = loop {
            let ready = {
                let Some(inst) = self.insts.get(&seq) else { return };
                let Some(block) = &inst.block else { return };
                block.digest == digest
                    && !inst.committed
                    && inst.commits.get(&digest).map_or(0, HashSet::len) >= quorum
            };
            if !ready {
                break false;
            }
            if self.settle_deferred(seq, &digest, ctx) {
                break true;
            }
        };
        if ready {
            if let Some(inst) = self.insts.get_mut(&seq) {
                inst.committed = true;
                if let Some(block) = &inst.block {
                    for r in block.reqs.iter() {
                        ctx.trace(r.id, Phase::Commit);
                    }
                }
            }
            self.try_execute(ctx);
        }
    }

    // ---------- AHLR aggregation ----------

    fn on_relay_prepare(&mut self, vote: Vote, ctx: &mut Ctx<'_, PbftMsg>) {
        if vote.view != self.view || self.leader_of(vote.view) != self.me {
            return;
        }
        if !self.verify_cert(ctx, &vote.cert, vote.view, vote.seq, &vote.digest) {
            return;
        }
        let quorum = self.quorum();
        let f = self.cfg.f();
        let ready = {
            let inst = self.insts.entry(vote.seq).or_default();
            inst.relay_prepares.entry(vote.digest).or_default().insert(vote.replica);
            !inst.agg_prepare_sent
                && inst.relay_prepares.get(&vote.digest).map_or(0, HashSet::len) >= quorum
        };
        if ready {
            if let Some(inst) = self.insts.get_mut(&vote.seq) {
                inst.agg_prepare_sent = true;
            }
            // Enclave verifies the f+1 votes and emits one proof.
            self.charge(ctx, self.cfg.costs.cost(TeeOp::MessageAggregation { f }), false);
            let proof = AggProof {
                view: vote.view,
                seq: vote.seq,
                digest: vote.digest,
                count: quorum,
                sig: None,
            };
            ctx.multicast(self.others(), PbftMsg::AggPrepare(proof.clone()));
            self.on_agg_prepare(proof, ctx);
        }
    }

    fn on_agg_prepare(&mut self, proof: AggProof, ctx: &mut Ctx<'_, PbftMsg>) {
        if proof.view != self.view || proof.seq <= self.low_mark {
            return;
        }
        self.charge(ctx, self.cfg.native_verify, false);
        let has_block = self
            .insts
            .get(&proof.seq)
            .and_then(|i| i.block.as_ref())
            .is_some_and(|b| b.digest == proof.digest);
        if !has_block {
            return;
        }
        let already = self.insts.get(&proof.seq).map(|i| i.sent_commit).unwrap_or(false);
        if !already {
            self.send_commit(proof.seq, proof.digest, ctx);
        }
    }

    fn on_relay_commit(&mut self, vote: Vote, ctx: &mut Ctx<'_, PbftMsg>) {
        if vote.view != self.view || self.leader_of(vote.view) != self.me {
            return;
        }
        if !self.verify_cert(ctx, &vote.cert, vote.view, vote.seq, &vote.digest) {
            return;
        }
        let quorum = self.quorum();
        let f = self.cfg.f();
        let ready = {
            let inst = self.insts.entry(vote.seq).or_default();
            inst.relay_commits.entry(vote.digest).or_default().insert(vote.replica);
            !inst.agg_commit_sent
                && inst.relay_commits.get(&vote.digest).map_or(0, HashSet::len) >= quorum
        };
        if ready {
            if let Some(inst) = self.insts.get_mut(&vote.seq) {
                inst.agg_commit_sent = true;
            }
            self.charge(ctx, self.cfg.costs.cost(TeeOp::MessageAggregation { f }), false);
            let proof = AggProof {
                view: vote.view,
                seq: vote.seq,
                digest: vote.digest,
                count: quorum,
                sig: None,
            };
            ctx.multicast(self.others(), PbftMsg::AggCommit(proof.clone()));
            self.on_agg_commit(proof, ctx);
        }
    }

    fn on_agg_commit(&mut self, proof: AggProof, ctx: &mut Ctx<'_, PbftMsg>) {
        if proof.view != self.view || proof.seq <= self.low_mark {
            return;
        }
        self.charge(ctx, self.cfg.native_verify, false);
        let ready = {
            let Some(inst) = self.insts.get(&proof.seq) else { return };
            let Some(block) = &inst.block else { return };
            block.digest == proof.digest && !inst.committed
        };
        if ready {
            if let Some(inst) = self.insts.get_mut(&proof.seq) {
                inst.committed = true;
                if let Some(block) = &inst.block {
                    for r in block.reqs.iter() {
                        ctx.trace(r.id, Phase::Commit);
                    }
                }
            }
            self.try_execute(ctx);
        }
    }

    // ---------- execution ----------

    fn try_execute(&mut self, ctx: &mut Ctx<'_, PbftMsg>) {
        loop {
            if self.crashed {
                return; // an I/O failure mid-execution killed the node
            }
            let next = self.exec_seq + 1;
            let ready = self
                .insts
                .get(&next)
                .map(|i| i.committed && !i.executed && i.block.is_some())
                .unwrap_or(false);
            if !ready {
                break;
            }
            let block = {
                let inst = self.insts.get_mut(&next).expect("checked above");
                inst.executed = true;
                inst.block.clone().expect("checked above")
            };
            self.execute_block(&block, ctx);
            if self.crashed {
                return;
            }
            self.exec_seq = next;

            if self.exec_seq.is_multiple_of(self.cfg.checkpoint_interval) {
                self.send_checkpoint(ctx);
            }
        }
        // Leader may have room to propose more now.
        self.try_propose(ctx);
    }

    fn execute_block(&mut self, block: &PbftBlock, ctx: &mut Ctx<'_, PbftMsg>) {
        let _prof = ahl_telemetry::Profiler::span("pbft.exec");
        let mut committed = 0u64;
        let mut aborted = 0u64;
        let mut receipts = Vec::with_capacity(block.reqs.len());
        let mut weight = 0usize;
        // WAL intent record before applying (recovery re-executes it);
        // the 2PC transition journal entries follow as execution decides
        // them, and one group commit below makes the batch durable.
        if let Some(store) = self.durable_store.as_mut() {
            store.log_batch(block);
        }
        let checker = if self.byzantine { None } else { self.cfg.safety.clone() };
        let exec_now = ctx.now();
        // Pre-pass: admission bookkeeping in batch order. Replays are
        // skipped exactly as the sequential loop skipped them, so the
        // execution engine only ever sees fresh requests.
        let mut fresh = Vec::with_capacity(block.reqs.len());
        for req in block.reqs.iter() {
            if !self.executed_reqs.insert(req.id, exec_now) {
                continue; // replay of an already-executed request
            }
            self.pool.remove(req.id);
            weight += req.op.weight();
            fresh.push(req);
        }
        // Execute the whole batch through the conflict-aware engine.
        // `exec_workers <= 1` is the sequential loop; above that the batch
        // is wave-scheduled, but receipts, state root, and the per-abort
        // `had_pending` signal are identical to sequential by construction.
        let ops: Vec<&ahl_ledger::Op> = fresh.iter().map(|r| &r.op).collect();
        let outcomes = ahl_ledger::execute_ops(&mut self.state, &ops, self.cfg.exec_workers);
        // Post-pass: observation, tracing, durability, and replies — in
        // the same canonical batch order as before.
        for (req, outcome) in fresh.iter().zip(outcomes) {
            let had_pending = outcome.had_pending;
            let receipt = outcome.receipt;
            let ok = receipt.status.is_committed();
            if let Some(ck) = &checker {
                ck.observe_exec(self.cfg.committee_id, self.me, req.id, &req.op, had_pending, ok);
            }
            ctx.trace(req.id, Phase::Exec);
            match &req.op {
                ahl_ledger::Op::Prepare { txid, .. } => ctx.trace(txid.0, Phase::TwoPcPrepare),
                ahl_ledger::Op::Commit { txid } | ahl_ledger::Op::Abort { txid } => {
                    ctx.trace(txid.0, Phase::TwoPcDecide)
                }
                _ => {}
            }
            if ok {
                if let (Some(kind), Some(store), Some(txid)) =
                    (twopc_kind(&req.op), self.durable_store.as_mut(), req.op.txid())
                {
                    store.log_twopc(txid.0, kind);
                }
            }
            receipts.push(receipt);
            if ok {
                committed += 1;
            } else {
                aborted += 1;
            }
            if self.reporter {
                let lat = ctx.now().since(req.submitted);
                let scope = Scope::committee(self.cfg.committee_id);
                ctx.stats().record_latency_scoped(stat::TXN_LATENCY, scope, lat);
            }
            if self.cfg.reply_policy == ReplyPolicy::IngestReplica {
                if let Some(client) = self.ingested.remove(&req.id) {
                    ctx.send(client, PbftMsg::Reply { req_id: req.id, committed: ok });
                }
            }
        }
        // Execution cost: chaincode + validation per state access.
        self.charge(
            ctx,
            self.cfg.exec_cost_per_op.saturating_mul(weight as u64),
            true,
        );
        if self.maintain_chain {
            let ops = block.reqs.iter().map(|r| r.op.clone()).collect::<Vec<_>>();
            let lb = LedgerBlock::build(
                self.chain.len() as u64,
                self.chain.tip_digest(),
                ops,
                self.state.state_digest(),
                ctx.now().as_nanos(),
                block.proposer as u64,
            );
            self.chain.append(lb, receipts).expect("chain append is sequential");
        }
        if self.reporter {
            let now = ctx.now();
            let scope = Scope::committee(self.cfg.committee_id);
            ctx.stats().inc_scoped(stat::TXN_COMMITTED, scope, committed);
            ctx.stats().inc_scoped(stat::TXN_ABORTED, scope, aborted);
            ctx.stats().inc_scoped(stat::BLOCKS_COMMITTED, scope, 1);
            ctx.stats().record_point(stat::COMMIT_SERIES, now, committed as f64);
        }
        // Safety oracle: an honest replica committed this batch at `seq`.
        // The record is the *content* digest (ordered request ids), so a
        // re-proposal of the same batch in a later view is no fork, while
        // any divergence in committed content at one height is.
        if let Some(ck) = &checker {
            let digest = crate::adversary::commit_digest(block.reqs.iter().map(|r| r.id));
            ck.record_commit(self.cfg.committee_id, block.seq, digest);
        }
        // Group commit: one write+policy-fsync for the batch record plus
        // its 2PC journal. An I/O failure here is a crash — the node goes
        // dark and recovers from whatever reached the disk.
        if self.durable_store.is_some() {
            let scope = Scope::replica(self.cfg.committee_id, self.me);
            ctx.stats().inc_scoped(stat::WAL_BATCHES, scope, 1);
            ctx.trace(block.seq, Phase::WalCommit);
            self.charge(ctx, SimDuration::from_micros(5), false);
            let failed =
                self.durable_store.as_mut().map(|s| s.commit().is_err()).unwrap_or(false);
            if failed {
                self.io_crash(ctx);
            }
        }
    }

    /// A durable write failed (real I/O error or injected kill): the node
    /// treats it as its own crash — no half-persisted state is ever
    /// trusted, and the next `Restart` recovers from the disk image.
    fn io_crash(&mut self, ctx: &mut Ctx<'_, PbftMsg>) {
        ctx.stats().inc(stat::WAL_IO_CRASHES, 1);
        self.durable_store = None;
        self.crashed = true;
        self.paused = true;
        self.sync = None;
    }

    // ---------- checkpoints ----------

    /// At a checkpoint height: snapshot the state (so certified chunks can
    /// later be served from exactly the certified content), then broadcast
    /// a signed vote over `(height, state_root)`.
    fn send_checkpoint(&mut self, ctx: &mut Ctx<'_, PbftMsg>) {
        let seq = self.exec_seq;
        // Parallel-execution paranoia: before voting on a root the whole
        // committee may certify, re-derive every cached hash of the
        // authenticated index across the worker pool and compare. The
        // engine is proven equivalent to sequential execution, so this
        // must never fire; if it does, the vote still goes out (honest
        // divergence surfaces as a failed quorum) but the counter makes
        // the corruption impossible to miss.
        if self.cfg.exec_workers > 1 && !self.state.rehash_audit(self.cfg.exec_workers) {
            ctx.stats().inc(stat::CKPT_AUDIT_FAILURES, 1);
        }
        let mut root = self.state.state_digest();
        if self.byzantine && self.cfg.attack == Attack::BogusCheckpoint {
            // Vote for a root nobody holds: a validly signed lie. Honest
            // votes must still quorum on the true root, and the bogus one
            // must never certify (the tracker groups votes by root).
            root.0[0] ^= 0xff;
            ctx.stats().inc("adv.bogus_ckpt_votes", 1);
        }
        // O(1) in the state size: a frozen tree handle, not a deep clone.
        // The drained write accumulator prices what keeping the previous
        // snapshot alive costs in copy-on-write duplication.
        let approx_bytes = self.state.take_write_bytes();
        self.snapshots.push(CkptSnapshot {
            seq,
            snap: Arc::new(self.state.snapshot()),
            executed: Arc::new(self.executed_reqs.to_set()),
            approx_bytes,
        });
        if self.snapshots.len() > 2 {
            self.snapshots.remove(0);
        }
        self.charge(ctx, self.cfg.native_sign, false);
        ctx.trace(seq, Phase::Checkpoint);
        let key = (self.cfg.crypto == CryptoMode::Real).then_some(&self.key);
        let vote = CheckpointVote::new(seq, root, self.me, key);
        ctx.multicast(self.others(), PbftMsg::Checkpoint { vote: vote.clone() });
        self.record_checkpoint(vote, ctx);
    }

    fn record_checkpoint(&mut self, vote: CheckpointVote, ctx: &mut Ctx<'_, PbftMsg>) {
        if vote.seq <= self.low_mark {
            return;
        }
        let quorum = self.quorum();
        if let Some(cert) = self.ckpt.record(vote, quorum) {
            self.apply_stable_checkpoint(cert, ctx);
        }
    }

    /// A certificate formed: it gates all pruning (PBFT stable checkpoint)
    /// and becomes the anchor this replica serves state sync from.
    fn apply_stable_checkpoint(&mut self, cert: CheckpointCert, ctx: &mut Ctx<'_, PbftMsg>) {
        ctx.stats().inc(stat::CKPT_CERTS, 1);
        // Prune one interval behind: executed blocks above the *previous*
        // stable checkpoint remain servable as a sync tail.
        let floor = std::mem::replace(&mut self.low_mark, cert.seq);
        self.insts.retain(|s, _| *s > floor);
        self.insts_floor = floor;
        let pruned = self.state.checkpoint_prune();
        ctx.stats().inc(stat::RESOLVED_PRUNED, pruned as u64);
        let pruned_exec = self.executed_reqs.checkpoint_prune(ctx.now(), self.cfg.request_ttl);
        ctx.stats().inc(stat::EXECUTED_PRUNED, pruned_exec as u64);
        if self.cfg.crypto == CryptoMode::Real {
            self.tee.truncate(cert.seq);
        }
        if let Some(snap) = self.snapshots.iter().find(|s| s.seq == cert.seq).cloned() {
            self.serving.push((cert.clone(), snap.clone()));
            // The certified own snapshot doubles as the durable (on-disk)
            // checkpoint a crash cannot erase.
            self.durable = Some((cert.clone(), snap.clone()));
            self.enforce_snapshot_budget(ctx);
            // With real persistence, "durable" means the disk says so:
            // pages (deduplicated against earlier checkpoints), manifest
            // swap, WAL compaction.
            self.persist_durable_checkpoint(ctx);
        }
        self.snapshots.retain(|s| s.seq > cert.seq);
    }

    /// Write the `durable` checkpoint through the node store, charging the
    /// (modelled) serialization cost; an I/O failure crashes the node.
    fn persist_durable_checkpoint(&mut self, ctx: &mut Ctx<'_, PbftMsg>) {
        if self.durable_store.is_none() {
            return;
        }
        let Some((cert, snap)) = self.durable.clone() else { return };
        let result = self
            .durable_store
            .as_mut()
            .expect("checked above")
            .persist_checkpoint(&cert, &snap.snap, &snap.executed);
        match result {
            Ok(io) => {
                let stats = io.pages;
                ctx.stats().inc(stat::WAL_CHECKPOINTS, 1);
                ctx.stats().inc(stat::WAL_PAGES_WRITTEN, stats.pages_written);
                ctx.stats().inc(stat::WAL_PAGES_SHARED, stats.subtrees_shared);
                let mut gc_copied_bytes = 0;
                if let Some(gc) = io.gc {
                    ctx.stats().inc(stat::WAL_GC_RUNS, gc.runs);
                    ctx.stats().inc(stat::WAL_GC_RECLAIMED, gc.reclaimed_bytes);
                    ctx.stats().inc(stat::WAL_GC_COPIED, gc.copied_pages);
                    gc_copied_bytes = gc.copied_bytes;
                }
                // Serialization + page I/O cost (bytes actually written —
                // shared pages cost nothing, the point of the dedup; a GC
                // pass additionally pays for the live pages it copied).
                self.charge(
                    ctx,
                    SimDuration::from_micros(20)
                        + SimDuration::from_nanos((stats.bytes_written + gc_copied_bytes) / 4),
                    false,
                );
            }
            Err(_) => self.io_crash(ctx),
        }
    }

    /// Trim the serving window: by count (`snapshot_retention`), then by
    /// the approximate resident-byte budget (`snapshot_max_bytes`),
    /// evicting oldest-first while pinning the durable checkpoint and the
    /// newest snapshot (the ones sync and restart anchor on).
    fn enforce_snapshot_budget(&mut self, ctx: &mut Ctx<'_, PbftMsg>) {
        while self.serving.len() > self.cfg.snapshot_retention.max(2) {
            self.serving.remove(0);
        }
        if self.cfg.snapshot_max_bytes == u64::MAX {
            return;
        }
        let durable_root = self.durable.as_ref().map(|(c, _)| c.root);
        while self.serving.len() > 2 {
            let total: u64 = self.serving.iter().map(|(_, s)| s.approx_bytes).sum();
            if total <= self.cfg.snapshot_max_bytes {
                break;
            }
            // Oldest unpinned entry (never the newest, never the durable).
            let newest = self.serving.len() - 1;
            let Some(pos) = self.serving[..newest]
                .iter()
                .position(|(c, _)| Some(c.root) != durable_root)
            else {
                break;
            };
            self.serving.remove(pos);
            ctx.stats().inc(stat::SNAPSHOT_EVICTIONS, 1);
        }
    }

    fn on_checkpoint(&mut self, vote: CheckpointVote, ctx: &mut Ctx<'_, PbftMsg>) {
        self.charge(ctx, self.cfg.native_verify, false);
        // Real-crypto mode: an unsigned vote is a forgery, not "cost-only"
        // — CheckpointVote::verify's unsigned arm exists for simulations
        // that never carry signatures at all.
        if self.cfg.crypto == CryptoMode::Real
            && (vote.sig.is_none() || !vote.verify(&self.registry))
        {
            ctx.stats().inc("consensus.invalid_msg", 1);
            return;
        }
        self.record_checkpoint(vote, ctx);
    }

    // ---------- view change ----------

    fn current_vc_timeout(&self) -> SimDuration {
        self.cfg.vc_timeout.saturating_mul(1u64 << self.vc_backoff.min(5))
    }

    fn maybe_start_view_change(&mut self, ctx: &mut Ctx<'_, PbftMsg>) {
        if self.paused {
            return; // not voting: a view change can neither help nor pass
        }
        let pending_work = !self.pool.is_empty()
            || self
                .insts
                .iter()
                .any(|(s, i)| *s > self.exec_seq && !i.executed && i.block.is_some());
        let progressed = self.exec_seq > self.last_progress_seq;
        self.last_progress_seq = self.exec_seq;
        if progressed {
            self.vc_backoff = 0;
            self.stall_strikes = 0;
            return;
        }
        if !pending_work || self.byzantine {
            self.stall_strikes = 0;
            return;
        }
        // Cut-off detection: if nothing at all arrived for half a timeout
        // we are isolated (e.g. a transitioning node fetching state) — a
        // dead *leader* still leaves peer traffic flowing, so this never
        // masks a real leader failure. A view change while cut off would be
        // futile and, worse, its stale votes churn the committee after
        // healing.
        let cutoff = SimDuration::from_nanos(self.current_vc_timeout().as_nanos() / 2);
        if ctx.now().since(self.last_msg_at) >= cutoff {
            return;
        }
        // Gap detection: if a later sequence already committed while we
        // miss earlier blocks, the leader is fine — we lagged (dropped
        // messages / temporary isolation). Request a state transfer
        // instead of suspecting the leader.
        if self.has_execution_gap() {
            self.request_state_sync(ctx);
            return;
        }
        // Two strikes before suspecting the leader.
        self.stall_strikes = self.stall_strikes.saturating_add(1);
        if self.stall_strikes < 2 {
            return;
        }
        self.stall_strikes = 0;
        let target = (self.view + 1).max(self.highest_vc_sent + 1);
        self.start_view_change(target, ctx);
        self.vc_backoff = (self.vc_backoff + 1).min(5);
    }

    /// Evidence of having fallen behind the committee: a later instance
    /// committed while the next-to-execute one cannot, or proposals exist
    /// far beyond our pipeline window (the leader only proposes within
    /// `pipeline_width` of *its* execution point, so seeing proposals past
    /// ours means our execution point is stale). Either way progress needs
    /// state transfer, not a view change.
    fn has_execution_gap(&self) -> bool {
        let next = self.exec_seq + 1;
        let next_committed = self
            .insts
            .get(&next)
            .map(|i| i.committed)
            .unwrap_or(false);
        if next_committed {
            return false;
        }
        let horizon = next + self.cfg.pipeline_width;
        self.insts
            .iter()
            .any(|(s, i)| (*s > next && i.committed) || (*s > horizon && i.block.is_some()))
    }

    fn request_state_sync(&mut self, ctx: &mut Ctx<'_, PbftMsg>) {
        if self.sync.is_some() {
            return; // one exchange at a time; the sync timer handles stalls
        }
        ctx.stats().inc("consensus.state_sync_requests", 1);
        self.begin_sync(false, false, None, ctx);
    }

    // ---------- state sync: requester side ----------

    /// Open a sync exchange. `full` forces a complete chunked re-fetch
    /// (shard transition / restart); otherwise the server decides between a
    /// block tail and a chunked transfer based on how far behind we are.
    /// `rejoin` marks a full fetch into state this node recently held, so
    /// its old certified root is meaningful and diff sync applies.
    fn begin_sync(
        &mut self,
        full: bool,
        rejoin: bool,
        notify: Option<NodeId>,
        ctx: &mut Ctx<'_, PbftMsg>,
    ) {
        let peer = next_sync_peer(self.cfg.n, self.me, self.me);
        let now = ctx.now();
        self.sync = Some(SyncRun {
            phase: SyncPhase::AwaitManifest,
            peer,
            full,
            rejoin,
            chunked: false,
            diffed: false,
            no_diff: false,
            anchor: None,
            floor_seq: 0,
            nack_strikes: 0,
            started: now,
            last_activity: now,
            notify: notify.into_iter().collect(),
        });
        ctx.trace(self.exec_seq, Phase::SyncStart);
        self.send_sync_request(ctx);
        ctx.set_timer(self.sync_retry_interval(), TIMER_SYNC);
    }

    /// Every certified root this node retains a snapshot of, newest
    /// first: the serving window plus the durable checkpoint, bounded by
    /// the retention depth. Advertised in `SyncRequest` so a server can
    /// anchor a diff plan on *any* root the two nodes share — not just
    /// the requester's newest (a freshly restarted server's window may
    /// hold only an older one).
    fn advertised_roots(&self) -> Vec<Hash> {
        let mut roots: Vec<Hash> = Vec::new();
        for (cert, _) in self.serving.iter().rev() {
            if !roots.contains(&cert.root) {
                roots.push(cert.root);
            }
        }
        if let Some((cert, _)) = &self.durable {
            if !roots.contains(&cert.root) {
                roots.push(cert.root);
            }
        }
        roots.truncate(self.cfg.snapshot_retention.max(2));
        roots
    }

    /// (Re)issue the opening `SyncRequest` to the current peer. Diff
    /// eligibility: enabled, not already fallen back, and the retained
    /// roots are meaningful for the target state (any gap catch-up, or a
    /// full fetch re-joining recently-held state). The diff anchor itself
    /// is resolved when the manifest answers — whichever advertised root
    /// the server diffed against.
    fn send_sync_request(&mut self, ctx: &mut Ctx<'_, PbftMsg>) {
        let Some(run) = self.sync.as_ref() else { return };
        let eligible = self.cfg.diff_sync && !run.no_diff && (!run.full || run.rejoin);
        let old_roots = if eligible { self.advertised_roots() } else { Vec::new() };
        let (peer, full) = (run.peer, run.full);
        ctx.send(
            self.group[peer],
            PbftMsg::SyncRequest {
                requester: self.me,
                have_seq: self.exec_seq,
                full,
                old_roots,
            },
        );
    }

    fn sync_retry_interval(&self) -> SimDuration {
        self.cfg.vc_timeout
    }


    #[allow(clippy::too_many_arguments)]
    fn on_sync_manifest(
        &mut self,
        cert: CheckpointCert,
        bits: u8,
        sidecar: Arc<StateSidecar>,
        executed: Arc<HashSet<u64>>,
        view: u64,
        diff: Option<Arc<Vec<u32>>>,
        diff_base: Option<Hash>,
        ctx: &mut Ctx<'_, PbftMsg>,
    ) {
        let Some(run) = self.sync.as_mut() else { return };
        // A manifest is valid in `AwaitManifest`, and also in `AwaitTail`:
        // if a newer certificate formed while we synced, the server cannot
        // serve our tail any more and re-anchors us on the newer one
        // (progress stays monotone — each round lands on a later cert).
        if !matches!(run.phase, SyncPhase::AwaitManifest | SyncPhase::AwaitTail) {
            return;
        }
        // Verify the certificate: quorum of distinct signers over the
        // advertised (seq, root) — the trust anchor for every chunk.
        let quorum = self.cfg.quorum();
        self.charge(
            ctx,
            self.cfg.native_verify.saturating_mul(cert.votes.len() as u64),
            false,
        );
        let registry = (self.cfg.crypto == CryptoMode::Real).then_some(self.registry.as_ref());
        if !cert.verify(quorum, registry) {
            ctx.stats().inc(stat::SYNC_BAD_CERTS, 1);
            let run = self.sync.as_mut().expect("checked above");
            run.peer = next_sync_peer(self.cfg.n, self.me, run.peer);
            return; // retry (rotated peer) via the sync timer
        }
        // Monotonicity: a stale peer (itself mid-recovery) may answer with
        // a certificate older than the one this exchange already targets.
        // Accepting it would regress the transfer — refuse and rotate.
        if cert.seq < self.sync.as_ref().map_or(0, |r| r.floor_seq) {
            ctx.stats().inc(stat::SYNC_STALE_MANIFESTS, 1);
            let run = self.sync.as_mut().expect("checked above");
            run.peer = next_sync_peer(self.cfg.n, self.me, run.peer);
            return;
        }
        // A full first-round fetch accepts any certificate (the node might
        // even be ahead of it on the old shard's timeline); re-anchors and
        // gap syncs only accept certificates ahead of the execution point.
        let first_round = matches!(
            self.sync.as_ref().map(|r| &r.phase),
            Some(SyncPhase::AwaitManifest)
        );
        let have_seq = if self.sync.as_ref().is_some_and(|r| r.full) && first_round {
            0
        } else {
            self.exec_seq
        };
        // An incremental plan is only usable when we still retain a
        // snapshot whose root is exactly the one the server diffed
        // against (we advertised several; the server picked one — and a
        // late manifest answering an earlier advertisement is fine as
        // long as that base is still retained: content-addressed roots
        // identify the overlay base unambiguously). Anything else
        // downgrades to a full session.
        let anchor_snap: Option<Arc<StateSnapshot>> = diff_base
            .and_then(|root| self.retained_snapshot(&root).cloned())
            .filter(|_| diff.is_some());
        let usable_diff = diff.filter(|_| anchor_snap.is_some());
        let session = match match &usable_diff {
            Some(chunks) => SyncSession::new_diff(cert, bits, chunks, have_seq),
            None => SyncSession::new_full(cert, bits, have_seq),
        } {
            Ok(s) => s,
            Err(_) if first_round => {
                // Stale certificate on the opening exchange: nothing newer
                // than what we hold — the gap has closed on its own.
                ctx.stats().inc(stat::SYNC_BAD_CERTS, 1);
                self.finish_sync(ctx);
                return;
            }
            Err(_) => {
                // A late/duplicate manifest for the cert we just installed
                // (AwaitTail): ignore it and keep waiting for the tail —
                // treating it as completion would skip the block replay.
                return;
            }
        };
        let run = self.sync.as_mut().expect("checked above");
        run.chunked = true;
        run.last_activity = ctx.now();
        run.floor_seq = session.seq();
        run.nack_strikes = 0;
        if session.is_diff() {
            run.diffed = true;
            run.anchor = anchor_snap;
            ctx.stats().inc(stat::SYNC_DIFFS, 1);
        } else {
            run.anchor = None;
        }
        if std::env::var("AHL_DEBUG").is_ok() {
            eprintln!(
                "[{}] node {} manifest: cert seq {} bits {} plan {} chunks{}",
                ctx.now(), self.me, session.seq(), session.bits(), session.total_chunks(),
                if session.is_diff() { " (diff)" } else { "" },
            );
        }
        let done = session.is_complete();
        run.phase = SyncPhase::Chunks { session, sidecar, executed, view, inflight: Vec::new() };
        if done {
            // Empty diff: the retained snapshot already matches the
            // certified root — skip straight to the install + tail.
            self.install_synced_state(ctx);
        } else {
            self.pump_chunk_requests(ctx);
        }
    }

    /// Keep up to `sync_fanout` chunk requests outstanding, each to a
    /// different peer in rotation. Chunks verify independently against the
    /// certified root, so order does not matter and slow peers only stall
    /// their own slot.
    fn pump_chunk_requests(&mut self, ctx: &mut Ctx<'_, PbftMsg>) {
        let fanout = self.cfg.sync_fanout.clamp(1, self.cfg.n.saturating_sub(1).max(1));
        let me = self.me;
        let n = self.cfg.n;
        let Some(run) = self.sync.as_mut() else { return };
        let SyncPhase::Chunks { session, inflight, .. } = &mut run.phase else { return };
        let seq = session.seq();
        let mut sends: Vec<(usize, u32)> = Vec::new();
        for chunk in session.missing_chunks() {
            if inflight.len() >= fanout {
                break;
            }
            if inflight.contains(&chunk) {
                continue;
            }
            run.peer = next_sync_peer(n, me, run.peer);
            inflight.push(chunk);
            sends.push((run.peer, chunk));
        }
        for (peer, chunk) in sends {
            ctx.send(self.group[peer], PbftMsg::ChunkRequest { requester: me, seq, chunk });
        }
    }

    fn on_chunk_data(
        &mut self,
        seq: u64,
        chunk: u32,
        entries: Arc<Vec<(Key, Value)>>,
        proof: Arc<Vec<Hash>>,
        ctx: &mut Ctx<'_, PbftMsg>,
    ) {
        let now = ctx.now();
        let bytes: usize = entries.iter().map(|(k, v)| chunk_entry_bytes(k, v)).sum();
        let (n, me) = (self.cfg.n, self.me);
        let Some(run) = self.sync.as_mut() else { return };
        let SyncPhase::Chunks { session, inflight, .. } = &mut run.phase else { return };
        if session.seq() != seq || session.is_fetched(chunk) {
            // Wrong anchor, or a duplicate delivery (timeout retry raced
            // the original): nothing to verify, count, or charge.
            return;
        }
        run.last_activity = now;
        // Verification cost: hash every leaf + fold the proof.
        let verify_cost = self
            .cfg
            .costs
            .cost(TeeOp::Sha256)
            .saturating_mul(1 + entries.len() as u64)
            + SimDuration::from_nanos((bytes / 8) as u64);
        enum Outcome {
            Done,
            More,
            Retry(usize),
            Ignore,
        }
        let outcome = match session.accept_chunk(chunk, (*entries).clone(), &proof) {
            Ok(done) => {
                inflight.retain(|c| *c != chunk);
                // Progress: the Nack strike ladder only counts *consecutive*
                // failures — one stale peer in the rotation must not
                // accumulate strikes across an otherwise healthy transfer.
                run.nack_strikes = 0;
                if done {
                    Outcome::Done
                } else {
                    Outcome::More
                }
            }
            Err(SyncError::BadProof { .. }) => {
                // Re-request the same chunk from a different peer: the
                // session did not advance (resumable transfer). The chunk
                // stays in `inflight` so the pump keeps its fan-out slot.
                run.peer = next_sync_peer(n, me, run.peer);
                Outcome::Retry(run.peer)
            }
            // Duplicate or out-of-plan delivery: ignore.
            Err(_) => Outcome::Ignore,
        };
        match outcome {
            Outcome::Done => {
                self.charge(ctx, verify_cost, false);
                let scope = Scope::committee(self.cfg.committee_id);
                ctx.stats().inc_scoped(stat::SYNC_BYTES, scope, bytes as u64);
                self.install_synced_state(ctx);
            }
            Outcome::More => {
                self.charge(ctx, verify_cost, false);
                let scope = Scope::committee(self.cfg.committee_id);
                ctx.stats().inc_scoped(stat::SYNC_BYTES, scope, bytes as u64);
                self.pump_chunk_requests(ctx);
            }
            Outcome::Retry(peer) => {
                self.charge(ctx, verify_cost, false);
                ctx.stats().inc(stat::SYNC_PROOF_FAILURES, 1);
                ctx.send(
                    self.group[peer],
                    PbftMsg::ChunkRequest { requester: self.me, seq, chunk },
                );
            }
            Outcome::Ignore => {}
        }
    }

    /// All planned chunks verified: swap in the rebuilt state at the
    /// certified height, then fetch the block tail above it. A full plan
    /// rebuilds from the verified entries alone; a diff plan overlays the
    /// verified chunks onto the retained anchor snapshot and *must* land
    /// exactly on the certified root — a mismatch (server lied about the
    /// changed-chunk set) falls back to a full transfer.
    fn install_synced_state(&mut self, ctx: &mut Ctx<'_, PbftMsg>) {
        let mut run = self.sync.take().expect("install follows a live session");
        let SyncPhase::Chunks { session, sidecar, executed, view, .. } =
            std::mem::replace(&mut run.phase, SyncPhase::AwaitTail)
        else {
            unreachable!("install follows the chunk phase")
        };
        let is_diff = session.is_diff();
        let bits = session.bits();
        let (cert, chunks) = session.into_verified();
        let fetched: u64 = chunks.iter().map(|(_, e)| e.len() as u64).sum();
        // Rebuild cost: one leaf hash per *fetched* entry plus tree
        // construction — a diff install reuses the anchor's shared tree and
        // only pays for the overlaid chunks.
        self.charge(
            ctx,
            self.cfg
                .costs
                .cost(TeeOp::Sha256)
                .saturating_mul(1 + fetched),
            false,
        );
        let mut state = if is_diff {
            let anchor = run.anchor.as_ref().expect("diff session kept its anchor");
            let mut base = StateStore::from_snapshot(anchor);
            base.apply_diff(bits, &chunks);
            if base.state_digest() != cert.root {
                // The changed-chunk report did not cover every difference:
                // the merged state misses the certified root. Nothing
                // unverified was installed — restart the exchange as a
                // full transfer.
                ctx.stats().inc(stat::SYNC_DIFF_FALLBACKS, 1);
                run.phase = SyncPhase::AwaitManifest;
                run.no_diff = true;
                run.peer = next_sync_peer(self.cfg.n, self.me, run.peer);
                run.last_activity = ctx.now();
                self.sync = Some(run);
                self.send_sync_request(ctx);
                return;
            }
            base
        } else {
            StateStore::from_entries(chunks.into_iter().flat_map(|(_, e)| e).collect())
        };
        state.install_sidecar(&sidecar);
        debug_assert_eq!(state.state_digest(), cert.root, "chunks verified against root");
        self.state = state;
        self.executed_reqs = ExecutedCache::from_set(&executed, ctx.now());
        if !self.byzantine {
            if let Some(ck) = &self.cfg.safety {
                // Installed certified state replaces the execution
                // history: a fresh exactly-once lineage begins here.
                ck.record_reset(self.cfg.committee_id, self.me);
            }
        }
        // The node now *holds* certified state at `cert`: register it as a
        // servable snapshot and as the durable checkpoint, so a follow-up
        // sync (or the next crash) anchors here instead of at whatever
        // certificate predated this transfer.
        let installed = CkptSnapshot {
            seq: cert.seq,
            snap: Arc::new(self.state.snapshot()),
            executed: executed.clone(),
            approx_bytes: self.state.take_write_bytes(),
        };
        self.serving.push((cert.clone(), installed.clone()));
        self.durable = Some((cert.clone(), installed));
        self.enforce_snapshot_budget(ctx);
        // Installed certified state is the new durable checkpoint: put it
        // on disk before resuming (a crash right after install must
        // recover here, not at the pre-crash checkpoint).
        self.persist_durable_checkpoint(ctx);
        if self.crashed {
            return; // the persist failed; the node is dark now
        }
        self.exec_seq = cert.seq;
        self.low_mark = cert.seq;
        if run.full {
            // Fresh shard state: every local instance refers to the old
            // timeline (including ones marked executed above the cert), and
            // the proposal counter restarts at the certified height — the
            // new committee's history *is* the certificate; anything the
            // old timeline held above it is re-ordered from the pools.
            self.insts.clear();
            self.next_seq = cert.seq + 1;
        } else {
            self.insts.retain(|s, _| *s > cert.seq);
            self.next_seq = self.next_seq.max(cert.seq + 1);
        }
        // The local chain is no longer contiguous after a jump.
        self.maintain_chain = false;
        self.ckpt.adopt(cert);
        if view > self.view {
            self.enter_view(view, ctx);
        }
        // Drop pooled requests that executed remotely.
        let ex = std::mem::take(&mut self.executed_reqs);
        self.pool.retain(|r| !ex.contains(r.id));
        self.executed_reqs = ex;
        if std::env::var("AHL_DEBUG").is_ok() {
            eprintln!("[{}] node {} installed chunks at seq {}", ctx.now(), self.me, self.exec_seq);
        }
        // Catch up the blocks committed above the certificate. Advertise
        // the retained window (headed by the root just installed): if a
        // newer certificate formed mid-transfer, the server re-anchors us
        // with a near-empty diff instead of another full pass.
        let peer = run.peer;
        let old_roots = if self.cfg.diff_sync && !run.no_diff {
            self.advertised_roots()
        } else {
            Vec::new()
        };
        run.last_activity = ctx.now();
        self.sync = Some(run);
        ctx.send(
            self.group[peer],
            PbftMsg::SyncRequest {
                requester: self.me,
                have_seq: self.exec_seq,
                full: false,
                old_roots,
            },
        );
    }

    fn on_sync_tail(
        &mut self,
        blocks: Vec<Arc<PbftBlock>>,
        view: u64,
        ctx: &mut Ctx<'_, PbftMsg>,
    ) {
        let Some(run) = self.sync.as_mut() else { return };
        if !matches!(run.phase, SyncPhase::AwaitTail | SyncPhase::AwaitManifest) {
            return;
        }
        run.last_activity = ctx.now();
        if std::env::var("AHL_DEBUG").is_ok() {
            eprintln!("[{}] node {} tail: {} blocks from {}", ctx.now(), self.me, blocks.len(), self.exec_seq);
        }
        for block in blocks {
            if block.seq == self.exec_seq + 1 {
                self.execute_block(&block, ctx);
                if self.crashed {
                    return; // I/O failure while journaling the tail
                }
                self.exec_seq = block.seq;
                // The tail crosses checkpoint heights like normal
                // execution does: snapshot and vote, or this replica would
                // neither contribute to those certificates nor be able to
                // serve chunks at them.
                if self.exec_seq.is_multiple_of(self.cfg.checkpoint_interval) {
                    self.send_checkpoint(ctx);
                }
            }
        }
        if view > self.view {
            self.enter_view(view, ctx);
        }
        self.finish_sync(ctx);
    }

    fn on_sync_nack(&mut self, ctx: &mut Ctx<'_, PbftMsg>) {
        enum Act {
            Finish,
            Idle,
            Pump,
            Reanchor,
        }
        let (n, me, now) = (self.cfg.n, self.me, ctx.now());
        let act = {
            let Some(run) = self.sync.as_mut() else { return };
            if std::env::var("AHL_DEBUG").is_ok() {
                eprintln!("[{}] node {} sync nack (phase {})", now, me,
                    match run.phase { SyncPhase::AwaitManifest => "manifest", SyncPhase::Chunks{..} => "chunks", SyncPhase::AwaitTail => "tail" });
            }
            match &mut run.phase {
                // Nothing above the certificate (or we were already
                // current).
                SyncPhase::AwaitTail => Act::Finish,
                // Server cannot serve a manifest: rotate and retry via
                // the sync timer — unless a gap catch-up no longer has a
                // gap (normal traffic caught us up while we waited).
                SyncPhase::AwaitManifest => {
                    run.peer = next_sync_peer(n, me, run.peer);
                    if !run.full {
                        Act::Finish // conditional: only if the gap closed
                    } else {
                        Act::Idle
                    }
                }
                // A peer cannot serve chunks at our certificate. Either
                // that one peer is stale (freshly restarted, serving only
                // its own old snapshot) — strike it, rotate, and re-issue
                // the outstanding requests elsewhere — or the *committee*
                // has rotated the snapshot away (cert advanced), which a
                // full rotation's worth of consecutive Nacks evidences:
                // only then re-anchor on a fresh manifest (discarding the
                // session's verified chunks). Without the strike ladder,
                // one stale peer in the fan-out rotation could reset the
                // transfer forever.
                SyncPhase::Chunks { inflight, .. } => {
                    run.nack_strikes = run.nack_strikes.saturating_add(1);
                    run.peer = next_sync_peer(n, me, run.peer);
                    run.last_activity = now;
                    if (run.nack_strikes as usize) < n.saturating_sub(1).max(2) {
                        inflight.clear();
                        Act::Pump
                    } else {
                        run.nack_strikes = 0;
                        run.phase = SyncPhase::AwaitManifest;
                        Act::Reanchor
                    }
                }
            }
        };
        match act {
            Act::Finish => {
                let tail_phase = matches!(
                    self.sync.as_ref().map(|r| &r.phase),
                    Some(SyncPhase::AwaitTail)
                );
                if tail_phase || !self.has_execution_gap() {
                    self.finish_sync(ctx);
                }
            }
            Act::Idle => {}
            Act::Pump => self.pump_chunk_requests(ctx),
            Act::Reanchor => {
                ctx.stats().inc(stat::SYNC_REANCHORS, 1);
                self.send_sync_request(ctx);
            }
        }
    }

    /// Sync exchange complete: account for it, resume participation, and
    /// notify the transition controller if one is waiting.
    fn finish_sync(&mut self, ctx: &mut Ctx<'_, PbftMsg>) {
        let Some(run) = self.sync.take() else { return };
        ctx.trace(self.exec_seq, Phase::SyncDone);
        if run.chunked {
            let elapsed = ctx.now().since(run.started);
            let scope = Scope::committee(self.cfg.committee_id);
            ctx.stats().inc_scoped(stat::SYNC_COMPLETED, scope, 1);
            ctx.stats().record_latency_scoped(stat::SYNC_DURATION, scope, elapsed);
        } else {
            ctx.stats().inc(stat::SYNC_TAILS, 1);
        }
        self.paused = false;
        self.stall_strikes = 0;
        for controller in run.notify {
            ctx.send(controller, PbftMsg::TransitionDone { replica: self.me });
        }
        // Requests pooled while away: push the whole backlog toward the
        // current leader (bounded only by a generous cap) — this is the
        // post-recovery drain the reshard experiment measures.
        if self.cfg.relay_to_leader && !self.is_leader() {
            let leader = self.group[self.leader_of(self.view)];
            for req in self.pool.iter_fifo().take(4096) {
                ctx.send(leader, PbftMsg::Relay(req.clone()));
            }
        }
        self.try_execute(ctx);
    }

    fn on_sync_timer(&mut self, ctx: &mut Ctx<'_, PbftMsg>) {
        enum Act {
            Idle,
            Manifest,
            Pump,
            Tail { peer: usize, no_diff: bool },
        }
        let retry_after = self.sync_retry_interval().saturating_mul(2);
        let (n, me) = (self.cfg.n, self.me);
        let act = match self.sync.as_mut() {
            None => return,
            Some(run) if ctx.now().since(run.last_activity) >= retry_after => {
                run.peer = next_sync_peer(n, me, run.peer);
                run.last_activity = ctx.now();
                match &mut run.phase {
                    SyncPhase::AwaitManifest => Act::Manifest,
                    // Outstanding chunk requests went unanswered: forget
                    // the in-flight set and re-issue across rotated peers.
                    SyncPhase::Chunks { inflight, .. } => {
                        inflight.clear();
                        Act::Pump
                    }
                    SyncPhase::AwaitTail => Act::Tail { peer: run.peer, no_diff: run.no_diff },
                }
            }
            Some(_) => Act::Idle,
        };
        match act {
            Act::Idle => {}
            Act::Manifest => self.send_sync_request(ctx),
            Act::Pump => self.pump_chunk_requests(ctx),
            Act::Tail { peer, no_diff } => {
                // Keep advertising the retained window on retries: if a
                // newer cert formed, the re-anchor stays incremental.
                let old_roots = if self.cfg.diff_sync && !no_diff {
                    self.advertised_roots()
                } else {
                    Vec::new()
                };
                ctx.send(
                    self.group[peer],
                    PbftMsg::SyncRequest {
                        requester: self.me,
                        have_seq: self.exec_seq,
                        full: false,
                        old_roots,
                    },
                );
            }
        }
        ctx.set_timer(self.sync_retry_interval(), TIMER_SYNC);
    }

    // ---------- state sync: server side ----------

    fn on_sync_request(
        &mut self,
        requester: usize,
        have_seq: u64,
        full: bool,
        old_roots: Vec<Hash>,
        ctx: &mut Ctx<'_, PbftMsg>,
    ) {
        if requester >= self.cfg.n || requester == self.me {
            return;
        }
        self.charge(ctx, SimDuration::from_micros(20), false);
        let to = self.group[requester];
        // A transitioning node serves manifests and chunks (its certified
        // snapshot stays valid) but never a block tail: everything it
        // executed above the certificate belongs to the old shard's
        // timeline, which the transition discards. Serving it would fork a
        // swap-all committee between old and re-ordered history.
        if !full && !self.paused {
            if self.exec_seq <= have_seq {
                ctx.send(to, PbftMsg::SyncNack { have_seq });
                return;
            }
            // Recent gap: serve the committed blocks directly (executed
            // instances are retained above the previous stable checkpoint).
            if have_seq >= self.insts_floor {
                let blocks: Option<Vec<Arc<PbftBlock>>> = (have_seq + 1..=self.exec_seq)
                    .map(|s| {
                        self.insts
                            .get(&s)
                            .filter(|i| i.executed)
                            .and_then(|i| i.block.clone())
                    })
                    .collect();
                if let Some(blocks) = blocks {
                    let bytes: usize = blocks.iter().map(|b| b.wire_size()).sum();
                    self.charge(ctx, SimDuration::from_nanos((bytes / 8) as u64), false);
                    ctx.send(to, PbftMsg::SyncTail { blocks, view: self.view });
                    return;
                }
            }
        }
        // Deep gap or forced full fetch: anchor a chunked transfer at the
        // latest certified snapshot.
        match self.serving.last() {
            Some((cert, snap)) if full || cert.seq > have_seq => {
                let bits = chunk_bits_for(snap.snap.len(), self.cfg.sync_chunk_target);
                // Incremental plan: if *any* advertised root (newest
                // first) is one this node still retains a snapshot of,
                // report only the chunks that changed since. Retention
                // covers the serving window (`snapshot_retention` certs)
                // plus the durable checkpoint; no shared root falls back
                // to a full plan.
                let (diff, diff_base): (Option<Arc<Vec<u32>>>, Option<Hash>) = if self
                    .cfg
                    .diff_sync
                {
                    match old_roots.iter().find(|r| self.retained_snapshot(r).is_some()) {
                        Some(oroot) => {
                            let old = self.retained_snapshot(oroot).expect("found above");
                            (
                                Some(Arc::new(old.smt().diff_chunks(snap.snap.smt(), bits))),
                                Some(*oroot),
                            )
                        }
                        None => (None, None),
                    }
                } else {
                    (None, None)
                };
                if std::env::var("AHL_DEBUG").is_ok() {
                    eprintln!(
                        "[server {}] sync_request from {} have {} full {} old_roots {} -> cert {} diff {:?}",
                        self.me, requester, have_seq, full,
                        old_roots.len(), cert.seq,
                        diff.as_ref().map(|d| d.len()),
                    );
                }
                let sidecar = Arc::new(snap.snap.sidecar().clone());
                // Diff computation walks both trees' chunk roots (hash
                // compares only — shared subtrees never hash again).
                let serve_cost = SimDuration::from_micros(50)
                    + SimDuration::from_nanos(
                        diff.as_ref().map_or(0, |_| (1u64 << bits) * 50),
                    );
                self.charge(ctx, serve_cost, false);
                ctx.send(
                    to,
                    PbftMsg::SyncManifest {
                        cert: cert.clone(),
                        bits,
                        leaves: snap.snap.len() as u64,
                        sidecar,
                        executed: snap.executed.clone(),
                        view: self.view,
                        diff,
                        diff_base,
                    },
                );
            }
            _ => ctx.send(to, PbftMsg::SyncNack { have_seq }),
        }
    }

    /// A retained frozen snapshot whose root is exactly `root`, if any:
    /// searched through the serving window, the not-yet-certified own
    /// snapshots, and the durable checkpoint.
    fn retained_snapshot(&self, root: &Hash) -> Option<&Arc<StateSnapshot>> {
        self.serving
            .iter()
            .map(|(_, s)| s)
            .chain(self.snapshots.iter())
            .chain(self.durable.iter().map(|(_, s)| s))
            .find(|s| s.snap.root() == *root)
            .map(|s| &s.snap)
    }

    fn on_chunk_request(&mut self, requester: usize, seq: u64, chunk: u32, ctx: &mut Ctx<'_, PbftMsg>) {
        if requester >= self.cfg.n || requester == self.me {
            return;
        }
        let to = self.group[requester];
        match self.serving.iter().find(|(cert, _)| cert.seq == seq) {
            Some((_, snap)) => {
                let bits = chunk_bits_for(snap.snap.len(), self.cfg.sync_chunk_target);
                if chunk >= 1u32 << bits {
                    ctx.send(to, PbftMsg::SyncNack { have_seq: seq });
                    return;
                }
                // The frozen snapshot carries keys *and* values: the chunk
                // is cut straight from the certified tree.
                let mut entries: Vec<(Key, Value)> = snap.snap.chunk_entries(chunk, bits);
                if self.byzantine {
                    // A Byzantine server corrupts what it serves; the
                    // requester's per-chunk proof check must catch it and
                    // fetch the chunk from an honest peer instead.
                    match entries.first_mut() {
                        Some((_, Value::Int(i))) => *i ^= 1,
                        Some((_, Value::Opaque { tag, .. })) => *tag ^= 1,
                        Some((_, v)) => *v = Value::Bool(false),
                        None => entries.push(("forged".into(), Value::Int(666))),
                    }
                }
                let proof = snap.snap.chunk_proof(chunk, bits);
                let bytes: usize = entries.iter().map(|(k, v)| chunk_entry_bytes(k, v)).sum();
                // Read + serialization cost for the served chunk.
                self.charge(
                    ctx,
                    SimDuration::from_micros(20) + SimDuration::from_nanos((bytes / 8) as u64),
                    false,
                );
                ctx.stats().inc_scoped(
                    stat::SYNC_CHUNKS_SERVED,
                    Scope::committee(self.cfg.committee_id),
                    1,
                );
                ctx.send(
                    to,
                    PbftMsg::ChunkData {
                        seq,
                        chunk,
                        entries: Arc::new(entries),
                        proof: Arc::new(proof),
                    },
                );
            }
            // Snapshot rotated away (a newer cert formed): the requester
            // must re-anchor.
            _ => ctx.send(to, PbftMsg::SyncNack { have_seq: seq }),
        }
    }

    // ---------- reconfiguration / restart hooks ----------

    /// §5.3 shard transition: pause consensus participation and re-fetch
    /// the (new) shard's entire state through the certified chunk protocol.
    /// The old state is kept for *serving* — departing committee members
    /// keep answering chunk requests while they transfer, as in the paper.
    fn on_transition(
        &mut self,
        controller: Option<NodeId>,
        rejoin: bool,
        ctx: &mut Ctx<'_, PbftMsg>,
    ) {
        match &mut self.sync {
            // Already transitioning: the in-flight full fetch serves this
            // request too — attach the new controller rather than dropping
            // it (a batch scheduler waiting on TransitionDone would
            // otherwise deadlock).
            Some(run) if run.full => {
                if let Some(c) = controller {
                    if !run.notify.contains(&c) {
                        run.notify.push(c);
                    }
                }
                return;
            }
            // A gap catch-up is superseded — the transition re-fetches
            // everything anyway, and dropping the Transition instead would
            // deadlock the reshard controller waiting on TransitionDone.
            Some(_) => self.sync = None,
            None => {}
        }
        ctx.stats().inc("sync.transitions", 1);
        self.paused = true;
        self.begin_sync(true, rejoin, controller, ctx);
    }

    /// Crash: the node goes dark. Every message is dropped and timers idle
    /// until a `Restart` arrives — modelling real downtime, during which
    /// the committee commits on without this member and its block tail
    /// ages out of peers' retention.
    fn on_crash(&mut self, ctx: &mut Ctx<'_, PbftMsg>) {
        ctx.stats().inc("sync.crashes", 1);
        self.crashed = true;
        self.paused = true;
        self.sync = None;
        // A dead process holds no file handles; uncommitted WAL appends
        // buffered in them are lost — exactly the crash model. `Restart`
        // reopens the directory through full recovery validation.
        self.durable_store = None;
    }

    /// (Re)start after a crash: all volatile state is lost; genesis and
    /// the durable checkpoint survive. Without a `data_dir` the in-memory
    /// `durable` field stands in for the disk; with one, the node
    /// directory is *reopened* — manifest validation, page-verified
    /// checkpoint load, WAL tail replay — and the replica resumes from
    /// what the disk actually says before diff-syncing the remainder
    /// (advertising its retained roots, so a peer that still holds any of
    /// them serves only the diff).
    fn on_restart(&mut self, ctx: &mut Ctx<'_, PbftMsg>) {
        ctx.stats().inc("sync.restarts", 1);
        if !self.byzantine {
            if let Some(ck) = &self.cfg.safety {
                // Volatile state is gone: the replica legitimately
                // re-executes history, so its exactly-once scope resets.
                ck.record_reset(self.cfg.committee_id, self.me);
            }
        }
        self.crashed = false;
        self.chain = Chain::new();
        self.maintain_chain = false;
        self.insts.clear();
        self.executed_reqs = ExecutedCache::new();
        self.ingested.clear();
        self.pool = Mempool::new(self.cfg.mempool.clone(), self.cfg.pool_seed ^ self.me as u64);
        self.batcher = BatchBuilder::new(BatchConfig {
            max_txs: self.cfg.batch_size,
            max_bytes: self.cfg.batch_bytes,
            timeout: self.cfg.batch_timeout,
        });
        self.ckpt = CheckpointTracker::new();
        self.snapshots.clear();
        self.serving.clear();
        self.vc_votes.clear();
        self.vc_backoff = 0;
        self.stall_strikes = 0;
        self.sync = None;
        self.paused = true;
        if self.store_dir.is_some() {
            self.restart_from_disk(ctx);
        } else {
            match self.durable.clone() {
                Some((cert, snap)) => {
                    // Resume from the certified checkpoint: O(fetched)
                    // recovery instead of re-transferring the whole state.
                    self.state = StateStore::from_snapshot(&snap.snap);
                    self.executed_reqs = ExecutedCache::from_set(&snap.executed, ctx.now());
                    self.exec_seq = cert.seq;
                    self.next_seq = cert.seq + 1;
                    self.low_mark = cert.seq;
                    self.insts_floor = cert.seq;
                    self.ckpt.adopt(cert.clone());
                    // The restored snapshot is servable again (and is the
                    // diff anchor the sync request advertises).
                    self.serving = vec![(cert, snap)];
                }
                None => self.cold_start_state(),
            }
        }
        // Timer chains kept alive through the dark period resume driving
        // batching/view-change/heartbeat once sync completes.
        self.begin_sync(false, false, None, ctx);
    }

    /// Reset the ledger to genesis (no durable checkpoint to resume from).
    fn cold_start_state(&mut self) {
        let mut state = StateStore::new();
        state.load_genesis(&self.genesis);
        self.state = state;
        self.exec_seq = 0;
        self.next_seq = 1;
        self.low_mark = 0;
        self.insts_floor = 0;
    }

    /// Real recovery: reopen the node directory, resume from the durable
    /// checkpoint the manifest names (pages root-verified on load), then
    /// replay the WAL tail past it — crash-truncated tails were already
    /// cut at the torn record, and the 2PC journal cross-checks replay.
    /// Anything this cannot restore, state sync fetches afterwards.
    fn restart_from_disk(&mut self, ctx: &mut Ctx<'_, PbftMsg>) {
        self.durable_store = None;
        self.durable = None;
        let dir = self.store_dir.clone().expect("caller checked");
        let (store, recovered, tail) = match NodeStore::open(&dir, &self.cfg.wal) {
            Ok(parts) => parts,
            Err(_) => {
                // The directory is unusable (injected crash during the
                // reopen itself, or real I/O trouble): run diskless from
                // genesis; state sync restores the ledger.
                ctx.stats().inc(stat::WAL_REOPEN_FAILURES, 1);
                self.cold_start_state();
                return;
            }
        };
        self.durable_store = Some(store);
        match recovered {
            Some(d) => {
                let cert = d.cert;
                let snap = Arc::new(d.snapshot);
                self.state = StateStore::from_snapshot(&snap);
                self.executed_reqs = ExecutedCache::from_set(&d.executed, ctx.now());
                self.exec_seq = cert.seq;
                self.next_seq = cert.seq + 1;
                self.low_mark = cert.seq;
                self.insts_floor = cert.seq;
                self.ckpt.adopt(cert.clone());
                let ckpt_snap = CkptSnapshot {
                    seq: cert.seq,
                    snap,
                    executed: Arc::new(d.executed),
                    approx_bytes: 0,
                };
                self.serving = vec![(cert.clone(), ckpt_snap.clone())];
                self.durable = Some((cert, ckpt_snap));
            }
            None => self.cold_start_state(),
        }
        let replayed = self.replay_wal_tail(tail, ctx);
        ctx.stats().inc(stat::WAL_REPLAYED, replayed);
        // Replayed writes are part of the recovered base, not churn to
        // charge against the next snapshot's byte budget.
        self.state.take_write_bytes();
        if std::env::var("AHL_DEBUG").is_ok() {
            eprintln!(
                "[{}] node {} reopened dir: durable seq {:?}, replayed {} batches -> exec {}",
                ctx.now(),
                self.me,
                self.durable.as_ref().map(|(c, _)| c.seq),
                replayed,
                self.exec_seq,
            );
        }
    }

    /// Re-execute the decoded WAL tail contiguously above the recovered
    /// checkpoint. Each batch's journaled 2PC transitions must match what
    /// replay actually performs — a divergence means the tail cannot be
    /// trusted (corruption the CRCs missed). The mismatch necessarily
    /// surfaces *after* the suspect batch applied, so the whole replay is
    /// rolled back to the verified checkpoint: nothing unattested stays
    /// in the recovered state, and verified state sync covers the rest.
    /// Returns the number of batches that stayed replayed.
    fn replay_wal_tail(&mut self, tail: Vec<WalRecord>, ctx: &mut Ctx<'_, PbftMsg>) -> u64 {
        let checkpoint_exec = self.exec_seq;
        let mut replayed = 0u64;
        let mut mismatch = false;
        // Journal records of a batch already folded into the checkpoint:
        // skipped, not checked (the checkpoint is the verified truth for
        // them; two-generation WAL retention makes such prefixes normal).
        let mut skipping = true;
        let mut expected: std::collections::VecDeque<(u64, TwoPcKind)> = Default::default();
        for rec in tail {
            match rec {
                WalRecord::Batch { seq, reqs } => {
                    if seq <= self.exec_seq {
                        skipping = true;
                        continue; // folded into the checkpoint already
                    }
                    if seq != self.exec_seq + 1 {
                        break; // gap: records beyond it are unreachable
                    }
                    // A truncated journal after a fully written batch is
                    // a normal crash shape — only *mismatches* are fatal,
                    // and those broke out of the loop below.
                    skipping = false;
                    expected.clear();
                    let mut weight = 0usize;
                    let checker = if self.byzantine { None } else { self.cfg.safety.clone() };
                    let replay_now = ctx.now();
                    for req in &reqs {
                        if !self.executed_reqs.insert(req.id, replay_now) {
                            continue;
                        }
                        weight += req.op.weight();
                        let had_pending = match &req.op {
                            ahl_ledger::Op::Abort { txid } => self.state.has_pending(*txid),
                            _ => false,
                        };
                        let receipt = self.state.execute(&req.op);
                        if let Some(ck) = &checker {
                            ck.observe_exec(
                                self.cfg.committee_id,
                                self.me,
                                req.id,
                                &req.op,
                                had_pending,
                                receipt.status.is_committed(),
                            );
                        }
                        if receipt.status.is_committed() {
                            if let (Some(k), Some(txid)) = (twopc_kind(&req.op), req.op.txid()) {
                                expected.push_back((txid.0, k));
                            }
                        }
                    }
                    self.charge(
                        ctx,
                        self.cfg.exec_cost_per_op.saturating_mul(weight as u64),
                        true,
                    );
                    self.exec_seq = seq;
                    self.next_seq = seq + 1;
                    replayed += 1;
                }
                WalRecord::TwoPc { .. } if skipping => {}
                WalRecord::TwoPc { txid, kind } => match expected.pop_front() {
                    Some((t, k)) if t == txid && k == kind => {}
                    _ => {
                        mismatch = true;
                        break;
                    }
                },
                WalRecord::Ckpt { seq, root } => {
                    // Checkpoint marker: when it names the point replay
                    // just reached, the live root must match the certified
                    // one — a cheap end-to-end integrity check on replay.
                    if seq == self.exec_seq && self.state.state_digest() != root {
                        mismatch = true;
                        break;
                    }
                }
            }
        }
        if mismatch {
            ctx.stats().inc(stat::WAL_REPLAY_MISMATCHES, 1);
            // The tail lied about a batch that is already applied: fall
            // back to exactly the verified checkpoint (or genesis) and
            // let state sync re-fetch the rest with proofs.
            match &self.durable {
                Some((cert, snap)) => {
                    self.state = StateStore::from_snapshot(&snap.snap);
                    self.executed_reqs = ExecutedCache::from_set(&snap.executed, ctx.now());
                    self.exec_seq = cert.seq;
                    self.next_seq = cert.seq + 1;
                }
                None => {
                    self.cold_start_state();
                }
            }
            debug_assert_eq!(self.exec_seq, checkpoint_exec, "rollback lands on the checkpoint");
            return 0;
        }
        replayed
    }

    fn start_view_change(&mut self, target: u64, ctx: &mut Ctx<'_, PbftMsg>) {
        if std::env::var("AHL_DEBUG").is_ok() {
            let next = self.exec_seq + 1;
            let detail = self.insts.get(&next).map(|i| {
                (
                    i.block.is_some(),
                    i.view,
                    i.prepares.values().map(HashSet::len).max().unwrap_or(0),
                    i.commits.values().map(HashSet::len).max().unwrap_or(0),
                    i.committed,
                )
            });
            eprintln!(
                "[{}] node {} VC -> view {} (exec {}, pool {}, insts {}, next inst {:?})",
                ctx.now(),
                self.me,
                target,
                self.exec_seq,
                self.pool.len(),
                self.insts.len(),
                detail
            );
        }
        self.highest_vc_sent = target;
        // A prepared claim in a view-change message is a safety-relevant
        // assertion, so tentatively admitted (deferred-Sig) votes must be
        // settled before they can back one: settle every candidate digest
        // first, then count the surviving prepare votes.
        let candidates: Vec<(u64, Hash)> = self
            .insts
            .iter()
            .filter(|(s, i)| **s > self.low_mark && !i.executed)
            .filter_map(|(s, i)| i.block.as_ref().map(|b| (*s, b.digest)))
            .collect();
        for (seq, digest) in &candidates {
            while !self.settle_deferred(*seq, digest, ctx) {}
        }
        let prepared: Vec<(u64, Hash)> = candidates
            .into_iter()
            .filter(|(s, d)| {
                self.insts.get(s).is_some_and(|i| {
                    i.prepares.get(d).map_or(0, HashSet::len) >= self.quorum()
                })
            })
            .collect();
        self.charge(ctx, self.cfg.native_sign, false);
        let msg = ViewChangeMsg {
            new_view: target,
            last_stable: self.low_mark,
            prepared,
            replica: self.me,
        };
        ctx.multicast(self.others(), PbftMsg::ViewChange(msg.clone()));
        self.record_view_change(msg, ctx);
        ctx.stats().inc("consensus.vc_initiated", 1);
    }

    fn record_view_change(&mut self, vc: ViewChangeMsg, ctx: &mut Ctx<'_, PbftMsg>) {
        if vc.new_view <= self.view {
            return;
        }
        let target = vc.new_view;
        let now = ctx.now();
        let horizon = self.cfg.vc_timeout.saturating_mul(4);
        let votes_map = self.vc_votes.entry(target).or_default();
        votes_map.insert(vc.replica, (now, vc));
        votes_map.retain(|_, (at, _)| now.since(*at) <= horizon);
        let votes = votes_map.len();
        let quorum = self.quorum();
        let f = self.cfg.f();

        // Liveness rule: join a view change supported by f+1 others.
        if votes > f && self.highest_vc_sent < target && self.leader_of(target) != self.me {
            self.start_view_change(target, ctx);
            return;
        }

        if votes >= quorum && self.leader_of(target) == self.me && !self.byzantine {
            self.install_new_view(target, ctx);
        }
    }

    fn on_view_change(&mut self, vc: ViewChangeMsg, ctx: &mut Ctx<'_, PbftMsg>) {
        self.charge(ctx, self.cfg.native_verify, false);
        self.record_view_change(vc, ctx);
    }

    fn install_new_view(&mut self, view: u64, ctx: &mut Ctx<'_, PbftMsg>) {
        // Gather re-proposals: any prepared sequence reported by the quorum
        // for which we hold the block.
        let mut repro: Vec<Arc<PbftBlock>> = Vec::new();
        let mut max_seq = self.exec_seq;
        if let Some(votes) = self.vc_votes.get(&view) {
            let mut wanted: HashMap<u64, Hash> = HashMap::new();
            for (_, vc) in votes.values() {
                for (seq, digest) in &vc.prepared {
                    wanted.insert(*seq, *digest);
                }
            }
            for (seq, digest) in wanted {
                if seq <= self.exec_seq {
                    continue;
                }
                if let Some(inst) = self.insts.get(&seq) {
                    if let Some(block) = &inst.block {
                        if block.digest == digest {
                            let nb = Arc::new(PbftBlock::new(
                                view,
                                seq,
                                self.me,
                                block.reqs.as_ref().clone(),
                            ));
                            max_seq = max_seq.max(seq);
                            repro.push(nb);
                        }
                    }
                }
            }
        }
        self.enter_view(view, ctx);
        self.next_seq = max_seq + 1;
        // Re-proposals count as a flush: restart the batch-timeout clock
        // so the new leader does not immediately emit an undersized block.
        self.batcher.note_flush(ctx.now());
        ctx.stats().inc_scoped(
            stat::VIEW_CHANGES,
            Scope::committee(self.cfg.committee_id),
            1,
        );
        ctx.trace(view, Phase::ViewChange);
        self.charge(ctx, self.cfg.native_sign, false);
        ctx.multicast(
            self.others(),
            PbftMsg::NewView { view, reproposals: repro.clone() },
        );
        // Gossip round: pull the peers' ingest-pool contents. Requests
        // stranded at the deposed (possibly Byzantine) leader survive in
        // the ingest replicas' pools; the pull gets them re-proposed.
        ctx.multicast(self.others(), PbftMsg::PoolPull { view });
        for block in repro {
            self.insts.remove(&block.seq);
            self.accept_block(block, ctx);
        }
        self.try_propose(ctx);
    }

    fn on_new_view(&mut self, view: u64, reproposals: Vec<Arc<PbftBlock>>, ctx: &mut Ctx<'_, PbftMsg>) {
        if view < self.view {
            return;
        }
        self.charge(ctx, self.cfg.native_verify, false);
        if self.leader_of(view) == self.me {
            return; // we install through quorum collection, not NewView
        }
        self.enter_view(view, ctx);
        for block in reproposals {
            if block.seq > self.exec_seq {
                self.insts.remove(&block.seq);
                self.accept_block(block, ctx);
            }
        }
    }

    fn enter_view(&mut self, view: u64, ctx: &mut Ctx<'_, PbftMsg>) {
        self.view = view;
        self.vc_votes.retain(|v, _| *v > view);
        self.highest_vc_sent = self.highest_vc_sent.max(view);
        // Unexecuted instances from older views are abandoned; their
        // requests survive in pools and will be re-proposed.
        self.insts.retain(|_, i| i.executed || i.view >= view || i.block.is_none());
        // Optimization-2 mode: re-relay pooled requests to the new leader so
        // requests relayed to a dead leader are not lost.
        if self.cfg.relay_to_leader && !self.is_leader() {
            let leader = self.group[self.leader_of(view)];
            let mut regossiped = 0u64;
            for req in self.pool.iter_fifo().take(2 * self.cfg.batch_size) {
                ctx.send(leader, PbftMsg::Relay(req.clone()));
                regossiped += 1;
            }
            ctx.stats().inc(ahl_mempool::stat::VIEWCHANGE_REGOSSIP, regossiped);
        }
    }

    /// The new leader pulls pool digests after its view change: answer by
    /// re-relaying every pooled, unexecuted request. Works in both relay
    /// and gossip modes — either way the new leader's pool is the one
    /// proposals are cut from, and transactions stranded at the deposed
    /// leader exist only in the ingest replicas' pools.
    fn on_pool_pull(&mut self, from_idx: usize, view: u64, ctx: &mut Ctx<'_, PbftMsg>) {
        self.charge(ctx, SimDuration::from_micros(10), false);
        if view != self.view || from_idx != self.leader_of(self.view) || from_idx == self.me {
            return;
        }
        let leader = self.group[from_idx];
        let mut regossiped = 0u64;
        for req in self.pool.iter_fifo().take(4 * self.cfg.batch_size) {
            if self.executed_reqs.contains(req.id) {
                continue;
            }
            ctx.send(leader, PbftMsg::Relay(req.clone()));
            regossiped += 1;
        }
        ctx.stats().inc(ahl_mempool::stat::VIEWCHANGE_REGOSSIP, regossiped);
    }

    // ---------- timers ----------

    fn on_batch_timer(&mut self, ctx: &mut Ctx<'_, PbftMsg>) {
        self.flush_partial_batch(ctx);
        ctx.set_timer(self.batcher.timeout(), TIMER_BATCH);
    }

    fn on_heartbeat_timer(&mut self, ctx: &mut Ctx<'_, PbftMsg>) {
        if self.is_leader() && !self.byzantine && !self.paused {
            ctx.multicast(
                self.others(),
                PbftMsg::Heartbeat { view: self.view, exec_seq: self.exec_seq },
            );
        }
        ctx.set_timer(self.cfg.vc_timeout.mul_f64(0.2), TIMER_HEARTBEAT);
    }

    /// A heartbeat advertising an execution point far beyond ours means we
    /// missed blocks *and* the evidence (the committed instances never
    /// arrived — e.g. they committed while this node was syncing and
    /// traffic has since stopped, so gap detection has nothing to see).
    /// Request catch-up; the server answers with a block tail or a
    /// chunked transfer as appropriate. The threshold keeps normal
    /// pipelining lag from triggering spurious exchanges, and only the
    /// *current view's leader* is believed — an unvalidated `exec_seq`
    /// from an arbitrary replica would let one Byzantine node keep the
    /// whole committee churning through pointless sync exchanges.
    fn on_heartbeat(&mut self, from_idx: usize, view: u64, exec_seq: u64, ctx: &mut Ctx<'_, PbftMsg>) {
        self.charge(ctx, SimDuration::from_micros(5), false);
        if view != self.view || from_idx != self.leader_of(self.view) {
            return;
        }
        let lag_threshold = (4 * self.cfg.pipeline_width).max(16);
        if exec_seq > self.exec_seq + lag_threshold && self.sync.is_none() && !self.paused {
            ctx.stats().inc("consensus.heartbeat_syncs", 1);
            self.begin_sync(false, false, None, ctx);
        }
    }

    fn on_vc_timer(&mut self, ctx: &mut Ctx<'_, PbftMsg>) {
        self.maybe_start_view_change(ctx);
        ctx.set_timer(self.current_vc_timeout(), TIMER_VC);
    }

    /// Group index of a sender actor id (linear scan; groups are small).
    fn group_index(&self, actor: NodeId) -> Option<usize> {
        self.group.iter().position(|&g| g == actor)
    }
}

/// The next sync-serving peer in a round-robin over the group, skipping
/// the requester itself.
fn next_sync_peer(n: usize, me: usize, cur: usize) -> usize {
    let mut peer = (cur + 1) % n;
    if peer == me {
        peer = (peer + 1) % n;
    }
    peer
}

impl Actor for Replica {
    type Msg = PbftMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, PbftMsg>) {
        ctx.set_timer(self.cfg.batch_timeout, TIMER_BATCH);
        ctx.set_timer(self.current_vc_timeout(), TIMER_VC);
        ctx.set_timer(self.cfg.vc_timeout.mul_f64(0.2), TIMER_HEARTBEAT);
    }

    fn on_message(&mut self, from: NodeId, msg: PbftMsg, ctx: &mut Ctx<'_, PbftMsg>) {
        if self.crashed {
            // Dark: a crashed node neither processes nor serves anything
            // until its Restart (Crash is idempotent while down).
            if matches!(msg, PbftMsg::Restart) {
                self.on_restart(ctx);
            }
            return;
        }
        self.last_msg_at = ctx.now();
        // A colluding equivocator never runs the honest proposal path: it
        // echoes two-faced votes for every proposal it sees and is done.
        if self.byzantine && self.cfg.attack == Attack::Equivocate {
            if let PbftMsg::PrePrepare { block, .. } = &msg {
                self.charge(ctx, SimDuration::from_micros(10), false);
                let (view, seq, digest) = (block.view, block.seq, block.digest);
                self.equivocate_echo(view, seq, digest, ctx);
                return;
            }
        }
        // While a full re-fetch is in flight the replica does not take part
        // in consensus: protocol messages are dropped cheaply (it could not
        // vote truthfully about state it is still downloading). Sync
        // protocol, control, and client-request traffic still flow — in
        // particular the replica keeps *serving* chunks from its certified
        // snapshot, the paper's departing-committee behaviour.
        if self.paused
            && msg.class() == ahl_simkit::MsgClass::CONSENSUS
            && !matches!(
                msg,
                PbftMsg::Transition { .. }
                    | PbftMsg::Crash
                    | PbftMsg::Restart
                    | PbftMsg::TransitionDone { .. }
            )
        {
            self.charge(ctx, SimDuration::from_micros(5), false);
            return;
        }
        match msg {
            PbftMsg::Request(req) => self.on_request(req, ctx),
            PbftMsg::Relay(req) => self.on_relay(from, req, ctx),
            PbftMsg::Gossip(req) => self.on_gossip(req, ctx),
            PbftMsg::RelayRejected { req_id } => self.on_relay_rejected(req_id, ctx),
            PbftMsg::PrePrepare { block, cert } => {
                let Some(idx) = self.group_index(from) else { return };
                self.on_preprepare(block, cert, idx, ctx);
            }
            PbftMsg::Prepare(v) => self.on_prepare(v, ctx),
            PbftMsg::Commit(v) => self.on_commit(v, ctx),
            PbftMsg::RelayPrepare(v) => self.on_relay_prepare(v, ctx),
            PbftMsg::RelayCommit(v) => self.on_relay_commit(v, ctx),
            PbftMsg::AggPrepare(p) => self.on_agg_prepare(p, ctx),
            PbftMsg::AggCommit(p) => self.on_agg_commit(p, ctx),
            PbftMsg::Checkpoint { vote } => self.on_checkpoint(vote, ctx),
            PbftMsg::ViewChange(vc) => self.on_view_change(vc, ctx),
            PbftMsg::NewView { view, reproposals } => self.on_new_view(view, reproposals, ctx),
            PbftMsg::PoolPull { view } => {
                let Some(idx) = self.group_index(from) else { return };
                self.on_pool_pull(idx, view, ctx);
            }
            PbftMsg::Reply { .. } | PbftMsg::Rejected { .. } => {}
            PbftMsg::Heartbeat { view, exec_seq } => {
                let Some(idx) = self.group_index(from) else { return };
                self.on_heartbeat(idx, view, exec_seq, ctx);
            }
            PbftMsg::SyncRequest { requester, have_seq, full, old_roots } => {
                self.on_sync_request(requester, have_seq, full, old_roots, ctx)
            }
            PbftMsg::SyncManifest {
                cert,
                bits,
                leaves: _,
                sidecar,
                executed,
                view,
                diff,
                diff_base,
            } => self.on_sync_manifest(cert, bits, sidecar, executed, view, diff, diff_base, ctx),
            PbftMsg::ChunkRequest { requester, seq, chunk } => {
                self.on_chunk_request(requester, seq, chunk, ctx)
            }
            PbftMsg::ChunkData { seq, chunk, entries, proof } => {
                self.on_chunk_data(seq, chunk, entries, proof, ctx)
            }
            PbftMsg::SyncTail { blocks, view } => self.on_sync_tail(blocks, view, ctx),
            PbftMsg::SyncNack { .. } => self.on_sync_nack(ctx),
            PbftMsg::Transition { controller, rejoin } => {
                self.on_transition(controller, rejoin, ctx)
            }
            PbftMsg::TransitionDone { .. } => {} // consumed by controllers
            PbftMsg::Crash => self.on_crash(ctx),
            PbftMsg::Restart => self.on_restart(ctx),
        }
    }

    fn on_timer(&mut self, kind: u64, ctx: &mut Ctx<'_, PbftMsg>) {
        if self.crashed {
            // Keep the periodic timer chains alive (each firing re-arms
            // itself) without running any handler logic while dark.
            let interval = match kind {
                TIMER_BATCH => self.batcher.timeout(),
                TIMER_VC => self.current_vc_timeout(),
                TIMER_HEARTBEAT => self.cfg.vc_timeout.mul_f64(0.2),
                // Crash cleared the sync run; Restart's begin_sync starts
                // a fresh retry chain — re-arming here would duplicate it.
                _ => return,
            };
            ctx.set_timer(interval, kind);
            return;
        }
        match kind {
            TIMER_BATCH => self.on_batch_timer(ctx),
            TIMER_VC => self.on_vc_timer(ctx),
            TIMER_HEARTBEAT => self.on_heartbeat_timer(ctx),
            TIMER_SYNC => self.on_sync_timer(ctx),
            _ => {}
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}
