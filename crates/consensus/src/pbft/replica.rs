//! The PBFT replica state machine, covering all four paper variants
//! (HL, AHL, AHL+, AHLR) via [`PbftConfig`].
//!
//! Normal case: the leader batches requests into blocks and drives the
//! three-phase protocol (pre-prepare / prepare / commit) with pipelining —
//! several blocks in flight, the property that lets PBFT outperform the
//! lockstep protocols in Figure 2. Faulty leaders are replaced by a view
//! change with exponential backoff.
//!
//! Variant behaviour:
//! * **HL** — Byzantine quorums (2f+1 of 3f+1), native signatures, request
//!   re-broadcast to all replicas, one shared inbound queue.
//! * **AHL** — every consensus send first binds its digest to the enclave's
//!   attested log (equivocation impossible), so quorums shrink to f+1 of
//!   2f+1.
//! * **AHL+** — adds optimization 1 (split queues, configured by the
//!   harness) and optimization 2 (requests forwarded to the leader only).
//! * **AHLR** — adds optimization 3: votes go only to the leader, whose
//!   enclave verifies a quorum and emits one aggregated proof (O(N)
//!   messages, at the cost of leader CPU and fragility — reproducing the
//!   paper's finding that AHL+ beats AHLR).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use ahl_crypto::{Hash, KeyRegistry, SigningKey};
use ahl_ledger::{Block as LedgerBlock, Chain, StateStore, Value};
use ahl_mempool::{Admission, BatchBuilder, BatchConfig, Mempool};
use ahl_simkit::{Actor, Ctx, NodeId, SimDuration};
use ahl_tee::{verify_attestation, AttestedLog, LogId, Slot, TeeOp};

use crate::common::{stat, CryptoMode, Request};
use crate::pbft::config::{PbftConfig, ReplyPolicy};
use crate::pbft::msg::{AggProof, MsgCert, PbftBlock, PbftMsg, ViewChangeMsg, Vote};

const TIMER_BATCH: u64 = 1;
const TIMER_VC: u64 = 2;
const TIMER_HEARTBEAT: u64 = 3;

const PREPARE_LOG: LogId = LogId(1);
const COMMIT_LOG: LogId = LogId(2);
const PREPREPARE_LOG: LogId = LogId(3);

/// Per-sequence protocol instance.
#[derive(Default)]
struct Instance {
    view: u64,
    block: Option<Arc<PbftBlock>>,
    prepares: HashMap<Hash, HashSet<usize>>,
    commits: HashMap<Hash, HashSet<usize>>,
    relay_prepares: HashMap<Hash, HashSet<usize>>,
    relay_commits: HashMap<Hash, HashSet<usize>>,
    sent_prepare: bool,
    sent_commit: bool,
    agg_prepare_sent: bool,
    agg_commit_sent: bool,
    committed: bool,
    executed: bool,
}

/// A PBFT replica actor.
pub struct Replica {
    cfg: PbftConfig,
    /// Actor ids of all committee members; index = group index.
    group: Vec<NodeId>,
    /// My group index.
    me: usize,
    /// Report global throughput/latency stats from this replica only.
    reporter: bool,
    /// Maintain a full ledger chain (disable for very large sweeps).
    maintain_chain: bool,

    key: SigningKey,
    registry: Arc<KeyRegistry>,
    tee: AttestedLog,

    state: StateStore,
    chain: Chain,

    view: u64,
    next_seq: u64,
    exec_seq: u64,
    low_mark: u64,
    insts: HashMap<u64, Instance>,

    /// The shard's transaction pool: deduplication, admission control and
    /// batch ordering live here (replacing the old private `VecDeque`).
    pool: Mempool<Request>,
    /// Size/byte/timeout batch-formation triggers over `pool`.
    batcher: BatchBuilder,
    ingested: HashMap<u64, NodeId>,
    executed_reqs: HashSet<u64>,

    ckpt_votes: HashMap<u64, HashMap<usize, Hash>>,

    /// View-change votes with arrival times: only fresh votes count toward
    /// quorums, so votes cast by nodes that were briefly cut off long ago
    /// cannot combine into a surprise view change much later.
    vc_votes: HashMap<u64, HashMap<usize, (ahl_simkit::SimTime, ViewChangeMsg)>>,
    vc_backoff: u32,
    last_progress_seq: u64,
    highest_vc_sent: u64,
    /// Last time any peer message arrived (isolation detection: a node
    /// receiving nothing at all is cut off — suspecting the leader is
    /// pointless and a view change could never gather a quorum).
    last_msg_at: ahl_simkit::SimTime,
    /// Consecutive no-progress checks (a view change needs two strikes, so
    /// a single transient stall — rejoining after isolation, state sync in
    /// flight — never triggers one).
    stall_strikes: u8,

    byzantine: bool,
}

impl Replica {
    /// Create a replica.
    ///
    /// `group` are the actor ids of the committee (index = group index),
    /// `me` is this replica's group index, `key` its (enclave) signing key
    /// and `registry` the shared verification oracle.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cfg: PbftConfig,
        group: Vec<NodeId>,
        me: usize,
        key: SigningKey,
        tee_key: SigningKey,
        registry: Arc<KeyRegistry>,
        genesis: &[(String, Value)],
        reporter: bool,
    ) -> Self {
        let byzantine = me >= cfg.n - cfg.byzantine;
        let mut state = StateStore::new();
        for (k, v) in genesis {
            state.put(k.clone(), v.clone());
        }
        let pool = Mempool::new(cfg.mempool.clone(), cfg.pool_seed ^ me as u64);
        let batcher = BatchBuilder::new(BatchConfig {
            max_txs: cfg.batch_size,
            max_bytes: cfg.batch_bytes,
            timeout: cfg.batch_timeout,
        });
        Replica {
            maintain_chain: cfg.n <= 24,
            byzantine,
            cfg,
            group,
            me,
            reporter,
            key,
            registry,
            tee: AttestedLog::new(tee_key),
            state,
            chain: Chain::new(),
            view: 0,
            next_seq: 1,
            exec_seq: 0,
            low_mark: 0,
            insts: HashMap::new(),
            pool,
            batcher,
            ingested: HashMap::new(),
            executed_reqs: HashSet::new(),
            ckpt_votes: HashMap::new(),
            vc_votes: HashMap::new(),
            vc_backoff: 0,
            last_progress_seq: 0,
            highest_vc_sent: 0,
            last_msg_at: ahl_simkit::SimTime::ZERO,
            stall_strikes: 0,
        }
    }

    /// Override chain maintenance (tests force it on; big sweeps off).
    pub fn set_maintain_chain(&mut self, on: bool) {
        self.maintain_chain = on;
    }

    /// The replica's ledger state (post-run inspection).
    pub fn state(&self) -> &StateStore {
        &self.state
    }

    /// The replica's chain (post-run inspection).
    pub fn chain(&self) -> &Chain {
        &self.chain
    }

    /// Current view.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// Highest executed sequence number.
    pub fn exec_seq(&self) -> u64 {
        self.exec_seq
    }

    /// The replica's transaction pool (post-run inspection).
    pub fn pool(&self) -> &Mempool<Request> {
        &self.pool
    }

    fn leader_of(&self, view: u64) -> usize {
        (view % self.cfg.n as u64) as usize
    }

    fn is_leader(&self) -> bool {
        self.leader_of(self.view) == self.me
    }

    fn quorum(&self) -> usize {
        self.cfg.quorum()
    }

    fn charge(&self, ctx: &mut Ctx<'_, PbftMsg>, d: SimDuration, exec: bool) {
        let scaled = if self.cfg.cpu_scale == 1.0 {
            d
        } else {
            d.mul_f64(self.cfg.cpu_scale)
        };
        ctx.consume_cpu(scaled);
        ctx.stats().inc(
            if exec { stat::EXEC_CPU_NS } else { stat::CONSENSUS_CPU_NS },
            scaled.as_nanos(),
        );
    }

    fn others(&self) -> Vec<NodeId> {
        let mine = self.group[self.me];
        self.group.iter().copied().filter(|&g| g != mine).collect()
    }

    // ---------- authentication helpers ----------

    /// Produce a certificate for a consensus message, charging the cost.
    fn certify(
        &mut self,
        ctx: &mut Ctx<'_, PbftMsg>,
        log: LogId,
        view: u64,
        seq: u64,
        digest: Hash,
    ) -> Option<MsgCert> {
        if self.cfg.attested {
            self.charge(ctx, self.cfg.costs.cost(TeeOp::AhlAppend), false);
            if self.cfg.crypto == CryptoMode::Real {
                match self.tee.append(log, Slot { view, seq }, digest) {
                    Ok(att) => Some(MsgCert::Attested(att)),
                    Err(_) => None, // enclave refused (equivocation attempt)
                }
            } else {
                Some(MsgCert::Simulated)
            }
        } else {
            self.charge(ctx, self.cfg.native_sign, false);
            if self.cfg.crypto == CryptoMode::Real {
                Some(MsgCert::Sig(self.key.sign(&digest)))
            } else {
                Some(MsgCert::Simulated)
            }
        }
    }

    /// Verify a vote/proposal certificate, charging the cost. Returns false
    /// if the message must be discarded.
    fn verify_cert(
        &mut self,
        ctx: &mut Ctx<'_, PbftMsg>,
        cert: &MsgCert,
        view: u64,
        seq: u64,
        digest: &Hash,
    ) -> bool {
        self.charge(ctx, self.cfg.native_verify, false);
        match cert {
            MsgCert::Simulated => true,
            MsgCert::Sig(sig) => self.registry.verify(digest, sig),
            MsgCert::Attested(att) => {
                att.digest == *digest
                    && att.slot == Slot { view, seq }
                    && verify_attestation(&self.registry, att)
            }
        }
    }

    // ---------- request handling ----------

    /// Pool a gossiped copy of a request (HL re-broadcast; some other
    /// replica is the ingest point, so rejections here are only counted,
    /// not signalled — the ingest replica's copy carries the client reply).
    fn pool_request(&mut self, req: Request, ctx: &mut Ctx<'_, PbftMsg>) {
        if self.executed_reqs.contains(&req.id) {
            return;
        }
        let now = ctx.now();
        let _ = self.pool.insert(req, now, ctx.stats());
    }

    fn on_request(&mut self, req: Request, ctx: &mut Ctx<'_, PbftMsg>) {
        // Client-facing ingest: REST + TLS + signature verification.
        self.charge(ctx, self.cfg.ingest_cost, false);
        if self.executed_reqs.contains(&req.id) {
            // Retransmission of an executed request: nothing to do.
            return;
        }
        let now = ctx.now();
        let admission = self.pool.insert(req.clone(), now, ctx.stats());
        if admission == Admission::Rejected {
            // Admission control: surface backpressure to the client and do
            // NOT forward the request into consensus.
            ctx.stats().inc(stat::BACKPRESSURE, 1);
            ctx.send(req.client, PbftMsg::Rejected { req_id: req.id });
            return;
        }
        if self.cfg.reply_policy == ReplyPolicy::IngestReplica {
            self.ingested.insert(req.id, req.client);
        }
        // Forward admitted requests and retransmissions of already-pooled
        // ones (a client retrying after leader-side backpressure arrives
        // here as `Duplicate`; the relay must still reach the leader).
        if self.cfg.relay_to_leader {
            // Optimization 2: forward to the leader only.
            let leader = self.group[self.leader_of(self.view)];
            if leader != self.group[self.me] {
                ctx.send(leader, PbftMsg::Relay(req));
            }
        } else {
            // HL behaviour: broadcast the request to every replica.
            ctx.multicast(self.others(), PbftMsg::Gossip(req));
        }
        self.try_propose(ctx);
    }

    fn on_relay(&mut self, from: NodeId, req: Request, ctx: &mut Ctx<'_, PbftMsg>) {
        // Leader-side pooling of a relayed request: cheap enqueue.
        self.charge(ctx, SimDuration::from_micros(10), false);
        if self.executed_reqs.contains(&req.id) {
            return;
        }
        let (req_id, client) = (req.id, req.client);
        let now = ctx.now();
        let admission = self.pool.insert(req, now, ctx.stats());
        if admission == Admission::Rejected {
            // Only the leader's pool feeds proposals in relay mode, so a
            // drop here is real backpressure: tell the client directly
            // (the request carries its reply address) instead of letting
            // it wait on a request that can never be proposed, and tell
            // the relayer to reclaim its stranded pooled copy.
            ctx.stats().inc(stat::BACKPRESSURE, 1);
            ctx.send(client, PbftMsg::Rejected { req_id });
            if from != self.group[self.me] {
                ctx.send(from, PbftMsg::RelayRejected { req_id });
            }
            return;
        }
        self.try_propose(ctx);
    }

    /// The leader refused our relayed request: drop our pooled copy (it
    /// can never be proposed from here short of a view change) so dead
    /// entries do not eat ingest-pool capacity under sustained overload.
    fn on_relay_rejected(&mut self, req_id: u64, ctx: &mut Ctx<'_, PbftMsg>) {
        self.charge(ctx, SimDuration::from_micros(5), false);
        self.pool.remove(req_id);
        self.ingested.remove(&req_id);
    }

    fn on_gossip(&mut self, req: Request, ctx: &mut Ctx<'_, PbftMsg>) {
        // Re-broadcast copy: deduplication + cached-certificate check (the
        // ingest replica already verified the client signature; Hyperledger
        // validates again lazily at execution, charged in exec cost).
        self.charge(ctx, SimDuration::from_micros(20), false);
        self.pool_request(req, ctx);
        self.try_propose(ctx);
    }

    // ---------- proposing ----------

    fn try_propose(&mut self, ctx: &mut Ctx<'_, PbftMsg>) {
        if !self.is_leader() {
            return;
        }
        while self.next_seq <= self.exec_seq + self.cfg.pipeline_width {
            let now = ctx.now();
            let Some(batch) = self.batcher.take_full(&mut self.pool, now, ctx.stats()) else {
                break;
            };
            self.propose_batch(batch, ctx);
        }
    }

    fn flush_partial_batch(&mut self, ctx: &mut Ctx<'_, PbftMsg>) {
        if self.is_leader() && self.next_seq <= self.exec_seq + self.cfg.pipeline_width {
            let now = ctx.now();
            if let Some(batch) = self.batcher.take_due(&mut self.pool, now, ctx.stats()) {
                self.propose_batch(batch, ctx);
            }
        }
    }

    fn propose_batch(&mut self, batch: Vec<Request>, ctx: &mut Ctx<'_, PbftMsg>) {
        if batch.is_empty() {
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let view = self.view;
        // Digest cost: hashing the batch.
        let hash_cost = self
            .cfg
            .costs
            .cost(TeeOp::Sha256)
            .saturating_mul(1 + batch.len() as u64 / 8);
        self.charge(ctx, hash_cost, false);

        if self.byzantine && !self.cfg.attested {
            // Equivocating Byzantine leader: different blocks to each half.
            let block_a = Arc::new(PbftBlock::new(view, seq, self.me, batch.clone()));
            let mut rev = batch;
            rev.reverse();
            let block_b = Arc::new(PbftBlock::new(view, seq + 1_000_000, self.me, rev));
            self.charge(ctx, self.cfg.native_sign, false);
            for (i, peer) in self.others().into_iter().enumerate() {
                let block = if i % 2 == 0 { block_a.clone() } else { block_b.clone() };
                ctx.send(peer, PbftMsg::PrePrepare { block, cert: MsgCert::Simulated });
            }
            return;
        }

        let block = Arc::new(PbftBlock::new(view, seq, self.me, batch));
        let Some(cert) = self.certify(ctx, PREPREPARE_LOG, view, seq, block.digest) else {
            return;
        };
        let recipients = if self.byzantine {
            // Attested Byzantine leader cannot equivocate; the worst it can
            // do is withhold the proposal from half the replicas.
            self.others().into_iter().enumerate().filter(|(i, _)| i % 2 == 0).map(|(_, p)| p).collect()
        } else {
            self.others()
        };
        ctx.multicast(recipients, PbftMsg::PrePrepare { block: block.clone(), cert });
        // Local application of our own proposal.
        self.accept_block(block, ctx);
    }

    // ---------- three-phase protocol ----------

    fn on_preprepare(
        &mut self,
        block: Arc<PbftBlock>,
        cert: MsgCert,
        from_idx: usize,
        ctx: &mut Ctx<'_, PbftMsg>,
    ) {
        if block.view != self.view
            || block.seq <= self.low_mark
            || from_idx != self.leader_of(block.view)
            || block.proposer != from_idx
        {
            return;
        }
        if !self.verify_cert(ctx, &cert, block.view, block.seq, &block.digest) {
            ctx.stats().inc("consensus.invalid_msg", 1);
            return;
        }
        // Hash the batch to validate the digest.
        let hash_cost = self
            .cfg
            .costs
            .cost(TeeOp::Sha256)
            .saturating_mul(1 + block.reqs.len() as u64 / 8);
        self.charge(ctx, hash_cost, false);
        if let Some(inst) = self.insts.get(&block.seq) {
            if let Some(existing) = &inst.block {
                if existing.digest != block.digest && inst.view == block.view {
                    // Conflicting proposal for a bound slot: equivocation.
                    ctx.stats().inc("consensus.equivocation_detected", 1);
                    return;
                }
            }
        }
        self.accept_block(block, ctx);
    }

    fn accept_block(&mut self, block: Arc<PbftBlock>, ctx: &mut Ctx<'_, PbftMsg>) {
        let seq = block.seq;
        let view = block.view;
        let digest = block.digest;
        let leader = self.leader_of(view);
        let me = self.me;
        {
            let inst = self.insts.entry(seq).or_default();
            if inst.executed {
                return;
            }
            inst.view = view;
            inst.block = Some(block);
            // The pre-prepare counts as the leader's prepare vote.
            inst.prepares.entry(digest).or_default().insert(leader);
        }
        if me != leader && !self.insts[&seq].sent_prepare {
            self.send_prepare(view, seq, digest, ctx);
        } else {
            // Leader: its "prepare" is implicit; in AHLR it seeds the relay
            // aggregation set.
            if self.cfg.leader_aggregation {
                self.insts
                    .entry(seq)
                    .or_default()
                    .relay_prepares
                    .entry(digest)
                    .or_default()
                    .insert(me);
            }
            self.check_prepared(seq, digest, ctx);
        }
    }

    fn send_prepare(&mut self, view: u64, seq: u64, digest: Hash, ctx: &mut Ctx<'_, PbftMsg>) {
        let Some(cert) = self.certify(ctx, PREPARE_LOG, view, seq, digest) else {
            return;
        };
        if let Some(inst) = self.insts.get_mut(&seq) {
            inst.sent_prepare = true;
            inst.prepares.entry(digest).or_default().insert(self.me);
        }
        let vote = Vote { view, seq, digest, replica: self.me, cert };
        if self.cfg.leader_aggregation {
            let leader = self.group[self.leader_of(view)];
            ctx.send(leader, PbftMsg::RelayPrepare(vote));
        } else if self.byzantine {
            self.byzantine_vote(vote, true, ctx);
        } else {
            ctx.multicast(self.others(), PbftMsg::Prepare(vote));
        }
        self.check_prepared(seq, digest, ctx);
    }

    /// Byzantine vote emission (the paper's attack: "Byzantine nodes send
    /// conflicting messages (with different sequence numbers) to different
    /// nodes"): equivocate (HL) or withhold (attested), plus a flood of
    /// junk votes at shifted sequence numbers that loads honest queues.
    fn byzantine_vote(&mut self, vote: Vote, prepare: bool, ctx: &mut Ctx<'_, PbftMsg>) {
        let others = self.others();
        for (i, peer) in others.iter().copied().enumerate() {
            if self.cfg.attested {
                // Cannot equivocate: withhold from odd half.
                if i % 2 == 0 {
                    let msg = if prepare {
                        PbftMsg::Prepare(vote.clone())
                    } else {
                        PbftMsg::Commit(vote.clone())
                    };
                    ctx.send(peer, msg);
                }
            } else {
                // Conflicting digests to different peers.
                let mut v = vote.clone();
                if i % 2 == 1 {
                    v.digest.0[0] ^= 0xff;
                }
                let msg = if prepare { PbftMsg::Prepare(v) } else { PbftMsg::Commit(v) };
                ctx.send(peer, msg);
            }
        }
        // Sequence-number flooding inside the watermark window: honest
        // nodes must fully verify each conflicting message before they can
        // discard it. (The attested log does not help here: these slots are
        // not yet bound by the attacker's enclave, so it happily signs.)
        for j in 1..=3u64 {
            let mut junk = vote.clone();
            junk.seq = vote.seq.wrapping_add(j);
            junk.digest.0[1] ^= j as u8;
            let msg = if prepare {
                PbftMsg::Prepare(junk)
            } else {
                PbftMsg::Commit(junk)
            };
            ctx.multicast(others.clone(), msg);
        }
        // Plus a far-out-of-window burst (crowds queues; cheap to reject).
        let mut far = vote.clone();
        far.seq = vote.seq.wrapping_add(1_000_000);
        let msg = if prepare { PbftMsg::Prepare(far) } else { PbftMsg::Commit(far) };
        ctx.multicast(others.clone(), msg);
    }

    /// PBFT watermark window `(h, h + L]` anchored at the *stable
    /// checkpoint* `h` (not the local execution point — a lagging replica
    /// must still accept votes for sequences it has yet to execute).
    /// Messages beyond the window are discarded before signature
    /// verification — the defense that keeps sequence-number flooding from
    /// consuming crypto cycles.
    fn in_watermarks(&self, seq: u64) -> bool {
        let window = (4 * self.cfg.checkpoint_interval).max(self.cfg.pipeline_width * 16 + 64);
        seq > self.low_mark && seq <= self.low_mark + window
    }

    fn on_prepare(&mut self, vote: Vote, ctx: &mut Ctx<'_, PbftMsg>) {
        if vote.view != self.view || vote.seq <= self.low_mark {
            return;
        }
        if !self.in_watermarks(vote.seq) {
            self.charge(ctx, SimDuration::from_micros(20), false);
            ctx.stats().inc("consensus.out_of_window", 1);
            return;
        }
        if !self.verify_cert(ctx, &vote.cert, vote.view, vote.seq, &vote.digest) {
            ctx.stats().inc("consensus.invalid_msg", 1);
            return;
        }
        let inst = self.insts.entry(vote.seq).or_default();
        inst.prepares.entry(vote.digest).or_default().insert(vote.replica);
        self.check_prepared(vote.seq, vote.digest, ctx);
    }

    fn check_prepared(&mut self, seq: u64, digest: Hash, ctx: &mut Ctx<'_, PbftMsg>) {
        if self.cfg.leader_aggregation {
            return; // prepared is signalled by AggPrepare in AHLR
        }
        let quorum = self.quorum();
        let ready = {
            let Some(inst) = self.insts.get(&seq) else { return };
            let Some(block) = &inst.block else { return };
            block.digest == digest
                && !inst.sent_commit
                && inst.prepares.get(&digest).map_or(0, HashSet::len) >= quorum
        };
        if ready {
            self.send_commit(seq, digest, ctx);
        }
    }

    fn send_commit(&mut self, seq: u64, digest: Hash, ctx: &mut Ctx<'_, PbftMsg>) {
        let view = self.view;
        let Some(cert) = self.certify(ctx, COMMIT_LOG, view, seq, digest) else {
            return;
        };
        if let Some(inst) = self.insts.get_mut(&seq) {
            inst.sent_commit = true;
            inst.commits.entry(digest).or_default().insert(self.me);
        }
        let vote = Vote { view, seq, digest, replica: self.me, cert };
        if self.cfg.leader_aggregation {
            let leader = self.group[self.leader_of(view)];
            if self.leader_of(view) == self.me {
                self.on_relay_commit(vote, ctx);
            } else {
                ctx.send(leader, PbftMsg::RelayCommit(vote));
            }
        } else if self.byzantine {
            self.byzantine_vote(vote, false, ctx);
        } else {
            ctx.multicast(self.others(), PbftMsg::Commit(vote));
        }
        self.check_committed(seq, digest, ctx);
    }

    fn on_commit(&mut self, vote: Vote, ctx: &mut Ctx<'_, PbftMsg>) {
        if vote.view != self.view || vote.seq <= self.low_mark {
            return;
        }
        if !self.in_watermarks(vote.seq) {
            self.charge(ctx, SimDuration::from_micros(20), false);
            ctx.stats().inc("consensus.out_of_window", 1);
            return;
        }
        if !self.verify_cert(ctx, &vote.cert, vote.view, vote.seq, &vote.digest) {
            ctx.stats().inc("consensus.invalid_msg", 1);
            return;
        }
        let inst = self.insts.entry(vote.seq).or_default();
        inst.commits.entry(vote.digest).or_default().insert(vote.replica);
        self.check_committed(vote.seq, vote.digest, ctx);
    }

    fn check_committed(&mut self, seq: u64, digest: Hash, ctx: &mut Ctx<'_, PbftMsg>) {
        let quorum = self.quorum();
        let ready = {
            let Some(inst) = self.insts.get(&seq) else { return };
            let Some(block) = &inst.block else { return };
            block.digest == digest
                && !inst.committed
                && inst.commits.get(&digest).map_or(0, HashSet::len) >= quorum
        };
        if ready {
            if let Some(inst) = self.insts.get_mut(&seq) {
                inst.committed = true;
            }
            self.try_execute(ctx);
        }
    }

    // ---------- AHLR aggregation ----------

    fn on_relay_prepare(&mut self, vote: Vote, ctx: &mut Ctx<'_, PbftMsg>) {
        if vote.view != self.view || self.leader_of(vote.view) != self.me {
            return;
        }
        if !self.verify_cert(ctx, &vote.cert, vote.view, vote.seq, &vote.digest) {
            return;
        }
        let quorum = self.quorum();
        let f = self.cfg.f();
        let ready = {
            let inst = self.insts.entry(vote.seq).or_default();
            inst.relay_prepares.entry(vote.digest).or_default().insert(vote.replica);
            !inst.agg_prepare_sent
                && inst.relay_prepares.get(&vote.digest).map_or(0, HashSet::len) >= quorum
        };
        if ready {
            if let Some(inst) = self.insts.get_mut(&vote.seq) {
                inst.agg_prepare_sent = true;
            }
            // Enclave verifies the f+1 votes and emits one proof.
            self.charge(ctx, self.cfg.costs.cost(TeeOp::MessageAggregation { f }), false);
            let proof = AggProof {
                view: vote.view,
                seq: vote.seq,
                digest: vote.digest,
                count: quorum,
                sig: None,
            };
            ctx.multicast(self.others(), PbftMsg::AggPrepare(proof.clone()));
            self.on_agg_prepare(proof, ctx);
        }
    }

    fn on_agg_prepare(&mut self, proof: AggProof, ctx: &mut Ctx<'_, PbftMsg>) {
        if proof.view != self.view || proof.seq <= self.low_mark {
            return;
        }
        self.charge(ctx, self.cfg.native_verify, false);
        let has_block = self
            .insts
            .get(&proof.seq)
            .and_then(|i| i.block.as_ref())
            .is_some_and(|b| b.digest == proof.digest);
        if !has_block {
            return;
        }
        let already = self.insts.get(&proof.seq).map(|i| i.sent_commit).unwrap_or(false);
        if !already {
            self.send_commit(proof.seq, proof.digest, ctx);
        }
    }

    fn on_relay_commit(&mut self, vote: Vote, ctx: &mut Ctx<'_, PbftMsg>) {
        if vote.view != self.view || self.leader_of(vote.view) != self.me {
            return;
        }
        if !self.verify_cert(ctx, &vote.cert, vote.view, vote.seq, &vote.digest) {
            return;
        }
        let quorum = self.quorum();
        let f = self.cfg.f();
        let ready = {
            let inst = self.insts.entry(vote.seq).or_default();
            inst.relay_commits.entry(vote.digest).or_default().insert(vote.replica);
            !inst.agg_commit_sent
                && inst.relay_commits.get(&vote.digest).map_or(0, HashSet::len) >= quorum
        };
        if ready {
            if let Some(inst) = self.insts.get_mut(&vote.seq) {
                inst.agg_commit_sent = true;
            }
            self.charge(ctx, self.cfg.costs.cost(TeeOp::MessageAggregation { f }), false);
            let proof = AggProof {
                view: vote.view,
                seq: vote.seq,
                digest: vote.digest,
                count: quorum,
                sig: None,
            };
            ctx.multicast(self.others(), PbftMsg::AggCommit(proof.clone()));
            self.on_agg_commit(proof, ctx);
        }
    }

    fn on_agg_commit(&mut self, proof: AggProof, ctx: &mut Ctx<'_, PbftMsg>) {
        if proof.view != self.view || proof.seq <= self.low_mark {
            return;
        }
        self.charge(ctx, self.cfg.native_verify, false);
        let ready = {
            let Some(inst) = self.insts.get(&proof.seq) else { return };
            let Some(block) = &inst.block else { return };
            block.digest == proof.digest && !inst.committed
        };
        if ready {
            if let Some(inst) = self.insts.get_mut(&proof.seq) {
                inst.committed = true;
            }
            self.try_execute(ctx);
        }
    }

    // ---------- execution ----------

    fn try_execute(&mut self, ctx: &mut Ctx<'_, PbftMsg>) {
        loop {
            let next = self.exec_seq + 1;
            let ready = self
                .insts
                .get(&next)
                .map(|i| i.committed && !i.executed && i.block.is_some())
                .unwrap_or(false);
            if !ready {
                break;
            }
            let block = {
                let inst = self.insts.get_mut(&next).expect("checked above");
                inst.executed = true;
                inst.block.clone().expect("checked above")
            };
            self.execute_block(&block, ctx);
            self.exec_seq = next;

            if self.exec_seq.is_multiple_of(self.cfg.checkpoint_interval) {
                self.send_checkpoint(ctx);
            }
        }
        // Leader may have room to propose more now.
        self.try_propose(ctx);
    }

    fn execute_block(&mut self, block: &PbftBlock, ctx: &mut Ctx<'_, PbftMsg>) {
        let mut committed = 0u64;
        let mut aborted = 0u64;
        let mut receipts = Vec::with_capacity(block.reqs.len());
        let mut weight = 0usize;
        for req in block.reqs.iter() {
            if !self.executed_reqs.insert(req.id) {
                continue; // replay of an already-executed request
            }
            self.pool.remove(req.id);
            weight += req.op.weight();
            let receipt = self.state.execute(&req.op);
            let ok = receipt.status.is_committed();
            receipts.push(receipt);
            if ok {
                committed += 1;
            } else {
                aborted += 1;
            }
            if self.reporter {
                let lat = ctx.now().since(req.submitted);
                ctx.stats().record_latency(stat::TXN_LATENCY, lat);
            }
            if self.cfg.reply_policy == ReplyPolicy::IngestReplica {
                if let Some(client) = self.ingested.remove(&req.id) {
                    ctx.send(client, PbftMsg::Reply { req_id: req.id, committed: ok });
                }
            }
        }
        // Execution cost: chaincode + validation per state access.
        self.charge(
            ctx,
            self.cfg.exec_cost_per_op.saturating_mul(weight as u64),
            true,
        );
        if self.maintain_chain {
            let ops = block.reqs.iter().map(|r| r.op.clone()).collect::<Vec<_>>();
            let lb = LedgerBlock::build(
                self.chain.len() as u64,
                self.chain.tip_digest(),
                ops,
                self.state.state_digest(),
                ctx.now().as_nanos(),
                block.proposer as u64,
            );
            self.chain.append(lb, receipts).expect("chain append is sequential");
        }
        if self.reporter {
            let now = ctx.now();
            ctx.stats().inc(stat::TXN_COMMITTED, committed);
            ctx.stats().inc(stat::TXN_ABORTED, aborted);
            ctx.stats().inc(stat::BLOCKS_COMMITTED, 1);
            ctx.stats().record_point(stat::COMMIT_SERIES, now, committed as f64);
        }
    }

    // ---------- checkpoints ----------

    fn send_checkpoint(&mut self, ctx: &mut Ctx<'_, PbftMsg>) {
        let seq = self.exec_seq;
        let digest = self.state.state_digest();
        self.charge(ctx, self.cfg.native_sign, false);
        ctx.multicast(
            self.others(),
            PbftMsg::Checkpoint { seq, digest, replica: self.me },
        );
        self.record_checkpoint(seq, digest, self.me);
    }

    fn record_checkpoint(&mut self, seq: u64, digest: Hash, replica: usize) {
        if seq <= self.low_mark {
            return;
        }
        let quorum = self.quorum();
        let votes = self.ckpt_votes.entry(seq).or_default();
        votes.insert(replica, digest);
        let stable = votes.values().filter(|d| **d == digest).count() >= quorum;
        if stable {
            self.low_mark = seq;
            self.insts.retain(|s, _| *s > seq);
            self.ckpt_votes.retain(|s, _| *s > seq);
            if self.cfg.crypto == CryptoMode::Real {
                self.tee.truncate(seq);
            }
        }
    }

    fn on_checkpoint(&mut self, seq: u64, digest: Hash, replica: usize, ctx: &mut Ctx<'_, PbftMsg>) {
        self.charge(ctx, self.cfg.native_verify, false);
        self.record_checkpoint(seq, digest, replica);
    }

    // ---------- view change ----------

    fn current_vc_timeout(&self) -> SimDuration {
        self.cfg.vc_timeout.saturating_mul(1u64 << self.vc_backoff.min(5))
    }

    fn maybe_start_view_change(&mut self, ctx: &mut Ctx<'_, PbftMsg>) {
        let pending_work = !self.pool.is_empty()
            || self
                .insts
                .iter()
                .any(|(s, i)| *s > self.exec_seq && !i.executed && i.block.is_some());
        let progressed = self.exec_seq > self.last_progress_seq;
        self.last_progress_seq = self.exec_seq;
        if progressed {
            self.vc_backoff = 0;
            self.stall_strikes = 0;
            return;
        }
        if !pending_work || self.byzantine {
            self.stall_strikes = 0;
            return;
        }
        // Cut-off detection: if nothing at all arrived for half a timeout
        // we are isolated (e.g. a transitioning node fetching state) — a
        // dead *leader* still leaves peer traffic flowing, so this never
        // masks a real leader failure. A view change while cut off would be
        // futile and, worse, its stale votes churn the committee after
        // healing.
        let cutoff = SimDuration::from_nanos(self.current_vc_timeout().as_nanos() / 2);
        if ctx.now().since(self.last_msg_at) >= cutoff {
            return;
        }
        // Gap detection: if a later sequence already committed while we
        // miss earlier blocks, the leader is fine — we lagged (dropped
        // messages / temporary isolation). Request a state transfer
        // instead of suspecting the leader.
        if self.has_execution_gap() {
            self.request_state_sync(ctx);
            return;
        }
        // Two strikes before suspecting the leader.
        self.stall_strikes = self.stall_strikes.saturating_add(1);
        if self.stall_strikes < 2 {
            return;
        }
        self.stall_strikes = 0;
        let target = (self.view + 1).max(self.highest_vc_sent + 1);
        self.start_view_change(target, ctx);
        self.vc_backoff = (self.vc_backoff + 1).min(5);
    }

    /// Evidence of having fallen behind the committee: a later instance
    /// committed while the next-to-execute one cannot, or proposals exist
    /// far beyond our pipeline window (the leader only proposes within
    /// `pipeline_width` of *its* execution point, so seeing proposals past
    /// ours means our execution point is stale). Either way progress needs
    /// state transfer, not a view change.
    fn has_execution_gap(&self) -> bool {
        let next = self.exec_seq + 1;
        let next_committed = self
            .insts
            .get(&next)
            .map(|i| i.committed)
            .unwrap_or(false);
        if next_committed {
            return false;
        }
        let horizon = next + self.cfg.pipeline_width;
        self.insts
            .iter()
            .any(|(s, i)| (*s > next && i.committed) || (*s > horizon && i.block.is_some()))
    }

    fn request_state_sync(&mut self, ctx: &mut Ctx<'_, PbftMsg>) {
        let peer_idx = if self.is_leader() {
            (self.me + 1) % self.cfg.n
        } else {
            self.leader_of(self.view)
        };
        ctx.stats().inc("consensus.state_sync_requests", 1);
        ctx.send(
            self.group[peer_idx],
            PbftMsg::StateRequest { requester: self.me, have_seq: self.exec_seq },
        );
    }

    fn on_state_request(&mut self, requester: usize, have_seq: u64, ctx: &mut Ctx<'_, PbftMsg>) {
        if self.exec_seq <= have_seq || requester >= self.cfg.n {
            return;
        }
        // Serialization cost proportional to state size.
        self.charge(
            ctx,
            SimDuration::from_micros(1).saturating_mul(self.state.len() as u64),
            false,
        );
        ctx.send(
            self.group[requester],
            PbftMsg::StateSnapshot {
                seq: self.exec_seq,
                view: self.view,
                state: std::sync::Arc::new(self.state.clone()),
                executed: std::sync::Arc::new(self.executed_reqs.clone()),
            },
        );
    }

    fn on_state_snapshot(
        &mut self,
        seq: u64,
        view: u64,
        state: std::sync::Arc<StateStore>,
        executed: std::sync::Arc<HashSet<u64>>,
        ctx: &mut Ctx<'_, PbftMsg>,
    ) {
        if seq <= self.exec_seq {
            return;
        }
        // Verification cost: checking the snapshot against the stable
        // checkpoint digest, proportional to state size.
        self.charge(
            ctx,
            SimDuration::from_micros(1).saturating_mul(state.len() as u64),
            false,
        );
        ctx.stats().inc("consensus.state_syncs", 1);
        if std::env::var("AHL_DEBUG").is_ok() {
            eprintln!("[{}] node {} state sync -> seq {}", ctx.now(), self.me, seq);
        }
        self.state = (*state).clone();
        self.executed_reqs = (*executed).clone();
        self.exec_seq = seq;
        self.low_mark = self.low_mark.max(seq);
        self.next_seq = self.next_seq.max(seq + 1);
        self.insts.retain(|s, _| *s > seq);
        // The local chain is no longer contiguous after a jump.
        self.maintain_chain = false;
        if view > self.view {
            self.enter_view(view, ctx);
        }
        // Drop pooled requests that executed remotely.
        let ex = std::mem::take(&mut self.executed_reqs);
        self.pool.retain(|r| !ex.contains(&r.id));
        self.executed_reqs = ex;
        self.try_execute(ctx);
    }

    fn start_view_change(&mut self, target: u64, ctx: &mut Ctx<'_, PbftMsg>) {
        if std::env::var("AHL_DEBUG").is_ok() {
            let next = self.exec_seq + 1;
            let detail = self.insts.get(&next).map(|i| {
                (
                    i.block.is_some(),
                    i.view,
                    i.prepares.values().map(HashSet::len).max().unwrap_or(0),
                    i.commits.values().map(HashSet::len).max().unwrap_or(0),
                    i.committed,
                )
            });
            eprintln!(
                "[{}] node {} VC -> view {} (exec {}, pool {}, insts {}, next inst {:?})",
                ctx.now(),
                self.me,
                target,
                self.exec_seq,
                self.pool.len(),
                self.insts.len(),
                detail
            );
        }
        self.highest_vc_sent = target;
        let prepared: Vec<(u64, Hash)> = self
            .insts
            .iter()
            .filter(|(s, i)| {
                **s > self.low_mark
                    && !i.executed
                    && i.block.as_ref().is_some_and(|b| {
                        i.prepares.get(&b.digest).map_or(0, HashSet::len) >= self.quorum()
                    })
            })
            .map(|(s, i)| (*s, i.block.as_ref().expect("filtered").digest))
            .collect();
        self.charge(ctx, self.cfg.native_sign, false);
        let msg = ViewChangeMsg {
            new_view: target,
            last_stable: self.low_mark,
            prepared,
            replica: self.me,
        };
        ctx.multicast(self.others(), PbftMsg::ViewChange(msg.clone()));
        self.record_view_change(msg, ctx);
        ctx.stats().inc("consensus.vc_initiated", 1);
    }

    fn record_view_change(&mut self, vc: ViewChangeMsg, ctx: &mut Ctx<'_, PbftMsg>) {
        if vc.new_view <= self.view {
            return;
        }
        let target = vc.new_view;
        let now = ctx.now();
        let horizon = self.cfg.vc_timeout.saturating_mul(4);
        let votes_map = self.vc_votes.entry(target).or_default();
        votes_map.insert(vc.replica, (now, vc));
        votes_map.retain(|_, (at, _)| now.since(*at) <= horizon);
        let votes = votes_map.len();
        let quorum = self.quorum();
        let f = self.cfg.f();

        // Liveness rule: join a view change supported by f+1 others.
        if votes > f && self.highest_vc_sent < target && self.leader_of(target) != self.me {
            self.start_view_change(target, ctx);
            return;
        }

        if votes >= quorum && self.leader_of(target) == self.me && !self.byzantine {
            self.install_new_view(target, ctx);
        }
    }

    fn on_view_change(&mut self, vc: ViewChangeMsg, ctx: &mut Ctx<'_, PbftMsg>) {
        self.charge(ctx, self.cfg.native_verify, false);
        self.record_view_change(vc, ctx);
    }

    fn install_new_view(&mut self, view: u64, ctx: &mut Ctx<'_, PbftMsg>) {
        // Gather re-proposals: any prepared sequence reported by the quorum
        // for which we hold the block.
        let mut repro: Vec<Arc<PbftBlock>> = Vec::new();
        let mut max_seq = self.exec_seq;
        if let Some(votes) = self.vc_votes.get(&view) {
            let mut wanted: HashMap<u64, Hash> = HashMap::new();
            for (_, vc) in votes.values() {
                for (seq, digest) in &vc.prepared {
                    wanted.insert(*seq, *digest);
                }
            }
            for (seq, digest) in wanted {
                if seq <= self.exec_seq {
                    continue;
                }
                if let Some(inst) = self.insts.get(&seq) {
                    if let Some(block) = &inst.block {
                        if block.digest == digest {
                            let nb = Arc::new(PbftBlock::new(
                                view,
                                seq,
                                self.me,
                                block.reqs.as_ref().clone(),
                            ));
                            max_seq = max_seq.max(seq);
                            repro.push(nb);
                        }
                    }
                }
            }
        }
        self.enter_view(view, ctx);
        self.next_seq = max_seq + 1;
        // Re-proposals count as a flush: restart the batch-timeout clock
        // so the new leader does not immediately emit an undersized block.
        self.batcher.note_flush(ctx.now());
        ctx.stats().inc(stat::VIEW_CHANGES, 1);
        self.charge(ctx, self.cfg.native_sign, false);
        ctx.multicast(
            self.others(),
            PbftMsg::NewView { view, reproposals: repro.clone() },
        );
        for block in repro {
            self.insts.remove(&block.seq);
            self.accept_block(block, ctx);
        }
        self.try_propose(ctx);
    }

    fn on_new_view(&mut self, view: u64, reproposals: Vec<Arc<PbftBlock>>, ctx: &mut Ctx<'_, PbftMsg>) {
        if view < self.view {
            return;
        }
        self.charge(ctx, self.cfg.native_verify, false);
        if self.leader_of(view) == self.me {
            return; // we install through quorum collection, not NewView
        }
        self.enter_view(view, ctx);
        for block in reproposals {
            if block.seq > self.exec_seq {
                self.insts.remove(&block.seq);
                self.accept_block(block, ctx);
            }
        }
    }

    fn enter_view(&mut self, view: u64, ctx: &mut Ctx<'_, PbftMsg>) {
        self.view = view;
        self.vc_votes.retain(|v, _| *v > view);
        self.highest_vc_sent = self.highest_vc_sent.max(view);
        // Unexecuted instances from older views are abandoned; their
        // requests survive in pools and will be re-proposed.
        self.insts.retain(|_, i| i.executed || i.view >= view || i.block.is_none());
        // Optimization-2 mode: re-relay pooled requests to the new leader so
        // requests relayed to a dead leader are not lost.
        if self.cfg.relay_to_leader && !self.is_leader() {
            let leader = self.group[self.leader_of(view)];
            for req in self.pool.iter_fifo().take(2 * self.cfg.batch_size) {
                ctx.send(leader, PbftMsg::Relay(req.clone()));
            }
        }
    }

    // ---------- timers ----------

    fn on_batch_timer(&mut self, ctx: &mut Ctx<'_, PbftMsg>) {
        self.flush_partial_batch(ctx);
        ctx.set_timer(self.batcher.timeout(), TIMER_BATCH);
    }

    fn on_heartbeat_timer(&mut self, ctx: &mut Ctx<'_, PbftMsg>) {
        if self.is_leader() && !self.byzantine {
            ctx.multicast(self.others(), PbftMsg::Heartbeat { view: self.view });
        }
        ctx.set_timer(self.cfg.vc_timeout.mul_f64(0.2), TIMER_HEARTBEAT);
    }

    fn on_vc_timer(&mut self, ctx: &mut Ctx<'_, PbftMsg>) {
        self.maybe_start_view_change(ctx);
        ctx.set_timer(self.current_vc_timeout(), TIMER_VC);
    }

    /// Group index of a sender actor id (linear scan; groups are small).
    fn group_index(&self, actor: NodeId) -> Option<usize> {
        self.group.iter().position(|&g| g == actor)
    }
}

impl Actor for Replica {
    type Msg = PbftMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, PbftMsg>) {
        ctx.set_timer(self.cfg.batch_timeout, TIMER_BATCH);
        ctx.set_timer(self.current_vc_timeout(), TIMER_VC);
        ctx.set_timer(self.cfg.vc_timeout.mul_f64(0.2), TIMER_HEARTBEAT);
    }

    fn on_message(&mut self, from: NodeId, msg: PbftMsg, ctx: &mut Ctx<'_, PbftMsg>) {
        self.last_msg_at = ctx.now();
        match msg {
            PbftMsg::Request(req) => self.on_request(req, ctx),
            PbftMsg::Relay(req) => self.on_relay(from, req, ctx),
            PbftMsg::Gossip(req) => self.on_gossip(req, ctx),
            PbftMsg::RelayRejected { req_id } => self.on_relay_rejected(req_id, ctx),
            PbftMsg::PrePrepare { block, cert } => {
                let Some(idx) = self.group_index(from) else { return };
                self.on_preprepare(block, cert, idx, ctx);
            }
            PbftMsg::Prepare(v) => self.on_prepare(v, ctx),
            PbftMsg::Commit(v) => self.on_commit(v, ctx),
            PbftMsg::RelayPrepare(v) => self.on_relay_prepare(v, ctx),
            PbftMsg::RelayCommit(v) => self.on_relay_commit(v, ctx),
            PbftMsg::AggPrepare(p) => self.on_agg_prepare(p, ctx),
            PbftMsg::AggCommit(p) => self.on_agg_commit(p, ctx),
            PbftMsg::Checkpoint { seq, digest, replica } => {
                self.on_checkpoint(seq, digest, replica, ctx)
            }
            PbftMsg::ViewChange(vc) => self.on_view_change(vc, ctx),
            PbftMsg::NewView { view, reproposals } => self.on_new_view(view, reproposals, ctx),
            PbftMsg::Reply { .. } | PbftMsg::Rejected { .. } => {}
            PbftMsg::Heartbeat { .. } => {
                self.charge(ctx, SimDuration::from_micros(5), false);
            }
            PbftMsg::StateRequest { requester, have_seq } => {
                self.on_state_request(requester, have_seq, ctx)
            }
            PbftMsg::StateSnapshot { seq, view, state, executed } => {
                self.on_state_snapshot(seq, view, state, executed, ctx)
            }
        }
    }

    fn on_timer(&mut self, kind: u64, ctx: &mut Ctx<'_, PbftMsg>) {
        match kind {
            TIMER_BATCH => self.on_batch_timer(ctx),
            TIMER_VC => self.on_vc_timer(ctx),
            TIMER_HEARTBEAT => self.on_heartbeat_timer(ctx),
            _ => {}
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}
