//! Raft as integrated in Quorum (Figure 2 baseline).
//!
//! Crash-fault-tolerant log replication with terms, elections and
//! heartbeats. The Quorum integration property the paper highlights
//! (Appendix C.2) is preserved: **a node first constructs a block, then
//! runs Raft to finalize it, and only constructs the next block after
//! finalization** — lockstep, no pipelining — plus EVM execution costs.
//! Transactions are forwarded to the leader (no gossip storm), which is
//! why Raft's request path is cheap; its throughput ceiling comes from the
//! lockstep minting loop.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use ahl_ledger::StateStore;
use ahl_simkit::{Actor, Ctx, MsgClass, NodeId, SimDuration};

use crate::clients::ClientProtocol;
use crate::common::{stat, Request};

/// Raft wire messages.
#[derive(Clone, Debug)]
pub enum RaftMsg {
    /// Client → node: transaction submission.
    Request(Request),
    /// Node → leader: forwarded transaction.
    Forward(Request),
    /// Leader → follower: replicate a block at `index`.
    AppendEntries {
        /// Leader's term.
        term: u64,
        /// Log index of this block.
        index: u64,
        /// The block (empty = heartbeat).
        block: Arc<Vec<Request>>,
        /// Leader's commit index.
        commit_index: u64,
        /// Leader id (group index).
        leader: usize,
    },
    /// Follower → leader: acknowledgement.
    AppendAck {
        /// Term.
        term: u64,
        /// Acknowledged index.
        index: u64,
        /// Follower id.
        follower: usize,
    },
    /// Candidate → all: request vote.
    RequestVote {
        /// Candidate's term.
        term: u64,
        /// Candidate id.
        candidate: usize,
        /// Candidate's last log index.
        last_index: u64,
    },
    /// Voter → candidate: vote granted.
    VoteGranted {
        /// Term.
        term: u64,
        /// Voter id.
        voter: usize,
    },
    /// Reply to client.
    Reply {
        /// Request id.
        req_id: u64,
        /// Commit status.
        committed: bool,
    },
}

impl RaftMsg {
    /// Queue class.
    pub fn class(&self) -> MsgClass {
        match self {
            RaftMsg::Request(_) | RaftMsg::Forward(_) | RaftMsg::Reply { .. } => MsgClass::REQUEST,
            _ => MsgClass::CONSENSUS,
        }
    }

    /// Approximate wire size.
    pub fn wire_size(&self) -> usize {
        match self {
            RaftMsg::Request(r) | RaftMsg::Forward(r) => 250 + r.op.wire_size(),
            RaftMsg::AppendEntries { block, .. } => {
                100 + block.iter().map(|r| 64 + r.op.wire_size()).sum::<usize>()
            }
            RaftMsg::AppendAck { .. } | RaftMsg::VoteGranted { .. } => 60,
            RaftMsg::RequestVote { .. } => 80,
            RaftMsg::Reply { .. } => 100,
        }
    }
}

impl ClientProtocol for RaftMsg {
    fn make_request(req: Request) -> Self {
        RaftMsg::Request(req)
    }
    fn reply_id(&self) -> Option<u64> {
        match self {
            RaftMsg::Reply { req_id, .. } => Some(*req_id),
            _ => None,
        }
    }
}

/// Raft node configuration.
#[derive(Clone, Debug)]
pub struct RaftConfig {
    /// Cluster size (majority quorum).
    pub n: usize,
    /// Max transactions per block.
    pub max_block_txns: usize,
    /// Minting interval: Quorum's Raft builds a block every 50 ms when
    /// transactions are pending.
    pub mint_interval: SimDuration,
    /// Heartbeat interval.
    pub heartbeat: SimDuration,
    /// Election timeout base (randomized per node).
    pub election_timeout: SimDuration,
    /// EVM execution + Merkle update cost per state access.
    pub exec_cost_per_op: SimDuration,
    /// RPC ingest cost.
    pub ingest_cost: SimDuration,
    /// Message authentication cost (TLS channel, cheap).
    pub msg_cost: SimDuration,
}

impl RaftConfig {
    /// Defaults matching the Figure 2 comparison.
    pub fn new(n: usize) -> Self {
        RaftConfig {
            n,
            max_block_txns: 100,
            mint_interval: SimDuration::from_millis(50),
            heartbeat: SimDuration::from_millis(150),
            election_timeout: SimDuration::from_millis(600),
            exec_cost_per_op: SimDuration::from_micros(500),
            ingest_cost: SimDuration::from_micros(500),
            msg_cost: SimDuration::from_micros(10),
        }
    }

    /// Majority quorum.
    pub fn quorum(&self) -> usize {
        self.n / 2 + 1
    }
}

const TIMER_MINT: u64 = 1;
const TIMER_HEARTBEAT: u64 = 2;
const TIMER_ELECTION: u64 = 3;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Role {
    Follower,
    Candidate,
    Leader,
}

/// A Raft node with Quorum-style block minting.
pub struct RaftNode {
    cfg: RaftConfig,
    group: Vec<NodeId>,
    me: usize,
    reporter: bool,
    /// Marked crashed by fault-injection tests: drops all traffic.
    crashed: bool,

    role: Role,
    term: u64,
    votes: HashSet<usize>,
    leader_hint: Option<usize>,
    last_leader_contact_epoch: u64,

    log: Vec<Arc<Vec<Request>>>,
    acks: HashMap<u64, HashSet<usize>>,
    commit_index: u64,
    applied_index: u64,
    /// Lockstep flag: a block is in flight, don't mint another.
    in_flight: bool,

    pool: VecDeque<Request>,
    pool_ids: HashSet<u64>,
    executed: HashSet<u64>,
    state: StateStore,
}

impl RaftNode {
    /// Create a node; node 0 starts as leader of term 1 (stable-leader
    /// deployments like Quorum bootstrap with a designated minter).
    pub fn new(cfg: RaftConfig, group: Vec<NodeId>, me: usize, reporter: bool) -> Self {
        let role = if me == 0 { Role::Leader } else { Role::Follower };
        RaftNode {
            cfg,
            group,
            me,
            reporter,
            crashed: false,
            role,
            term: 1,
            votes: HashSet::new(),
            leader_hint: Some(0),
            last_leader_contact_epoch: 0,
            log: Vec::new(),
            acks: HashMap::new(),
            commit_index: 0,
            applied_index: 0,
            in_flight: false,
            pool: VecDeque::new(),
            pool_ids: HashSet::new(),
            executed: HashSet::new(),
            state: StateStore::new(),
        }
    }

    /// Crash this node (fault injection: it stops responding).
    pub fn crash(&mut self) {
        self.crashed = true;
    }

    /// Current role name (post-run inspection).
    pub fn is_leader(&self) -> bool {
        self.role == Role::Leader
    }

    /// Applied log index (post-run inspection).
    pub fn applied_index(&self) -> u64 {
        self.applied_index
    }

    /// Current term.
    pub fn term(&self) -> u64 {
        self.term
    }

    fn others(&self) -> Vec<NodeId> {
        let mine = self.group[self.me];
        self.group.iter().copied().filter(|&g| g != mine).collect()
    }

    fn mint(&mut self, ctx: &mut Ctx<'_, RaftMsg>) {
        if self.role != Role::Leader || self.in_flight {
            return;
        }
        let mut batch = Vec::new();
        while batch.len() < self.cfg.max_block_txns {
            let Some(r) = self.pool.pop_front() else { break };
            self.pool_ids.remove(&r.id);
            if self.executed.contains(&r.id) {
                continue;
            }
            batch.push(r);
        }
        if batch.is_empty() {
            return;
        }
        // Quorum executes the block in the EVM while constructing it.
        let weight: usize = batch.iter().map(|r| r.op.weight()).sum();
        let exec = self.cfg.exec_cost_per_op.saturating_mul(weight as u64);
        ctx.consume_cpu(exec);
        ctx.stats().inc(stat::EXEC_CPU_NS, exec.as_nanos());

        let block = Arc::new(batch);
        self.log.push(block.clone());
        let index = self.log.len() as u64;
        self.in_flight = true;
        self.acks.entry(index).or_default().insert(self.me);
        ctx.multicast(
            self.others(),
            RaftMsg::AppendEntries {
                term: self.term,
                index,
                block,
                commit_index: self.commit_index,
                leader: self.me,
            },
        );
    }

    fn apply_committed(&mut self, ctx: &mut Ctx<'_, RaftMsg>) {
        while self.applied_index < self.commit_index {
            let idx = self.applied_index as usize;
            let Some(block) = self.log.get(idx).cloned() else { break };
            self.applied_index += 1;
            let mut committed = 0u64;
            let mut weight = 0usize;
            for req in block.iter() {
                if !self.executed.insert(req.id) {
                    continue;
                }
                self.pool_ids.remove(&req.id);
                weight += req.op.weight();
                if self.state.execute(&req.op).status.is_committed() {
                    committed += 1;
                }
                if self.reporter {
                    let lat = ctx.now().since(req.submitted);
                    ctx.stats().record_latency(stat::TXN_LATENCY, lat);
                }
            }
            if self.role != Role::Leader {
                // Followers replay the EVM execution on apply.
                let exec = self.cfg.exec_cost_per_op.saturating_mul(weight as u64);
                ctx.consume_cpu(exec);
                ctx.stats().inc(stat::EXEC_CPU_NS, exec.as_nanos());
            }
            if self.reporter {
                let now = ctx.now();
                ctx.stats().inc(stat::TXN_COMMITTED, committed);
                ctx.stats().inc(stat::BLOCKS_COMMITTED, 1);
                ctx.stats().record_point(stat::COMMIT_SERIES, now, committed as f64);
            }
        }
    }

    fn pool_tx(&mut self, req: Request) {
        if self.executed.contains(&req.id) || !self.pool_ids.insert(req.id) {
            return;
        }
        self.pool.push_back(req);
    }

    fn become_candidate(&mut self, ctx: &mut Ctx<'_, RaftMsg>) {
        self.role = Role::Candidate;
        self.term += 1;
        self.votes.clear();
        self.votes.insert(self.me);
        ctx.stats().inc("raft.elections", 1);
        ctx.multicast(
            self.others(),
            RaftMsg::RequestVote {
                term: self.term,
                candidate: self.me,
                last_index: self.log.len() as u64,
            },
        );
        self.arm_election_timer(ctx);
    }

    fn arm_election_timer(&mut self, ctx: &mut Ctx<'_, RaftMsg>) {
        self.last_leader_contact_epoch += 1;
        let epoch = self.last_leader_contact_epoch;
        // Randomized timeout (deterministic per node index) avoids split
        // votes.
        let spread = SimDuration::from_millis(37 * (self.me as u64 + 1) % 400);
        ctx.set_timer(
            self.cfg.election_timeout + spread,
            TIMER_ELECTION | (epoch << 8),
        );
    }
}

impl Actor for RaftNode {
    type Msg = RaftMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, RaftMsg>) {
        ctx.set_timer(self.cfg.mint_interval, TIMER_MINT);
        if self.role == Role::Leader {
            ctx.set_timer(self.cfg.heartbeat, TIMER_HEARTBEAT);
        } else {
            self.arm_election_timer(ctx);
        }
    }

    fn on_message(&mut self, _from: NodeId, msg: RaftMsg, ctx: &mut Ctx<'_, RaftMsg>) {
        if self.crashed {
            return;
        }
        match msg {
            RaftMsg::Request(req) => {
                ctx.consume_cpu(self.cfg.ingest_cost);
                ctx.stats().inc(stat::CONSENSUS_CPU_NS, self.cfg.ingest_cost.as_nanos());
                if self.role == Role::Leader {
                    self.pool_tx(req);
                    self.mint(ctx);
                } else if let Some(hint) = self.leader_hint {
                    ctx.send(self.group[hint], RaftMsg::Forward(req));
                } else {
                    self.pool_tx(req);
                }
            }
            RaftMsg::Forward(req) => {
                ctx.consume_cpu(self.cfg.msg_cost);
                if self.role == Role::Leader {
                    self.pool_tx(req);
                    self.mint(ctx);
                }
            }
            RaftMsg::AppendEntries { term, index, block, commit_index, leader } => {
                if term < self.term {
                    return;
                }
                ctx.consume_cpu(self.cfg.msg_cost);
                self.term = term;
                self.role = Role::Follower;
                self.leader_hint = Some(leader);
                self.arm_election_timer(ctx);
                if !block.is_empty() {
                    let expect = self.log.len() as u64 + 1;
                    if index == expect {
                        self.log.push(block);
                        ctx.send(
                            self.group[leader],
                            RaftMsg::AppendAck { term, index, follower: self.me },
                        );
                    } else if index <= self.log.len() as u64 {
                        // Duplicate: re-ack.
                        ctx.send(
                            self.group[leader],
                            RaftMsg::AppendAck { term, index, follower: self.me },
                        );
                    }
                    // Gaps are ignored; the leader is lockstep so gaps only
                    // occur across leader changes, resolved by retransmit.
                }
                if commit_index > self.commit_index {
                    self.commit_index = commit_index.min(self.log.len() as u64);
                    self.apply_committed(ctx);
                }
            }
            RaftMsg::AppendAck { term, index, follower } => {
                if term != self.term || self.role != Role::Leader {
                    return;
                }
                ctx.consume_cpu(self.cfg.msg_cost);
                let acks = self.acks.entry(index).or_default();
                acks.insert(follower);
                if acks.len() >= self.cfg.quorum() && index > self.commit_index {
                    self.commit_index = index;
                    self.in_flight = false;
                    self.apply_committed(ctx);
                    // Lockstep: next block only now.
                    self.mint(ctx);
                }
            }
            RaftMsg::RequestVote { term, candidate, last_index } => {
                ctx.consume_cpu(self.cfg.msg_cost);
                if term > self.term && last_index >= self.commit_index {
                    self.term = term;
                    self.role = Role::Follower;
                    ctx.send(self.group[candidate], RaftMsg::VoteGranted { term, voter: self.me });
                    self.arm_election_timer(ctx);
                }
            }
            RaftMsg::VoteGranted { term, voter } => {
                if term != self.term || self.role != Role::Candidate {
                    return;
                }
                self.votes.insert(voter);
                if self.votes.len() >= self.cfg.quorum() {
                    self.role = Role::Leader;
                    self.leader_hint = Some(self.me);
                    self.in_flight = false;
                    ctx.stats().inc("raft.leader_changes", 1);
                    ctx.set_timer(self.cfg.heartbeat, TIMER_HEARTBEAT);
                    self.mint(ctx);
                }
            }
            RaftMsg::Reply { .. } => {}
        }
    }

    fn on_timer(&mut self, kind: u64, ctx: &mut Ctx<'_, RaftMsg>) {
        if self.crashed {
            return;
        }
        match kind & 0xff {
            TIMER_MINT => {
                self.mint(ctx);
                ctx.set_timer(self.cfg.mint_interval, TIMER_MINT);
            }
            TIMER_HEARTBEAT
                if self.role == Role::Leader => {
                    ctx.multicast(
                        self.others(),
                        RaftMsg::AppendEntries {
                            term: self.term,
                            index: 0,
                            block: Arc::new(Vec::new()),
                            commit_index: self.commit_index,
                            leader: self.me,
                        },
                    );
                    ctx.set_timer(self.cfg.heartbeat, TIMER_HEARTBEAT);
                }
            TIMER_ELECTION => {
                if (kind >> 8) != self.last_leader_contact_epoch {
                    return; // leader contact re-armed the timer
                }
                if self.role != Role::Leader {
                    self.become_candidate(ctx);
                }
            }
            _ => {}
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// Build a Raft cluster simulation (clients added by caller).
pub fn build_raft_group(
    cfg: &RaftConfig,
    network: Box<dyn ahl_simkit::Network>,
    uplink_bps: Option<f64>,
    seed: u64,
) -> (ahl_simkit::Sim<RaftMsg>, Vec<NodeId>) {
    fn classify(m: &RaftMsg) -> MsgClass {
        m.class()
    }
    fn size_of(m: &RaftMsg) -> usize {
        m.wire_size()
    }
    let mut sim_cfg = ahl_simkit::SimConfig::new(seed);
    sim_cfg.network = network;
    sim_cfg.classify = classify;
    sim_cfg.size_of = size_of;
    sim_cfg.uplink_bps = uplink_bps;
    let mut sim = ahl_simkit::Sim::new(sim_cfg);
    let group: Vec<NodeId> = (0..cfg.n).collect();
    for i in 0..cfg.n {
        let node = RaftNode::new(cfg.clone(), group.clone(), i, i == 0);
        sim.add_actor(Box::new(node), ahl_simkit::QueueConfig::shared(8192));
    }
    (sim, group)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clients::OpenLoopClient;
    use ahl_ledger::{kvstore, Op, TxId};
    use ahl_simkit::{QueueConfig, SimTime, UniformNetwork};

    fn factory() -> crate::common::OpFactory {
        let mut i = 0u64;
        Box::new(move |_r: &mut rand::rngs::SmallRng| {
            i += 1;
            Op::Direct { txid: TxId(i), op: kvstore::kv_write(&[i % 50], 16) }
        })
    }

    #[test]
    fn commits_transactions() {
        let cfg = RaftConfig::new(5);
        let net = Box::new(UniformNetwork::new(SimDuration::from_micros(300)));
        let (mut sim, group) = build_raft_group(&cfg, net, Some(1e9), 31);
        let stop = SimTime::ZERO + SimDuration::from_secs(5);
        let client = OpenLoopClient::new(group.clone(), SimDuration::from_millis(2), stop, factory());
        sim.add_actor(Box::new(client), QueueConfig::unbounded());
        sim.run_until(stop + SimDuration::from_secs(2));
        let committed = sim.stats().counter(stat::TXN_COMMITTED);
        assert!(committed > 1000, "committed {committed}");
        assert_eq!(sim.stats().counter("raft.elections"), 0);
    }

    #[test]
    fn leader_crash_triggers_election_and_recovery() {
        let cfg = RaftConfig::new(5);
        let net = Box::new(UniformNetwork::new(SimDuration::from_micros(300)));
        let (mut sim, group) = build_raft_group(&cfg, net, Some(1e9), 32);
        let stop = SimTime::ZERO + SimDuration::from_secs(6);
        let client = OpenLoopClient::new(group.clone(), SimDuration::from_millis(3), stop, factory());
        sim.add_actor(Box::new(client), QueueConfig::unbounded());
        // Run 2 s, crash the leader, keep running.
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(2));
        sim.actor_mut(0)
            .as_any_mut()
            .and_then(|a| a.downcast_mut::<RaftNode>())
            .expect("raft node")
            .crash();
        sim.run_until(stop + SimDuration::from_secs(2));
        assert!(sim.stats().counter("raft.elections") >= 1);
        assert!(sim.stats().counter("raft.leader_changes") >= 1);
        // A new leader exists among the survivors.
        let leaders = group
            .iter()
            .skip(1)
            .filter(|&&id| {
                sim.actor(id)
                    .as_any()
                    .expect("inspectable")
                    .downcast_ref::<RaftNode>()
                    .expect("raft")
                    .is_leader()
            })
            .count();
        assert_eq!(leaders, 1);
    }

    #[test]
    fn followers_apply_same_log() {
        let cfg = RaftConfig::new(3);
        let net = Box::new(UniformNetwork::new(SimDuration::from_micros(300)));
        let (mut sim, group) = build_raft_group(&cfg, net, Some(1e9), 33);
        let stop = SimTime::ZERO + SimDuration::from_secs(3);
        let client = OpenLoopClient::new(group.clone(), SimDuration::from_millis(4), stop, factory());
        sim.add_actor(Box::new(client), QueueConfig::unbounded());
        sim.run_until(stop + SimDuration::from_secs(3));
        let applied: Vec<u64> = group
            .iter()
            .map(|&id| {
                sim.actor(id)
                    .as_any()
                    .expect("inspectable")
                    .downcast_ref::<RaftNode>()
                    .expect("raft")
                    .applied_index()
            })
            .collect();
        assert!(applied[0] > 0);
        let max = *applied.iter().max().expect("non-empty");
        let min = *applied.iter().min().expect("non-empty");
        assert!(max - min <= 1, "applied {applied:?}");
    }
}
