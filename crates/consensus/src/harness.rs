//! Single-committee experiment harness: builds a network + committee +
//! clients, runs for a measured interval, and extracts the metrics the
//! paper's figures report.

use ahl_ledger::Value;
use ahl_net::{ClusterNetwork, GcpNetwork};
use ahl_simkit::{Actor, Ctx, Network, NodeId, QueueConfig, SimDuration, SimTime};

use crate::clients::{ClosedLoopClient, OpenLoopClient};
use crate::common::{stat, OpFactory};
use crate::pbft::{build_group, PbftConfig, PbftMsg};

/// Scripted fault/reconfiguration injector: delivers control messages
/// (crash/restart, shard transition) to replicas at scheduled times. Used
/// by the `statesync` experiment and crash-recovery tests; the reshard
/// experiment builds its own controller to sequence transition batches.
pub struct ControlScript {
    schedule: Vec<(SimDuration, NodeId, PbftMsg)>,
}

impl ControlScript {
    /// Create an injector for `(at, target, message)` events.
    pub fn new(schedule: Vec<(SimDuration, NodeId, PbftMsg)>) -> Self {
        ControlScript { schedule }
    }
}

impl Actor for ControlScript {
    type Msg = PbftMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, PbftMsg>) {
        for (i, (at, _, _)) in self.schedule.iter().enumerate() {
            ctx.set_timer(*at, i as u64);
        }
    }

    fn on_message(&mut self, _from: NodeId, _msg: PbftMsg, _ctx: &mut Ctx<'_, PbftMsg>) {
        // TransitionDone notifications land here when this actor is named
        // as the controller; the simple script has no sequencing to do.
    }

    fn on_timer(&mut self, kind: u64, ctx: &mut Ctx<'_, PbftMsg>) {
        if let Some((_, target, msg)) = self.schedule.get(kind as usize) {
            ctx.send(*target, msg.clone());
        }
    }
}

/// Which testbed to simulate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NetChoice {
    /// The in-house local cluster (1 Gbps LAN).
    Cluster,
    /// Google Cloud over `regions` regions (Table 3 latencies).
    Gcp {
        /// Number of regions (4 or 8 in the paper).
        regions: usize,
    },
}

impl NetChoice {
    fn build(self, total_nodes: usize) -> Box<dyn Network> {
        match self {
            NetChoice::Cluster => Box::new(ClusterNetwork::new()),
            NetChoice::Gcp { regions } => Box::new(GcpNetwork::new(total_nodes, regions)),
        }
    }

    fn uplink_bps(self) -> f64 {
        match self {
            NetChoice::Cluster => 1e9,
            // Effective cross-region egress of the 2-vCPU instances.
            NetChoice::Gcp { .. } => 300e6,
        }
    }

    /// CPU scale: GCP nodes have 2 vCPUs vs the cluster's Xeon E5-1650.
    pub fn cpu_scale(self) -> f64 {
        match self {
            NetChoice::Cluster => 1.0,
            NetChoice::Gcp { .. } => 2.0,
        }
    }
}

/// Client drive mode.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ClientMode {
    /// Open loop at `rate` requests/s per client (single-shard experiments).
    Open {
        /// Requests per second per client.
        rate: f64,
    },
    /// Closed loop with `outstanding` in-flight requests per client
    /// (multi-shard experiments use 128).
    Closed {
        /// Window size per client.
        outstanding: usize,
    },
}

/// One single-committee experiment.
pub struct ShardExperiment {
    /// Protocol configuration (variant, n, costs, Byzantine count, ...).
    pub pbft: PbftConfig,
    /// Testbed.
    pub net: NetChoice,
    /// Number of client actors.
    pub clients: usize,
    /// Client drive mode.
    pub client_mode: ClientMode,
    /// Measured interval (after warmup).
    pub duration: SimDuration,
    /// Warmup excluded from measurement.
    pub warmup: SimDuration,
    /// Genesis state installed on every replica.
    pub genesis: Vec<(String, Value)>,
    /// Per-client operation factory.
    pub make_factory: Box<dyn Fn(usize) -> OpFactory>,
    /// RNG seed.
    pub seed: u64,
}

impl ShardExperiment {
    /// Sensible defaults: open loop at 200 req/s/client, 10 clients,
    /// cluster network, 20 s measured after 5 s warmup.
    pub fn new(pbft: PbftConfig, make_factory: Box<dyn Fn(usize) -> OpFactory>) -> Self {
        ShardExperiment {
            pbft,
            net: NetChoice::Cluster,
            clients: 10,
            client_mode: ClientMode::Open { rate: 200.0 },
            duration: SimDuration::from_secs(20),
            warmup: SimDuration::from_secs(5),
            genesis: Vec::new(),
            make_factory,
            seed: 42,
        }
    }
}

/// Metrics extracted from a run (one row of a paper figure).
#[derive(Clone, Debug, Default)]
pub struct RunMetrics {
    /// Committed transactions per second over the measured window.
    pub tps: f64,
    /// Total committed transactions (whole run).
    pub committed: u64,
    /// Total aborted transactions.
    pub aborted: u64,
    /// Mean request latency.
    pub latency_mean: SimDuration,
    /// 50th percentile latency.
    pub latency_p50: SimDuration,
    /// 99th percentile latency.
    pub latency_p99: SimDuration,
    /// View changes adopted.
    pub view_changes: u64,
    /// Consensus messages dropped at full queues.
    pub dropped_consensus: u64,
    /// Request messages dropped at full queues.
    pub dropped_requests: u64,
    /// CPU seconds spent in consensus handling (all replicas).
    pub consensus_cpu_s: f64,
    /// CPU seconds spent in execution (all replicas).
    pub exec_cpu_s: f64,
    /// Blocks committed (reporter's count).
    pub blocks: u64,
    /// Client-observed completions (closed-loop runs).
    pub completed: u64,
    /// Requests bounced by pool admission control (all replicas).
    pub pool_rejections: u64,
    /// Pooled transactions evicted to admit newer/higher-priority ones.
    pub pool_evictions: u64,
    /// Mean request queueing delay inside the pools (admission → batch).
    pub pool_queue_mean: SimDuration,
}

impl RunMetrics {
    /// Abort ratio among finished transactions.
    pub fn abort_rate(&self) -> f64 {
        let total = self.committed + self.aborted;
        if total == 0 {
            0.0
        } else {
            self.aborted as f64 / total as f64
        }
    }
}

/// Run a single-committee experiment and report metrics.
pub fn run_shard_experiment(exp: ShardExperiment) -> RunMetrics {
    let total_nodes = exp.pbft.n + exp.clients;
    let mut pbft = exp.pbft;
    pbft.cpu_scale *= exp.net.cpu_scale();
    let network = exp.net.build(total_nodes);
    let (mut sim, group) = build_group(&pbft, network, Some(exp.net.uplink_bps()), &exp.genesis, exp.seed);

    let stop = SimTime::ZERO + exp.warmup + exp.duration;
    for c in 0..exp.clients {
        let factory = (exp.make_factory)(c);
        match exp.client_mode {
            ClientMode::Open { rate } => {
                let interval = SimDuration::from_secs_f64(1.0 / rate.max(1e-9));
                let client = OpenLoopClient::new(group.clone(), interval, stop, factory);
                sim.add_actor(Box::new(client), QueueConfig::unbounded());
            }
            ClientMode::Closed { outstanding } => {
                // Each closed-loop client pins to one replica (BLOCKBENCH
                // attaches drivers to specific peers).
                let target = group[c % group.len()];
                let client = ClosedLoopClient::new(
                    vec![target],
                    outstanding,
                    stop,
                    SimDuration::from_secs(4),
                    factory,
                );
                sim.add_actor(Box::new(client), QueueConfig::unbounded());
            }
        }
    }

    // Run past the stop time to drain in-flight work.
    sim.run_until(stop + SimDuration::from_secs(5));

    let stats = sim.stats();
    let from = SimTime::ZERO + exp.warmup;
    let tps = stats.rate_in_window(stat::COMMIT_SERIES, from, stop);
    let lat = stats.histogram(stat::TXN_LATENCY);
    RunMetrics {
        tps,
        committed: stats.counter(stat::TXN_COMMITTED),
        aborted: stats.counter(stat::TXN_ABORTED),
        latency_mean: lat.map(|h| h.mean()).unwrap_or_default(),
        latency_p50: lat.map(|h| h.quantile(0.5)).unwrap_or_default(),
        latency_p99: lat.map(|h| h.quantile(0.99)).unwrap_or_default(),
        view_changes: stats.counter(stat::VIEW_CHANGES),
        dropped_consensus: stats.counter("queue.dropped_consensus"),
        dropped_requests: stats.counter("queue.dropped_request"),
        consensus_cpu_s: stats.counter(stat::CONSENSUS_CPU_NS) as f64 / 1e9,
        exec_cpu_s: stats.counter(stat::EXEC_CPU_NS) as f64 / 1e9,
        blocks: stats.counter(stat::BLOCKS_COMMITTED),
        completed: stats.counter(stat::CLIENT_COMPLETED),
        pool_rejections: stats.counter(ahl_mempool::stat::REJECTED_FULL),
        pool_evictions: stats.counter(ahl_mempool::stat::EVICTED),
        pool_queue_mean: stats
            .histogram(ahl_mempool::stat::QUEUE_LATENCY)
            .map(|h| h.mean())
            .unwrap_or_default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pbft::BftVariant;
    use ahl_ledger::{kvstore, Op, TxId};

    fn kv_factory(client: usize) -> OpFactory {
        let mut i = client as u64 * 1_000_000;
        Box::new(move |_rng| {
            i += 1;
            Op::Direct { txid: TxId(i), op: kvstore::kv_write(&[i % 1000], 16) }
        })
    }

    fn quick(variant: BftVariant, n: usize, net: NetChoice) -> RunMetrics {
        let mut exp = ShardExperiment::new(PbftConfig::new(variant, n), Box::new(kv_factory));
        exp.net = net;
        exp.clients = 4;
        exp.client_mode = ClientMode::Open { rate: 150.0 };
        exp.duration = SimDuration::from_secs(6);
        exp.warmup = SimDuration::from_secs(2);
        run_shard_experiment(exp)
    }

    #[test]
    fn ahl_plus_sustains_throughput_on_cluster() {
        let m = quick(BftVariant::AhlPlus, 7, NetChoice::Cluster);
        assert!(m.tps > 400.0, "tps {}", m.tps);
        assert_eq!(m.view_changes, 0);
    }

    #[test]
    fn ahl_plus_works_on_gcp() {
        let m = quick(BftVariant::AhlPlus, 7, NetChoice::Gcp { regions: 4 });
        assert!(m.tps > 100.0, "tps {}", m.tps);
    }

    #[test]
    fn latency_cluster_below_gcp() {
        let c = quick(BftVariant::AhlPlus, 7, NetChoice::Cluster);
        let g = quick(BftVariant::AhlPlus, 7, NetChoice::Gcp { regions: 8 });
        assert!(c.latency_mean < g.latency_mean);
    }

    /// Open-loop overload against a tiny pool: admission control engages
    /// (rejections counted) while the committee keeps committing.
    #[test]
    fn tiny_pool_rejects_but_commits() {
        let mut exp = ShardExperiment::new(
            {
                let mut c = PbftConfig::new(BftVariant::AhlPlus, 5);
                c.mempool = ahl_mempool::MempoolConfig::new(64);
                c.batch_size = 32;
                c
            },
            Box::new(kv_factory),
        );
        exp.clients = 8;
        exp.client_mode = ClientMode::Open { rate: 600.0 };
        exp.duration = SimDuration::from_secs(5);
        exp.warmup = SimDuration::from_secs(1);
        let m = run_shard_experiment(exp);
        assert!(m.pool_rejections > 0, "tiny pool must reject");
        assert!(m.committed > 500, "committed {}", m.committed);
        assert_eq!(m.view_changes, 0);
    }

    /// Crash/recovery acceptance: a replica crashes at t = 2 s, stays dark
    /// for two seconds (long enough for the committee's block tail to age
    /// out), and restarts from its durable checkpoint. Recovery runs
    /// through the certified chunked sync — incremental, since the peers
    /// still retain the crashed node's last certified root — with zero
    /// proof failures, and its ledger agrees with the committee's at an
    /// equal execution point.
    #[test]
    fn restarted_replica_recovers_via_chunked_sync() {
        use crate::pbft::{build_group, BftVariant, Replica};
        use ahl_simkit::UniformNetwork;

        let mut cfg = PbftConfig::new(BftVariant::AhlPlus, 5);
        cfg.crypto = crate::common::CryptoMode::Real;
        cfg.batch_size = 10;
        cfg.checkpoint_interval = 25;
        cfg.sync_chunk_target = 64;
        let genesis: Vec<(String, Value)> = (0..500)
            .map(|i| (format!("acc{i}"), Value::Int(1_000)))
            .collect();
        let net = Box::new(UniformNetwork::new(SimDuration::from_micros(300)));
        let (mut sim, group) = build_group(&cfg, net, Some(1e9), &genesis, 42);
        let stop = SimTime::ZERO + SimDuration::from_secs(6);
        let client = OpenLoopClient::new(
            group.clone(),
            SimDuration::from_millis(2),
            stop,
            kv_factory(0),
        );
        sim.add_actor(Box::new(client), QueueConfig::unbounded());
        // Crash replica 3 at t = 2 s; it restarts at t = 4 s and recovers
        // on its own.
        let script = ControlScript::new(vec![
            (SimDuration::from_secs(2), group[3], PbftMsg::Crash),
            (SimDuration::from_secs(4), group[3], PbftMsg::Restart),
        ]);
        sim.add_actor(Box::new(script), QueueConfig::unbounded());
        sim.run_until(stop + SimDuration::from_secs(4));

        assert!(sim.stats().counter("sync.crashes") >= 1);
        assert!(sim.stats().counter("sync.restarts") >= 1);
        assert!(
            sim.stats().counter(stat::SYNC_COMPLETED) >= 1,
            "restart must recover through a chunked sync"
        );
        assert!(
            sim.stats().counter(stat::SYNC_DIFFS) >= 1,
            "peers retained the durable root: recovery should be incremental"
        );
        assert_eq!(sim.stats().counter(stat::SYNC_DIFF_FALLBACKS), 0);
        assert!(sim.stats().counter(stat::SYNC_CHUNKS_SERVED) >= 1);
        assert_eq!(sim.stats().counter(stat::SYNC_PROOF_FAILURES), 0);
        assert!(sim.stats().counter(stat::SYNC_BYTES) > 0);

        let replica = |id: usize| {
            sim.actor(id)
                .as_any()
                .and_then(|a| a.downcast_ref::<Replica>())
                .expect("replica actor")
        };
        let restarted = replica(group[3]);
        assert!(restarted.exec_seq() > 0, "restarted replica must catch up");
        // At quiescence its ledger agrees with any healthy replica at the
        // same execution point (content-addressed root ⇒ identical state).
        let twin = (0..5)
            .filter(|i| *i != 3)
            .map(|i| replica(group[i]))
            .find(|r| r.exec_seq() == restarted.exec_seq())
            .expect("restarted replica reaches a healthy peer's exec point");
        assert_eq!(
            twin.state().state_digest(),
            restarted.state().state_digest(),
            "recovered state must match the committee's"
        );
        // Genesis balances survived the crash (no transfer ops in this
        // workload, so any loss would mean a corrupted recovery).
        let total: i64 = restarted
            .state()
            .iter()
            .filter(|(k, _)| k.starts_with("acc"))
            .filter_map(|(_, v)| v.as_int())
            .sum();
        assert_eq!(total, 500 * 1_000, "balances conserved through recovery");
    }

    #[test]
    fn closed_loop_completes_requests() {
        let mut exp = ShardExperiment::new(
            {
                let mut c = PbftConfig::new(BftVariant::AhlPlus, 5);
                c.reply_policy = crate::pbft::ReplyPolicy::IngestReplica;
                c
            },
            Box::new(kv_factory),
        );
        exp.clients = 4;
        exp.client_mode = ClientMode::Closed { outstanding: 32 };
        exp.duration = SimDuration::from_secs(5);
        exp.warmup = SimDuration::from_secs(1);
        let m = run_shard_experiment(exp);
        assert!(m.completed > 500, "completed {}", m.completed);
    }
}
