//! The Byzantine adversary model and the global safety oracle.
//!
//! ## Attack catalogue
//!
//! [`Attack`] selects what the Byzantine replicas of a committee do.
//! Every protocol (PBFT and its variants, IBFT, Tendermint) interprets
//! the same catalogue at its own attack surfaces:
//!
//! | Attack | Leader/proposer | Voter |
//! |--------|-----------------|-------|
//! | [`Attack::PaperFlood`] | equivocate (HL) / withhold (attested) | conflicting digests per half + junk-seq flood (§7.2) |
//! | [`Attack::Equivocate`] | two conflicting blocks for the *same* slot, one per committee half; colluders get both | echo per-half votes for every proposal seen (double-sign) |
//! | [`Attack::WithholdVotes`] | propose honestly | send no votes at all |
//! | [`Attack::StaleReplay`] | propose honestly | replay the previous slot's vote instead of the current one |
//! | [`Attack::BogusCheckpoint`] | propose honestly | vote a corrupted checkpoint root (PBFT) / a corrupted block digest (IBFT, Tendermint) |
//!
//! `Equivocate` is the canonical safety attack: at `f ≤ ⌊(n−1)/3⌋` quorum
//! intersection defeats it, and at `f > ⌊(n−1)/3⌋` it *forks the chain* —
//! the canary that proves the [`SafetyChecker`] is live. The halves are
//! deterministic (group-index parity), so runs reproduce exactly.
//!
//! ## Scripting a new attack
//!
//! 1. Add a variant to [`Attack`].
//! 2. Teach the protocols' attack sites about it — proposals go through
//!    the leader's `propose`/`propose_batch`, votes through the
//!    `send_prepare`/`send_commit` (PBFT), `broadcast_prevote`/
//!    `broadcast_precommit` (Tendermint) and `send_prepare`/`send_commit`
//!    (IBFT) paths, checkpoints through PBFT's `send_checkpoint`.
//! 3. Add a cell to `tests/byzantine.rs`: run the protocol with the
//!    attack at `f ≤ ⌊(n−1)/3⌋` and assert `checker.assert_clean()` plus
//!    progress. Network-level misbehaviour (partitions, message
//!    drops/delays/duplicates) does not need protocol changes at all —
//!    script it with [`ahl_simkit::adversary::ScriptedFaults`].
//!
//! ## What the checker guarantees
//!
//! [`SafetyChecker`] is a process-global observer every honest replica
//! reports into. It checks, across all committees of a run:
//!
//! * **Agreement** — no two honest replicas commit different block
//!   digests at the same (committee, height) within one state lineage.
//! * **Cross-shard atomicity** — no transaction whose prepared write set
//!   was *applied* (committed) in one shard and *discarded* (aborted) in
//!   another.
//! * **Exactly-once execution** — no honest replica executes the same
//!   request id twice within one state lineage (double-spend guard; a
//!   lineage resets when a replica restarts or installs a full state
//!   transfer, which legitimately re-executes history).
//!
//! Violations are *recorded*, not panicked, so tests can assert both
//! directions: clean runs stay clean, and over-threshold runs provably
//! trip the checker.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use ahl_crypto::Hash;

use crate::common::Request;

/// The scripted misbehaviour of a committee's Byzantine members.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Attack {
    /// The paper's §7.2 composite attack (the historical default):
    /// equivocating conflicting *sequence numbers* when unattested,
    /// withholding when attested, plus a junk-vote flood that loads
    /// honest verification queues.
    #[default]
    PaperFlood,
    /// Classic double-sign equivocation: the Byzantine leader/proposer
    /// sends two conflicting blocks for the same slot to disjoint halves
    /// of the committee (colluding Byzantine voters echo per-half votes).
    Equivocate,
    /// Byzantine members send no votes at all (silent stall).
    WithholdVotes,
    /// Byzantine members replay their stale previous-slot votes instead
    /// of voting the current slot.
    StaleReplay,
    /// Byzantine members vote for corrupted checkpoint roots (PBFT) or
    /// corrupted block digests (IBFT/Tendermint).
    BogusCheckpoint,
}

impl Attack {
    /// Display name for tables and logs.
    pub fn name(self) -> &'static str {
        match self {
            Attack::PaperFlood => "paper-flood",
            Attack::Equivocate => "equivocate",
            Attack::WithholdVotes => "withhold",
            Attack::StaleReplay => "stale-replay",
            Attack::BogusCheckpoint => "bogus-ckpt",
        }
    }

    /// The catalogue, in matrix order.
    pub const ALL: [Attack; 4] = [
        Attack::Equivocate,
        Attack::WithholdVotes,
        Attack::StaleReplay,
        Attack::BogusCheckpoint,
    ];
}

/// The committee half a peer belongs to under the equivocation attack:
/// deterministic group-index parity, shared by the equivocating leader
/// and its colluding voters so their stories line up.
pub fn equivocation_half(group_index: usize) -> usize {
    group_index % 2
}

/// The bookkeeping a colluding equivocator keeps per consensus slot:
/// which conflicting proposals it has seen, and which committee half each
/// one's votes target. Shared by the PBFT, IBFT and Tendermint colluders
/// so the double-signing logic cannot drift between protocols.
#[derive(Clone, Debug, Default)]
pub struct EquivocationTracker {
    seen: HashMap<u128, Vec<Hash>>,
}

impl EquivocationTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `digest` as proposed at `slot` (the protocol's
    /// height/round or sequence, packed by the caller). Returns `None`
    /// for a duplicate; otherwise `(half, split)` — the committee half
    /// this digest's votes target (its rank among the slot's sorted
    /// digests) and whether a conflicting proposal exists yet. While
    /// `split` is false the colluder votes to *everyone* (covert mode:
    /// an honest-looking vote keeps the committee live and the colluder
    /// unsuspected); once a second digest shows up, votes go per half.
    pub fn observe(&mut self, slot: u128, digest: Hash) -> Option<(usize, bool)> {
        if self.seen.len() > 1024 && !self.seen.contains_key(&slot) {
            self.seen.clear(); // bounded bookkeeping; attacks are bursty
        }
        let seen = self.seen.entry(slot).or_default();
        if seen.contains(&digest) {
            return None;
        }
        seen.push(digest);
        let mut sorted = seen.clone();
        sorted.sort_by_key(|d| d.0);
        let half = sorted.iter().position(|d| *d == digest).unwrap_or(0) % 2;
        Some((half, sorted.len() > 1))
    }
}

/// Proposer-side double-sign equivocation, shared by IBFT and Tendermint
/// (PBFT's attested variants equivocate at the sequence-number layer
/// instead). Builds the conflicting sibling block (the original minus
/// its first request), orders the two stories by digest, and calls
/// `emit(g, digest, block)` once per (peer, story): Byzantine colleagues
/// get both stories, honest peers the one their [`equivocation_half`]
/// assigns. `digest` is the protocol's block-digest function for the
/// slot; `emit` sends the proposal plus the proposer's own votes.
pub fn equivocate_propose(
    block: Arc<Vec<Request>>,
    digest: impl Fn(&[Request]) -> Hash,
    n: usize,
    me: usize,
    is_byzantine: impl Fn(usize) -> bool,
    mut emit: impl FnMut(usize, Hash, &Arc<Vec<Request>>),
) {
    let alt: Arc<Vec<Request>> = Arc::new(block[1..].to_vec());
    let da = digest(block.as_slice());
    let db = digest(alt.as_slice());
    let (lo, hi) = if da.0 <= db.0 { ((da, block), (db, alt)) } else { ((db, alt), (da, block)) };
    for g in 0..n {
        if g == me {
            continue;
        }
        let sides: Vec<&(Hash, Arc<Vec<Request>>)> = if is_byzantine(g) {
            vec![&lo, &hi] // colluders see both stories
        } else if equivocation_half(g) == 0 {
            vec![&lo]
        } else {
            vec![&hi]
        };
        for (d, blk) in sides {
            emit(g, *d, blk);
        }
    }
}

/// Colluding-voter echo targets for one proposal, shared by IBFT and
/// Tendermint: packs `(height, round)` into the tracker's slot key,
/// records `digest`, and returns the group indices the colluder's votes
/// for it should go to — `None` for a duplicate (already echoed). While
/// only one proposal is known at the slot the votes go to everyone
/// (covert mode); once a conflict appears they go per committee half.
pub fn equivocation_echo_targets(
    tracker: &mut EquivocationTracker,
    height: u64,
    round: u32,
    digest: Hash,
    n: usize,
    me: usize,
) -> Option<Vec<usize>> {
    let slot = ((height as u128) << 32) | round as u128;
    let (half, split) = tracker.observe(slot, digest)?;
    Some((0..n).filter(|&g| g != me && (!split || equivocation_half(g) == half)).collect())
}

/// What a Byzantine voter does at one vote site, as decided by
/// [`byzantine_vote`]. The caller executes the plan — charging signing
/// CPU, bumping stats, and sending — so the shared attack logic stays
/// generic over the protocol's message type.
pub enum VoteAttackPlan<M> {
    /// Say nothing ([`Attack::WithholdVotes`]; [`Attack::Equivocate`]
    /// votes ride the proposal-echo path instead).
    Silent,
    /// Replay the previous slot's parked vote to every peer (`None` on
    /// the first slot, when nothing stale exists yet). The current vote
    /// has been parked for the next slot either way.
    Replay(Option<M>),
    /// Send each `(group_index, vote)` pair: corrupt-digest votes,
    /// conflicting per committee half ([`Attack::PaperFlood`]) or
    /// uniformly bogus ([`Attack::BogusCheckpoint`]).
    Corrupt(Vec<(usize, M)>),
}

/// Byzantine vote emission, shared by IBFT (prepare/commit) and
/// Tendermint (prevote/precommit). `first_phase` distinguishes the
/// protocol's two vote rounds (separate stale-vote parking slots);
/// `make` builds the protocol's vote message for a digest.
pub fn byzantine_vote<M>(
    attack: Attack,
    stale_votes: &mut [Option<M>; 2],
    first_phase: bool,
    digest: Hash,
    n: usize,
    me: usize,
    make: impl Fn(Hash) -> M,
) -> VoteAttackPlan<M> {
    match attack {
        Attack::Equivocate | Attack::WithholdVotes => VoteAttackPlan::Silent,
        Attack::StaleReplay => {
            let slot = usize::from(!first_phase);
            let stale = stale_votes[slot].replace(make(digest));
            VoteAttackPlan::Replay(stale)
        }
        Attack::PaperFlood | Attack::BogusCheckpoint => {
            let mut bad = digest;
            bad.0[0] ^= 0xff;
            let votes = (0..n)
                .filter(|&g| g != me)
                .map(|g| {
                    let d = if attack == Attack::BogusCheckpoint || equivocation_half(g) == 1 {
                        bad
                    } else {
                        digest
                    };
                    (g, make(d))
                })
                .collect();
            VoteAttackPlan::Corrupt(votes)
        }
    }
}

/// Content-addressed identity of a committed batch: the ordered request
/// ids, independent of the view/round the protocol wrapped them in. The
/// [`SafetyChecker`] compares *these* across honest replicas — a
/// legitimate re-proposal of the same batch in a later view must not read
/// as a fork, while any divergence in the ordered content must.
pub fn commit_digest(req_ids: impl IntoIterator<Item = u64>) -> Hash {
    let parts: Vec<Vec<u8>> = std::iter::once(b"commit-digest".to_vec())
        .chain(req_ids.into_iter().map(|id| id.to_be_bytes().to_vec()))
        .collect();
    let refs: Vec<&[u8]> = parts.iter().map(Vec::as_slice).collect();
    ahl_crypto::sha256_parts(&refs)
}

impl Violation {
    /// The committee (shard) whose flight-recorder trace explains this
    /// violation, when one is attributable; atomicity breaks name the shard
    /// that applied the write set.
    pub fn committee(&self) -> Option<usize> {
        match self {
            Violation::ConflictingCommit { committee, .. } => Some(*committee),
            Violation::AtomicityBreak { committed_in, .. } => Some(*committed_in),
            Violation::DoubleExecution { committee, .. } => Some(*committee),
        }
    }

    /// The request/transaction id to pull a lifecycle trace for, if any.
    pub fn trace_id(&self) -> Option<u64> {
        match self {
            Violation::ConflictingCommit { .. } => None,
            Violation::AtomicityBreak { txid, .. } => Some(*txid),
            Violation::DoubleExecution { req_id, .. } => Some(*req_id),
        }
    }

    /// One-line human-readable summary for anomaly dumps.
    pub fn summary(&self) -> String {
        match self {
            Violation::ConflictingCommit { committee, height, a, b } => format!(
                "conflicting commit: committee {committee} height {height} digests {:02x}{:02x}.. vs {:02x}{:02x}..",
                a.0[0], a.0[1], b.0[0], b.0[1]
            ),
            Violation::AtomicityBreak { txid, committed_in, aborted_in } => format!(
                "atomicity break: txn {txid} applied in shard {committed_in}, discarded in shard {aborted_in}"
            ),
            Violation::DoubleExecution { committee, replica, req_id } => format!(
                "double execution: committee {committee} replica {replica} request {req_id}"
            ),
        }
    }
}

/// One recorded safety violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Two honest replicas committed different blocks at one height.
    ConflictingCommit {
        /// Committee the conflict happened in.
        committee: usize,
        /// The disputed height / sequence number.
        height: u64,
        /// First honest digest recorded.
        a: Hash,
        /// The conflicting honest digest.
        b: Hash,
    },
    /// A cross-shard transaction was applied in one shard and discarded
    /// in another.
    AtomicityBreak {
        /// The transaction.
        txid: u64,
        /// A shard that committed the prepared write set.
        committed_in: usize,
        /// A shard that aborted it.
        aborted_in: usize,
    },
    /// An honest replica executed the same request id twice.
    DoubleExecution {
        /// Committee of the offending replica.
        committee: usize,
        /// Replica group index.
        replica: usize,
        /// The request executed twice.
        req_id: u64,
    },
}

#[derive(Default)]
struct CheckerInner {
    /// (committee, height) → first honest commit digest.
    commits: HashMap<(usize, u64), Hash>,
    /// txid → per-shard decision (true = applied / false = discarded).
    twopc: HashMap<u64, HashMap<usize, bool>>,
    /// (committee, replica, lineage) → executed request ids.
    executed: HashMap<(usize, usize, u64), std::collections::HashSet<u64>>,
    /// (committee, replica) → current lineage (bumped on restart/install).
    lineage: HashMap<(usize, usize), u64>,
    violations: Vec<Violation>,
    /// Total honest commit records (liveness cross-check for tests).
    commit_records: u64,
}

/// Global safety oracle shared by every honest replica of a run (clone =
/// handle; the state is reference-counted). See the module docs for the
/// invariants.
#[derive(Clone, Default)]
pub struct SafetyChecker {
    inner: Arc<Mutex<CheckerInner>>,
}

impl std::fmt::Debug for SafetyChecker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("checker lock");
        write!(
            f,
            "SafetyChecker(commits: {}, violations: {})",
            inner.commit_records,
            inner.violations.len()
        )
    }
}

impl SafetyChecker {
    /// A fresh checker with no observations.
    pub fn new() -> Self {
        Self::default()
    }

    /// An honest replica committed (executed) a block: `digest` at
    /// `height` in `committee`. Conflicting digests at one height are the
    /// fork the BFT protocols must make impossible at `f ≤ ⌊(n−1)/3⌋`.
    pub fn record_commit(&self, committee: usize, height: u64, digest: Hash) {
        let mut inner = self.inner.lock().expect("checker lock");
        inner.commit_records += 1;
        match inner.commits.get(&(committee, height)) {
            Some(first) if *first != digest => {
                let a = *first;
                inner.violations.push(Violation::ConflictingCommit {
                    committee,
                    height,
                    a,
                    b: digest,
                });
            }
            Some(_) => {}
            None => {
                inner.commits.insert((committee, height), digest);
            }
        }
    }

    /// An honest replica resolved a *prepared* cross-shard transaction:
    /// `applied = true` for a commit that applied the pending write set,
    /// `false` for an abort that discarded one. No-op deliveries (commit
    /// or abort of a transaction never prepared here) must not be
    /// reported.
    pub fn record_twopc(&self, shard: usize, txid: u64, applied: bool) {
        let mut inner = self.inner.lock().expect("checker lock");
        let decisions = inner.twopc.entry(txid).or_default();
        decisions.insert(shard, applied);
        // Deterministic representatives (lowest shard id per side), so a
        // re-reported decision dedups against the same violation value.
        let committed_in = decisions.iter().filter(|(_, a)| **a).map(|(s, _)| *s).min();
        let aborted_in = decisions.iter().filter(|(_, a)| !**a).map(|(s, _)| *s).min();
        if let (Some(c), Some(a)) = (committed_in, aborted_in) {
            let v = Violation::AtomicityBreak { txid, committed_in: c, aborted_in: a };
            if !inner.violations.contains(&v) {
                inner.violations.push(v);
            }
        }
    }

    /// An honest replica executed request `req_id`. Within one lineage a
    /// repeat is a double execution.
    pub fn record_exec(&self, committee: usize, replica: usize, req_id: u64) {
        let mut inner = self.inner.lock().expect("checker lock");
        let lineage = inner.lineage.get(&(committee, replica)).copied().unwrap_or(0);
        if !inner
            .executed
            .entry((committee, replica, lineage))
            .or_default()
            .insert(req_id)
        {
            inner.violations.push(Violation::DoubleExecution { committee, replica, req_id });
        }
    }

    /// One honest execution, fully observed: exactly-once bookkeeping plus
    /// the 2PC decision, when the executed op resolves a prepared
    /// cross-shard transaction. This is the single entry point every
    /// protocol's exec path reports through (PBFT live path, PBFT WAL
    /// replay, IBFT, Tendermint) — the caller supplies `had_pending`
    /// (whether the shard held a prepared write set *before* executing,
    /// so no-op abort deliveries are not reported) and `committed`
    /// (whether a `Commit` op actually applied).
    pub fn observe_exec(
        &self,
        committee: usize,
        replica: usize,
        req_id: u64,
        op: &ahl_ledger::Op,
        had_pending: bool,
        committed: bool,
    ) {
        self.record_exec(committee, replica, req_id);
        match op {
            ahl_ledger::Op::Commit { txid } if committed => {
                self.record_twopc(committee, txid.0, true);
            }
            ahl_ledger::Op::Abort { txid } if had_pending => {
                self.record_twopc(committee, txid.0, false);
            }
            _ => {}
        }
    }

    /// A replica restarted or installed a full state transfer: it now
    /// legitimately re-executes history, so its exactly-once scope
    /// resets. (Agreement and atomicity records are content-addressed
    /// and survive resets.)
    pub fn record_reset(&self, committee: usize, replica: usize) {
        let mut inner = self.inner.lock().expect("checker lock");
        let lineage = inner.lineage.entry((committee, replica)).or_insert(0);
        *lineage += 1;
        let keep = *lineage;
        inner
            .executed
            .retain(|(c, r, l), _| !(*c == committee && *r == replica && *l < keep));
    }

    /// Every violation recorded so far.
    pub fn violations(&self) -> Vec<Violation> {
        self.inner.lock().expect("checker lock").violations.clone()
    }

    /// Total honest commit records observed (a liveness cross-check:
    /// a "clean" checker that observed nothing proves nothing).
    pub fn commit_records(&self) -> u64 {
        self.inner.lock().expect("checker lock").commit_records
    }

    /// Panic with the full violation list if any invariant broke.
    pub fn assert_clean(&self) {
        let v = self.violations();
        assert!(v.is_empty(), "safety violations recorded: {v:#?}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(b: u8) -> Hash {
        let mut x = [0u8; 32];
        x[0] = b;
        Hash(x)
    }

    #[test]
    fn agreement_conflict_detected() {
        let c = SafetyChecker::new();
        c.record_commit(0, 5, h(1));
        c.record_commit(0, 5, h(1)); // agreeing replica
        c.record_commit(1, 5, h(2)); // other committee, fine
        assert!(c.violations().is_empty());
        c.record_commit(0, 5, h(3));
        assert!(matches!(
            c.violations()[0],
            Violation::ConflictingCommit { committee: 0, height: 5, .. }
        ));
        assert_eq!(c.commit_records(), 4);
    }

    #[test]
    fn atomicity_break_detected_once() {
        let c = SafetyChecker::new();
        c.record_twopc(0, 7, true);
        c.record_twopc(1, 7, true);
        assert!(c.violations().is_empty());
        c.record_twopc(2, 7, false);
        c.record_twopc(2, 7, false); // duplicate report, one violation
        assert_eq!(c.violations().len(), 1);
        assert!(matches!(c.violations()[0], Violation::AtomicityBreak { txid: 7, .. }));
    }

    #[test]
    fn double_execution_detected_and_lineage_resets() {
        let c = SafetyChecker::new();
        c.record_exec(0, 1, 42);
        c.record_exec(0, 2, 42); // other replica, fine
        assert!(c.violations().is_empty());
        c.record_exec(0, 1, 42);
        assert!(matches!(
            c.violations()[0],
            Violation::DoubleExecution { committee: 0, replica: 1, req_id: 42 }
        ));
        // A restart opens a fresh lineage: replay is not a double-spend.
        c.record_reset(0, 2);
        c.record_exec(0, 2, 42);
        assert_eq!(c.violations().len(), 1);
    }

    #[test]
    fn equivocation_halves_are_deterministic() {
        assert_eq!(equivocation_half(2), 0);
        assert_eq!(equivocation_half(3), 1);
    }
}
