//! Istanbul BFT as integrated in Quorum (Figure 2 baseline).
//!
//! Three-phase (pre-prepare / prepare / commit) like PBFT, but — as the
//! paper observes in Appendix C.2 — **lockstep**: the proposer for height
//! h+1 is selected round-robin and only proposes after h is finalized, and
//! Quorum inserts a block period between blocks. Transactions execute in
//! the EVM with Merkle-tree updates, which the paper identifies as the
//! other reason Quorum trails Tendermint's bare key-value store.
//!
//! Round changes replace a stalled proposer. The documented IBFT locking
//! bug (locks not always released, occasionally deadlocking Quorum) is
//! reproducible via [`IbftConfig::sticky_locks`].

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use ahl_crypto::{sha256_parts, Hash};
use ahl_ledger::StateStore;
use ahl_mempool::{Mempool, MempoolConfig};
use ahl_simkit::{Actor, Ctx, MsgClass, NodeId, Phase, Scope, SimDuration};

use crate::adversary::{
    self, commit_digest, Attack, EquivocationTracker, SafetyChecker, VoteAttackPlan,
};
use crate::clients::ClientProtocol;
use crate::common::{stat, Request};

/// IBFT wire messages.
#[derive(Clone, Debug)]
pub enum IbftMsg {
    /// Client → node: transaction submission (RPC).
    Request(Request),
    /// Node → all: transaction gossip.
    GossipTx(Request),
    /// Proposer → all: block proposal.
    PrePrepare {
        /// Height ("sequence" in IBFT terms).
        height: u64,
        /// Round.
        round: u32,
        /// Transactions.
        block: Arc<Vec<Request>>,
        /// Digest.
        digest: Hash,
        /// Proposer index.
        proposer: usize,
    },
    /// Prepare vote.
    Prepare {
        /// Height.
        height: u64,
        /// Round.
        round: u32,
        /// Digest.
        digest: Hash,
        /// Voter.
        replica: usize,
    },
    /// Commit vote.
    Commit {
        /// Height.
        height: u64,
        /// Round.
        round: u32,
        /// Digest.
        digest: Hash,
        /// Voter.
        replica: usize,
    },
    /// Round-change vote.
    RoundChange {
        /// Height.
        height: u64,
        /// Proposed round.
        round: u32,
        /// Voter.
        replica: usize,
    },
    /// Reply to client.
    Reply {
        /// Request id.
        req_id: u64,
        /// Commit status.
        committed: bool,
    },
}

impl IbftMsg {
    /// Queue class.
    pub fn class(&self) -> MsgClass {
        match self {
            IbftMsg::Request(_) | IbftMsg::GossipTx(_) | IbftMsg::Reply { .. } => MsgClass::REQUEST,
            _ => MsgClass::CONSENSUS,
        }
    }

    /// Approximate wire size.
    pub fn wire_size(&self) -> usize {
        match self {
            IbftMsg::Request(r) | IbftMsg::GossipTx(r) => 250 + r.op.wire_size(),
            IbftMsg::PrePrepare { block, .. } => {
                120 + block.iter().map(|r| 64 + r.op.wire_size()).sum::<usize>()
            }
            IbftMsg::Prepare { .. } | IbftMsg::Commit { .. } | IbftMsg::RoundChange { .. } => 120,
            IbftMsg::Reply { .. } => 100,
        }
    }
}

impl ClientProtocol for IbftMsg {
    fn make_request(req: Request) -> Self {
        IbftMsg::Request(req)
    }
    fn reply_id(&self) -> Option<u64> {
        match self {
            IbftMsg::Reply { req_id, .. } => Some(*req_id),
            _ => None,
        }
    }
}

/// IBFT node configuration.
#[derive(Clone, Debug)]
pub struct IbftConfig {
    /// Committee size (N = 3f + 1).
    pub n: usize,
    /// Max transactions per block (gas-limit analogue).
    pub max_block_txns: usize,
    /// Block period (Quorum default 1 s).
    pub block_period: SimDuration,
    /// Round-change timeout.
    pub round_timeout: SimDuration,
    /// Signature cost.
    pub sign_cost: SimDuration,
    /// Verification cost.
    pub verify_cost: SimDuration,
    /// RPC ingest cost.
    pub ingest_cost: SimDuration,
    /// EVM execution + Merkle update cost per state access (the paper:
    /// "a transaction in Quorum is expensive because of its execution in
    /// the EVM and updates to various Merkle trees").
    pub exec_cost_per_op: SimDuration,
    /// Reproduce the observed Quorum lock-release bug: locks survive round
    /// changes and can deadlock a height.
    pub sticky_locks: bool,
    /// Per-node transaction pool (capacity + admission policy).
    pub mempool: MempoolConfig,
    /// Pool eviction/ordering seed (set per node by `build_ibft_group` so
    /// it derives from the run seed).
    pub pool_seed: u64,
    /// Number of Byzantine validators (the highest indices).
    pub byzantine: usize,
    /// What the Byzantine validators do (see [`Attack`]; equivocation
    /// fires whenever a Byzantine validator's proposer turn comes up).
    pub attack: Attack,
    /// Global safety oracle honest validators report commits into.
    pub safety: Option<SafetyChecker>,
    /// This committee's id in the checker's records.
    pub committee_id: usize,
    /// Worker threads for block execution (`1` = the sequential loop;
    /// above that the batch goes through the deterministic conflict-aware
    /// engine with byte-identical results).
    pub exec_workers: usize,
    /// Re-derive every cached hash of the authenticated index across the
    /// worker pool every this-many committed heights when
    /// `exec_workers > 1` (the same paranoia audit PBFT runs at each
    /// checkpoint; IBFT has no checkpoint machinery, so the cadence is
    /// its own knob).
    pub audit_interval: u64,
}

impl IbftConfig {
    /// Defaults matching the Figure 2 comparison.
    pub fn new(n: usize) -> Self {
        IbftConfig {
            n,
            max_block_txns: 500,
            block_period: SimDuration::from_secs(1),
            round_timeout: SimDuration::from_secs(3),
            sign_cost: SimDuration::from_micros(150),
            verify_cost: SimDuration::from_micros(200),
            ingest_cost: SimDuration::from_millis(1),
            exec_cost_per_op: SimDuration::from_micros(500),
            sticky_locks: false,
            mempool: MempoolConfig::default(),
            pool_seed: 0,
            byzantine: 0,
            attack: Attack::default(),
            safety: None,
            committee_id: 0,
            exec_workers: 1,
            audit_interval: 128,
        }
    }

    /// Byzantine quorum (2f + 1).
    pub fn quorum(&self) -> usize {
        2 * ((self.n.saturating_sub(1)) / 3) + 1
    }

    /// Whether validator `i` is Byzantine (highest indices).
    pub fn is_byzantine(&self, i: usize) -> bool {
        self.byzantine > 0 && i >= self.n - self.byzantine
    }
}

const TIMER_ROUND: u64 = 1;
const TIMER_PERIOD: u64 = 2;

/// Proposals buffered by (height, round).
type ProposalBuf = HashMap<(u64, u32), (Hash, Arc<Vec<Request>>)>;

/// An IBFT validator.
pub struct IbftNode {
    cfg: IbftConfig,
    group: Vec<NodeId>,
    me: usize,
    reporter: bool,

    height: u64,
    round: u32,
    proposal: Option<(Hash, Arc<Vec<Request>>)>,
    locked: Option<(Hash, Arc<Vec<Request>>)>,
    /// Buffered proposals for heights/rounds not yet entered.
    proposal_buf: ProposalBuf,
    prepares: HashMap<(u64, u32), HashMap<Hash, HashSet<usize>>>,
    commits: HashMap<(u64, u32), HashMap<Hash, HashSet<usize>>>,
    round_changes: HashMap<(u64, u32), HashSet<usize>>,
    sent_prepare: HashSet<(u64, u32)>,
    sent_commit: HashSet<(u64, u32)>,
    epoch: u64,
    /// Between finalization and the block-period expiry: no proposing.
    waiting_period: bool,

    pool: Mempool<Request>,
    executed: HashSet<u64>,
    state: StateStore,

    byzantine: bool,
    /// Stale-replay attack state: previous (prepare, commit) votes.
    stale_votes: [Option<IbftMsg>; 2],
    /// Equivocation-collusion state (shared double-signing bookkeeping).
    byz_equiv: EquivocationTracker,
}

impl IbftNode {
    /// Create a validator.
    pub fn new(cfg: IbftConfig, group: Vec<NodeId>, me: usize, reporter: bool) -> Self {
        let pool = Mempool::new(cfg.mempool.clone(), cfg.pool_seed ^ me as u64);
        IbftNode {
            byzantine: cfg.is_byzantine(me),
            stale_votes: [None, None],
            byz_equiv: EquivocationTracker::new(),
            cfg,
            group,
            me,
            reporter,
            height: 1,
            round: 0,
            proposal: None,
            locked: None,
            proposal_buf: HashMap::new(),
            prepares: HashMap::new(),
            commits: HashMap::new(),
            round_changes: HashMap::new(),
            sent_prepare: HashSet::new(),
            sent_commit: HashSet::new(),
            epoch: 0,
            waiting_period: false,
            pool,
            executed: HashSet::new(),
            state: StateStore::new(),
        }
    }

    /// Current height (post-run inspection).
    pub fn height(&self) -> u64 {
        self.height
    }

    fn proposer(&self, height: u64, round: u32) -> usize {
        // Quorum IBFT rotates the proposer every block and every round.
        ((height + round as u64) % self.cfg.n as u64) as usize
    }

    fn others(&self) -> Vec<NodeId> {
        let mine = self.group[self.me];
        self.group.iter().copied().filter(|&g| g != mine).collect()
    }

    fn charge(&self, ctx: &mut Ctx<'_, IbftMsg>, d: SimDuration) {
        ctx.consume_cpu(d);
        ctx.stats().inc(stat::CONSENSUS_CPU_NS, d.as_nanos());
    }

    fn enter_round(&mut self, ctx: &mut Ctx<'_, IbftMsg>) {
        // Keep the previous round's proposal: a commit quorum for it may
        // still complete after the round change.
        if let Some((d, b)) = self.proposal.take() {
            self.proposal_buf.entry((self.height, self.round)).or_insert((d, b));
        }
        self.waiting_period = false;
        self.epoch += 1;
        ctx.set_timer(self.cfg.round_timeout, TIMER_ROUND | (self.epoch << 8));
        let key = (self.height, self.round);
        if let Some((digest, block)) = self.proposal_buf.remove(&key) {
            let lock_conflict = matches!(&self.locked, Some((d, _)) if *d != digest);
            if !lock_conflict {
                self.proposal = Some((digest, block));
                self.send_prepare(digest, ctx);
            }
        }
        if self.proposer(self.height, self.round) == self.me && self.proposal.is_none() {
            self.propose(ctx);
        }
        self.recheck_votes(ctx);
    }

    /// Quorums may already exist from early-arriving votes.
    fn recheck_votes(&mut self, ctx: &mut Ctx<'_, IbftMsg>) {
        let key = (self.height, self.round);
        if let Some(by_digest) = self.prepares.get(&key) {
            let ready: Vec<Hash> = by_digest
                .iter()
                .filter(|(_, v)| v.len() >= self.cfg.quorum())
                .map(|(d, _)| *d)
                .collect();
            for d in ready {
                self.record_prepare(key, d, self.me, ctx);
            }
        }
        self.try_finalize_any_round(ctx);
    }

    /// Finalize from a commit quorum at any round of the current height
    /// (nodes that raced past the deciding round must still finalize).
    fn try_finalize_any_round(&mut self, ctx: &mut Ctx<'_, IbftMsg>) {
        let h = self.height;
        let quorum = self.cfg.quorum();
        let mut decided: Option<(Hash, u32)> = None;
        for ((hh, r), by_digest) in &self.commits {
            if *hh != h {
                continue;
            }
            for (d, votes) in by_digest {
                if votes.len() >= quorum {
                    decided = Some((*d, *r));
                    break;
                }
            }
            if decided.is_some() {
                break;
            }
        }
        let Some((digest, round)) = decided else { return };
        let block = match (&self.proposal, &self.locked) {
            (Some((d, b)), _) if *d == digest => Some(b.clone()),
            (_, Some((d, b))) if *d == digest => Some(b.clone()),
            _ => {
                let _ = round;
                self.proposal_buf
                    .iter()
                    .find(|((hh, _), (d, _))| *hh == h && *d == digest)
                    .map(|(_, (_, b))| b.clone())
            }
        };
        if let Some(block) = block {
            self.finalize(block, ctx);
        }
    }

    /// Double-sign equivocation (proposer side): two conflicting blocks
    /// for the same (height, round), lower digest to committee half 0,
    /// higher to half 1, both to Byzantine colleagues, plus the
    /// proposer's own per-half votes. Forks exactly when f > ⌊(n−1)/3⌋.
    fn equivocate_propose(&mut self, block: Arc<Vec<Request>>, ctx: &mut Ctx<'_, IbftMsg>) {
        let (height, round, me) = (self.height, self.round, self.me);
        self.charge(ctx, self.cfg.sign_cost);
        let (group, cfg) = (&self.group, &self.cfg);
        adversary::equivocate_propose(
            block,
            |b| digest_of(height, round, b),
            cfg.n,
            me,
            |g| cfg.is_byzantine(g),
            |g, digest, blk| {
                let peer = group[g];
                ctx.send(
                    peer,
                    IbftMsg::PrePrepare { height, round, block: blk.clone(), digest, proposer: me },
                );
                ctx.send(peer, IbftMsg::Prepare { height, round, digest, replica: me });
                ctx.send(peer, IbftMsg::Commit { height, round, digest, replica: me });
            },
        );
    }

    /// Double-sign equivocation (colluding voter side).
    fn equivocate_echo(&mut self, height: u64, round: u32, digest: Hash, ctx: &mut Ctx<'_, IbftMsg>) {
        let Some(targets) = adversary::equivocation_echo_targets(
            &mut self.byz_equiv,
            height,
            round,
            digest,
            self.cfg.n,
            self.me,
        ) else {
            return;
        };
        self.charge(ctx, self.cfg.sign_cost);
        let me = self.me;
        let targets: Vec<NodeId> = targets.into_iter().map(|g| self.group[g]).collect();
        ctx.multicast(targets.clone(), IbftMsg::Prepare { height, round, digest, replica: me });
        ctx.multicast(targets, IbftMsg::Commit { height, round, digest, replica: me });
    }

    /// Byzantine vote emission, dispatched by the configured [`Attack`]
    /// through the shared [`adversary::byzantine_vote`] planner.
    fn byzantine_vote(&mut self, prepare: bool, digest: Hash, ctx: &mut Ctx<'_, IbftMsg>) {
        let (height, round, me) = (self.height, self.round, self.me);
        let make = |digest: Hash| {
            if prepare {
                IbftMsg::Prepare { height, round, digest, replica: me }
            } else {
                IbftMsg::Commit { height, round, digest, replica: me }
            }
        };
        let plan = adversary::byzantine_vote(
            self.cfg.attack,
            &mut self.stale_votes,
            prepare,
            digest,
            self.cfg.n,
            me,
            make,
        );
        match plan {
            VoteAttackPlan::Silent | VoteAttackPlan::Replay(None) => {}
            VoteAttackPlan::Replay(Some(stale)) => {
                ctx.stats().inc("adv.stale_replays", 1);
                self.charge(ctx, self.cfg.sign_cost);
                ctx.multicast(self.others(), stale);
            }
            VoteAttackPlan::Corrupt(votes) => {
                self.charge(ctx, self.cfg.sign_cost);
                for (g, vote) in votes {
                    ctx.send(self.group[g], vote);
                }
            }
        }
    }

    fn propose(&mut self, ctx: &mut Ctx<'_, IbftMsg>) {
        if self.waiting_period {
            return;
        }
        // A validator locked on a block must re-propose it.
        let block: Arc<Vec<Request>> = if let Some((_, b)) = &self.locked {
            b.clone()
        } else {
            let now = ctx.now();
            Arc::new(self.pool.take_batch(
                self.cfg.max_block_txns,
                usize::MAX,
                now,
                ctx.stats(),
            ))
        };
        if block.is_empty() {
            return;
        }
        if self.byzantine && self.cfg.attack == Attack::Equivocate {
            self.equivocate_propose(block, ctx);
            return;
        }
        for r in block.iter() {
            ctx.trace(r.id, Phase::Propose);
        }
        let digest = digest_of(self.height, self.round, &block);
        self.charge(ctx, self.cfg.sign_cost);
        ctx.multicast(
            self.others(),
            IbftMsg::PrePrepare {
                height: self.height,
                round: self.round,
                block: block.clone(),
                digest,
                proposer: self.me,
            },
        );
        self.proposal = Some((digest, block));
        self.send_prepare(digest, ctx);
    }

    fn send_prepare(&mut self, digest: Hash, ctx: &mut Ctx<'_, IbftMsg>) {
        let key = (self.height, self.round);
        if !self.sent_prepare.insert(key) {
            return;
        }
        if self.byzantine {
            self.byzantine_vote(true, digest, ctx);
            return;
        }
        self.charge(ctx, self.cfg.sign_cost);
        ctx.multicast(
            self.others(),
            IbftMsg::Prepare { height: key.0, round: key.1, digest, replica: self.me },
        );
        self.record_prepare(key, digest, self.me, ctx);
    }

    fn record_prepare(&mut self, key: (u64, u32), digest: Hash, who: usize, ctx: &mut Ctx<'_, IbftMsg>) {
        let votes = self.prepares.entry(key).or_default().entry(digest).or_default();
        votes.insert(who);
        if votes.len() >= self.cfg.quorum() && key == (self.height, self.round) {
            // Lock on the prepared block.
            if let Some((d, b)) = &self.proposal {
                if *d == digest {
                    self.locked = Some((digest, b.clone()));
                }
            }
            self.send_commit(digest, ctx);
        }
    }

    fn send_commit(&mut self, digest: Hash, ctx: &mut Ctx<'_, IbftMsg>) {
        let key = (self.height, self.round);
        if !self.sent_commit.insert(key) {
            return;
        }
        if self.byzantine {
            self.byzantine_vote(false, digest, ctx);
            return;
        }
        self.charge(ctx, self.cfg.sign_cost);
        ctx.multicast(
            self.others(),
            IbftMsg::Commit { height: key.0, round: key.1, digest, replica: self.me },
        );
        self.record_commit(key, digest, self.me, ctx);
    }

    fn record_commit(&mut self, key: (u64, u32), digest: Hash, who: usize, ctx: &mut Ctx<'_, IbftMsg>) {
        let votes = self.commits.entry(key).or_default().entry(digest).or_default();
        votes.insert(who);
        if votes.len() >= self.cfg.quorum() && key == (self.height, self.round) {
            let block = match (&self.proposal, &self.locked) {
                (Some((d, b)), _) if *d == digest => Some(b.clone()),
                (_, Some((d, b))) if *d == digest => Some(b.clone()),
                _ => None,
            };
            if let Some(b) = block {
                self.finalize(b, ctx);
            }
        }
    }

    fn finalize(&mut self, block: Arc<Vec<Request>>, ctx: &mut Ctx<'_, IbftMsg>) {
        let _prof = ahl_telemetry::Profiler::span("ibft.exec");
        let mut committed = 0u64;
        let mut weight = 0usize;
        let checker = if self.byzantine { None } else { self.cfg.safety.clone() };
        // Pre-pass admission, conflict-aware batch execution, post-pass
        // observation — same canonical order and outputs as the old
        // per-request loop (`exec_workers <= 1` is that loop).
        let mut fresh = Vec::with_capacity(block.len());
        for req in block.iter() {
            if !self.executed.insert(req.id) {
                continue;
            }
            self.pool.remove(req.id);
            weight += req.op.weight();
            fresh.push(req);
        }
        let ops: Vec<&ahl_ledger::Op> = fresh.iter().map(|r| &r.op).collect();
        let outcomes = ahl_ledger::execute_ops(&mut self.state, &ops, self.cfg.exec_workers);
        for (req, outcome) in fresh.iter().zip(outcomes) {
            let had_pending = outcome.had_pending;
            let receipt = outcome.receipt;
            if let Some(ck) = &checker {
                ck.observe_exec(
                    self.cfg.committee_id,
                    self.me,
                    req.id,
                    &req.op,
                    had_pending,
                    receipt.status.is_committed(),
                );
            }
            ctx.trace(req.id, Phase::Exec);
            if receipt.status.is_committed() {
                committed += 1;
            }
            if self.reporter {
                let lat = ctx.now().since(req.submitted);
                let scope = Scope::committee(self.cfg.committee_id);
                ctx.stats().record_latency_scoped(stat::TXN_LATENCY, scope, lat);
            }
        }
        if let Some(ck) = &checker {
            let digest = commit_digest(block.iter().map(|r| r.id));
            ck.record_commit(self.cfg.committee_id, self.height, digest);
        }
        // EVM + Merkle-tree execution cost.
        let exec = self.cfg.exec_cost_per_op.saturating_mul(weight as u64);
        ctx.consume_cpu(exec);
        ctx.stats().inc(stat::EXEC_CPU_NS, exec.as_nanos());
        if self.reporter {
            let now = ctx.now();
            let scope = Scope::committee(self.cfg.committee_id);
            ctx.stats().inc_scoped(stat::TXN_COMMITTED, scope, committed);
            ctx.stats().inc_scoped(stat::BLOCKS_COMMITTED, scope, 1);
            ctx.stats().record_point(stat::COMMIT_SERIES, now, committed as f64);
        }
        self.height += 1;
        // Parallel-execution paranoia, mirroring the PBFT checkpoint-time
        // audit: periodically re-derive every cached hash of the
        // authenticated index across the worker pool and compare. Proven
        // equivalent to sequential execution, so a hit means engine
        // corruption — count it loudly, don't mask it.
        if self.cfg.exec_workers > 1
            && self.cfg.audit_interval > 0
            && self.height.is_multiple_of(self.cfg.audit_interval)
            && !self.state.rehash_audit(self.cfg.exec_workers)
        {
            ctx.stats().inc(stat::CKPT_AUDIT_FAILURES, 1);
        }
        self.round = 0;
        if !self.cfg.sticky_locks {
            self.locked = None;
        }
        self.proposal = None;
        let h = self.height;
        self.prepares.retain(|(hh, _), _| *hh >= h);
        self.commits.retain(|(hh, _), _| *hh >= h);
        self.round_changes.retain(|(hh, _), _| *hh >= h);
        self.sent_prepare.retain(|(hh, _)| *hh >= h);
        self.sent_commit.retain(|(hh, _)| *hh >= h);
        self.proposal_buf.retain(|(hh, _), _| *hh >= h);
        self.epoch += 1;
        self.waiting_period = true;
        ctx.set_timer(self.cfg.block_period, TIMER_PERIOD | (self.epoch << 8));
    }

    fn pool_tx(&mut self, req: Request, ctx: &mut Ctx<'_, IbftMsg>) {
        if self.executed.contains(&req.id) {
            return;
        }
        let now = ctx.now();
        let _ = self.pool.insert(req, now, ctx.stats());
    }
}

fn digest_of(height: u64, round: u32, block: &[Request]) -> Hash {
    let mut parts: Vec<Vec<u8>> = vec![
        b"ibft-block".to_vec(),
        height.to_be_bytes().to_vec(),
        round.to_be_bytes().to_vec(),
    ];
    for r in block {
        parts.push(r.id.to_be_bytes().to_vec());
    }
    let refs: Vec<&[u8]> = parts.iter().map(Vec::as_slice).collect();
    sha256_parts(&refs)
}

impl Actor for IbftNode {
    type Msg = IbftMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, IbftMsg>) {
        self.enter_round(ctx);
    }

    fn on_message(&mut self, _from: NodeId, msg: IbftMsg, ctx: &mut Ctx<'_, IbftMsg>) {
        match msg {
            IbftMsg::Request(req) => {
                self.charge(ctx, self.cfg.ingest_cost);
                // Client-facing ingest on the contacted replica only (the
                // gossip fan-out below doesn't re-stamp), so the liveness
                // oracle sees each request admitted exactly once.
                ctx.trace(req.id, Phase::Ingest);
                ctx.multicast(self.others(), IbftMsg::GossipTx(req.clone()));
                let id = req.id;
                self.pool_tx(req, ctx);
                ctx.trace(id, Phase::Admit);
                if self.proposer(self.height, self.round) == self.me && self.proposal.is_none() {
                    self.propose(ctx);
                }
            }
            IbftMsg::GossipTx(req) => {
                self.charge(ctx, self.cfg.verify_cost);
                self.pool_tx(req, ctx);
                if self.proposer(self.height, self.round) == self.me && self.proposal.is_none() {
                    self.propose(ctx);
                }
            }
            IbftMsg::PrePrepare { height, round, block, digest, proposer } => {
                if height < self.height || proposer != self.proposer(height, round) {
                    return;
                }
                self.charge(ctx, self.cfg.verify_cost);
                // A colluding equivocator first emits its two-faced echo
                // votes, then keeps processing like everyone else — it
                // must track the committee's height (via the observed
                // quorums) or its own proposer turns would equivocate at
                // a stale height nobody accepts. Its honest-path votes
                // stay suppressed by `byzantine_vote`.
                if self.byzantine && self.cfg.attack == Attack::Equivocate {
                    self.equivocate_echo(height, round, digest, ctx);
                }
                if (height, round) != (self.height, self.round) {
                    self.proposal_buf.insert((height, round), (digest, block));
                    return;
                }
                // A validator locked on a different block refuses the
                // proposal (sticky_locks reproduces the deadlock).
                if let Some((locked_digest, _)) = &self.locked {
                    if *locked_digest != digest {
                        ctx.stats().inc("ibft.lock_refusals", 1);
                        return;
                    }
                }
                self.proposal = Some((digest, block));
                self.send_prepare(digest, ctx);
                self.recheck_votes(ctx);
            }
            IbftMsg::Prepare { height, round, digest, replica } => {
                if height < self.height {
                    return;
                }
                self.charge(ctx, self.cfg.verify_cost);
                self.prepares.entry((height, round)).or_default().entry(digest).or_default().insert(replica);
                if (height, round) == (self.height, self.round) {
                    self.record_prepare((height, round), digest, replica, ctx);
                }
            }
            IbftMsg::Commit { height, round, digest, replica } => {
                if height < self.height {
                    return;
                }
                self.charge(ctx, self.cfg.verify_cost);
                self.commits.entry((height, round)).or_default().entry(digest).or_default().insert(replica);
                if (height, round) == (self.height, self.round) {
                    self.record_commit((height, round), digest, replica, ctx);
                } else if height == self.height {
                    self.try_finalize_any_round(ctx);
                }
            }
            IbftMsg::RoundChange { height, round, replica } => {
                if height != self.height || round <= self.round {
                    return;
                }
                self.charge(ctx, self.cfg.verify_cost);
                let votes = self.round_changes.entry((height, round)).or_default();
                votes.insert(replica);
                if votes.len() >= self.cfg.quorum() {
                    self.round = round;
                    ctx.stats().inc("ibft.round_changes", 1);
                    self.enter_round(ctx);
                }
            }
            IbftMsg::Reply { .. } => {}
        }
    }

    fn on_timer(&mut self, kind: u64, ctx: &mut Ctx<'_, IbftMsg>) {
        if (kind >> 8) != self.epoch {
            return;
        }
        match kind & 0xff {
            TIMER_ROUND => {
                // Stalled: vote for a round change.
                let next = self.round + 1;
                self.charge(ctx, self.cfg.sign_cost);
                ctx.multicast(
                    self.others(),
                    IbftMsg::RoundChange { height: self.height, round: next, replica: self.me },
                );
                let votes = self.round_changes.entry((self.height, next)).or_default();
                votes.insert(self.me);
                if votes.len() >= self.cfg.quorum() {
                    self.round = next;
                    self.enter_round(ctx);
                } else {
                    // Re-arm while waiting for quorum.
                    self.epoch += 1;
                    ctx.set_timer(self.cfg.round_timeout, TIMER_ROUND | (self.epoch << 8));
                }
            }
            TIMER_PERIOD => self.enter_round(ctx),
            _ => {}
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// Build an IBFT committee simulation (clients added by caller).
pub fn build_ibft_group(
    cfg: &IbftConfig,
    network: Box<dyn ahl_simkit::Network>,
    uplink_bps: Option<f64>,
    seed: u64,
) -> (ahl_simkit::Sim<IbftMsg>, Vec<NodeId>) {
    fn classify(m: &IbftMsg) -> MsgClass {
        m.class()
    }
    fn size_of(m: &IbftMsg) -> usize {
        m.wire_size()
    }
    let mut sim_cfg = ahl_simkit::SimConfig::new(seed);
    sim_cfg.network = network;
    sim_cfg.classify = classify;
    sim_cfg.size_of = size_of;
    sim_cfg.uplink_bps = uplink_bps;
    let mut sim = ahl_simkit::Sim::new(sim_cfg);
    let group: Vec<NodeId> = (0..cfg.n).collect();
    for i in 0..cfg.n {
        let mut ncfg = cfg.clone();
        ncfg.pool_seed = ahl_simkit::rng::derive_seed(seed, 0x1BF7_0000 | i as u64);
        let node = IbftNode::new(ncfg, group.clone(), i, i == 0);
        sim.add_actor(Box::new(node), ahl_simkit::QueueConfig::shared(8192));
    }
    (sim, group)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clients::OpenLoopClient;
    use ahl_ledger::{kvstore, Op, TxId};
    use ahl_simkit::{QueueConfig, SimTime, UniformNetwork};

    fn run_ibft(n: usize, secs: u64) -> (u64, u64) {
        run_ibft_cfg(IbftConfig::new(n), secs).0
    }

    fn run_ibft_cfg(cfg: IbftConfig, secs: u64) -> ((u64, u64), u64) {
        let net = Box::new(UniformNetwork::new(SimDuration::from_micros(300)));
        let (mut sim, group) = build_ibft_group(&cfg, net, Some(1e9), 23);
        let stop = SimTime::ZERO + SimDuration::from_secs(secs);
        let mut i = 0u64;
        let factory = Box::new(move |_r: &mut rand::rngs::SmallRng| {
            i += 1;
            Op::Direct { txid: TxId(i), op: kvstore::kv_write(&[i % 50], 16) }
        });
        let client = OpenLoopClient::new(group.clone(), SimDuration::from_millis(3), stop, factory);
        sim.add_actor(Box::new(client), QueueConfig::unbounded());
        sim.run_until(stop + SimDuration::from_secs(3));
        (
            (
                sim.stats().counter(stat::TXN_COMMITTED),
                sim.stats().counter(stat::BLOCKS_COMMITTED),
            ),
            sim.stats().counter(stat::CKPT_AUDIT_FAILURES),
        )
    }

    /// With parallel block execution the per-height rehash audit must run
    /// (and pass) without perturbing commits: parallel execution is
    /// byte-identical to sequential by contract.
    #[test]
    fn parallel_exec_audit_stays_clean() {
        let mut cfg = IbftConfig::new(4);
        cfg.exec_workers = 4;
        cfg.audit_interval = 1; // audit at every committed height
        let ((committed, blocks), audit_failures) = run_ibft_cfg(cfg, 5);
        let (seq_committed, seq_blocks) = run_ibft(4, 5);
        assert_eq!((committed, blocks), (seq_committed, seq_blocks), "workers leaked into sim");
        assert!(committed > 500, "committed {committed}");
        assert_eq!(audit_failures, 0, "hash-cache divergence under parallel execution");
    }

    #[test]
    fn commits_transactions() {
        let (committed, blocks) = run_ibft(4, 5);
        assert!(committed > 500, "committed {committed}");
        assert!(blocks >= 4);
    }

    #[test]
    fn lockstep_block_rate() {
        let (_, blocks) = run_ibft(4, 6);
        assert!(blocks <= 8, "blocks {blocks}");
    }

    #[test]
    fn evm_execution_is_heavier_than_tendermint() {
        // Same offered load, IBFT spends far more execution CPU.
        let cfg = IbftConfig::new(4);
        assert!(cfg.exec_cost_per_op > crate::tendermint::TmConfig::new(4).exec_cost_per_op);
    }

    #[test]
    fn nodes_reach_same_height() {
        let cfg = IbftConfig::new(4);
        let net = Box::new(UniformNetwork::new(SimDuration::from_micros(300)));
        let (mut sim, group) = build_ibft_group(&cfg, net, Some(1e9), 5);
        let stop = SimTime::ZERO + SimDuration::from_secs(4);
        let mut i = 0u64;
        let factory = Box::new(move |_r: &mut rand::rngs::SmallRng| {
            i += 1;
            Op::Direct { txid: TxId(i), op: kvstore::kv_write(&[i], 16) }
        });
        let client = OpenLoopClient::new(group.clone(), SimDuration::from_millis(5), stop, factory);
        sim.add_actor(Box::new(client), QueueConfig::unbounded());
        sim.run_until(stop + SimDuration::from_secs(5));
        let heights: Vec<u64> = group
            .iter()
            .map(|&id| {
                sim.actor(id)
                    .as_any()
                    .expect("inspectable")
                    .downcast_ref::<IbftNode>()
                    .expect("ibft node")
                    .height()
            })
            .collect();
        let max = *heights.iter().max().expect("non-empty");
        let min = *heights.iter().min().expect("non-empty");
        assert!(max > 1);
        assert!(max - min <= 1, "heights {heights:?}");
    }
}
