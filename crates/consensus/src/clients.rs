//! Benchmark client drivers (BLOCKBENCH-style, §7).
//!
//! * [`OpenLoopClient`] — submits at a fixed rate regardless of completion
//!   (the paper's single-shard driver).
//! * [`ClosedLoopClient`] — maintains a window of outstanding requests and
//!   issues a new one per completion (the paper's multi-shard driver, with
//!   128 outstanding requests per client).
//!
//! Clients are generic over the protocol message type through
//! [`ClientProtocol`], so every consensus implementation reuses them.

use ahl_simkit::{Actor, Ctx, NodeId, SimDuration, SimTime};
use std::collections::HashSet;

use crate::common::{stat, OpFactory, Request};

/// Adapter between generic clients and a concrete protocol message type.
pub trait ClientProtocol: Clone {
    /// Wrap a request for submission to a replica.
    fn make_request(req: Request) -> Self;
    /// If this message is a reply to a request, its request id.
    fn reply_id(&self) -> Option<u64>;
    /// If this message is an admission-control rejection (pool
    /// backpressure), the refused request's id. Protocols without a
    /// mempool rejection signal keep the default.
    fn reject_id(&self) -> Option<u64> {
        None
    }
}

const TIMER_SEND: u64 = 1;

/// Open-loop driver: issues one request every `interval`, round-robin over
/// `targets`, without waiting for completions.
pub struct OpenLoopClient<M> {
    targets: Vec<NodeId>,
    interval: SimDuration,
    factory: OpFactory,
    stop_at: SimTime,
    seq: u32,
    next_target: usize,
    _marker: std::marker::PhantomData<M>,
}

impl<M> OpenLoopClient<M> {
    /// Create a driver submitting to `targets` every `interval` until
    /// `stop_at`, generating operations from `factory`.
    pub fn new(
        targets: Vec<NodeId>,
        interval: SimDuration,
        stop_at: SimTime,
        factory: OpFactory,
    ) -> Self {
        assert!(!targets.is_empty(), "need at least one target replica");
        OpenLoopClient {
            targets,
            interval,
            factory,
            stop_at,
            seq: 0,
            next_target: 0,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<M: ClientProtocol + 'static> Actor for OpenLoopClient<M> {
    type Msg = M;

    fn on_start(&mut self, ctx: &mut Ctx<'_, M>) {
        // Stagger client start within one interval to avoid phase lock.
        let jitter = SimDuration::from_nanos(
            (ctx.id() as u64).wrapping_mul(7_919) % self.interval.as_nanos().max(1),
        );
        ctx.set_timer(jitter, TIMER_SEND);
    }

    fn on_message(&mut self, _from: NodeId, _msg: M, ctx: &mut Ctx<'_, M>) {
        // Open-loop: replies (if any) are ignored beyond accounting.
        ctx.stats().inc("client.replies", 1);
    }

    fn on_timer(&mut self, kind: u64, ctx: &mut Ctx<'_, M>) {
        if kind != TIMER_SEND || ctx.now() >= self.stop_at {
            return;
        }
        let op = (self.factory)(ctx.rng());
        let req = Request {
            id: Request::make_id(ctx.id(), self.seq),
            client: ctx.id(),
            op,
            submitted: ctx.now(),
        };
        self.seq = self.seq.wrapping_add(1);
        let target = self.targets[self.next_target % self.targets.len()];
        self.next_target += 1;
        ctx.trace(req.id, ahl_simkit::Phase::Submit);
        ctx.send(target, M::make_request(req));
        ctx.stats().inc("client.submitted", 1);
        ctx.set_timer(self.interval, TIMER_SEND);
    }
}

const TIMER_RETRY: u64 = 2;

/// How a driver reacts to pool backpressure (`Rejected` notices). Shared
/// by every client flavour (closed-loop, cross-shard) through
/// [`AimdWindow`], so the policy semantics cannot drift between them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RateControl {
    /// Keep the window fixed; rejected slots refill on the retry timer
    /// (an implicit one-interval backoff). Under sustained overload the
    /// driver keeps offering the same load and eats rejections.
    #[default]
    Fixed,
    /// Pool-aware AIMD: a rejection halves the effective window
    /// (multiplicative decrease), a completion grows it by `1/window`
    /// (additive increase, ≈ +1 per window per round trip) back toward
    /// the configured maximum — the offered load converges onto what the
    /// pools admit instead of hammering them.
    Aimd,
}

/// The one AIMD window implementation (see [`RateControl`]): tracks the
/// congestion window and answers "how many may be in flight right now".
#[derive(Clone, Copy, Debug)]
pub struct AimdWindow {
    rc: RateControl,
    max: usize,
    cwnd: f64,
}

impl AimdWindow {
    /// A window capped at `max` in-flight items under policy `rc`.
    pub fn new(rc: RateControl, max: usize) -> Self {
        let max = max.max(1);
        AimdWindow { rc, max, cwnd: max as f64 }
    }

    /// The configured maximum (policy changes rebuild from this).
    pub fn max_size(&self) -> usize {
        self.max
    }

    /// The in-flight budget right now.
    pub fn effective(&self) -> usize {
        match self.rc {
            RateControl::Fixed => self.max,
            RateControl::Aimd => (self.cwnd.floor() as usize).clamp(1, self.max),
        }
    }

    /// One item was rejected by backpressure: multiplicative decrease.
    pub fn on_reject(&mut self) {
        if self.rc == RateControl::Aimd {
            self.cwnd = (self.cwnd / 2.0).max(1.0);
        }
    }

    /// One item completed: additive increase toward the cap.
    pub fn on_success(&mut self) {
        if self.rc == RateControl::Aimd {
            self.cwnd = (self.cwnd + 1.0 / self.cwnd.max(1.0)).min(self.max as f64);
        }
    }
}

/// Closed-loop driver: keeps `window` requests outstanding; issues a new
/// request whenever one completes. Retransmits round-robin on timeout
/// (needed for liveness across view changes).
pub struct ClosedLoopClient<M> {
    targets: Vec<NodeId>,
    window: AimdWindow,
    factory: OpFactory,
    stop_at: SimTime,
    retry_after: SimDuration,
    seq: u32,
    next_target: usize,
    outstanding: HashSet<u64>,
    last_progress: SimTime,
    _marker: std::marker::PhantomData<M>,
}

impl<M> ClosedLoopClient<M> {
    /// Create a closed-loop driver with `window` outstanding requests.
    pub fn new(
        targets: Vec<NodeId>,
        window: usize,
        stop_at: SimTime,
        retry_after: SimDuration,
        factory: OpFactory,
    ) -> Self {
        assert!(!targets.is_empty(), "need at least one target replica");
        ClosedLoopClient {
            targets,
            window: AimdWindow::new(RateControl::Fixed, window),
            factory,
            stop_at,
            retry_after,
            seq: 0,
            next_target: 0,
            outstanding: HashSet::new(),
            last_progress: SimTime::ZERO,
            _marker: std::marker::PhantomData,
        }
    }

    /// Select the backpressure policy (builder-style; default `Fixed`).
    pub fn with_rate_control(mut self, rc: RateControl) -> Self {
        self.window = AimdWindow::new(rc, self.window.max_size());
        self
    }

    fn submit_one(&mut self, ctx: &mut Ctx<'_, M>)
    where
        M: ClientProtocol + 'static,
    {
        let op = (self.factory)(ctx.rng());
        let req = Request {
            id: Request::make_id(ctx.id(), self.seq),
            client: ctx.id(),
            op,
            submitted: ctx.now(),
        };
        self.seq = self.seq.wrapping_add(1);
        self.outstanding.insert(req.id);
        let target = self.targets[self.next_target % self.targets.len()];
        self.next_target += 1;
        ctx.trace(req.id, ahl_simkit::Phase::Submit);
        ctx.send(target, M::make_request(req));
        ctx.stats().inc("client.submitted", 1);
    }
}

impl<M: ClientProtocol + 'static> Actor for ClosedLoopClient<M> {
    type Msg = M;

    fn on_start(&mut self, ctx: &mut Ctx<'_, M>) {
        for _ in 0..self.window.effective() {
            self.submit_one(ctx);
        }
        ctx.set_timer(self.retry_after, TIMER_RETRY);
    }

    fn on_message(&mut self, _from: NodeId, msg: M, ctx: &mut Ctx<'_, M>) {
        if let Some(id) = msg.reject_id() {
            // Backpressure: the pool refused the request. Honor it — free
            // the in-flight slot, and under AIMD multiplicatively shrink
            // the window (the retry timer re-grows toward it).
            if self.outstanding.remove(&id) {
                ctx.stats().inc(stat::CLIENT_REJECTED, 1);
                self.window.on_reject();
            }
            return;
        }
        let Some(id) = msg.reply_id() else { return };
        if self.outstanding.remove(&id) {
            self.last_progress = ctx.now();
            ctx.stats().inc(stat::CLIENT_COMPLETED, 1);
            self.window.on_success();
            if ctx.now() < self.stop_at && self.outstanding.len() < self.window.effective() {
                self.submit_one(ctx);
            }
        }
    }

    fn on_timer(&mut self, kind: u64, ctx: &mut Ctx<'_, M>) {
        if kind != TIMER_RETRY || ctx.now() >= self.stop_at {
            return;
        }
        // Nothing completed for a full retry interval: presume the
        // in-flight requests lost (queue drops, a faulty leader, or a pool
        // that dropped them without a rejection signal) and free their
        // window slots so the top-up below actually retransmits work.
        if ctx.now().since(self.last_progress) >= self.retry_after
            && !self.outstanding.is_empty()
        {
            self.outstanding.clear();
            ctx.stats().inc("client.retries", 1);
        }
        // Top the window back up — replaces both presumed-lost requests
        // and rejected ones (after a backoff of one retry interval). The
        // budget is the effective window: AIMD keeps it near what the
        // pool admits.
        let budget = self.window.effective();
        if self.outstanding.len() < budget {
            for _ in 0..(budget - self.outstanding.len()) {
                self.submit_one(ctx);
            }
        }
        ctx.set_timer(self.retry_after, TIMER_RETRY);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahl_ledger::Op;
    use ahl_simkit::{QueueConfig, Sim, SimConfig};

    #[derive(Clone, Debug)]
    enum EchoMsg {
        Req(Request),
        Reply(u64),
        Reject(u64),
    }

    impl ClientProtocol for EchoMsg {
        fn make_request(req: Request) -> Self {
            EchoMsg::Req(req)
        }
        fn reply_id(&self) -> Option<u64> {
            match self {
                EchoMsg::Reply(id) => Some(*id),
                _ => None,
            }
        }
        fn reject_id(&self) -> Option<u64> {
            match self {
                EchoMsg::Reject(id) => Some(*id),
                _ => None,
            }
        }
    }

    /// A replica that immediately acknowledges every request.
    struct EchoServer;
    impl Actor for EchoServer {
        type Msg = EchoMsg;
        fn on_message(&mut self, from: NodeId, msg: EchoMsg, ctx: &mut Ctx<'_, EchoMsg>) {
            if let EchoMsg::Req(r) = msg {
                ctx.consume_cpu(SimDuration::from_micros(100));
                ctx.send(from, EchoMsg::Reply(r.id));
            }
        }
    }

    fn noop_factory() -> OpFactory {
        Box::new(|_rng| Op::Noop)
    }

    #[test]
    fn open_loop_sends_at_rate() {
        let mut sim: Sim<EchoMsg> = Sim::new(SimConfig::new(1));
        sim.add_actor(Box::new(EchoServer), QueueConfig::unbounded());
        let client = OpenLoopClient::new(
            vec![0],
            SimDuration::from_millis(10),
            SimTime::ZERO + SimDuration::from_secs(1),
            noop_factory(),
        );
        sim.add_actor(Box::new(client), QueueConfig::unbounded());
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(2));
        let submitted = sim.stats().counter("client.submitted");
        // 1 second at 100/s, ±1 for phase.
        assert!((99..=101).contains(&submitted), "submitted {submitted}");
    }

    #[test]
    fn closed_loop_keeps_window() {
        let mut sim: Sim<EchoMsg> = Sim::new(SimConfig::new(2));
        sim.add_actor(Box::new(EchoServer), QueueConfig::unbounded());
        let client = ClosedLoopClient::new(
            vec![0],
            8,
            SimTime::ZERO + SimDuration::from_secs(1),
            SimDuration::from_millis(500),
            noop_factory(),
        );
        sim.add_actor(Box::new(client), QueueConfig::unbounded());
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(2));
        let completed = sim.stats().counter(stat::CLIENT_COMPLETED);
        // RTT ≈ 2 ms + 100 µs service; window 8 → ~8 / 2.1 ms ≈ 3800/s.
        assert!(completed > 2_000, "completed {completed}");
        // Submissions track completions + initial window.
        let submitted = sim.stats().counter("client.submitted");
        assert!(submitted >= completed && submitted <= completed + 16);
    }

    /// A server with a hard admission budget: requests beyond `capacity`
    /// in any 100 ms accounting window are rejected — a stand-in for a
    /// full mempool.
    struct CappedServer {
        capacity: u32,
        admitted: u32,
        window_start: SimTime,
    }

    impl Actor for CappedServer {
        type Msg = EchoMsg;
        fn on_message(&mut self, from: NodeId, msg: EchoMsg, ctx: &mut Ctx<'_, EchoMsg>) {
            if let EchoMsg::Req(r) = msg {
                if ctx.now().since(self.window_start) >= SimDuration::from_millis(100) {
                    self.window_start = ctx.now();
                    self.admitted = 0;
                }
                if self.admitted >= self.capacity {
                    ctx.send(from, EchoMsg::Reject(r.id));
                    return;
                }
                self.admitted += 1;
                ctx.consume_cpu(SimDuration::from_micros(200));
                ctx.send(from, EchoMsg::Reply(r.id));
            }
        }
    }

    fn run_capped(rc: RateControl, seed: u64) -> (u64, u64) {
        let mut sim: Sim<EchoMsg> = Sim::new(SimConfig::new(seed));
        let server = CappedServer { capacity: 40, admitted: 0, window_start: SimTime::ZERO };
        sim.add_actor(Box::new(server), QueueConfig::unbounded());
        let client = ClosedLoopClient::new(
            vec![0],
            64, // far above the server's admission budget
            SimTime::ZERO + SimDuration::from_secs(5),
            SimDuration::from_millis(100),
            noop_factory(),
        )
        .with_rate_control(rc);
        sim.add_actor(Box::new(client), QueueConfig::unbounded());
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(6));
        (
            sim.stats().counter(stat::CLIENT_COMPLETED),
            sim.stats().counter(stat::CLIENT_REJECTED),
        )
    }

    /// AIMD converges onto the server's admission budget: goodput stays
    /// comparable to the fixed-window driver while rejection churn drops
    /// by a large factor.
    #[test]
    fn aimd_cuts_rejections_without_losing_goodput() {
        let (fixed_done, fixed_rej) = run_capped(RateControl::Fixed, 7);
        let (aimd_done, aimd_rej) = run_capped(RateControl::Aimd, 7);
        assert!(fixed_rej > 500, "fixed backoff keeps hammering: {fixed_rej}");
        assert!(
            aimd_rej * 4 < fixed_rej,
            "AIMD must cut rejections: {aimd_rej} vs {fixed_rej}"
        );
        assert!(
            aimd_done * 10 >= fixed_done * 8,
            "AIMD goodput within 20% of fixed: {aimd_done} vs {fixed_done}"
        );
    }

    #[test]
    fn closed_loop_retries_when_server_dead() {
        /// A server that drops everything.
        struct BlackHole;
        impl Actor for BlackHole {
            type Msg = EchoMsg;
            fn on_message(&mut self, _f: NodeId, _m: EchoMsg, _c: &mut Ctx<'_, EchoMsg>) {}
        }
        let mut sim: Sim<EchoMsg> = Sim::new(SimConfig::new(3));
        sim.add_actor(Box::new(BlackHole), QueueConfig::unbounded());
        let client = ClosedLoopClient::new(
            vec![0],
            4,
            SimTime::ZERO + SimDuration::from_secs(5),
            SimDuration::from_millis(200),
            noop_factory(),
        );
        sim.add_actor(Box::new(client), QueueConfig::unbounded());
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(2));
        assert!(sim.stats().counter("client.retries") >= 5);
    }
}
