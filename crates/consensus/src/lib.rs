//! # ahl-consensus — consensus protocols
//!
//! Every protocol the paper implements, measures or compares against:
//!
//! * [`pbft`] — the PBFT engine with the paper's four variants: **HL**
//!   (Hyperledger v0.6 PBFT), **AHL** (attested log, N = 2f+1), **AHL+**
//!   (split queues + leader relay), **AHLR** (leader enclave aggregation).
//! * Lockstep baselines for Figure 2: Tendermint, IBFT, and Quorum-style
//!   Raft (crash-fault, no pipelining).
//! * PoET and PoET+ (Figure 21/22): Nakamoto-style consensus with TEE wait
//!   certificates, fork resolution and stale-block accounting.
//! * [`clients`] — BLOCKBENCH-style open-loop and closed-loop drivers.
//! * [`adversary`] — the scripted Byzantine attack catalogue ([`Attack`])
//!   shared by all three BFT protocols, and the global [`SafetyChecker`]
//!   that turns the paper's security claims into executable invariants.

#![warn(missing_docs)]

pub mod adversary;
pub mod clients;
pub mod common;
pub mod harness;
pub mod ibft;
pub mod pbft;
pub mod poet;
pub mod raft;
pub mod tendermint;

pub use adversary::{Attack, SafetyChecker, Violation};
pub use clients::{ClientProtocol, ClosedLoopClient, OpenLoopClient};
pub use common::{stat, CryptoMode, OpFactory, Request};
pub use harness::{run_shard_experiment, ClientMode, NetChoice, RunMetrics, ShardExperiment};
