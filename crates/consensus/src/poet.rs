//! PoET and PoET+ (paper §4.2 + Appendix C.1, Figures 21 & 22).
//!
//! Proof of Elapsed Time: every node asks its enclave for a random
//! `waitTime`; the enclave releases a wait certificate when the time
//! expires; the node with the shortest wait proposes the next block.
//! Like PoW, PoET forks when multiple certificates expire within one
//! block-propagation window; losing branches become **stale blocks**.
//!
//! **PoET+** binds an `l`-bit random value `q` to each certificate and only
//! certificates with `q == 0` are valid — a two-stage leader election that
//! thins the competing-proposer set from `n` to `n·2^-l` (the paper sets
//! `l = log2(N)/2`, i.e. √N participants). The enclave rescales the wait
//! distribution to keep the target block interval.
//!
//! Blocks propagate through a fanout-`F` broadcast tree (Sawtooth gossips;
//! flat broadcast of 2-8 MB blocks would saturate uplinks unrealistically).
//! Propagation therefore takes `log_F(n)` store-and-forward hops whose
//! serialization time grows with block size — reproducing the paper's
//! finding that stale rate grows with N and block size.

use std::collections::HashMap;
use std::sync::Arc;

use ahl_simkit::{
    Actor, Ctx, MsgClass, Network, NodeId, QueueConfig, Sim, SimConfig, SimDuration, SimTime,
};
use rand::Rng;

use crate::common::stat;

/// A PoET block (payload abstracted to its size; this experiment measures
/// block dissemination, not transaction semantics).
#[derive(Clone, Debug)]
pub struct PoetBlock {
    /// Unique block id.
    pub id: u64,
    /// Chain height.
    pub height: u64,
    /// Parent block id (0 = genesis).
    pub parent: u64,
    /// Proposer (group index).
    pub proposer: usize,
    /// The waitTime the certificate attests (ties broken by shorter wait).
    pub wait_nanos: u64,
    /// Serialized size in bytes.
    pub size: usize,
    /// Transactions carried.
    pub txns: u64,
}

/// PoET wire messages.
#[derive(Clone, Debug)]
pub enum PoetMsg {
    /// A block forwarded along the broadcast tree.
    Block(Arc<PoetBlock>),
}

/// PoET node configuration.
#[derive(Clone, Debug)]
pub struct PoetConfig {
    /// Network size.
    pub n: usize,
    /// Filter bit-length `l` (0 = plain PoET; `log2(n)/2` = paper's PoET+).
    pub l_bits: u32,
    /// Target block interval (paper: 12-24 s).
    pub block_interval: SimDuration,
    /// Block size in bytes (paper: 2-8 MB).
    pub block_size: usize,
    /// Average transaction size (determines txns per block).
    pub txn_size: usize,
    /// Broadcast tree fanout.
    pub fanout: usize,
    /// Enclave call cost for certificate generation.
    pub enclave_cost: SimDuration,
    /// Validation cost per block (certificate check + txn verification).
    pub validate_cost: SimDuration,
}

impl PoetConfig {
    /// Plain PoET with paper-style defaults.
    pub fn poet(n: usize, block_size: usize) -> Self {
        PoetConfig {
            n,
            l_bits: 0,
            block_interval: SimDuration::from_secs(12),
            block_size,
            txn_size: 1024,
            fanout: 4,
            enclave_cost: SimDuration::from_micros_f64(482.2 + 2.7),
            validate_cost: SimDuration::from_millis(50),
        }
    }

    /// PoET+ with the paper's `l = log2(n)/2` filter.
    pub fn poet_plus(n: usize, block_size: usize) -> Self {
        let mut cfg = Self::poet(n, block_size);
        cfg.l_bits = (usize::BITS - 1 - n.leading_zeros()).max(2) / 2;
        cfg
    }

    /// Expected number of nodes whose certificates are valid per round.
    pub fn effective_participants(&self) -> f64 {
        self.n as f64 * 2f64.powi(-(self.l_bits as i32))
    }

    /// Transactions per block.
    pub fn txns_per_block(&self) -> u64 {
        (self.block_size / self.txn_size) as u64
    }
}

const TIMER_EXPIRE: u64 = 1;

/// A PoET validator node.
pub struct PoetNode {
    cfg: PoetConfig,
    me: usize,
    /// Known blocks by id.
    blocks: HashMap<u64, Arc<PoetBlock>>,
    /// Orphans waiting for their parent, keyed by parent id.
    orphans: HashMap<u64, Vec<Arc<PoetBlock>>>,
    /// Current head (height, id).
    head: (u64, u64),
    /// Wait-certificate validity of the current draw.
    cert_valid: bool,
    /// Current draw's wait time.
    wait: SimDuration,
    /// Timer epoch (stale-timer guard).
    epoch: u64,
}

impl PoetNode {
    /// Create a node.
    pub fn new(cfg: PoetConfig, me: usize) -> Self {
        PoetNode {
            cfg,
            me,
            blocks: HashMap::new(),
            orphans: HashMap::new(),
            head: (0, 0),
            cert_valid: false,
            wait: SimDuration::ZERO,
            epoch: 0,
        }
    }

    /// The node's current head (height, block id) for post-run analysis.
    pub fn head(&self) -> (u64, u64) {
        self.head
    }

    /// All blocks this node has seen.
    pub fn blocks(&self) -> &HashMap<u64, Arc<PoetBlock>> {
        &self.blocks
    }

    /// Walk the main chain back from the head; returns the ids on it.
    pub fn main_chain(&self) -> Vec<u64> {
        let mut ids = Vec::new();
        let mut cur = self.head.1;
        while cur != 0 {
            ids.push(cur);
            cur = self.blocks.get(&cur).map(|b| b.parent).unwrap_or(0);
        }
        ids
    }

    fn draw(&mut self, ctx: &mut Ctx<'_, PoetMsg>) {
        // Enclave call: generate (q, waitTime).
        ctx.consume_cpu(self.cfg.enclave_cost);
        let q: u64 = if self.cfg.l_bits == 0 {
            0
        } else {
            ctx.rng().gen::<u64>() & ((1u64 << self.cfg.l_bits.min(63)) - 1)
        };
        self.cert_valid = q == 0;
        // Rate-normalized exponential: mean = effective_participants × T so
        // the network-wide first expiry of a *valid* certificate lands at
        // ~T. Invalid certificates redraw on expiry.
        let mean_secs =
            self.cfg.effective_participants().max(1.0) * self.cfg.block_interval.as_secs_f64();
        let u: f64 = ctx.rng().gen::<f64>().max(1e-12);
        self.wait = SimDuration::from_secs_f64(-u.ln() * mean_secs);
        self.epoch += 1;
        ctx.set_timer(self.wait, TIMER_EXPIRE | (self.epoch << 8));
    }

    fn propose(&mut self, ctx: &mut Ctx<'_, PoetMsg>) {
        let block = Arc::new(PoetBlock {
            id: ((self.me as u64) << 40) | (ctx.rng().gen::<u32>() as u64) | 1,
            height: self.head.0 + 1,
            parent: self.head.1,
            proposer: self.me,
            wait_nanos: self.wait.as_nanos(),
            size: self.cfg.block_size,
            txns: self.cfg.txns_per_block(),
        });
        ctx.stats().inc(stat::TOTAL_BLOCKS, 1);
        self.accept(block.clone(), ctx);
        self.fanout_forward(&block, ctx);
    }

    /// Forward a block to this node's children in the broadcast tree rooted
    /// at the block's proposer.
    fn fanout_forward(&self, block: &Arc<PoetBlock>, ctx: &mut Ctx<'_, PoetMsg>) {
        let n = self.cfg.n;
        let f = self.cfg.fanout;
        let rel = (self.me + n - block.proposer) % n;
        for c in 1..=f {
            let child_rel = rel * f + c;
            if child_rel < n {
                let child = (block.proposer + child_rel) % n;
                ctx.send(child, PoetMsg::Block(block.clone()));
            }
        }
    }

    fn accept(&mut self, block: Arc<PoetBlock>, ctx: &mut Ctx<'_, PoetMsg>) {
        if self.blocks.contains_key(&block.id) {
            return;
        }
        // Parent must be known (or genesis) to place the block.
        if block.parent != 0 && !self.blocks.contains_key(&block.parent) {
            self.orphans.entry(block.parent).or_default().push(block);
            return;
        }
        let id = block.id;
        let height = block.height;
        self.blocks.insert(id, block);
        // Attach any orphans waiting on this block.
        if let Some(kids) = self.orphans.remove(&id) {
            for kid in kids {
                self.accept(kid, ctx);
            }
        }
        // Longest chain wins; ties favour the incumbent (first seen).
        if height > self.head.0 {
            self.head = (height, id);
            // New head: redraw the certificate for the next round.
            self.draw(ctx);
        } else if height == self.head.0 && id != self.head.1 {
            ctx.stats().inc("poet.forks_observed", 1);
        }
    }
}

impl Actor for PoetNode {
    type Msg = PoetMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, PoetMsg>) {
        self.draw(ctx);
    }

    fn on_message(&mut self, _from: NodeId, msg: PoetMsg, ctx: &mut Ctx<'_, PoetMsg>) {
        match msg {
            PoetMsg::Block(block) => {
                ctx.consume_cpu(self.cfg.validate_cost);
                self.accept(block.clone(), ctx);
                self.fanout_forward(&block, ctx);
            }
        }
    }

    fn on_timer(&mut self, kind: u64, ctx: &mut Ctx<'_, PoetMsg>) {
        if (kind >> 8) != self.epoch || (kind & 0xff) != TIMER_EXPIRE {
            return;
        }
        if self.cert_valid {
            self.propose(ctx);
        } else {
            // Certificate invalid (q != 0): the enclave issues a fresh
            // waitTime instead.
            self.draw(ctx);
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// Results of a PoET run.
#[derive(Clone, Debug)]
pub struct PoetMetrics {
    /// Blocks on the final main chain.
    pub main_chain_blocks: u64,
    /// Total blocks produced network-wide.
    pub total_blocks: u64,
    /// Stale fraction: (total - main) / total.
    pub stale_rate: f64,
    /// Committed transactions per second (main chain only).
    pub tps: f64,
}

/// Run a PoET/PoET+ experiment for `duration` over `network`.
pub fn run_poet(
    cfg: &PoetConfig,
    network: Box<dyn Network>,
    uplink_bps: Option<f64>,
    duration: SimDuration,
    seed: u64,
) -> PoetMetrics {
    fn classify(_m: &PoetMsg) -> MsgClass {
        MsgClass::CONSENSUS
    }
    fn size_of(m: &PoetMsg) -> usize {
        match m {
            PoetMsg::Block(b) => b.size,
        }
    }
    let mut sim_cfg = SimConfig::new(seed);
    sim_cfg.network = network;
    sim_cfg.classify = classify;
    sim_cfg.size_of = size_of;
    sim_cfg.uplink_bps = uplink_bps;
    let mut sim: Sim<PoetMsg> = Sim::new(sim_cfg);
    for i in 0..cfg.n {
        sim.add_actor(Box::new(PoetNode::new(cfg.clone(), i)), QueueConfig::unbounded());
    }
    sim.run_until(SimTime::ZERO + duration);

    // The observer with the longest chain defines the main chain.
    let best = (0..cfg.n)
        .map(|i| {
            sim.actor(i)
                .as_any()
                .expect("inspectable")
                .downcast_ref::<PoetNode>()
                .expect("poet node")
        })
        .max_by_key(|node| node.head().0)
        .expect("at least one node");
    let main = best.main_chain().len() as u64;
    let total = sim.stats().counter(stat::TOTAL_BLOCKS).max(main);
    let stale = total - main;
    PoetMetrics {
        main_chain_blocks: main,
        total_blocks: total,
        stale_rate: if total == 0 { 0.0 } else { stale as f64 / total as f64 },
        tps: main as f64 * cfg.txns_per_block() as f64 / duration.as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahl_net::ClusterNetwork;

    fn run(cfg: PoetConfig, secs: u64, seed: u64) -> PoetMetrics {
        run_poet(
            &cfg,
            Box::new(ClusterNetwork::poet_constrained()),
            Some(50e6),
            SimDuration::from_secs(secs),
            seed,
        )
    }

    #[test]
    fn poet_produces_blocks_at_target_interval() {
        let m = run(PoetConfig::poet(8, 2_000_000), 600, 1);
        // 600 s at a 12 s interval → ~50 blocks (generous bounds: forks and
        // exponential variance).
        assert!(m.main_chain_blocks >= 25, "main {}", m.main_chain_blocks);
        assert!(m.main_chain_blocks <= 80, "main {}", m.main_chain_blocks);
    }

    #[test]
    fn poet_plus_filters_participants() {
        let cfg = PoetConfig::poet_plus(64, 2_000_000);
        assert!(cfg.l_bits >= 2);
        let eff = cfg.effective_participants();
        assert!(eff < 64.0 / 2.0, "effective {eff}");
    }

    #[test]
    fn stale_rate_grows_with_network_size() {
        let small = run(PoetConfig::poet(4, 4_000_000), 600, 2);
        let large = run(PoetConfig::poet(64, 4_000_000), 600, 2);
        assert!(
            large.stale_rate >= small.stale_rate,
            "small {} large {}",
            small.stale_rate,
            large.stale_rate
        );
    }

    #[test]
    fn bigger_blocks_increase_stales() {
        let small = run(PoetConfig::poet(32, 2_000_000), 600, 3);
        let big = run(PoetConfig::poet(32, 8_000_000), 600, 3);
        assert!(
            big.stale_rate >= small.stale_rate,
            "2MB {} 8MB {}",
            small.stale_rate,
            big.stale_rate
        );
    }

    #[test]
    fn nodes_converge_on_one_chain() {
        let cfg = PoetConfig::poet(16, 2_000_000);
        let net = Box::new(ClusterNetwork::poet_constrained());
        let mut sim_cfg = SimConfig::new(9);
        sim_cfg.network = net;
        sim_cfg.classify = |_m: &PoetMsg| MsgClass::CONSENSUS;
        sim_cfg.size_of = |m: &PoetMsg| match m {
            PoetMsg::Block(b) => b.size,
        };
        sim_cfg.uplink_bps = Some(50e6);
        let mut sim: Sim<PoetMsg> = Sim::new(sim_cfg);
        for i in 0..cfg.n {
            sim.add_actor(Box::new(PoetNode::new(cfg.clone(), i)), QueueConfig::unbounded());
        }
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(300));
        let heights: Vec<u64> = (0..cfg.n)
            .map(|i| {
                sim.actor(i)
                    .as_any()
                    .expect("inspectable")
                    .downcast_ref::<PoetNode>()
                    .expect("poet")
                    .head()
                    .0
            })
            .collect();
        let max = *heights.iter().max().expect("non-empty");
        let min = *heights.iter().min().expect("non-empty");
        assert!(max >= 5, "max height {max}");
        // All nodes within a couple of blocks of the best chain.
        assert!(max - min <= 2, "heights {heights:?}");
    }
}
