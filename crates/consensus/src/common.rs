//! Types shared by all consensus protocol implementations.

use ahl_ledger::Op;
use ahl_simkit::{NodeId, SimDuration, SimTime};
use rand::rngs::SmallRng;

/// A client request: an identified ledger operation.
#[derive(Clone, Debug)]
pub struct Request {
    /// Globally unique request id (`client_id << 32 | client_seq`).
    pub id: u64,
    /// The submitting client's actor id (for replies).
    pub client: NodeId,
    /// The ledger operation to order and execute.
    pub op: Op,
    /// Submission time (for end-to-end latency measurement).
    pub submitted: SimTime,
}

impl Request {
    /// Build the globally unique request id.
    pub fn make_id(client: NodeId, seq: u32) -> u64 {
        ((client as u64) << 32) | seq as u64
    }
}

impl ahl_mempool::PoolTx for Request {
    fn tx_id(&self) -> u64 {
        self.id
    }

    fn wire_bytes(&self) -> usize {
        // Matches the `PbftMsg::Request` wire-size model.
        250 + self.op.wire_size()
    }

    /// Fee proxy: heavier transactions pay proportionally more, so the
    /// priority pool favours them under contention.
    fn priority(&self) -> u64 {
        self.op.weight() as u64
    }
}

/// Whether to actually compute MACs/signatures or only charge their cost.
///
/// `Real` exercises the full `ahl-crypto`/`ahl-tee` paths (used by tests);
/// `CostOnly` charges the same simulated latencies without spending host CPU
/// (used by the large-scale experiment harness). Both produce identical
/// simulated timings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CryptoMode {
    /// Compute and verify real MACs.
    Real,
    /// Charge latencies only.
    CostOnly,
}

/// Generates the next ledger operation for a client. Implemented by the
/// workload crate (KVStore, SmallBank); consensus only needs the closure.
pub type OpFactory = Box<dyn FnMut(&mut SmallRng) -> Op + Send>;

/// Counter/series names the protocols record (shared so harnesses and tests
/// agree on spelling).
pub mod stat {
    /// Counter: committed transactions.
    pub const TXN_COMMITTED: &str = "txn.committed";
    /// Counter: aborted transactions (execution-level aborts).
    pub const TXN_ABORTED: &str = "txn.aborted";
    /// Series: committed transaction count per commit event.
    pub const COMMIT_SERIES: &str = "txn.commit_series";
    /// Histogram: request submission → execution latency.
    pub const TXN_LATENCY: &str = "txn.latency";
    /// Counter: view changes adopted (counted at the new leader).
    pub const VIEW_CHANGES: &str = "consensus.view_changes";
    /// Counter: nanoseconds of CPU spent in consensus message handling.
    pub const CONSENSUS_CPU_NS: &str = "consensus.cpu_ns";
    /// Counter: nanoseconds of CPU spent executing transactions.
    pub const EXEC_CPU_NS: &str = "exec.cpu_ns";
    /// Counter: blocks committed.
    pub const BLOCKS_COMMITTED: &str = "consensus.blocks";
    /// Counter: stale (off-chain) blocks in Nakamoto-style protocols.
    pub const STALE_BLOCKS: &str = "poet.stale_blocks";
    /// Counter: total blocks produced in Nakamoto-style protocols.
    pub const TOTAL_BLOCKS: &str = "poet.total_blocks";
    /// Counter: completed (replied) client requests.
    pub const CLIENT_COMPLETED: &str = "client.completed";
    /// Counter: client requests bounced by pool admission control
    /// (replica-side; the matching client-side count is `client.rejected`).
    pub const BACKPRESSURE: &str = "consensus.backpressure";
    /// Counter: rejection notices observed by clients.
    pub const CLIENT_REJECTED: &str = "client.rejected";
    /// Counter: checkpoint certificates formed (quorum of matching votes).
    pub const CKPT_CERTS: &str = "consensus.ckpt_certs";
    /// Counter: checkpoint-time re-hash audits of the authenticated state
    /// index that found a cached hash diverging from its recomputation
    /// (run when `exec_workers > 1`; must stay zero).
    pub const CKPT_AUDIT_FAILURES: &str = "consensus.ckpt_audit_failures";
    /// Counter: resolved-transaction ids pruned at checkpoint boundaries.
    pub const RESOLVED_PRUNED: &str = "consensus.resolved_pruned";
    /// Counter: state-sync chunks served to lagging/joining replicas.
    pub const SYNC_CHUNKS_SERVED: &str = "sync.chunks_served";
    /// Counter: state-sync bytes verified and applied (requester side).
    pub const SYNC_BYTES: &str = "sync.bytes_synced";
    /// Counter: chunks rejected by proof verification against the cert root.
    pub const SYNC_PROOF_FAILURES: &str = "sync.proof_failures";
    /// Counter: sync manifests rejected for stale/invalid certificates.
    pub const SYNC_BAD_CERTS: &str = "sync.bad_certs";
    /// Counter: chunked state syncs completed (cert + chunks + tail).
    pub const SYNC_COMPLETED: &str = "sync.completed";
    /// Counter: tail-only catch-ups (block replay without chunk transfer).
    pub const SYNC_TAILS: &str = "sync.tail_catchups";
    /// Histogram: wall-clock duration of completed chunked syncs.
    pub const SYNC_DURATION: &str = "sync.duration";
    /// Counter: incremental (diff) sync sessions started.
    pub const SYNC_DIFFS: &str = "sync.diff_syncs";
    /// Counter: diff installs whose merged root missed the certified root
    /// (lying or mismatched server) — each falls back to a full transfer.
    pub const SYNC_DIFF_FALLBACKS: &str = "sync.diff_fallbacks";
    /// Counter: mid-transfer re-anchors (the serving snapshot rotated away
    /// and the requester restarted against a newer certificate).
    pub const SYNC_REANCHORS: &str = "sync.reanchors";
    /// Counter: manifests refused for carrying a certificate older than
    /// the one the exchange already targets (stale, still-recovering
    /// servers must not regress a transfer).
    pub const SYNC_STALE_MANIFESTS: &str = "sync.stale_manifests";
    /// Counter: executed-request ids pruned at checkpoint boundaries.
    pub const EXECUTED_PRUNED: &str = "consensus.executed_pruned";
    /// Counter: executed batches journaled (group-committed) to the WAL.
    pub const WAL_BATCHES: &str = "wal.batches";
    /// Counter: durable checkpoints persisted (pages + manifest swap).
    pub const WAL_CHECKPOINTS: &str = "wal.checkpoints";
    /// Counter: checkpoint pages newly written to the page store.
    pub const WAL_PAGES_WRITTEN: &str = "wal.pages_written";
    /// Counter: subtrees skipped because consecutive checkpoints share
    /// their pages on disk (each skip covers a whole subtree).
    pub const WAL_PAGES_SHARED: &str = "wal.pages_shared";
    /// Counter: batches re-executed from the WAL tail on restart.
    pub const WAL_REPLAYED: &str = "wal.replayed_batches";
    /// Counter: persistence I/O failures treated as node crashes
    /// (includes injected kill-switch crashes).
    pub const WAL_IO_CRASHES: &str = "wal.io_crashes";
    /// Counter: restarts whose node-directory reopen failed (the node
    /// falls back to a cold start + full state sync).
    pub const WAL_REOPEN_FAILURES: &str = "wal.reopen_failures";
    /// Counter: WAL replays stopped early because the 2PC journal
    /// disagreed with re-execution (corruption beyond the CRCs).
    pub const WAL_REPLAY_MISMATCHES: &str = "wal.replay_mismatches";
    /// Counter: retained snapshots evicted by the resident-byte budget
    /// (`snapshot_max_bytes`).
    pub const SNAPSHOT_EVICTIONS: &str = "sync.snapshot_evictions";
    /// Counter: page-store mark-and-sweep passes triggered by disk
    /// pressure at a durable checkpoint.
    pub const WAL_GC_RUNS: &str = "wal.gc_runs";
    /// Counter: on-disk bytes reclaimed by page-store GC (swept segment
    /// bytes minus live bytes copied forward).
    pub const WAL_GC_RECLAIMED: &str = "wal.gc_reclaimed_bytes";
    /// Counter: live pages copied into the active segment so their
    /// mostly-dead segment could be unlinked.
    pub const WAL_GC_COPIED: &str = "wal.gc_copied_pages";
}

/// Replay-protection cache of executed request ids, pruned at checkpoint
/// epochs exactly like the ledger's resolved-transaction set: ids keep
/// their insertion epoch, and [`ExecutedCache::checkpoint_prune`] forgets
/// them at the second epoch boundary after insertion — **but never before
/// the caller's `min_age` has passed since execution**. The age floor
/// closes a replay hole the Byzantine battery caught: epochs are counted
/// in *sequence numbers*, so under high throughput two epochs can pass in
/// well under a second, after which a stale pooled copy re-relayed at a
/// view change (e.g. out of a deposed Byzantine leader's pool) would
/// re-execute — a double spend. With the floor, any request young enough
/// to pass admission (requests older than the same horizon are refused)
/// is still remembered here, so the replay window is provably closed:
/// a copy is either too old to admit or young enough to dedup.
#[derive(Clone, Debug, Default)]
pub struct ExecutedCache {
    ids: std::collections::HashMap<u64, (u64, SimTime)>,
    epoch: u64,
}

impl ExecutedCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuild from a transferred id set (state-sync install); every id
    /// lands in the current epoch and enjoys the full protection window
    /// from `now`.
    pub fn from_set(ids: &std::collections::HashSet<u64>, now: SimTime) -> Self {
        ExecutedCache { ids: ids.iter().map(|id| (*id, (0, now))).collect(), epoch: 0 }
    }

    /// Record `id` as executed at `now`. Returns `false` if it was
    /// already known (a replay), refreshing nothing — the original
    /// epoch/time tags stand.
    pub fn insert(&mut self, id: u64, now: SimTime) -> bool {
        match self.ids.entry(id) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert((self.epoch, now));
                true
            }
        }
    }

    /// Whether `id` executed within the protection window.
    pub fn contains(&self, id: u64) -> bool {
        self.ids.contains_key(&id)
    }

    /// Number of remembered ids (bounded by pruning).
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no ids are remembered.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Checkpoint-boundary maintenance: forget ids older than one full
    /// interval *and* at least `min_age` old (see the type docs for why
    /// both conditions are required), then advance the epoch. Returns how
    /// many ids were pruned.
    pub fn checkpoint_prune(&mut self, now: SimTime, min_age: SimDuration) -> usize {
        let epoch = self.epoch;
        let before = self.ids.len();
        self.ids.retain(|_, (e, t)| *e >= epoch || now.since(*t) < min_age);
        self.epoch += 1;
        before - self.ids.len()
    }

    /// The remembered ids as a plain set (checkpoint snapshot / manifest
    /// wire form).
    pub fn to_set(&self) -> std::collections::HashSet<u64> {
        self.ids.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executed_cache_age_floor_blocks_fast_epoch_pruning() {
        let mut c = ExecutedCache::new();
        let t0 = SimTime::ZERO;
        assert!(c.insert(7, t0));
        assert!(!c.insert(7, t0 + SimDuration::from_secs(1)), "replay detected");
        // Two epoch boundaries pass almost immediately (high throughput):
        // without the age floor the id would be gone now.
        let soon = t0 + SimDuration::from_millis(10);
        assert_eq!(c.checkpoint_prune(soon, SimDuration::from_secs(5)), 0);
        assert_eq!(c.checkpoint_prune(soon, SimDuration::from_secs(5)), 0);
        assert!(c.contains(7), "age floor keeps the id alive");
        // Once the floor has passed, epoch pruning takes effect.
        let later = t0 + SimDuration::from_secs(6);
        assert_eq!(c.checkpoint_prune(later, SimDuration::from_secs(5)), 1);
        assert!(!c.contains(7));
    }

    #[test]
    fn request_ids_unique_per_client_seq() {
        let a = Request::make_id(1, 1);
        let b = Request::make_id(1, 2);
        let c = Request::make_id(2, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a >> 32, 1);
    }
}
