//! The bounded, deduplicating transaction pool.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use ahl_simkit::{SimTime, Stats};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::stat;
use crate::PoolTx;

/// What the pool does when a transaction arrives while it is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolPolicy {
    /// First-in-first-out ordering; reject the newcomer when full
    /// (Hyperledger's drop-beyond-buffer behaviour).
    Fifo,
    /// Batch highest-priority (fee) transactions first; when full, evict
    /// the lowest-priority resident if the newcomer outbids it, otherwise
    /// reject the newcomer.
    Priority,
    /// First-in-first-out ordering; when full, evict a uniformly random
    /// resident to admit the newcomer (deterministic in the pool seed).
    RandomEvict,
}

/// Pool sizing and policy.
#[derive(Clone, Debug)]
pub struct MempoolConfig {
    /// Maximum resident transactions.
    pub capacity: usize,
    /// Maximum resident bytes (`usize::MAX` = unlimited).
    pub capacity_bytes: usize,
    /// Maximum resident transactions per sender (`usize::MAX` = no quota).
    /// Enforced at admission, before capacity/eviction logic: a flooding
    /// sender is bounced without evicting anyone else's transactions.
    pub max_txs_per_sender: usize,
    /// Full-pool behaviour.
    pub policy: PoolPolicy,
}

impl MempoolConfig {
    /// A FIFO pool holding up to `capacity` transactions, unlimited bytes.
    pub fn new(capacity: usize) -> Self {
        MempoolConfig {
            capacity: capacity.max(1),
            capacity_bytes: usize::MAX,
            max_txs_per_sender: usize::MAX,
            policy: PoolPolicy::Fifo,
        }
    }

    /// Same sizing with a different policy.
    pub fn with_policy(mut self, policy: PoolPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Same sizing with a per-sender admission quota.
    pub fn with_sender_quota(mut self, max_txs_per_sender: usize) -> Self {
        self.max_txs_per_sender = max_txs_per_sender.max(1);
        self
    }
}

impl Default for MempoolConfig {
    fn default() -> Self {
        // The seed replica's hard-coded memory-pressure cap.
        MempoolConfig::new(200_000)
    }
}

/// Outcome of [`Mempool::insert`] — the backpressure signal the ingest
/// path surfaces to clients.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Admitted; pool had room.
    Admitted,
    /// Admitted after evicting the named resident transaction.
    AdmittedEvicting(u64),
    /// Dropped: the pool already holds this TxId.
    Duplicate,
    /// Dropped: the pool is full and the policy kept the residents.
    Rejected,
}

impl Admission {
    /// Whether the transaction is now resident in the pool.
    pub fn is_admitted(&self) -> bool {
        matches!(self, Admission::Admitted | Admission::AdmittedEvicting(_))
    }
}

struct Entry<T> {
    tx: T,
    /// Insertion sequence (total order; ties in priority break on it).
    seq: u64,
    inserted: SimTime,
    bytes: usize,
    priority: u64,
    sender: u64,
}

/// A bounded, deduplicating transaction pool with pluggable eviction.
///
/// Resident transactions live in a by-id map; ordering is kept in lazily
/// compacted side structures (a FIFO queue plus, for the priority policy,
/// max/min heaps), so removal by id — the common case when another replica
/// executes a transaction first — is O(1).
pub struct Mempool<T> {
    cfg: MempoolConfig,
    entries: HashMap<u64, Entry<T>>,
    /// Insertion order: (seq, id). Stale pairs (removed or re-sequenced
    /// ids) are skipped on pop and compacted when they dominate.
    fifo: VecDeque<(u64, u64)>,
    /// Priority policy only: batch order, max-first. (priority, newest-wins
    /// tiebreak inverted via `Reverse(seq)` so equal priorities pop oldest
    /// first.)
    by_prio: BinaryHeap<(u64, Reverse<u64>, u64)>,
    /// Priority policy only: eviction order, min-first.
    by_prio_min: BinaryHeap<Reverse<(u64, u64, u64)>>,
    bytes: usize,
    next_seq: u64,
    /// Resident transaction count per sender (quota enforcement).
    per_sender: HashMap<u64, usize>,
    rng: SmallRng,
}

impl<T: PoolTx> Mempool<T> {
    /// Create a pool. `seed` drives random eviction; pools with the same
    /// seed and submission history behave identically.
    pub fn new(cfg: MempoolConfig, seed: u64) -> Self {
        Mempool {
            cfg,
            entries: HashMap::new(),
            fifo: VecDeque::new(),
            by_prio: BinaryHeap::new(),
            by_prio_min: BinaryHeap::new(),
            bytes: 0,
            next_seq: 0,
            per_sender: HashMap::new(),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Resident transaction count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no transactions are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Resident bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Configured transaction capacity.
    pub fn capacity(&self) -> usize {
        self.cfg.capacity
    }

    /// The pool's configuration.
    pub fn config(&self) -> &MempoolConfig {
        &self.cfg
    }

    /// Whether `id` is resident.
    pub fn contains(&self, id: u64) -> bool {
        self.entries.contains_key(&id)
    }

    /// Occupancy as a fraction of transaction capacity.
    pub fn occupancy(&self) -> f64 {
        self.entries.len() as f64 / self.cfg.capacity as f64
    }

    fn full_for(&self, extra_bytes: usize) -> bool {
        self.entries.len() >= self.cfg.capacity
            || self
                .bytes
                .checked_add(extra_bytes)
                .is_none_or(|b| b > self.cfg.capacity_bytes)
    }

    /// Try to admit `tx`. Counts the outcome in `stats` and returns the
    /// backpressure signal.
    pub fn insert(&mut self, tx: T, now: SimTime, stats: &mut Stats) -> Admission {
        let id = tx.tx_id();
        if self.entries.contains_key(&id) {
            stats.inc(stat::DUPLICATE, 1);
            return Admission::Duplicate;
        }
        let bytes = tx.wire_bytes();
        let priority = tx.priority();
        let sender = tx.sender();
        if self
            .per_sender
            .get(&sender)
            .is_some_and(|n| *n >= self.cfg.max_txs_per_sender)
        {
            stats.inc(stat::REJECTED_SENDER, 1);
            return Admission::Rejected;
        }
        let mut evicted = None;
        if self.full_for(bytes) {
            match self.cfg.policy {
                PoolPolicy::Fifo => {
                    stats.inc(stat::REJECTED_FULL, 1);
                    return Admission::Rejected;
                }
                PoolPolicy::Priority => {
                    // Evict the cheapest resident only if the newcomer
                    // outbids it; otherwise the newcomer is the cheapest.
                    match self.min_priority_victim() {
                        Some((vp, vid)) if vp < priority => {
                            self.remove(vid);
                            evicted = Some(vid);
                        }
                        _ => {
                            stats.inc(stat::REJECTED_FULL, 1);
                            return Admission::Rejected;
                        }
                    }
                }
                PoolPolicy::RandomEvict => {
                    if let Some(vid) = self.random_victim() {
                        self.remove(vid);
                        evicted = Some(vid);
                    } else {
                        stats.inc(stat::REJECTED_FULL, 1);
                        return Admission::Rejected;
                    }
                }
            }
            // A single eviction may not free enough *bytes*; keep the
            // admission decision simple and reject if still over.
            if self.full_for(bytes) {
                stats.inc(stat::REJECTED_FULL, 1);
                if evicted.is_some() {
                    stats.inc(stat::EVICTED, 1);
                }
                return Admission::Rejected;
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.fifo.push_back((seq, id));
        if self.cfg.policy == PoolPolicy::Priority {
            self.by_prio.push((priority, Reverse(seq), id));
            self.by_prio_min.push(Reverse((priority, seq, id)));
        }
        self.bytes += bytes;
        *self.per_sender.entry(sender).or_insert(0) += 1;
        self.entries
            .insert(id, Entry { tx, seq, inserted: now, bytes, priority, sender });
        stats.inc(stat::ADMITTED, 1);
        match evicted {
            Some(vid) => {
                stats.inc(stat::EVICTED, 1);
                Admission::AdmittedEvicting(vid)
            }
            None => Admission::Admitted,
        }
    }

    /// Remove `id` (executed elsewhere, superseded, ...). Returns whether
    /// it was resident. O(1); ordering structures are compacted lazily.
    pub fn remove(&mut self, id: u64) -> bool {
        match self.entries.remove(&id) {
            Some(e) => {
                self.bytes -= e.bytes;
                self.note_departed(e.sender);
                self.maybe_compact();
                true
            }
            None => false,
        }
    }

    /// Drop every resident transaction failing `keep`.
    pub fn retain(&mut self, mut keep: impl FnMut(&T) -> bool) {
        let mut freed = 0usize;
        let mut departed: Vec<u64> = Vec::new();
        self.entries.retain(|_, e| {
            if keep(&e.tx) {
                true
            } else {
                freed += e.bytes;
                departed.push(e.sender);
                false
            }
        });
        self.bytes -= freed;
        for sender in departed {
            self.note_departed(sender);
        }
        self.maybe_compact();
    }

    /// Iterate resident transactions in insertion order (oldest first).
    pub fn iter_fifo(&self) -> impl Iterator<Item = &T> + '_ {
        self.fifo
            .iter()
            .filter_map(move |(seq, id)| match self.entries.get(id) {
                Some(e) if e.seq == *seq => Some(&e.tx),
                _ => None,
            })
    }

    /// Form a batch of up to `max_txs` transactions / `max_bytes` bytes in
    /// policy order, recording queueing latency for each batched
    /// transaction.
    pub fn take_batch(
        &mut self,
        max_txs: usize,
        max_bytes: usize,
        now: SimTime,
        stats: &mut Stats,
    ) -> Vec<T> {
        let mut batch = Vec::with_capacity(max_txs.min(self.entries.len()));
        let mut batch_bytes = 0usize;
        while batch.len() < max_txs {
            let Some(id) = self.pop_next_id() else { break };
            let entry = self.entries.get(&id).expect("popped ids are resident");
            if !batch.is_empty() && batch_bytes + entry.bytes > max_bytes {
                // Put it back for the next batch rather than overflowing —
                // into the structure it was popped from (the other still
                // holds its original pair).
                if self.cfg.policy == PoolPolicy::Priority {
                    self.by_prio.push((entry.priority, Reverse(entry.seq), id));
                } else {
                    self.fifo.push_front((entry.seq, id));
                }
                break;
            }
            let entry = self.entries.remove(&id).expect("checked");
            self.bytes -= entry.bytes;
            self.note_departed(entry.sender);
            batch_bytes += entry.bytes;
            stats.record_latency(stat::QUEUE_LATENCY, now.since(entry.inserted));
            batch.push(entry.tx);
        }
        if !batch.is_empty() {
            stats.inc(stat::BATCHED, batch.len() as u64);
            stats.inc(stat::BATCHES, 1);
            stats.record_point(stat::OCCUPANCY, now, self.entries.len() as f64);
        }
        self.maybe_compact();
        batch
    }

    /// Pop the id of the next transaction in policy order, skipping stale
    /// ordering entries. The id stays in `entries`.
    fn pop_next_id(&mut self) -> Option<u64> {
        if self.cfg.policy == PoolPolicy::Priority {
            while let Some((_, Reverse(seq), id)) = self.by_prio.pop() {
                if self.entries.get(&id).is_some_and(|e| e.seq == seq) {
                    return Some(id);
                }
            }
            None
        } else {
            while let Some((seq, id)) = self.fifo.pop_front() {
                if self.entries.get(&id).is_some_and(|e| e.seq == seq) {
                    return Some(id);
                }
            }
            None
        }
    }

    /// Lowest-priority resident (oldest on ties): the priority policy's
    /// eviction victim.
    fn min_priority_victim(&mut self) -> Option<(u64, u64)> {
        while let Some(Reverse((prio, seq, id))) = self.by_prio_min.peek().copied() {
            if self.entries.get(&id).is_some_and(|e| e.seq == seq) {
                return Some((prio, id));
            }
            self.by_prio_min.pop();
        }
        None
    }

    /// A uniformly random resident transaction (deterministic in the pool
    /// seed).
    fn random_victim(&mut self) -> Option<u64> {
        if self.entries.is_empty() {
            return None;
        }
        // Draw positions in the FIFO until one maps to a live entry; the
        // live fraction is kept above 1/2 by compaction, so this
        // terminates quickly.
        loop {
            let k = self.rng.gen_range(0..self.fifo.len());
            let (seq, id) = self.fifo[k];
            if self.entries.get(&id).is_some_and(|e| e.seq == seq) {
                return Some(id);
            }
            self.fifo.remove(k);
        }
    }

    /// A resident transaction left the pool: release its sender-quota slot.
    fn note_departed(&mut self, sender: u64) {
        if let std::collections::hash_map::Entry::Occupied(mut o) = self.per_sender.entry(sender) {
            *o.get_mut() -= 1;
            if *o.get() == 0 {
                o.remove();
            }
        }
    }

    /// Compact ordering structures once stale entries dominate.
    fn maybe_compact(&mut self) {
        let live = self.entries.len();
        if self.fifo.len() > 2 * live + 64 {
            let entries = &self.entries;
            self.fifo
                .retain(|(seq, id)| entries.get(id).is_some_and(|e| e.seq == *seq));
        }
        if self.cfg.policy == PoolPolicy::Priority {
            if self.by_prio.len() > 2 * live + 64 {
                let entries = &self.entries;
                let kept: Vec<_> = self
                    .by_prio
                    .drain()
                    .filter(|(_, Reverse(seq), id)| {
                        entries.get(id).is_some_and(|e| e.seq == *seq)
                    })
                    .collect();
                self.by_prio = kept.into_iter().collect();
            }
            if self.by_prio_min.len() > 2 * live + 64 {
                let entries = &self.entries;
                let kept: Vec<_> = self
                    .by_prio_min
                    .drain()
                    .filter(|Reverse((_, seq, id))| {
                        entries.get(id).is_some_and(|e| e.seq == *seq)
                    })
                    .collect();
                self.by_prio_min = kept.into_iter().collect();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct Tx {
        id: u64,
        prio: u64,
        bytes: usize,
    }

    impl PoolTx for Tx {
        fn tx_id(&self) -> u64 {
            self.id
        }
        fn wire_bytes(&self) -> usize {
            self.bytes
        }
        fn priority(&self) -> u64 {
            self.prio
        }
    }

    fn tx(id: u64) -> Tx {
        Tx { id, prio: 0, bytes: 100 }
    }

    fn tx_p(id: u64, prio: u64) -> Tx {
        Tx { id, prio, bytes: 100 }
    }

    fn pool(cap: usize, policy: PoolPolicy) -> Mempool<Tx> {
        Mempool::new(MempoolConfig::new(cap).with_policy(policy), 7)
    }

    #[test]
    fn dedup_by_txid() {
        let mut s = Stats::new();
        let mut p = pool(10, PoolPolicy::Fifo);
        assert!(p.insert(tx(1), SimTime::ZERO, &mut s).is_admitted());
        assert_eq!(p.insert(tx(1), SimTime::ZERO, &mut s), Admission::Duplicate);
        assert_eq!(p.len(), 1);
        assert_eq!(s.counter(stat::DUPLICATE), 1);
    }

    #[test]
    fn fifo_rejects_when_full_and_batches_in_order() {
        let mut s = Stats::new();
        let mut p = pool(3, PoolPolicy::Fifo);
        for i in 0..3 {
            assert!(p.insert(tx(i), SimTime::ZERO, &mut s).is_admitted());
        }
        assert_eq!(p.insert(tx(9), SimTime::ZERO, &mut s), Admission::Rejected);
        let batch = p.take_batch(2, usize::MAX, SimTime::ZERO, &mut s);
        assert_eq!(batch.iter().map(|t| t.id).collect::<Vec<_>>(), vec![0, 1]);
        // Room again: the next insert is admitted.
        assert!(p.insert(tx(9), SimTime::ZERO, &mut s).is_admitted());
        assert_eq!(s.counter(stat::REJECTED_FULL), 1);
        assert_eq!(s.counter(stat::BATCHED), 2);
    }

    #[test]
    fn priority_orders_batches_and_evicts_cheapest() {
        let mut s = Stats::new();
        let mut p = pool(3, PoolPolicy::Priority);
        p.insert(tx_p(1, 5), SimTime::ZERO, &mut s);
        p.insert(tx_p(2, 1), SimTime::ZERO, &mut s);
        p.insert(tx_p(3, 9), SimTime::ZERO, &mut s);
        // Newcomer with priority 7 outbids the cheapest resident (id 2).
        assert_eq!(
            p.insert(tx_p(4, 7), SimTime::ZERO, &mut s),
            Admission::AdmittedEvicting(2)
        );
        // Newcomer cheaper than everything resident is rejected.
        assert_eq!(p.insert(tx_p(5, 0), SimTime::ZERO, &mut s), Admission::Rejected);
        let batch = p.take_batch(3, usize::MAX, SimTime::ZERO, &mut s);
        assert_eq!(batch.iter().map(|t| t.id).collect::<Vec<_>>(), vec![3, 4, 1]);
        assert_eq!(s.counter(stat::EVICTED), 1);
    }

    #[test]
    fn priority_ties_break_oldest_first() {
        let mut s = Stats::new();
        let mut p = pool(10, PoolPolicy::Priority);
        for i in 0..4 {
            p.insert(tx_p(i, 3), SimTime::ZERO, &mut s);
        }
        let batch = p.take_batch(4, usize::MAX, SimTime::ZERO, &mut s);
        assert_eq!(batch.iter().map(|t| t.id).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn random_evict_admits_newcomer_deterministically() {
        let mut s = Stats::new();
        let run = |seed: u64| {
            let mut p: Mempool<Tx> =
                Mempool::new(MempoolConfig::new(4).with_policy(PoolPolicy::RandomEvict), seed);
            let mut st = Stats::new();
            for i in 0..20 {
                assert!(p.insert(tx(i), SimTime::ZERO, &mut st).is_admitted());
            }
            let mut b = p.take_batch(4, usize::MAX, SimTime::ZERO, &mut st);
            let mut ids: Vec<u64> = b.drain(..).map(|t| t.id).collect();
            ids.sort_unstable();
            ids
        };
        assert_eq!(run(3), run(3), "same seed must evict identically");
        let _ = &mut s;
    }

    #[test]
    fn byte_capacity_enforced() {
        let mut s = Stats::new();
        let mut p: Mempool<Tx> = Mempool::new(
            MempoolConfig {
                capacity: 100,
                capacity_bytes: 250,
                max_txs_per_sender: usize::MAX,
                policy: PoolPolicy::Fifo,
            },
            0,
        );
        assert!(p.insert(tx(1), SimTime::ZERO, &mut s).is_admitted());
        assert!(p.insert(tx(2), SimTime::ZERO, &mut s).is_admitted());
        assert_eq!(p.insert(tx(3), SimTime::ZERO, &mut s), Admission::Rejected);
        assert_eq!(p.bytes(), 200);
    }

    #[test]
    fn batch_respects_byte_limit() {
        let mut s = Stats::new();
        let mut p = pool(10, PoolPolicy::Fifo);
        for i in 0..5 {
            p.insert(tx(i), SimTime::ZERO, &mut s);
        }
        let batch = p.take_batch(10, 250, SimTime::ZERO, &mut s);
        assert_eq!(batch.len(), 2);
        // The overflowing transaction went back to the front of the queue.
        let next = p.take_batch(10, usize::MAX, SimTime::ZERO, &mut s);
        assert_eq!(next.iter().map(|t| t.id).collect::<Vec<_>>(), vec![2, 3, 4]);
    }

    #[test]
    fn priority_byte_putback_leaves_no_duplicates() {
        // A byte-capped batch puts the overflowing entry back; under the
        // priority policy it must return to the heap only — a second fifo
        // pair would duplicate view-change re-relays and defeat compaction.
        let mut s = Stats::new();
        let mut p = pool(10, PoolPolicy::Priority);
        for i in 0..5 {
            p.insert(tx_p(i, 5), SimTime::ZERO, &mut s);
        }
        let mut drained = 0;
        for _ in 0..10 {
            // 150-byte cap: one 100-byte tx fits, the next is put back.
            let b = p.take_batch(2, 150, SimTime::ZERO, &mut s);
            if b.is_empty() {
                break;
            }
            drained += b.len();
        }
        assert_eq!(drained, 5);
        for i in 5..8 {
            p.insert(tx_p(i, 5), SimTime::ZERO, &mut s);
        }
        assert_eq!(
            p.iter_fifo().count(),
            p.len(),
            "insertion-order iteration must match the resident set"
        );
    }

    #[test]
    fn remove_frees_room_and_skips_batching() {
        let mut s = Stats::new();
        let mut p = pool(2, PoolPolicy::Fifo);
        p.insert(tx(1), SimTime::ZERO, &mut s);
        p.insert(tx(2), SimTime::ZERO, &mut s);
        assert!(p.remove(1));
        assert!(!p.remove(1));
        assert!(p.insert(tx(3), SimTime::ZERO, &mut s).is_admitted());
        let batch = p.take_batch(5, usize::MAX, SimTime::ZERO, &mut s);
        assert_eq!(batch.iter().map(|t| t.id).collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn queue_latency_recorded() {
        let mut s = Stats::new();
        let mut p = pool(10, PoolPolicy::Fifo);
        p.insert(tx(1), SimTime::ZERO, &mut s);
        let later = SimTime::ZERO + ahl_simkit::SimDuration::from_millis(5);
        p.take_batch(1, usize::MAX, later, &mut s);
        let h = s.histogram(stat::QUEUE_LATENCY).expect("latency recorded");
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean().as_millis(), 5);
    }

    #[test]
    fn heavy_churn_stays_consistent() {
        // Interleave inserts, removes and batches; invariants must hold.
        let mut s = Stats::new();
        let mut p = pool(64, PoolPolicy::RandomEvict);
        let mut next = 0u64;
        for round in 0..200 {
            for _ in 0..10 {
                p.insert(tx(next), SimTime::ZERO, &mut s);
                next += 1;
            }
            if round % 3 == 0 {
                p.remove(next.saturating_sub(5));
            }
            let b = p.take_batch(7, usize::MAX, SimTime::ZERO, &mut s);
            assert!(b.len() <= 7);
            assert!(p.len() <= 64);
        }
        let total_in = s.counter(stat::ADMITTED);
        let total_out =
            s.counter(stat::BATCHED) + s.counter(stat::EVICTED) + p.len() as u64;
        // Every admitted tx is batched, evicted, explicitly removed, or
        // still resident.
        assert!(total_out <= total_in);
        assert!(total_in - total_out <= 200, "removed at most once per round");
    }

    #[test]
    fn sender_quota_bounces_flooder_without_evicting_others() {
        let mut s = Stats::new();
        let mut p: Mempool<Tx> = Mempool::new(MempoolConfig::new(100).with_sender_quota(3), 0);
        let tx_from = |sender: u64, seq: u64| Tx { id: (sender << 32) | seq, prio: 0, bytes: 10 };
        // Sender 1 floods: only 3 resident, the rest bounced.
        for i in 0..10 {
            p.insert(tx_from(1, i), SimTime::ZERO, &mut s);
        }
        assert_eq!(p.len(), 3);
        assert_eq!(s.counter(stat::REJECTED_SENDER), 7);
        // Other senders are unaffected by the flooder.
        for sender in 2..6 {
            assert!(p.insert(tx_from(sender, 0), SimTime::ZERO, &mut s).is_admitted());
        }
        assert_eq!(p.len(), 7);
        assert_eq!(s.counter(stat::REJECTED_FULL), 0);
    }

    #[test]
    fn sender_quota_slots_release_on_batch_and_remove() {
        let mut s = Stats::new();
        let mut p: Mempool<Tx> = Mempool::new(MempoolConfig::new(100).with_sender_quota(2), 0);
        let tx_from = |sender: u64, seq: u64| Tx { id: (sender << 32) | seq, prio: 0, bytes: 10 };
        assert!(p.insert(tx_from(7, 0), SimTime::ZERO, &mut s).is_admitted());
        assert!(p.insert(tx_from(7, 1), SimTime::ZERO, &mut s).is_admitted());
        assert_eq!(p.insert(tx_from(7, 2), SimTime::ZERO, &mut s), Admission::Rejected);
        // Batching releases a slot …
        let b = p.take_batch(1, usize::MAX, SimTime::ZERO, &mut s);
        assert_eq!(b.len(), 1);
        assert!(p.insert(tx_from(7, 3), SimTime::ZERO, &mut s).is_admitted());
        // … and so does an explicit remove.
        assert!(p.remove((7 << 32) | 1));
        assert!(p.insert(tx_from(7, 4), SimTime::ZERO, &mut s).is_admitted());
        assert_eq!(p.insert(tx_from(7, 5), SimTime::ZERO, &mut s), Admission::Rejected);
        assert_eq!(s.counter(stat::REJECTED_SENDER), 2);
    }
}
