//! # ahl-mempool — per-shard transaction pool and batch pipeline
//!
//! The seed reproduction had no mempool at all: batching was a pair of
//! fixed knobs inside the PBFT config and every replica kept a private
//! `VecDeque` of requests. This crate provides the standard building block
//! of production sharded chains — a first-class per-shard transaction pool
//! with:
//!
//! * **TxId-based deduplication** — a transaction is pooled at most once,
//!   no matter how many gossip/relay copies arrive.
//! * **Admission control** — bounded capacity in transactions *and* bytes,
//!   with pluggable full-pool behaviour ([`PoolPolicy`]): FIFO
//!   reject-newest, priority/fee eviction, or random eviction.
//! * **Batch formation** — [`BatchBuilder`] turns the pool into block
//!   proposals on size / byte / timeout triggers, replacing the inline
//!   `batch_size` / `batch_timeout` logic the consensus engines carried.
//! * **Backpressure signals** — [`Admission`] tells the ingest path
//!   whether to bounce a client, and every outcome is counted in
//!   [`ahl_simkit::Stats`] under the [`stat`] names (occupancy,
//!   admit/reject/evict counters, per-transaction queueing latency).
//!
//! The pool is generic over the transaction type through [`PoolTx`], so the
//! consensus crate can pool its own `Request` type without a dependency
//! cycle. All operations are deterministic: priority ties break by
//! insertion order and random eviction draws from a seeded generator.
//!
//! ```
//! use ahl_mempool::{Admission, Mempool, MempoolConfig, PoolPolicy, PoolTx};
//! use ahl_simkit::{SimTime, Stats};
//!
//! #[derive(Clone)]
//! struct Tx(u64);
//! impl PoolTx for Tx {
//!     fn tx_id(&self) -> u64 { self.0 }
//! }
//!
//! let mut stats = Stats::new();
//! let mut pool = Mempool::new(MempoolConfig::new(2), 42);
//! assert!(pool.insert(Tx(1), SimTime::ZERO, &mut stats).is_admitted());
//! assert_eq!(pool.insert(Tx(1), SimTime::ZERO, &mut stats), Admission::Duplicate);
//! assert!(pool.insert(Tx(2), SimTime::ZERO, &mut stats).is_admitted());
//! // FIFO policy rejects the newcomer once full.
//! assert_eq!(pool.insert(Tx(3), SimTime::ZERO, &mut stats), Admission::Rejected);
//! assert_eq!(stats.counter(ahl_mempool::stat::REJECTED_FULL), 1);
//! ```

#![warn(missing_docs)]

mod batch;
mod pool;
pub mod stat;

pub use batch::{BatchBuilder, BatchConfig};
pub use pool::{Admission, Mempool, MempoolConfig, PoolPolicy};

/// A poolable transaction.
///
/// Implemented by the consensus layer for its request type; the pool only
/// needs identity, an approximate wire size, and a priority (a fee proxy).
pub trait PoolTx: Clone {
    /// Globally unique transaction id (the dedup key).
    fn tx_id(&self) -> u64;

    /// Approximate serialized size in bytes (for byte-capacity limits and
    /// byte-triggered batching).
    fn wire_bytes(&self) -> usize {
        256
    }

    /// Admission/ordering priority — higher is more urgent. The
    /// [`PoolPolicy::Priority`] policy batches high-priority transactions
    /// first and evicts the lowest-priority entry when full.
    fn priority(&self) -> u64 {
        0
    }

    /// The submitting sender's identity, for per-sender admission quotas
    /// (DoS isolation: one flooding client cannot monopolize the pool).
    /// Defaults to the high half of the tx id, matching the consensus
    /// layer's `client_id << 32 | client_seq` request-id scheme.
    fn sender(&self) -> u64 {
        self.tx_id() >> 32
    }
}
