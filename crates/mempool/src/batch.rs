//! Batch formation: turning the pool into block proposals.

use ahl_simkit::{SimDuration, SimTime, Stats};

use crate::pool::Mempool;
use crate::{stat, PoolTx};

/// When a batch is formed.
#[derive(Clone, Debug)]
pub struct BatchConfig {
    /// Form a batch as soon as this many transactions are pooled; also the
    /// per-batch transaction cap.
    pub max_txs: usize,
    /// Form a batch as soon as this many bytes are pooled; also the
    /// per-batch byte cap.
    pub max_bytes: usize,
    /// Flush a partial batch after this long without one.
    pub timeout: SimDuration,
}

impl BatchConfig {
    /// `max_txs`-triggered batching with a flush timeout and unlimited
    /// bytes.
    pub fn new(max_txs: usize, timeout: SimDuration) -> Self {
        BatchConfig { max_txs: max_txs.max(1), max_bytes: usize::MAX, timeout }
    }
}

/// Forms proposals from a [`Mempool`] on size / byte / timeout triggers.
///
/// The consensus leader drives it from two sites: the hot path calls
/// [`BatchBuilder::take_full`] whenever the pool may have filled up, and a
/// periodic timer calls [`BatchBuilder::take_due`] so a trickle of
/// transactions still reaches a block within `timeout`.
#[derive(Clone, Debug)]
pub struct BatchBuilder {
    cfg: BatchConfig,
    last_flush: SimTime,
}

impl BatchBuilder {
    /// Create a builder.
    pub fn new(cfg: BatchConfig) -> Self {
        BatchBuilder { cfg, last_flush: SimTime::ZERO }
    }

    /// The batching configuration.
    pub fn config(&self) -> &BatchConfig {
        &self.cfg
    }

    /// The timeout after which a partial batch is flushed.
    pub fn timeout(&self) -> SimDuration {
        self.cfg.timeout
    }

    /// Whether a full batch (by transactions or bytes) is ready.
    pub fn full_ready<T: PoolTx>(&self, pool: &Mempool<T>) -> bool {
        pool.len() >= self.cfg.max_txs || pool.bytes() >= self.cfg.max_bytes
    }

    /// Take a batch only if a full one is ready (size or byte trigger).
    pub fn take_full<T: PoolTx>(
        &mut self,
        pool: &mut Mempool<T>,
        now: SimTime,
        stats: &mut Stats,
    ) -> Option<Vec<T>> {
        if !self.full_ready(pool) {
            return None;
        }
        let batch = pool.take_batch(self.cfg.max_txs, self.cfg.max_bytes, now, stats);
        if batch.is_empty() {
            return None;
        }
        self.last_flush = now;
        Some(batch)
    }

    /// Take whatever is pooled if the flush timeout expired (timeout
    /// trigger); called from the leader's batch timer.
    pub fn take_due<T: PoolTx>(
        &mut self,
        pool: &mut Mempool<T>,
        now: SimTime,
        stats: &mut Stats,
    ) -> Option<Vec<T>> {
        if pool.is_empty() || now.since(self.last_flush) < self.cfg.timeout {
            return None;
        }
        let batch = pool.take_batch(self.cfg.max_txs, self.cfg.max_bytes, now, stats);
        if batch.is_empty() {
            return None;
        }
        self.last_flush = now;
        stats.inc(stat::TIMEOUT_FLUSHES, 1);
        Some(batch)
    }

    /// Note an externally produced flush (e.g. a re-proposal after a view
    /// change), resetting the timeout clock.
    pub fn note_flush(&mut self, now: SimTime) {
        self.last_flush = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MempoolConfig, PoolPolicy};

    #[derive(Clone)]
    struct Tx(u64);
    impl PoolTx for Tx {
        fn tx_id(&self) -> u64 {
            self.0
        }
        fn wire_bytes(&self) -> usize {
            100
        }
    }

    fn setup() -> (Mempool<Tx>, BatchBuilder, Stats) {
        let pool = Mempool::new(MempoolConfig::new(100).with_policy(PoolPolicy::Fifo), 1);
        let builder = BatchBuilder::new(BatchConfig::new(4, SimDuration::from_millis(10)));
        (pool, builder, Stats::new())
    }

    #[test]
    fn size_trigger_fires_at_max_txs() {
        let (mut pool, mut b, mut s) = setup();
        for i in 0..3 {
            pool.insert(Tx(i), SimTime::ZERO, &mut s);
        }
        assert!(b.take_full(&mut pool, SimTime::ZERO, &mut s).is_none());
        pool.insert(Tx(3), SimTime::ZERO, &mut s);
        let batch = b.take_full(&mut pool, SimTime::ZERO, &mut s).expect("full");
        assert_eq!(batch.len(), 4);
        assert!(pool.is_empty());
    }

    #[test]
    fn byte_trigger_fires_before_max_txs() {
        let mut pool: Mempool<Tx> = Mempool::new(MempoolConfig::new(100), 1);
        let mut b = BatchBuilder::new(BatchConfig {
            max_txs: 50,
            max_bytes: 250,
            timeout: SimDuration::from_millis(10),
        });
        let mut s = Stats::new();
        pool.insert(Tx(1), SimTime::ZERO, &mut s);
        assert!(b.take_full(&mut pool, SimTime::ZERO, &mut s).is_none());
        pool.insert(Tx(2), SimTime::ZERO, &mut s);
        pool.insert(Tx(3), SimTime::ZERO, &mut s);
        let batch = b.take_full(&mut pool, SimTime::ZERO, &mut s).expect("bytes");
        // 250-byte cap holds two 100-byte transactions per batch.
        assert_eq!(batch.len(), 2);
    }

    #[test]
    fn timeout_flushes_partial_batches() {
        let (mut pool, mut b, mut s) = setup();
        pool.insert(Tx(1), SimTime::ZERO, &mut s);
        let early = SimTime::ZERO + SimDuration::from_millis(5);
        assert!(b.take_due(&mut pool, early, &mut s).is_none(), "too early");
        let due = SimTime::ZERO + SimDuration::from_millis(10);
        let batch = b.take_due(&mut pool, due, &mut s).expect("due");
        assert_eq!(batch.len(), 1);
        assert_eq!(s.counter(stat::TIMEOUT_FLUSHES), 1);
        // Empty pool: timer fires but nothing to flush.
        let later = due + SimDuration::from_millis(50);
        assert!(b.take_due(&mut pool, later, &mut s).is_none());
    }

    #[test]
    fn full_flush_resets_timeout_clock() {
        let (mut pool, mut b, mut s) = setup();
        for i in 0..4 {
            pool.insert(Tx(i), SimTime::ZERO, &mut s);
        }
        let t1 = SimTime::ZERO + SimDuration::from_millis(9);
        assert!(b.take_full(&mut pool, t1, &mut s).is_some());
        pool.insert(Tx(9), t1, &mut s);
        // Timeout counts from the last flush, not from time zero.
        let t2 = SimTime::ZERO + SimDuration::from_millis(12);
        assert!(b.take_due(&mut pool, t2, &mut s).is_none());
        let t3 = t1 + SimDuration::from_millis(10);
        assert!(b.take_due(&mut pool, t3, &mut s).is_some());
    }
}
