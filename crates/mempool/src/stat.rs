//! Counter/histogram/series names the pool records into
//! [`ahl_simkit::Stats`], shared so harnesses and tests agree on spelling.

/// Counter: transactions admitted into a pool.
pub const ADMITTED: &str = "mempool.admitted";
/// Counter: transactions rejected because the pool was full.
pub const REJECTED_FULL: &str = "mempool.rejected_full";
/// Counter: duplicate submissions dropped by TxId dedup.
pub const DUPLICATE: &str = "mempool.duplicate";
/// Counter: transactions rejected because their sender already holds
/// `max_txs_per_sender` resident transactions (DoS isolation).
pub const REJECTED_SENDER: &str = "mempool.rejected_sender_quota";
/// Counter: resident transactions evicted to admit newer/higher-priority
/// ones.
pub const EVICTED: &str = "mempool.evicted";
/// Counter: transactions handed to the consensus layer in batches.
pub const BATCHED: &str = "mempool.batched";
/// Counter: batches formed.
pub const BATCHES: &str = "mempool.batches";
/// Counter: batches flushed by the timeout trigger (partial batches).
pub const TIMEOUT_FLUSHES: &str = "mempool.timeout_flushes";
/// Counter: pooled transactions re-relayed to the new leader after a view
/// change (the regossip round that rescues client transactions stranded
/// at a deposed or Byzantine leader — both the replicas' own push on
/// entering the view and their answers to the new leader's pool pull).
pub const VIEWCHANGE_REGOSSIP: &str = "mempool.viewchange_regossip";
/// Histogram: admission → batch-formation queueing latency.
pub const QUEUE_LATENCY: &str = "mempool.queue_latency";
/// Series: pool occupancy (transactions) sampled at each batch formation.
pub const OCCUPANCY: &str = "mempool.occupancy";
