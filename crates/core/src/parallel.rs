//! Independent-shard scale-out runs (paper §7.3, Figures 14 & 18).
//!
//! The paper's largest experiment runs Smallbank *without* the reference
//! committee — every transaction is single-shard — so shards proceed
//! independently and total throughput is the sum. We exploit exactly that
//! independence: each shard's committee simulation runs on its own OS
//! thread with a distinct seed, and the results are aggregated.

use ahl_consensus::harness::{
    run_shard_experiment, ClientMode, NetChoice, RunMetrics, ShardExperiment,
};
use ahl_consensus::pbft::{BftVariant, PbftConfig, ReplyPolicy};
use ahl_simkit::SimDuration;
use ahl_workload::{KvStoreWorkload, SmallBankWorkload};

/// Which benchmark each shard runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardBench {
    /// SmallBank sendPayment within the shard.
    SmallBank,
    /// KVStore single-update transactions.
    KvStore,
}

/// Configuration for a scale-out run.
#[derive(Clone, Debug)]
pub struct ScaleOutConfig {
    /// Number of shards.
    pub shards: usize,
    /// Committee size per shard.
    pub committee_size: usize,
    /// Consensus variant.
    pub variant: BftVariant,
    /// Testbed.
    pub net: NetChoice,
    /// Clients per shard (the paper: 4 per shard, closed loop ×128).
    pub clients_per_shard: usize,
    /// Outstanding requests per client.
    pub outstanding: usize,
    /// Benchmark.
    pub bench: ShardBench,
    /// Measured duration.
    pub duration: SimDuration,
    /// Warmup.
    pub warmup: SimDuration,
    /// Seed.
    pub seed: u64,
}

impl ScaleOutConfig {
    /// Paper-style defaults.
    pub fn new(shards: usize, committee_size: usize) -> Self {
        ScaleOutConfig {
            shards,
            committee_size,
            variant: BftVariant::AhlPlus,
            net: NetChoice::Cluster,
            clients_per_shard: 4,
            outstanding: 128,
            bench: ShardBench::SmallBank,
            duration: SimDuration::from_secs(15),
            warmup: SimDuration::from_secs(5),
            seed: 42,
        }
    }
}

/// Aggregated scale-out result.
#[derive(Clone, Debug, Default)]
pub struct ScaleOutMetrics {
    /// Sum of shard throughputs (tps).
    pub total_tps: f64,
    /// Per-shard throughput.
    pub per_shard_tps: Vec<f64>,
    /// Total committed transactions.
    pub committed: u64,
    /// Total view changes.
    pub view_changes: u64,
}

fn one_shard(cfg: &ScaleOutConfig, shard: usize) -> RunMetrics {
    let mut pbft = PbftConfig::new(cfg.variant, cfg.committee_size);
    pbft.reply_policy = ReplyPolicy::IngestReplica;
    let bench = cfg.bench;
    let mut exp = ShardExperiment::new(
        pbft,
        Box::new(move |client| match bench {
            ShardBench::SmallBank => SmallBankWorkload::paper(100_000, 0.0).factory(client),
            ShardBench::KvStore => KvStoreWorkload::single_shard().factory(client),
        }),
    );
    if let ShardBench::SmallBank = cfg.bench {
        exp.genesis = SmallBankWorkload::paper(100_000, 0.0).genesis();
    }
    exp.net = cfg.net;
    exp.clients = cfg.clients_per_shard;
    exp.client_mode = ClientMode::Closed { outstanding: cfg.outstanding };
    exp.duration = cfg.duration;
    exp.warmup = cfg.warmup;
    exp.seed = cfg.seed ^ ((shard as u64 + 1) << 32);
    run_shard_experiment(exp)
}

/// Run all shards (in parallel threads) and aggregate.
pub fn run_scale_out(cfg: &ScaleOutConfig) -> ScaleOutMetrics {
    let results: Vec<RunMetrics> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.shards)
            .map(|shard| scope.spawn(move || one_shard(cfg, shard)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard simulation thread panicked"))
            .collect()
    });
    let per_shard_tps: Vec<f64> = results.iter().map(|r| r.tps).collect();
    ScaleOutMetrics {
        total_tps: per_shard_tps.iter().sum(),
        per_shard_tps,
        committed: results.iter().map(|r| r.committed).sum(),
        view_changes: results.iter().map(|r| r.view_changes).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(shards: usize) -> ScaleOutMetrics {
        let mut cfg = ScaleOutConfig::new(shards, 3);
        cfg.clients_per_shard = 2;
        cfg.outstanding = 32;
        cfg.duration = SimDuration::from_secs(6);
        cfg.warmup = SimDuration::from_secs(2);
        run_scale_out(&cfg)
    }

    #[test]
    fn throughput_scales_with_shards() {
        let one = quick(1);
        let four = quick(4);
        assert!(one.total_tps > 100.0, "one-shard tps {}", one.total_tps);
        // Linear-ish scaling: 4 shards ≥ 3× one shard.
        assert!(
            four.total_tps > 3.0 * one.total_tps,
            "1 shard {} vs 4 shards {}",
            one.total_tps,
            four.total_tps
        );
        assert_eq!(four.per_shard_tps.len(), 4);
    }
}
