//! Shard reconfiguration performance (paper §5.3 + Figure 12).
//!
//! Transitioning nodes stop processing their old committee's requests
//! while they fetch the new shard's state. Earlier revisions modelled that
//! fetch as a flat timer (a network partition of configurable length); now
//! the transitioning node performs the *real* certified state transfer: it
//! pauses consensus participation, fetches the latest checkpoint
//! certificate, downloads and verifies every key-range chunk of the shard
//! state, replays the block tail, and only then resumes voting. The
//! throughput cost of a reconfiguration strategy therefore emerges from
//! actual transfer volume (state size ÷ bandwidth, plus serve/verify CPU),
//! not from a configured constant:
//!
//! * **Swap all** — every member transitions at once: the committee loses
//!   its quorum for the duration of the transfer; throughput drops to zero,
//!   then spikes while the pooled backlog drains (Figure 12 right).
//!   Members keep *serving* chunks from their certified snapshots while
//!   transferring — the paper's departing-committee behaviour — so the
//!   fetch itself still completes.
//! * **Swap log(n)** — B = log(n) members at a time (B ≤ f): the committee
//!   keeps a quorum and throughput tracks the no-resharding baseline. The
//!   controller starts the next batch only after every member of the
//!   current batch reports its fetch complete (§5.3: a batch officially
//!   joins before the next batch leaves).

use ahl_consensus::clients::OpenLoopClient;
use ahl_consensus::common::stat;
use ahl_consensus::pbft::{build_group, BftVariant, PbftConfig, PbftMsg};
use ahl_ledger::Value;
use ahl_net::ClusterNetwork;
use ahl_shard::paper_batch_size;
use ahl_simkit::{Actor, Ctx, NodeId, QueueConfig, SimDuration, SimTime};
use ahl_workload::SmallBankWorkload;

/// Reconfiguration strategy under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReshardStrategy {
    /// No resharding (baseline).
    None,
    /// All nodes transition simultaneously (the naive approach).
    SwapAll,
    /// B = log(n) nodes at a time (the paper's approach).
    SwapLog,
}

/// Configuration of a Figure 12 run.
#[derive(Clone, Debug)]
pub struct ReshardConfig {
    /// Committee size.
    pub committee_size: usize,
    /// Strategy.
    pub strategy: ReshardStrategy,
    /// Times at which resharding events start (the paper reshards twice).
    pub reshard_at: Vec<SimDuration>,
    /// Number of bulk-state keys padding the shard ledger (each a
    /// [`Value::Opaque`] of `state_pad_bytes`). Together they set the real
    /// transfer volume a transitioning node must fetch and verify — the
    /// quantity that used to be a `full_fetch` timer.
    pub state_pad_keys: usize,
    /// Size of each bulk-state value in bytes.
    pub state_pad_bytes: u64,
    /// Target key-value pairs per sync chunk (the statesync experiment
    /// sweeps this).
    pub sync_chunk_target: usize,
    /// Fraction of transitioning members that *re-join* a shard whose
    /// state they recently held (elastico-style shuffles send some members
    /// back): those advertise their last certified root and fetch only the
    /// diff, instead of re-transferring the whole shard. 0.0 = every
    /// transition is a cross-shard move (full fetch).
    pub rejoin_fraction: f64,
    /// Real on-disk persistence root (per-node WAL + page-backed
    /// checkpoints under `dir/node-<id>`); `None` keeps the sweep
    /// filesystem-free.
    pub data_dir: Option<std::path::PathBuf>,
    /// Run length.
    pub duration: SimDuration,
    /// Offered load per client (open loop), requests/s.
    pub client_rate: f64,
    /// Number of clients.
    pub clients: usize,
    /// Seed.
    pub seed: u64,
}

impl ReshardConfig {
    /// Paper-style defaults for committee size `n`: ≈2 GB of shard state,
    /// fetched in ≈30 MB chunks — a transfer in the tens of seconds at the
    /// cluster's 1 Gbps, matching the paper's up-to-80 s state fetches.
    pub fn new(n: usize, strategy: ReshardStrategy) -> Self {
        ReshardConfig {
            committee_size: n,
            strategy,
            reshard_at: vec![SimDuration::from_secs(150), SimDuration::from_secs(300)],
            state_pad_keys: 2_500,
            state_pad_bytes: 800_000,
            sync_chunk_target: 400,
            rejoin_fraction: 0.0,
            data_dir: None,
            duration: SimDuration::from_secs(450),
            client_rate: 150.0,
            clients: 4,
            seed: 42,
        }
    }

    /// Total modelled bulk-state volume in bytes.
    pub fn state_volume(&self) -> u64 {
        self.state_pad_keys as u64 * self.state_pad_bytes
    }
}

/// Result: average tps plus the throughput-over-time series.
#[derive(Clone, Debug)]
pub struct ReshardMetrics {
    /// Mean committed tps over the whole run.
    pub avg_tps: f64,
    /// (time, tps) series in 5-second buckets.
    pub series: Vec<(SimTime, f64)>,
    /// View changes observed.
    pub view_changes: u64,
    /// View changes initiated (including failed attempts).
    pub vc_initiated: u64,
    /// Full chunked state transfers completed by transitioning nodes.
    pub state_syncs: u64,
    /// Chunks served across all replicas.
    pub chunks_served: u64,
    /// Bytes of state verified and applied by syncing replicas.
    pub bytes_synced: u64,
    /// Chunks rejected by proof verification (0 in honest runs).
    pub proof_failures: u64,
    /// Incremental (diff) sync sessions used by rejoining members.
    pub diff_syncs: u64,
}

/// Batches of group indices to transition per reshard event.
fn transition_batches(cfg: &ReshardConfig) -> Vec<Vec<usize>> {
    let n = cfg.committee_size;
    match cfg.strategy {
        ReshardStrategy::None => Vec::new(),
        // Everyone re-fetches at once: no quorum until transfers finish.
        ReshardStrategy::SwapAll => vec![(0..n).collect()],
        ReshardStrategy::SwapLog => {
            // In expectation half the members transition (k = 2 shards in
            // the paper's Figure 12 setup), B = log(n) at a time. Skip the
            // initial leader (0) and the metrics reporter (1): which nodes
            // transition is arbitrary, and keeping the vantage point online
            // keeps the measurement continuous.
            let b = paper_batch_size(n);
            let transitioning = n / 2;
            let mut batches = Vec::new();
            let mut next = 2usize;
            let mut remaining = transitioning;
            while remaining > 0 {
                let take = b.min(remaining);
                let mut group = Vec::with_capacity(take);
                for _ in 0..take {
                    group.push(next % n);
                    next += 1;
                    if next % n < 2 {
                        next += 2 - next % n;
                    }
                }
                remaining -= take;
                batches.push(group);
            }
            batches
        }
    }
}

const TIMER_NEXT_BATCH: u64 = 1 << 32;

/// Drives the reconfiguration schedule: at each reshard time it sends
/// [`PbftMsg::Transition`] to the first batch, then releases the next batch
/// only once every member of the current one reports `TransitionDone` —
/// the §5.3 join-before-leave rule, event-driven rather than timed.
struct ReshardController {
    group: Vec<NodeId>,
    reshard_at: Vec<SimDuration>,
    batches: Vec<Vec<usize>>,
    /// Fraction of each batch marked as re-joining its previous shard
    /// (diff-sync eligible); the leading members of the batch are chosen.
    rejoin_fraction: f64,
    /// Inter-batch slack (committee paperwork between swaps).
    slack: SimDuration,
    /// Batches still to run in the active event.
    queue: std::collections::VecDeque<Vec<usize>>,
    /// Members of the in-flight batch that have not finished fetching.
    awaiting: std::collections::HashSet<usize>,
}

impl ReshardController {
    fn start_batch(&mut self, batch: Vec<usize>, ctx: &mut Ctx<'_, PbftMsg>) {
        self.awaiting = batch.iter().copied().collect();
        let me = ctx.id();
        let rejoiners = (self.rejoin_fraction.clamp(0.0, 1.0) * batch.len() as f64).round() as usize;
        for (pos, idx) in batch.into_iter().enumerate() {
            ctx.send(
                self.group[idx],
                PbftMsg::Transition { controller: Some(me), rejoin: pos < rejoiners },
            );
        }
    }
}

impl Actor for ReshardController {
    type Msg = PbftMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, PbftMsg>) {
        for (i, at) in self.reshard_at.iter().enumerate() {
            ctx.set_timer(*at, i as u64);
        }
    }

    fn on_message(&mut self, _from: NodeId, msg: PbftMsg, ctx: &mut Ctx<'_, PbftMsg>) {
        if let PbftMsg::TransitionDone { replica } = msg {
            self.awaiting.remove(&replica);
            if self.awaiting.is_empty() && !self.queue.is_empty() {
                ctx.set_timer(self.slack, TIMER_NEXT_BATCH);
            }
        }
    }

    fn on_timer(&mut self, kind: u64, ctx: &mut Ctx<'_, PbftMsg>) {
        if kind == TIMER_NEXT_BATCH {
            if let Some(batch) = self.queue.pop_front() {
                self.start_batch(batch, ctx);
            }
            return;
        }
        // A reshard event begins: load its batch queue and start the first.
        self.queue = self.batches.clone().into();
        if let Some(batch) = self.queue.pop_front() {
            self.start_batch(batch, ctx);
        }
    }
}

/// Run a Figure 12 experiment.
pub fn run_reshard(cfg: &ReshardConfig) -> ReshardMetrics {
    let mut pbft = PbftConfig::new(BftVariant::AhlPlus, cfg.committee_size);
    pbft.batch_timeout = SimDuration::from_millis(20);
    pbft.sync_chunk_target = cfg.sync_chunk_target;
    pbft.data_dir = cfg.data_dir.clone();
    // ≈10 s of blocks between checkpoints: the first certificate exists
    // well before the first reshard event, and a transitioning node's
    // multi-second transfer fits comfortably inside the snapshot-retention
    // serving window.
    pbft.checkpoint_interval = 512;
    let mut genesis = SmallBankWorkload::paper(10_000, 0.0).genesis();
    // Bulk state: the volume a transitioning node actually transfers.
    for i in 0..cfg.state_pad_keys {
        genesis.push((
            format!("blob_{i}"),
            Value::Opaque { size: cfg.state_pad_bytes, tag: i as u64 },
        ));
    }
    let (mut sim, group) =
        build_group(&pbft, Box::new(ClusterNetwork::new()), Some(1e9), &genesis, cfg.seed);

    let stop = SimTime::ZERO + cfg.duration;
    // Clients attach to the first two members (their ingest keeps pooling
    // even while a node transfers; pooled requests drain after it rejoins).
    let stable: Vec<_> = group.iter().copied().take(2).collect();
    for c in 0..cfg.clients {
        let interval = SimDuration::from_secs_f64(1.0 / cfg.client_rate.max(1e-9));
        let client = OpenLoopClient::new(
            stable.clone(),
            interval,
            stop,
            SmallBankWorkload::paper(10_000, 0.0).factory(c),
        );
        sim.add_actor(Box::new(client), QueueConfig::unbounded());
    }
    let controller = ReshardController {
        group: group.clone(),
        reshard_at: cfg.reshard_at.clone(),
        batches: transition_batches(cfg),
        rejoin_fraction: cfg.rejoin_fraction,
        slack: SimDuration::from_secs(5),
        queue: std::collections::VecDeque::new(),
        awaiting: std::collections::HashSet::new(),
    };
    sim.add_actor(Box::new(controller), QueueConfig::unbounded());
    sim.run_until(stop + SimDuration::from_secs(10));

    let stats = sim.stats();
    let avg = stats.rate_in_window(stat::COMMIT_SERIES, SimTime::ZERO, stop);
    ReshardMetrics {
        avg_tps: avg,
        series: stats.rate_series(stat::COMMIT_SERIES, SimDuration::from_secs(5), stop),
        view_changes: stats.counter(stat::VIEW_CHANGES),
        vc_initiated: stats.counter("consensus.vc_initiated"),
        state_syncs: stats.counter(stat::SYNC_COMPLETED),
        chunks_served: stats.counter(stat::SYNC_CHUNKS_SERVED),
        bytes_synced: stats.counter(stat::SYNC_BYTES),
        proof_failures: stats.counter(stat::SYNC_PROOF_FAILURES),
        diff_syncs: stats.counter(stat::SYNC_DIFFS),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(strategy: ReshardStrategy) -> ReshardMetrics {
        let mut cfg = ReshardConfig::new(9, strategy);
        cfg.reshard_at = vec![SimDuration::from_secs(30)];
        // ≈1 GB of shard state → a transfer in the ~10 s range at 1 Gbps:
        // the throughput hole is the transfer, not a timer.
        cfg.state_pad_keys = 2_000;
        cfg.state_pad_bytes = 500_000;
        cfg.duration = SimDuration::from_secs(90);
        cfg.client_rate = 100.0;
        cfg.clients = 2;
        run_reshard(&cfg)
    }

    #[test]
    fn swap_all_creates_throughput_hole() {
        let m = quick(ReshardStrategy::SwapAll);
        // While all nine members fetch ≈1 GB each the committee has no
        // quorum: find a 5 s bucket with (near-)zero throughput after the
        // transition starts.
        let hole = m
            .series
            .iter()
            .filter(|(t, _)| t.as_secs_f64() >= 30.0 && t.as_secs_f64() < 55.0)
            .any(|(_, tps)| *tps < 10.0);
        assert!(hole, "expected a throughput hole: {:?}", m.series);
        // The outage came from real, verified transfer volume.
        assert_eq!(m.state_syncs, 9, "all nine members complete a chunked fetch");
        assert_eq!(m.proof_failures, 0);
        assert!(
            m.bytes_synced >= 9 * 1_000_000_000,
            "each member fetched ≈1 GB: {}",
            m.bytes_synced
        );
        assert!(m.chunks_served > 0);
    }

    #[test]
    fn swap_log_tracks_baseline() {
        let base = quick(ReshardStrategy::None);
        let swap = quick(ReshardStrategy::SwapLog);
        assert!(
            swap.avg_tps > 0.85 * base.avg_tps,
            "baseline {} vs swap-log {}",
            base.avg_tps,
            swap.avg_tps
        );
        // And no bucket collapses to zero after warmup.
        let collapsed = swap
            .series
            .iter()
            .filter(|(t, _)| t.as_secs_f64() >= 10.0 && t.as_secs_f64() < 85.0)
            .any(|(_, tps)| *tps < 5.0);
        assert!(!collapsed, "swap-log should keep quorum: {:?}", swap.series);
        // The batched strategy still performs real transfers.
        assert!(swap.state_syncs >= 3, "batched members fetched: {}", swap.state_syncs);
        assert_eq!(swap.proof_failures, 0);
    }

    /// Members re-joining a shard whose state they recently held advertise
    /// their last certified root and diff-sync: the transfer shrinks to the
    /// chunks that changed since their checkpoint (near-zero for a member
    /// that was current moments ago), so the reconfiguration costs a small
    /// fraction of the full ~1 GB re-fetch and throughput stays up.
    #[test]
    fn rejoining_members_diff_sync_cheaply() {
        let mut cfg = ReshardConfig::new(9, ReshardStrategy::SwapLog);
        cfg.reshard_at = vec![SimDuration::from_secs(30)];
        cfg.state_pad_keys = 2_000;
        cfg.state_pad_bytes = 500_000;
        cfg.duration = SimDuration::from_secs(90);
        cfg.client_rate = 100.0;
        cfg.clients = 2;
        cfg.rejoin_fraction = 1.0;
        let m = run_reshard(&cfg);
        assert_eq!(m.proof_failures, 0);
        assert!(m.state_syncs >= 3, "rejoiners still complete syncs: {}", m.state_syncs);
        assert!(m.diff_syncs >= 3, "rejoiners use diff sync: {}", m.diff_syncs);
        // The whole event moved a small fraction of what full fetches
        // would (each full fetch is ≈1 GB; a rejoiner's diff covers only
        // the chunks the committee changed since its last checkpoint).
        let full_volume = cfg.state_volume() * m.state_syncs;
        assert!(
            m.bytes_synced * 2 < full_volume,
            "diff transfers stayed under half of full: {} vs {}",
            m.bytes_synced,
            full_volume
        );
    }

    #[test]
    fn swap_all_worse_than_swap_log() {
        let all = quick(ReshardStrategy::SwapAll);
        let log = quick(ReshardStrategy::SwapLog);
        assert!(log.avg_tps > all.avg_tps, "log {} all {}", log.avg_tps, all.avg_tps);
    }
}
